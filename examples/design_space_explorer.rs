//! Design-space exploration: sweep the systolic array geometry and the
//! off-chip bandwidth, and report throughput per configuration — the kind
//! of study the Bit Fusion architecture parameters (§V-A) came from.
//!
//! Run with: `cargo run --release --example design_space_explorer`

use bitfusion::core::arch::ArchConfig;
use bitfusion::core::util::geomean;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::sim::BitFusionSim;

fn throughput_geomean(arch: &ArchConfig) -> f64 {
    let sim = BitFusionSim::new(arch.clone());
    let rates: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|b| {
            let r = sim.run(&b.model(), 16).expect("zoo model compiles");
            r.total_macs() as f64 / r.total_cycles() as f64
        })
        .collect();
    geomean(&rates)
}

fn main() {
    println!("Bit Fusion design-space exploration (geomean MACs/cycle over the suite)\n");

    println!("array geometry at 512 Fusion Units, 128 b/cyc:");
    for (rows, cols) in [(64, 8), (32, 16), (16, 32), (8, 64)] {
        let mut arch = ArchConfig::isca_45nm();
        arch.rows = rows;
        arch.cols = cols;
        println!(
            "  {rows:>3} x {cols:<3} -> {:8.0} MACs/cycle",
            throughput_geomean(&arch)
        );
    }
    println!("  (tall arrays favour long reductions; wide arrays favour many output");
    println!("   channels — the paper's 32x16 balances the suite)\n");

    println!("off-chip bandwidth at 32x16:");
    for bw in [32, 64, 128, 256, 512] {
        let arch = ArchConfig::isca_45nm().with_bandwidth(bw);
        println!(
            "  {bw:>4} bits/cycle -> {:8.0} MACs/cycle",
            throughput_geomean(&arch)
        );
    }
    println!();

    println!("scaling the array (bandwidth fixed at 128 b/cyc):");
    for (rows, cols, label) in [(16, 16, "256 FUs"), (32, 16, "512 FUs"), (32, 32, "1024 FUs"), (64, 32, "2048 FUs")] {
        let mut arch = ArchConfig::isca_45nm();
        arch.rows = rows;
        arch.cols = cols;
        println!(
            "  {label:>9} -> {:8.0} MACs/cycle",
            throughput_geomean(&arch)
        );
    }
    println!("  (past ~1024 units the fixed bandwidth starves the array: compute");
    println!("   scales only with matching memory — the Figure 15 lesson)");
}
