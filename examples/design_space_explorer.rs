//! Design-space exploration with the sharded DSE engine: sweep array
//! geometry, scratchpad capacity, and off-chip bandwidth across the whole
//! benchmark zoo, and reduce the results to a Pareto frontier over
//! (cycles, energy, area) — the kind of study the Bit Fusion architecture
//! parameters (§V-A) came from.
//!
//! Run with: `cargo run --release --example design_space_explorer`

use bitfusion::core::arch::ArchConfig;
use bitfusion::core::grid::ArchGrid;
use bitfusion::sim::{explore, AnalyticBackend, DseSpec};

fn main() {
    println!("Bit Fusion design-space exploration (sharded DSE engine)\n");

    // A 3-dimensional architecture grid: geometry x SRAM split x bandwidth,
    // crossed with all eight zoo networks at batch 16.
    let grid = ArchGrid {
        rows: vec![16, 32, 64],
        cols: vec![8, 16, 32],
        dram_bits_per_cycle: vec![64, 128, 256],
        ..ArchGrid::from_base(ArchConfig::isca_45nm())
    };
    let spec = DseSpec::zoo(grid, vec![16]);
    println!(
        "grid: {} architectures x {} networks = {} points",
        spec.grid.len(),
        spec.models.len(),
        spec.len()
    );

    // Workers = 0 shards across all available cores; the memoized compile
    // cache means the bandwidth axis is free (tiling ignores bandwidth).
    let result = explore(&spec, &AnalyticBackend, 0);
    println!(
        "evaluated {} points; {} unique compilations, {} points served from cache\n",
        result.points.len(),
        result.compile_misses,
        result.compile_hits
    );

    println!("Pareto frontier over (total cycles, total energy, chip area):");
    println!(
        "  {:>4} {:>4} {:>5} | {:>14} {:>11} {:>9}",
        "rows", "cols", "bw", "cycles", "energy(mJ)", "area(mm2)"
    );
    for s in result.pareto_frontier() {
        println!(
            "  {:>4} {:>4} {:>5} | {:>14} {:>11.2} {:>9.2}",
            s.arch.rows,
            s.arch.cols,
            s.arch.dram_bits_per_cycle,
            s.total_cycles,
            s.total_energy_pj / 1e9,
            s.area_mm2
        );
    }
    println!(
        "\n  (the frontier walks the area-vs-throughput tradeoff: tall arrays\n   \
         favour long reductions, wide arrays many output channels. The DRAM\n   \
         PHY is outside the chip-area model, so the widest swept bandwidth\n   \
         dominates each geometry — the Figure 15 lesson that compute only\n   \
         scales with matching memory)"
    );
}
