//! Per-layer anatomy of AlexNet on Bit Fusion vs Eyeriss: where the cycles
//! go, which layers are bandwidth-bound, and what bit-level fusion buys at
//! each precision.
//!
//! Run with: `cargo run --release --example alexnet_layer_report`

use bitfusion::baselines::EyerissSim;
use bitfusion::core::arch::ArchConfig;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::sim::BitFusionSim;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = BitFusionSim::new(ArchConfig::isca_45nm());
    let model = Benchmark::AlexNet.model();
    let report = sim.run(&model, 16)?;

    println!("AlexNet (2x-wide WRPN) on Bit Fusion, batch 16:");
    println!(
        "  {:<8} {:>9} {:>12} {:>7} {:>12} {:>10} {:>8}",
        "layer", "precision", "MACs", "bound", "cycles", "MACs/cyc", "energy"
    );
    let plan = bitfusion::compiler::compile(&model, sim.arch(), 16)?;
    for (perf, planned) in report.layers.iter().zip(&plan.layers) {
        println!(
            "  {:<8} {:>9} {:>12} {:>7} {:>12} {:>10.0} {:>7.0}uJ",
            perf.name,
            planned.gemm.pair.to_string(),
            perf.macs,
            if perf.is_bandwidth_bound() { "mem" } else { "compute" },
            perf.cycles,
            perf.macs_per_cycle(),
            perf.energy.total_pj() / 1e6,
        );
    }
    println!();
    println!(
        "total: {:.3} ms/image, {:.1} average MACs/cycle, {}",
        report.latency_ms_per_input(),
        report.macs_per_cycle(),
        report.energy_per_input()
    );

    // Eyeriss runs the regular-width model at 16 bits.
    let eyeriss = EyerissSim::default().run(&Benchmark::AlexNet.reference_model(), 16);
    println!();
    println!(
        "Eyeriss (regular AlexNet, 16-bit): {:.3} ms/image -> Bit Fusion speedup {:.2}x, \
         energy reduction {:.2}x",
        eyeriss.latency_ms_per_input(),
        eyeriss.latency_ms_per_input() / report.latency_ms_per_input(),
        eyeriss.energy.total_pj() / report.total_energy().total_pj()
    );
    println!(
        "(the paper's Figure 13 reports 1.9x/1.5x against its own simulator; see\n\
         EXPERIMENTS.md for the per-layer-class reconciliation)"
    );
    Ok(())
}
