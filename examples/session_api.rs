//! The service-layer API in-process: build typed requests, hand them to a
//! [`Session`], and consume typed responses — the same path the CLI's
//! one-shot subcommands and the `serve` loop use, including the shared
//! compiled-artifact cache.
//!
//! Run with: `cargo run --release --example session_api`

use bitfusion::service::protocol::{ArchPreset, ModelSource, SweepAxis};
use bitfusion::service::{Request, Response, Session};

fn main() {
    let session = Session::new();

    // A typed request, built directly...
    let report = Request::Report {
        model: ModelSource::zoo("lstm"),
        batch: 16,
        bandwidth: None,
        arch: ArchPreset::Isca45nm,
        backend: None,
        quant: None,
    };
    // ...or parsed from the same wire form `serve` reads from stdin.
    assert_eq!(
        Request::parse(r#"{"cmd":"report","benchmark":"lstm","batch":16}"#).unwrap(),
        report
    );

    println!("session API: report -> sweep -> report, one shared artifact cache\n");
    match session.handle(&report) {
        Response::Report(r) => println!(
            "report  {} (batch {}): {} cycles, {:.3} ms/input, {:.1} uJ/input",
            r.benchmark,
            r.batch,
            r.cycles,
            r.latency_ms_per_input,
            r.energy_per_input.total_pj() / 1e6
        ),
        other => panic!("unexpected response: {other:?}"),
    }

    // The bandwidth sweep reuses the report's compiled artifact: tiling
    // does not depend on bandwidth, so the whole axis is compilation-free.
    match session.handle(&Request::Sweep {
        model: ModelSource::zoo("lstm"),
        axis: SweepAxis::Bandwidth,
        backend: None,
        quant: None,
    }) {
        Response::Sweep(s) => {
            print!("sweep   {} vs {} b/cyc:", s.benchmark, s.baseline);
            for p in &s.points {
                print!(" {}b/cyc={:.2}x", p.value, p.speedup);
            }
            println!();
        }
        other => panic!("unexpected response: {other:?}"),
    }

    // A mixed-precision what-if: the same network forced onto a uniform
    // 8-bit datapath. Its artifact is distinct (precision is part of the
    // model fingerprint), and it can only be slower.
    match session.handle(&Request::Report {
        model: ModelSource::zoo("lstm"),
        batch: 16,
        bandwidth: None,
        arch: ArchPreset::Isca45nm,
        backend: None,
        quant: Some("uniform8".into()),
    }) {
        Response::Report(r) => println!(
            "quant   {} under {}: {} cycles",
            r.benchmark,
            r.quant.as_deref().unwrap_or("paper"),
            r.cycles
        ),
        other => panic!("unexpected response: {other:?}"),
    }

    // Repeating the report is answered straight from the cache.
    let again = session.handle(&report);
    println!("repeat  byte-identical: {}", again.encode().len());

    let stats = session.cache_stats();
    println!(
        "\nartifact cache: {} hits, {} misses ({:.0}% hit rate), {}/{} resident",
        stats.hits,
        stats.misses,
        stats.hit_rate().unwrap_or(0.0) * 100.0,
        stats.len,
        stats.capacity
    );
    assert!(stats.hits >= 2, "sweep and repeat must reuse the artifact");
}
