//! The recurrent-network story: LSTM and RNN language models are
//! bandwidth-bound at batch 1 (every token re-reads every weight) and gain
//! ~20x from batching — the standout series of the paper's Figures 15/16.
//!
//! Run with: `cargo run --release --example recurrent_batching`

use bitfusion::core::arch::ArchConfig;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::sim::BitFusionSim;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = BitFusionSim::new(ArchConfig::isca_45nm());

    for b in [Benchmark::Lstm, Benchmark::Rnn] {
        let model = b.model();
        println!(
            "{} — {:.1}M weights at 4 bits = {:.1} Mb per token without batching",
            b.name(),
            model.total_params() as f64 / 1e6,
            model.weight_bytes() as f64 * 8.0 / 1e6
        );
        println!(
            "  {:>6} {:>14} {:>12} {:>10} {:>8}",
            "batch", "cycles/token", "tokens/sec", "bound", "speedup"
        );
        let mut base = 0.0f64;
        for batch in [1u64, 4, 16, 64, 256] {
            let r = sim.run(&model, batch)?;
            let per_token = r.total_cycles() as f64 / batch as f64;
            if batch == 1 {
                base = per_token;
            }
            let bound = if r.layers.iter().all(|l| l.is_bandwidth_bound()) {
                "memory"
            } else if r.layers.iter().any(|l| l.is_bandwidth_bound()) {
                "mixed"
            } else {
                "compute"
            };
            println!(
                "  {:>6} {:>14.0} {:>12.0} {:>10} {:>7.2}x",
                batch,
                per_token,
                sim.arch().freq_mhz as f64 * 1e6 / per_token,
                bound,
                base / per_token
            );
        }
        println!();
    }
    println!(
        "batching shares each weight fetch across the batch; once the arithmetic\n\
         (not the memory) limits throughput, further batching stops helping —\n\
         exactly the saturation Figure 16 shows beyond batch 64."
    );
    Ok(())
}
