//! Quickstart: define a small quantized network, compile it to Fusion-ISA,
//! and simulate it on the paper's 45 nm Bit Fusion configuration.
//!
//! Run with: `cargo run --example quickstart`

use bitfusion::compiler::compile;
use bitfusion::core::arch::ArchConfig;
use bitfusion::core::bitwidth::PairPrecision;
use bitfusion::dnn::layer::{Conv2d, Dense, Layer};
use bitfusion::dnn::model::Model;
use bitfusion::isa::asm::format_block;
use bitfusion::sim::BitFusionSim;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small ternary convnet: one convolution plus a classifier head.
    let ternary = PairPrecision::from_bits(2, 2)?;
    let eight_bit = PairPrecision::from_bits(8, 8)?;
    let model = Model::new(
        "quickstart-net",
        vec![
            (
                "conv1",
                Layer::Conv2d(Conv2d {
                    in_channels: 3,
                    out_channels: 32,
                    kernel: (3, 3),
                    stride: (1, 1),
                    padding: (1, 1),
                    input_hw: (32, 32),
                    groups: 1,
                    precision: ternary,
                }),
            ),
            (
                "fc",
                Layer::Dense(Dense {
                    in_features: 32 * 32 * 32,
                    out_features: 10,
                    precision: eight_bit,
                }),
            ),
        ],
    );
    println!("{model}");

    // The accelerator: the paper's default 512-Fusion-Unit, 45 nm design.
    let arch = ArchConfig::isca_45nm();
    println!("architecture: {arch}");
    println!(
        "peak at ternary: {:.0} GMAC/s; at 8-bit: {:.0} GMAC/s",
        arch.peak_gmacs_per_s(ternary),
        arch.peak_gmacs_per_s(eight_bit)
    );
    println!();

    // Compile: loop tiling + ordering + layer fusion, one block per layer.
    let plan = compile(&model, &arch, 16)?;
    println!(
        "compiled {} blocks, {} static instructions",
        plan.layers.len(),
        plan.static_instructions()
    );
    println!();
    println!("the convolution layer's Fusion-ISA block:");
    println!("{}", format_block(&plan.layers[0].block));

    // Simulate.
    let sim = BitFusionSim::new(arch);
    let report = sim.run_plan(&plan);
    println!("{report}");
    println!(
        "energy per input: {} ({} uJ total for the batch)",
        report.energy_per_input(),
        report.total_energy().total_uj()
    );
    Ok(())
}
