//! Functional quantized LSTM: run a token sequence through the fused
//! BitBrick datapath (systolic gate GEMMs + LUT nonlinearities) and verify
//! it is bit-exact against plain integer arithmetic, then time the full
//! PTB LSTM benchmark on the simulator.
//!
//! Run with: `cargo run --release --example quantized_lstm`

use bitfusion::core::arch::ArchConfig;
use bitfusion::core::bitwidth::PairPrecision;
use bitfusion::core::recurrent::{LstmState, QuantLstmCell};
use bitfusion::core::systolic::{IntMatrix, SystolicArray};
use bitfusion::core::util::SplitMix64;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::sim::BitFusionSim;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small 4-bit LSTM cell with random (seeded) weights.
    let pair = PairPrecision::from_bits(4, 4)?;
    let (input_size, hidden) = (16usize, 12usize);
    let mut rng = SplitMix64::new(0x5EED);
    let weights = IntMatrix::from_fn(4 * hidden, input_size + hidden, |_, _| {
        rng.range_i32(-5, 7)
    });
    let cell = QuantLstmCell::new(input_size, hidden, pair, weights, 8)?;
    let array = SystolicArray::new(4, 4, pair)?;

    println!("stepping 20 tokens through the fused datapath vs integer reference:");
    let mut fused = LstmState::zeros(hidden);
    let mut reference = LstmState::zeros(hidden);
    for t in 0..20 {
        let x: Vec<i32> = (0..input_size).map(|_| rng.range_i32(0, 15)).collect();
        fused = cell.step_fused(&array, &x, &fused)?;
        reference = cell.step_reference(&x, &reference)?;
        assert_eq!(fused, reference, "divergence at token {t}");
        if t % 5 == 4 {
            println!(
                "  token {:>2}: h[0..6] = {:?} (bit-exact with reference)",
                t,
                &fused.h[0..6]
            );
        }
    }
    println!("20/20 tokens bit-exact: the dynamically fused 4-bit multiplies,");
    println!("LUT sigmoids/tanhs and integer state updates match plain arithmetic.\n");

    // Performance view: the full PTB LSTM benchmark (2 x 900 units).
    let sim = BitFusionSim::new(ArchConfig::isca_45nm());
    for batch in [1u64, 16] {
        let report = sim.run(&Benchmark::Lstm.model(), batch)?;
        println!(
            "PTB LSTM at batch {:>2}: {:6.0} cycles/token, {:>8.0} tokens/s, {}",
            batch,
            report.cycles_per_input(),
            sim.arch().freq_mhz as f64 * 1e6 / report.cycles_per_input(),
            report.energy_per_input()
        );
    }
    println!("\n(the batch-16 jump is Figure 16's story: every weight fetch is shared)");
    Ok(())
}
