//! Fusion-ISA playground: hand-write an instruction block with the builder,
//! print its assembly, encode it to the 32-bit binary format, decode it
//! back, and walk its Equation-4 address stream.
//!
//! Run with: `cargo run --example isa_playground`

use bitfusion::core::bitwidth::PairPrecision;
use bitfusion::isa::asm::{format_block, parse_block};
use bitfusion::isa::builder::BlockBuilder;
use bitfusion::isa::encode::{decode_block, encode_block};
use bitfusion::isa::instruction::{AddressSpace, ComputeFn, Scratchpad};
use bitfusion::isa::walker::{summarize, walk, Event};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hand-written tiled matrix-vector block: 4 tiles of 64 ternary
    // weights each, 8 MAC steps per tile (the Figure 12(b) pattern).
    let pair = PairPrecision::from_bits(2, 2)?;
    let mut b = BlockBuilder::new("hand-matvec", pair);
    b.set_base(Scratchpad::Wbuf, 0x4000);
    let tile = b.open_loop(4)?;
    b.gen_addr(tile, AddressSpace::OffChip, Scratchpad::Wbuf, 64)?;
    b.ld_mem(Scratchpad::Wbuf, 2, 64)?;
    b.ld_mem(Scratchpad::Ibuf, 2, 64)?;
    let step = b.open_loop(8)?;
    b.gen_addr(step, AddressSpace::OnChip, Scratchpad::Ibuf, 8)?;
    b.gen_addr(step, AddressSpace::OnChip, Scratchpad::Wbuf, 8)?;
    b.rd_buf(Scratchpad::Ibuf);
    b.rd_buf(Scratchpad::Wbuf);
    b.compute(ComputeFn::Mac);
    b.close_loop();
    b.wr_buf(Scratchpad::Obuf);
    b.close_loop();
    b.st_mem(Scratchpad::Obuf, 8, 4)?;
    let block = b.finish(0)?;

    println!("--- assembly ---");
    let text = format_block(&block);
    println!("{text}");

    println!("--- binary encoding (Table I: 5|6|5|16-bit fields) ---");
    let words = encode_block(&block)?;
    for (i, w) in words.iter().enumerate() {
        println!("  [{i:2}] {w:#010x}  {w:032b}");
    }
    println!("  {} words = {} bytes", words.len(), words.len() * 4);

    // Round trips: binary and text.
    let decoded = decode_block("hand-matvec", &words)?;
    assert_eq!(
        decoded.canonicalize().instructions(),
        block.canonicalize().instructions()
    );
    let reparsed = parse_block(&text)?;
    assert_eq!(reparsed.instructions(), block.instructions());
    println!("\nbinary and text round trips: ok");

    // Execution semantics: the Equation 4 walk.
    println!("\n--- dynamic events (first 12) ---");
    let mut shown = 0;
    walk(&block, &mut |e| {
        if shown < 12 {
            match e {
                Event::DmaLoad { buffer, words, addr, .. } => {
                    println!("  dma-load  {buffer} {words} words @ {addr:#x}")
                }
                Event::DmaStore { buffer, words, addr, .. } => {
                    println!("  dma-store {buffer} {words} words @ {addr:#x}")
                }
                Event::BufRead { buffer, addr } => println!("  rd-buf    {buffer} @ {addr}"),
                Event::BufWrite { buffer, addr } => println!("  wr-buf    {buffer} @ {addr}"),
                Event::Compute { op } => println!("  compute   {op}"),
            }
            shown += 1;
        }
    });

    let s = summarize(&block);
    println!(
        "\nsummary: {} dynamic instructions, {} MAC steps, {} DRAM bits",
        s.dynamic_instructions,
        s.compute_steps(),
        s.dram_bits()
    );
    Ok(())
}
