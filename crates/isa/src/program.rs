//! Compiled segment programs: the block's tile-segment stream as a flat,
//! reusable op sequence.
//!
//! [`crate::walker::for_each_segment`] defines the segment stream by a tree
//! walk: enumerate every DMA-carrying loop, fold DMA-free subtrees
//! analytically, cut a segment per innermost tile iteration. Executed
//! naively, that walk re-decides "does this subtree issue DMA?" on every
//! iteration of every enumerated loop and re-folds the identical compute
//! nest once per segment — work that depends only on the *static* tree, not
//! the iteration.
//!
//! [`SegmentProgram::compile`] hoists all of it to build time, once per
//! block:
//!
//! * each maximal DMA-free run (plain instructions and whole DMA-free
//!   loop nests) folds into one constant per-iteration delta with its
//!   load/store bit totals precomputed;
//! * each DMA-carrying loop becomes a counted repeat op over its compiled
//!   body (or a fused repeat-emit op when the body is a single delta — the
//!   innermost tile loop, which is where the millions of iterations live);
//! * the whole-block totals ([`SegmentProgram::total`]) are folded once, so
//!   consumers that previously merged every segment to recover
//!   [`crate::walker::summarize`] read them for free.
//!
//! [`SegmentProgram::replay`] then streams the exact same segments as the
//! tree walk — the property tests replay every generated block against the
//! retained reference implementation — with O(1) array arithmetic per
//! segment and **zero heap allocations** in steady state (asserted by a
//! counting-allocator test). The accumulator and the visited segments are
//! plain `Copy` structs ([`crate::walker::ComputeCounts`] replaced the old
//! per-segment `BTreeMap`).

use crate::block::{BodyItem, InstructionBlock};
use crate::walker::{fold_instr, fold_items, subtree_has_dma, Segment};

/// A constant per-execution contribution: the folded access counts of one
/// maximal DMA-free run, with its DMA bit totals pre-summed so replay (and
/// the simulation backends) never re-walk `seg.buffers`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Delta {
    seg: Segment,
    load_bits: u64,
    store_bits: u64,
}

impl Delta {
    fn from_segment(seg: Segment) -> Delta {
        Delta {
            seg,
            load_bits: seg.dma_load_bits(),
            store_bits: seg.dma_store_bits(),
        }
    }
}

/// One op of a compiled program. `Repeat` bodies are the op range
/// `[own index + 1, end)`, so the program is a pre-order flattening of the
/// enumerated part of the loop tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Fold `deltas[i]` into the accumulator.
    Delta(u32),
    /// Close the current segment: emit the accumulator if non-empty, then
    /// clear it in place.
    Emit,
    /// Replay the ops up to `end`, `count` times (a DMA-carrying loop).
    Repeat {
        /// Trip count of the source loop.
        count: u32,
        /// One past the last op of the body.
        end: u32,
    },
    /// Fused `Repeat { [Delta, Emit] }`: emit `deltas[i]` itself `count`
    /// times (merging any carried-in prefix into the first emission). This
    /// is the innermost tile loop — the hot path — reduced to a visit per
    /// iteration with no accumulator traffic at all.
    RepeatEmit {
        /// Trip count of the source loop.
        count: u32,
        /// The per-iteration delta.
        delta: u32,
    },
}

/// Replay accumulator: the segment being built plus its running DMA bit
/// totals (so emission hands precomputed sums to the visitor).
#[derive(Debug, Clone, Copy, Default)]
struct Accum {
    seg: Segment,
    load_bits: u64,
    store_bits: u64,
}

impl Accum {
    fn merge(&mut self, delta: &Delta) {
        self.seg.merge(&delta.seg);
        self.load_bits += delta.load_bits;
        self.store_bits += delta.store_bits;
    }

    fn clear(&mut self) {
        self.seg.clear();
        self.load_bits = 0;
        self.store_bits = 0;
    }
}

/// A block's segment stream, compiled once into a flat op sequence (see the
/// module docs). Build with [`SegmentProgram::compile`], stream with
/// [`SegmentProgram::replay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentProgram {
    ops: Vec<Op>,
    deltas: Vec<Delta>,
    total: Segment,
}

impl SegmentProgram {
    /// Compiles a block's loop tree into a segment program. Cost is
    /// O(static block size) — every per-iteration decision of the naive
    /// walk (`subtree_has_dma`, folding DMA-free nests, summing DMA bits)
    /// is made exactly once here.
    pub fn compile(block: &InstructionBlock) -> SegmentProgram {
        let tree = block.loop_tree();
        let mut program = SegmentProgram {
            ops: Vec::new(),
            deltas: Vec::new(),
            total: Segment::default(),
        };
        let mut pending = Segment::default();
        program.compile_items(&tree.body, &mut pending);
        program.flush(&mut pending);
        program.ops.push(Op::Emit);
        fold_items(&tree.body, 1, &mut program.total);
        program
    }

    /// Pushes the pending DMA-free run as a single constant delta.
    fn flush(&mut self, pending: &mut Segment) {
        if !pending.is_empty() {
            let idx = u32::try_from(self.deltas.len()).expect("static block size");
            self.deltas.push(Delta::from_segment(*pending));
            self.ops.push(Op::Delta(idx));
            pending.clear();
        }
    }

    fn compile_items(&mut self, items: &[BodyItem], pending: &mut Segment) {
        for item in items {
            match item {
                BodyItem::Instr(instr) => fold_instr(instr, 1, pending),
                BodyItem::Loop(node) if subtree_has_dma(&node.body) => {
                    self.flush(pending);
                    let at = self.ops.len();
                    self.ops.push(Op::Repeat { count: node.iterations, end: 0 });
                    self.compile_items(&node.body, pending);
                    self.flush(pending);
                    self.ops.push(Op::Emit);
                    let end = u32::try_from(self.ops.len()).expect("static block size");
                    // Fuse the hot shape: a body of exactly [Delta, Emit]
                    // (the innermost tile loop) needs no accumulator.
                    match &self.ops[at + 1..] {
                        [Op::Delta(d), Op::Emit] => {
                            let delta = *d;
                            self.ops.truncate(at);
                            self.ops.push(Op::RepeatEmit {
                                count: node.iterations,
                                delta,
                            });
                        }
                        _ => {
                            self.ops[at] = Op::Repeat {
                                count: node.iterations,
                                end,
                            };
                        }
                    }
                }
                BodyItem::Loop(node) => {
                    // DMA-free subtree: folded a single time, at build.
                    fold_items(&node.body, node.iterations as u64, pending);
                }
            }
        }
    }

    /// The merge of every segment the program emits — equal to
    /// [`crate::walker::summarize`] of the source block (folded once at
    /// build; consumers need not merge the stream to recover it).
    pub fn total(&self) -> &Segment {
        &self.total
    }

    /// Streams the segments in execution order, invoking
    /// `visit(segment, load_bits, store_bits)` per segment with the
    /// segment's DMA load/store bit totals precomputed.
    ///
    /// Steady-state replay performs no heap allocation: the accumulator is
    /// a stack-held `Copy` struct and fused tile loops emit their delta
    /// directly. Recursion depth is bounded by the block's loop depth
    /// (≤ [`crate::block::MAX_LOOP_DEPTH`]).
    pub fn replay(&self, visit: &mut impl FnMut(&Segment, u64, u64)) {
        self.replay_keyed(&mut |seg, load, store, _| visit(seg, load, store));
    }

    /// Like [`SegmentProgram::replay`], but passes a fourth argument: the
    /// delta index when the emitted segment *is* exactly the program's
    /// constant delta [`SegmentProgram::delta`]`(i)` (a steady-state
    /// iteration of a fused tile loop — the overwhelming majority of the
    /// stream), `None` for accumulator-built segments (carried-in prefixes
    /// and complex loop bodies).
    ///
    /// Consumers that derive a per-segment cost from the segment's counts
    /// can compute it once per delta and look it up per emission; the ≥2x
    /// event-backend speedup in the bench trajectory relies on this.
    pub fn replay_keyed(&self, visit: &mut impl FnMut(&Segment, u64, u64, Option<u32>)) {
        let mut acc = Accum::default();
        self.replay_range(0, self.ops.len(), &mut acc, visit);
    }

    fn replay_range(
        &self,
        start: usize,
        end: usize,
        acc: &mut Accum,
        visit: &mut impl FnMut(&Segment, u64, u64, Option<u32>),
    ) {
        let mut pc = start;
        while pc < end {
            match self.ops[pc] {
                Op::Delta(i) => {
                    acc.merge(&self.deltas[i as usize]);
                    pc += 1;
                }
                Op::Emit => {
                    if !acc.seg.is_empty() {
                        visit(&acc.seg, acc.load_bits, acc.store_bits, None);
                        acc.clear();
                    }
                    pc += 1;
                }
                Op::Repeat { count, end: body_end } => {
                    for _ in 0..count {
                        self.replay_range(pc + 1, body_end as usize, acc, visit);
                    }
                    pc = body_end as usize;
                }
                Op::RepeatEmit { count, delta } => {
                    let d = &self.deltas[delta as usize];
                    let mut remaining = count;
                    if !acc.seg.is_empty() {
                        // Carried-in prefix (outer-tile loads, post-body
                        // stores of a preceding sibling) rides the first
                        // iteration's segment.
                        acc.merge(d);
                        visit(&acc.seg, acc.load_bits, acc.store_bits, None);
                        acc.clear();
                        remaining -= 1;
                    }
                    for _ in 0..remaining {
                        visit(&d.seg, d.load_bits, d.store_bits, Some(delta));
                    }
                    pc += 1;
                }
            }
        }
    }

    /// Number of distinct constant deltas in the program. Delta indices
    /// passed to a [`SegmentProgram::replay_keyed`] visitor are `<` this.
    pub fn delta_count(&self) -> usize {
        self.deltas.len()
    }

    /// The `i`-th constant delta as `(segment, load_bits, store_bits)` —
    /// what a keyed replay emits for index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= `[`SegmentProgram::delta_count`].
    pub fn delta(&self, i: usize) -> (&Segment, u64, u64) {
        let d = &self.deltas[i];
        (&d.seg, d.load_bits, d.store_bits)
    }

    /// Number of ops in the compiled program (diagnostics).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no ops (never true: compilation always
    /// appends the trailing emit).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BlockBuilder;
    use crate::instruction::{ComputeFn, Scratchpad};
    use crate::walker::{for_each_segment_reference, summarize, BlockSummary};
    use bitfusion_core::bitwidth::PairPrecision;

    /// 3 tiles × (load 10 weights, 4 MACs, 1 output write), then a store.
    fn tiled_block() -> InstructionBlock {
        let pair = PairPrecision::from_bits(4, 2).unwrap();
        let mut b = BlockBuilder::new("prog-test", pair);
        let _t = b.open_loop(3).unwrap();
        b.ld_mem(Scratchpad::Wbuf, 2, 10).unwrap();
        let _k = b.open_loop(4).unwrap();
        b.rd_buf(Scratchpad::Ibuf);
        b.rd_buf(Scratchpad::Wbuf);
        b.compute(ComputeFn::Mac);
        b.close_loop();
        b.wr_buf(Scratchpad::Obuf);
        b.close_loop();
        b.st_mem(Scratchpad::Obuf, 8, 3).unwrap();
        b.finish(0).unwrap()
    }

    fn replayed(program: &SegmentProgram) -> Vec<(Segment, u64, u64)> {
        let mut out = Vec::new();
        program.replay(&mut |s, l, st| out.push((*s, l, st)));
        out
    }

    #[test]
    fn replay_matches_the_reference_walk() {
        let block = tiled_block();
        let program = SegmentProgram::compile(&block);
        let mut reference = Vec::new();
        for_each_segment_reference(&block, &mut |s| reference.push(*s));
        let got = replayed(&program);
        assert_eq!(got.len(), reference.len());
        for ((seg, load, store), want) in got.iter().zip(&reference) {
            assert_eq!(seg, want);
            assert_eq!(*load, want.dma_load_bits());
            assert_eq!(*store, want.dma_store_bits());
        }
    }

    #[test]
    fn total_equals_summarize() {
        let block = tiled_block();
        let program = SegmentProgram::compile(&block);
        assert_eq!(*program.total(), summarize(&block));
        let mut merged = BlockSummary::default();
        program.replay(&mut |s, _, _| merged.merge(s));
        assert_eq!(merged, *program.total());
    }

    #[test]
    fn innermost_tile_loop_fuses_to_repeat_emit() {
        let block = tiled_block();
        let program = SegmentProgram::compile(&block);
        assert!(
            program
                .ops
                .iter()
                .any(|op| matches!(op, Op::RepeatEmit { count: 3, .. })),
            "tile loop should fuse: {:?}",
            program.ops
        );
    }

    #[test]
    fn keyed_replay_marks_pure_delta_segments() {
        // 3 tile iterations: the first carries the pre-loop prefix (none
        // here, the load is inside the loop)... the tiled block's loop body
        // is [ld, computes, wr], so every iteration is accumulator-built
        // only when a carry-in exists. Verify the contract directly: a
        // keyed segment equals the delta it names, and unkeyed segments
        // are exactly the ones that differ from every pure emission path.
        let block = tiled_block();
        let program = SegmentProgram::compile(&block);
        let mut keyed = 0usize;
        let mut unkeyed = 0usize;
        program.replay_keyed(&mut |seg, load, store, key| match key {
            Some(i) => {
                keyed += 1;
                let (d, dl, ds) = program.delta(i as usize);
                assert_eq!(seg, d);
                assert_eq!((load, store), (dl, ds));
            }
            None => unkeyed += 1,
        });
        // The tile loop fuses; only the final store segment (and no
        // carry-in exists before the loop) is accumulator-built.
        assert_eq!(keyed, 3, "steady-state tile iterations are keyed");
        assert_eq!(unkeyed, 1, "the trailing store segment is not");
    }

    #[test]
    fn dma_free_block_compiles_to_one_delta() {
        let pair = PairPrecision::from_bits(2, 2).unwrap();
        let mut b = BlockBuilder::new("no-dma", pair);
        b.open_loop(5).unwrap();
        b.rd_buf(Scratchpad::Ibuf);
        b.compute(ComputeFn::Mac);
        b.close_loop();
        let block = b.finish(0).unwrap();
        let program = SegmentProgram::compile(&block);
        assert_eq!(program.deltas.len(), 1, "one folded delta");
        let segs = replayed(&program);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].0, summarize(&block));
    }

    #[test]
    fn empty_block_emits_nothing() {
        let pair = PairPrecision::from_bits(8, 8).unwrap();
        let block = BlockBuilder::new("empty", pair).finish(0).unwrap();
        let program = SegmentProgram::compile(&block);
        assert!(!program.is_empty(), "trailing emit is always present");
        assert_eq!(program.len(), 1);
        assert!(replayed(&program).is_empty());
    }

    #[test]
    fn nested_dma_loops_carry_outer_loads_into_first_inner_segment() {
        let pair = PairPrecision::from_bits(4, 2).unwrap();
        let mut b = BlockBuilder::new("nested", pair);
        b.open_loop(2).unwrap();
        b.ld_mem(Scratchpad::Ibuf, 4, 100).unwrap();
        b.open_loop(3).unwrap();
        b.ld_mem(Scratchpad::Wbuf, 2, 10).unwrap();
        b.compute(ComputeFn::Mac);
        b.close_loop();
        b.close_loop();
        let block = b.finish(0).unwrap();
        let segs = replayed(&SegmentProgram::compile(&block));
        assert_eq!(segs.len(), 2 * 3);
        for (i, (seg, load, store)) in segs.iter().enumerate() {
            let expect_ibuf = if i % 3 == 0 { 400 } else { 0 };
            assert_eq!(seg.buffer(Scratchpad::Ibuf).dma_load_bits, expect_ibuf, "{i}");
            assert_eq!(*load, expect_ibuf + 20, "{i}");
            assert_eq!(*store, 0, "{i}");
        }
    }
}
