//! Instruction blocks: validation and loop-tree reconstruction.
//!
//! A block implements one DNN layer (or a fused group of layers): it begins
//! with `setup`, ends with `block-end`, and contains a (possibly non-perfect)
//! loop nest expressed linearly via per-instruction loop levels (see
//! [`crate::instruction`]). [`LoopTree`] reconstructs the nest, which both
//! the event walker and the performance simulator consume.

use std::collections::BTreeMap;
use std::fmt;

use bitfusion_core::bitwidth::{PairPrecision, Precision};

use crate::error::IsaError;
use crate::instruction::{
    AddressSpace, Instruction, LoopId, Scratchpad, TaggedInstruction, MAX_LOOP_ID,
};

/// Maximum loop depth the encoding supports (4-bit level field).
pub const MAX_LOOP_DEPTH: u8 = 15;

/// DRAM base addresses for the three scratchpad streams ("the words after
/// the `setup` instruction define the memory base address" — §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct DramBases {
    /// Base address of the input stream, in elements.
    pub ibuf: u64,
    /// Base address of the weight stream, in elements.
    pub wbuf: u64,
    /// Base address of the output stream, in elements.
    pub obuf: u64,
}

impl DramBases {
    /// Base for a given scratchpad.
    pub const fn base(&self, buffer: Scratchpad) -> u64 {
        match buffer {
            Scratchpad::Ibuf => self.ibuf,
            Scratchpad::Wbuf => self.wbuf,
            Scratchpad::Obuf => self.obuf,
        }
    }

    /// Sets the base for a given scratchpad.
    pub fn set_base(&mut self, buffer: Scratchpad, base: u64) {
        match buffer {
            Scratchpad::Ibuf => self.ibuf = base,
            Scratchpad::Wbuf => self.wbuf = base,
            Scratchpad::Obuf => self.obuf = base,
        }
    }
}

/// A validated Fusion-ISA instruction block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstructionBlock {
    /// Optional human-readable name (the layer it implements).
    pub name: String,
    /// DRAM base addresses.
    pub bases: DramBases,
    instructions: Vec<TaggedInstruction>,
}

impl InstructionBlock {
    /// Builds a block from tagged instructions, validating the Table I
    /// block-structure rules.
    ///
    /// # Errors
    ///
    /// Returns an [`IsaError`] when:
    /// * the block does not start with `setup` or end with `block-end`;
    /// * `setup`/`block-end` appear in the interior;
    /// * a loop id is reused or exceeds [`MAX_LOOP_ID`];
    /// * an instruction's level jumps deeper than the enclosing nest allows
    ///   or exceeds [`MAX_LOOP_DEPTH`];
    /// * a `gen-addr` references an undeclared loop;
    /// * a `loop` has a zero trip count.
    pub fn new(
        name: impl Into<String>,
        bases: DramBases,
        instructions: Vec<TaggedInstruction>,
    ) -> Result<Self, IsaError> {
        let block = InstructionBlock {
            name: name.into(),
            bases,
            instructions,
        };
        block.validate()?;
        Ok(block)
    }

    fn validate(&self) -> Result<(), IsaError> {
        let instrs = &self.instructions;
        if instrs.len() < 2 {
            return Err(IsaError::MalformedBlock("fewer than two instructions"));
        }
        match instrs.first().map(|t| t.instruction) {
            Some(Instruction::Setup { .. }) => {}
            _ => return Err(IsaError::MalformedBlock("block must start with setup")),
        }
        match instrs.last().map(|t| t.instruction) {
            Some(Instruction::BlockEnd { .. }) => {}
            _ => return Err(IsaError::MalformedBlock("block must end with block-end")),
        }
        let mut declared: BTreeMap<LoopId, u32> = BTreeMap::new();
        // Depth tracking: a loop declared at level L has body level L+1.
        let mut depth: u8 = 0;
        for (idx, t) in instrs.iter().enumerate() {
            let interior = idx != 0 && idx != instrs.len() - 1;
            match t.instruction {
                Instruction::Setup { .. } if interior => {
                    return Err(IsaError::MalformedBlock("setup in block interior"));
                }
                Instruction::BlockEnd { .. } if interior => {
                    return Err(IsaError::MalformedBlock("block-end in block interior"));
                }
                Instruction::Loop { id, iterations } => {
                    if id.0 > MAX_LOOP_ID {
                        return Err(IsaError::LoopIdOutOfRange(id.0));
                    }
                    if declared.contains_key(&id) {
                        return Err(IsaError::DuplicateLoop(id.0));
                    }
                    if iterations == 0 {
                        return Err(IsaError::ZeroTripLoop(id.0));
                    }
                    if t.level > depth {
                        return Err(IsaError::LevelJump {
                            index: idx,
                            level: t.level,
                            depth,
                        });
                    }
                    if t.level + 1 > MAX_LOOP_DEPTH {
                        return Err(IsaError::LevelJump {
                            index: idx,
                            level: t.level,
                            depth: MAX_LOOP_DEPTH,
                        });
                    }
                    declared.insert(id, iterations);
                    depth = t.level + 1;
                }
                Instruction::GenAddr { loop_id, .. } => {
                    if !declared.contains_key(&loop_id) {
                        return Err(IsaError::UndeclaredLoop(loop_id.0));
                    }
                }
                _ => {
                    if t.level > depth {
                        return Err(IsaError::LevelJump {
                            index: idx,
                            level: t.level,
                            depth,
                        });
                    }
                    depth = t.level;
                }
            }
        }
        Ok(())
    }

    /// The tagged instruction sequence.
    pub fn instructions(&self) -> &[TaggedInstruction] {
        &self.instructions
    }

    /// Number of instructions (the paper reports 30–86 per layer; §IV-A).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the block has no instructions (never true for a validated
    /// block, which has at least `setup` and `block-end`).
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The precision pair configured by the block's `setup` instruction.
    pub fn setup_pair(&self) -> PairPrecision {
        match self.instructions[0].instruction {
            Instruction::Setup { input, weight } => PairPrecision::new(input, weight),
            _ => unreachable!("validated block starts with setup"),
        }
    }

    /// The successor index named by `block-end`.
    pub fn next_block(&self) -> u16 {
        match self.instructions[self.instructions.len() - 1].instruction {
            Instruction::BlockEnd { next } => next,
            _ => unreachable!("validated block ends with block-end"),
        }
    }

    /// Effective stride table: per (space, buffer, loop), the summed stride
    /// of all matching `gen-addr` instructions (Equation 4 semantics).
    pub fn stride_table(&self) -> BTreeMap<(u8, Scratchpad, LoopId), u64> {
        let mut table = BTreeMap::new();
        for t in &self.instructions {
            if let Instruction::GenAddr {
                loop_id,
                space,
                buffer,
                stride,
            } = t.instruction
            {
                *table.entry((space.code(), buffer, loop_id)).or_insert(0) += stride;
            }
        }
        table
    }

    /// Canonical form for semantic comparison: merges duplicate `gen-addr`
    /// strides and merges runs of identical-target `ld-mem`/`st-mem` word
    /// counts (the binary encoder may split wide values across instructions).
    pub fn canonicalize(&self) -> InstructionBlock {
        let mut out: Vec<TaggedInstruction> = Vec::with_capacity(self.instructions.len());
        for t in &self.instructions {
            match t.instruction {
                Instruction::GenAddr {
                    loop_id,
                    space,
                    buffer,
                    stride,
                } => {
                    // Merge into an earlier gen-addr for the same stream.
                    if let Some(prev) = out.iter_mut().find(|p| {
                        matches!(p.instruction,
                            Instruction::GenAddr { loop_id: l, space: s, buffer: b, .. }
                                if l == loop_id && s == space && b == buffer)
                    }) {
                        if let Instruction::GenAddr { stride: ref mut s, .. } = prev.instruction {
                            *s += stride;
                        }
                        continue;
                    }
                    out.push(TaggedInstruction::new(
                        Instruction::GenAddr {
                            loop_id,
                            space,
                            buffer,
                            stride,
                        },
                        0,
                    ));
                }
                Instruction::LdMem { buffer, bits, words } => {
                    if let Some(prev) = out.last_mut() {
                        if prev.level == t.level {
                            if let Instruction::LdMem {
                                buffer: pb,
                                bits: pbits,
                                words: ref mut pw,
                            } = prev.instruction
                            {
                                if pb == buffer && pbits == bits {
                                    *pw += words;
                                    continue;
                                }
                            }
                        }
                    }
                    out.push(*t);
                }
                Instruction::StMem { buffer, bits, words } => {
                    if let Some(prev) = out.last_mut() {
                        if prev.level == t.level {
                            if let Instruction::StMem {
                                buffer: pb,
                                bits: pbits,
                                words: ref mut pw,
                            } = prev.instruction
                            {
                                if pb == buffer && pbits == bits {
                                    *pw += words;
                                    continue;
                                }
                            }
                        }
                    }
                    out.push(*t);
                }
                _ => out.push(*t),
            }
        }
        InstructionBlock {
            name: self.name.clone(),
            bases: self.bases,
            instructions: out,
        }
    }

    /// Reconstructs the loop tree.
    pub fn loop_tree(&self) -> LoopTree {
        LoopTree::from_block(self)
    }
}

impl fmt::Display for InstructionBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; block \"{}\"", self.name)?;
        writeln!(
            f,
            "; bases ibuf={} wbuf={} obuf={}",
            self.bases.ibuf, self.bases.wbuf, self.bases.obuf
        )?;
        for t in &self.instructions {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

/// An item in a loop body: either a plain instruction or a nested loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BodyItem {
    /// A non-loop instruction.
    Instr(Instruction),
    /// A nested loop.
    Loop(LoopNode),
}

/// A node of the reconstructed loop tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNode {
    /// The loop's identifier.
    pub id: LoopId,
    /// Trip count.
    pub iterations: u32,
    /// Body items in program order.
    pub body: Vec<BodyItem>,
}

/// The loop tree of a block: top-level items plus the block's stride table
/// and configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopTree {
    /// Top-level (block-scope) items, excluding `setup`/`block-end`.
    pub body: Vec<BodyItem>,
    /// The block's precision pair.
    pub pair: PairPrecision,
    /// Effective strides: (space code, buffer, loop) → stride.
    pub strides: BTreeMap<(u8, Scratchpad, LoopId), u64>,
    /// DRAM bases.
    pub bases: DramBases,
}

impl LoopTree {
    /// Builds the tree from a validated block.
    pub fn from_block(block: &InstructionBlock) -> LoopTree {
        // Stack of open bodies; index 0 is the block scope.
        let mut stack: Vec<Vec<BodyItem>> = vec![Vec::new()];
        let mut loops: Vec<(LoopId, u32)> = Vec::new(); // open loop headers
        let interior =
            &block.instructions[1..block.instructions.len() - 1];
        for t in interior {
            // `gen-addr` is declarative; it lives in the stride table only.
            if matches!(t.instruction, Instruction::GenAddr { .. }) {
                continue;
            }
            let target_depth = match t.instruction {
                Instruction::Loop { .. } => t.level as usize,
                _ => t.level as usize,
            };
            // Close loops deeper than the target depth.
            while loops.len() > target_depth {
                let (id, iterations) = loops.pop().expect("stack tracked");
                let body = stack.pop().expect("stack tracked");
                let node = LoopNode {
                    id,
                    iterations,
                    body,
                };
                stack
                    .last_mut()
                    .expect("block scope always open")
                    .push(BodyItem::Loop(node));
            }
            match t.instruction {
                Instruction::Loop { id, iterations } => {
                    loops.push((id, iterations));
                    stack.push(Vec::new());
                }
                instr => stack
                    .last_mut()
                    .expect("block scope always open")
                    .push(BodyItem::Instr(instr)),
            }
        }
        while let Some((id, iterations)) = loops.pop() {
            let body = stack.pop().expect("stack tracked");
            stack
                .last_mut()
                .expect("block scope")
                .push(BodyItem::Loop(LoopNode {
                    id,
                    iterations,
                    body,
                }));
        }
        LoopTree {
            body: stack.pop().expect("block scope"),
            pair: block.setup_pair(),
            strides: block.stride_table(),
            bases: block.bases,
        }
    }

    /// Total dynamic executions of `compute` instructions in the tree.
    pub fn dynamic_compute_count(&self) -> u64 {
        fn count(items: &[BodyItem]) -> u64 {
            items
                .iter()
                .map(|item| match item {
                    BodyItem::Instr(Instruction::Compute { .. }) => 1,
                    BodyItem::Instr(_) => 0,
                    BodyItem::Loop(node) => node.iterations as u64 * count(&node.body),
                })
                .sum()
        }
        count(&self.body)
    }

    /// Maximum loop depth.
    pub fn depth(&self) -> usize {
        fn depth_of(items: &[BodyItem]) -> usize {
            items
                .iter()
                .map(|item| match item {
                    BodyItem::Instr(_) => 0,
                    BodyItem::Loop(node) => 1 + depth_of(&node.body),
                })
                .max()
                .unwrap_or(0)
        }
        depth_of(&self.body)
    }

    /// Stride for a (space, buffer, loop) stream; zero when undeclared.
    pub fn stride(&self, space: AddressSpace, buffer: Scratchpad, id: LoopId) -> u64 {
        self.strides
            .get(&(space.code(), buffer, id))
            .copied()
            .unwrap_or(0)
    }
}

/// A compiled program: a sequence of blocks executed in order (each block's
/// `block-end.next` names its successor; the compiler emits them in chain
/// order).
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The blocks in execution order.
    pub blocks: Vec<InstructionBlock>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program { blocks: Vec::new() }
    }

    /// Appends a block, fixing up its `block-end.next` chain index.
    pub fn push(&mut self, block: InstructionBlock) {
        self.blocks.push(block);
    }

    /// Total static instruction count.
    pub fn static_instructions(&self) -> usize {
        self.blocks.iter().map(InstructionBlock::len).sum()
    }
}

/// Convenience constructor for a `Precision` used across the ISA tests.
#[doc(hidden)]
pub fn test_pair() -> (Precision, Precision) {
    use bitfusion_core::bitwidth::BitWidth;
    (
        Precision::unsigned(BitWidth::B4),
        Precision::signed(BitWidth::B2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::ComputeFn;

    fn setup() -> TaggedInstruction {
        let (input, weight) = test_pair();
        TaggedInstruction::new(Instruction::Setup { input, weight }, 0)
    }

    fn block_end() -> TaggedInstruction {
        TaggedInstruction::new(Instruction::BlockEnd { next: 0 }, 0)
    }

    fn tag(i: Instruction, level: u8) -> TaggedInstruction {
        TaggedInstruction::new(i, level)
    }

    #[test]
    fn minimal_block_validates() {
        let b = InstructionBlock::new("min", DramBases::default(), vec![setup(), block_end()])
            .unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.next_block(), 0);
        assert!(!b.is_empty());
    }

    #[test]
    fn missing_setup_rejected() {
        let r = InstructionBlock::new("bad", DramBases::default(), vec![block_end()]);
        assert!(r.is_err());
        let r = InstructionBlock::new(
            "bad",
            DramBases::default(),
            vec![tag(Instruction::Compute { op: ComputeFn::Mac }, 0), block_end()],
        );
        assert!(r.is_err());
    }

    #[test]
    fn duplicate_loop_rejected() {
        let instrs = vec![
            setup(),
            tag(Instruction::Loop { id: LoopId(0), iterations: 4 }, 0),
            tag(Instruction::Loop { id: LoopId(0), iterations: 4 }, 1),
            block_end(),
        ];
        assert!(matches!(
            InstructionBlock::new("dup", DramBases::default(), instrs),
            Err(IsaError::DuplicateLoop(0))
        ));
    }

    #[test]
    fn zero_trip_rejected() {
        let instrs = vec![
            setup(),
            tag(Instruction::Loop { id: LoopId(0), iterations: 0 }, 0),
            block_end(),
        ];
        assert!(matches!(
            InstructionBlock::new("z", DramBases::default(), instrs),
            Err(IsaError::ZeroTripLoop(0))
        ));
    }

    #[test]
    fn level_jump_rejected() {
        let instrs = vec![
            setup(),
            // Level 2 with no enclosing loop.
            tag(Instruction::Compute { op: ComputeFn::Mac }, 2),
            block_end(),
        ];
        assert!(matches!(
            InstructionBlock::new("jump", DramBases::default(), instrs),
            Err(IsaError::LevelJump { .. })
        ));
    }

    #[test]
    fn undeclared_gen_addr_rejected() {
        let instrs = vec![
            setup(),
            tag(
                Instruction::GenAddr {
                    loop_id: LoopId(5),
                    space: AddressSpace::OffChip,
                    buffer: Scratchpad::Ibuf,
                    stride: 4,
                },
                0,
            ),
            block_end(),
        ];
        assert!(matches!(
            InstructionBlock::new("ga", DramBases::default(), instrs),
            Err(IsaError::UndeclaredLoop(5))
        ));
    }

    /// The Figure 12(b) pattern: tiled FC layer with post-body stores.
    fn figure_12b() -> InstructionBlock {
        let (input, weight) = test_pair();
        let instrs = vec![
            tag(Instruction::Setup { input, weight }, 0),
            // loop tic (outermost)
            tag(Instruction::Loop { id: LoopId(0), iterations: 8 }, 0),
            tag(Instruction::LdMem { buffer: Scratchpad::Ibuf, bits: 4, words: 512 }, 1),
            tag(Instruction::LdMem { buffer: Scratchpad::Wbuf, bits: 2, words: 2048 }, 1),
            // loop toc
            tag(Instruction::Loop { id: LoopId(1), iterations: 4 }, 1),
            tag(Instruction::LdMem { buffer: Scratchpad::Obuf, bits: 8, words: 128 }, 2),
            // loop oc
            tag(Instruction::Loop { id: LoopId(2), iterations: 128 }, 2),
            tag(Instruction::RdBuf { buffer: Scratchpad::Obuf }, 3),
            // loop ic
            tag(Instruction::Loop { id: LoopId(3), iterations: 512 }, 3),
            tag(Instruction::RdBuf { buffer: Scratchpad::Ibuf }, 4),
            tag(Instruction::RdBuf { buffer: Scratchpad::Wbuf }, 4),
            tag(Instruction::Compute { op: ComputeFn::Mac }, 4),
            // post-body of oc loop: write the finished output element.
            tag(Instruction::WrBuf { buffer: Scratchpad::Obuf }, 3),
            // post-body of toc loop: store the output tile.
            tag(Instruction::StMem { buffer: Scratchpad::Obuf, bits: 8, words: 128 }, 2),
            tag(Instruction::GenAddr {
                loop_id: LoopId(3),
                space: AddressSpace::OffChip,
                buffer: Scratchpad::Ibuf,
                stride: 1,
            }, 0),
            tag(Instruction::BlockEnd { next: 1 }, 0),
        ];
        InstructionBlock::new("fc-tiled", DramBases::default(), instrs).unwrap()
    }

    #[test]
    fn figure_12b_loop_tree_shape() {
        let tree = figure_12b().loop_tree();
        assert_eq!(tree.depth(), 4);
        // Top level holds exactly the tic loop.
        assert_eq!(tree.body.len(), 1);
        let BodyItem::Loop(tic) = &tree.body[0] else {
            panic!("expected loop at top level");
        };
        assert_eq!(tic.id, LoopId(0));
        // tic body: 2 ld-mem + toc loop.
        assert_eq!(tic.body.len(), 3);
        let BodyItem::Loop(toc) = &tic.body[2] else {
            panic!("expected toc loop");
        };
        // toc body: ld-mem OBUF, oc loop, st-mem OBUF (post-body).
        assert_eq!(toc.body.len(), 3);
        assert!(matches!(toc.body[2], BodyItem::Instr(Instruction::StMem { .. })));
        let BodyItem::Loop(oc) = &toc.body[1] else {
            panic!("expected oc loop");
        };
        // oc body: rd-buf OBUF, ic loop, wr-buf OBUF (post-body).
        assert_eq!(oc.body.len(), 3);
        assert!(matches!(oc.body[2], BodyItem::Instr(Instruction::WrBuf { .. })));
    }

    #[test]
    fn dynamic_compute_count_multiplies_trips() {
        let tree = figure_12b().loop_tree();
        // compute executes 8 * 4 * 128 * 512 times.
        assert_eq!(tree.dynamic_compute_count(), 8 * 4 * 128 * 512);
    }

    #[test]
    fn stride_table_sums_duplicates() {
        let (input, weight) = test_pair();
        let ga = |stride| {
            tag(
                Instruction::GenAddr {
                    loop_id: LoopId(0),
                    space: AddressSpace::OffChip,
                    buffer: Scratchpad::Wbuf,
                    stride,
                },
                0,
            )
        };
        let instrs = vec![
            tag(Instruction::Setup { input, weight }, 0),
            tag(Instruction::Loop { id: LoopId(0), iterations: 2 }, 0),
            ga(100),
            ga(65536),
            tag(Instruction::BlockEnd { next: 0 }, 0),
        ];
        let b = InstructionBlock::new("strides", DramBases::default(), instrs).unwrap();
        let tree = b.loop_tree();
        assert_eq!(
            tree.stride(AddressSpace::OffChip, Scratchpad::Wbuf, LoopId(0)),
            65636
        );
        // Canonical form merges the two gen-addrs.
        let canon = b.canonicalize();
        let gen_addrs = canon
            .instructions()
            .iter()
            .filter(|t| matches!(t.instruction, Instruction::GenAddr { .. }))
            .count();
        assert_eq!(gen_addrs, 1);
    }

    #[test]
    fn canonicalize_merges_split_dmas() {
        let (input, weight) = test_pair();
        let ld = |words| {
            tag(
                Instruction::LdMem {
                    buffer: Scratchpad::Ibuf,
                    bits: 4,
                    words,
                },
                1,
            )
        };
        let instrs = vec![
            tag(Instruction::Setup { input, weight }, 0),
            tag(Instruction::Loop { id: LoopId(0), iterations: 2 }, 0),
            ld(65535),
            ld(1),
            tag(Instruction::BlockEnd { next: 0 }, 0),
        ];
        let b = InstructionBlock::new("split", DramBases::default(), instrs).unwrap();
        let canon = b.canonicalize();
        let lds: Vec<u64> = canon
            .instructions()
            .iter()
            .filter_map(|t| match t.instruction {
                Instruction::LdMem { words, .. } => Some(words),
                _ => None,
            })
            .collect();
        assert_eq!(lds, vec![65536]);
    }

    #[test]
    fn setup_pair_reflects_setup() {
        let b = figure_12b();
        let pair = b.setup_pair();
        assert_eq!(pair.input.bits(), 4);
        assert_eq!(pair.weight.bits(), 2);
    }

    #[test]
    fn display_includes_indentation() {
        let text = figure_12b().to_string();
        assert!(text.contains("\n    loop l2"));
        assert!(text.contains("        compute mac"));
    }
}
