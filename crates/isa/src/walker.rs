//! Execution semantics of instruction blocks: the event walker, the
//! analytic summarizer, and the segment iterator.
//!
//! The *walker* executes a block's loop nest instruction by instruction,
//! computing every address with Equation 4
//! (`address = base + Σ loop_iterator[id] × stride[id]`) and handing each
//! dynamic memory/compute operation to a visitor. It is exact and is used by
//! functional tests and small-scale inspection.
//!
//! The *summarizer* computes the same aggregate counts (DMA bits, buffer
//! accesses, compute steps) analytically by folding the loop tree — O(static
//! block size) instead of O(dynamic instruction count) — and is what the
//! analytic performance model uses for full networks.
//!
//! The *segment iterator* ([`segments`]/[`for_each_segment`]) sits between
//! the two: it cuts the dynamic instruction stream at the iteration
//! boundaries of the DMA-issuing tile loops, yielding one [`Segment`] per
//! tile iteration with that slice's DMA bits, buffer accesses, and compute
//! steps (the interior compute nest is folded analytically). Concatenating
//! all segments reproduces [`summarize`] exactly; the trace-driven timing
//! backend consumes the segment stream to model double-buffered DMA/compute
//! overlap without enumerating inner-loop iterations.

use crate::block::{BodyItem, InstructionBlock, LoopNode, LoopTree};
use crate::instruction::{
    AddressSpace, ComputeFn, Instruction, LoopId, Scratchpad, MAX_LOOP_ID,
};
use crate::program::SegmentProgram;

/// A dynamic operation produced by walking a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// DRAM → scratchpad DMA.
    DmaLoad {
        /// Destination scratchpad.
        buffer: Scratchpad,
        /// Element bitwidth.
        bits: u32,
        /// Element count.
        words: u64,
        /// DRAM address (elements) from Equation 4.
        addr: u64,
    },
    /// Scratchpad → DRAM DMA.
    DmaStore {
        /// Source scratchpad.
        buffer: Scratchpad,
        /// Element bitwidth.
        bits: u32,
        /// Element count.
        words: u64,
        /// DRAM address (elements) from Equation 4.
        addr: u64,
    },
    /// Scratchpad → datapath vector read.
    BufRead {
        /// Source scratchpad.
        buffer: Scratchpad,
        /// On-chip address (elements) from Equation 4.
        addr: u64,
    },
    /// Datapath → scratchpad vector write.
    BufWrite {
        /// Destination scratchpad.
        buffer: Scratchpad,
        /// On-chip address (elements) from Equation 4.
        addr: u64,
    },
    /// One dynamic compute step.
    Compute {
        /// The operation.
        op: ComputeFn,
    },
}

/// Walks every dynamic instruction of `block`, invoking `visit` per event.
///
/// Addresses follow Equation 4: for each (space, buffer) stream, the address
/// is the stream's base plus the sum over declared strides of
/// `loop_iterator × stride`. DMA events use the off-chip stream; buffer
/// events use the on-chip stream.
pub fn walk(block: &InstructionBlock, visit: &mut impl FnMut(Event)) {
    let tree = block.loop_tree();
    let strides = StrideIndex::new(&tree);
    let mut iters = [0u64; (MAX_LOOP_ID as usize) + 1];
    walk_items(&tree, &strides, &tree.body, &mut iters, visit);
}

/// Strides pre-indexed per (space, buffer) stream, so per-event address
/// computation touches only that stream's declared strides instead of
/// scanning the whole `gen-addr` table (built once per [`walk`]).
struct StrideIndex {
    /// `streams[space][buffer.code()]` → `(loop index, stride)` pairs.
    streams: [[Vec<(usize, u64)>; 3]; 2],
}

impl StrideIndex {
    fn new(tree: &LoopTree) -> Self {
        let mut streams: [[Vec<(usize, u64)>; 3]; 2] = Default::default();
        for (&(sp, buf, id), &stride) in &tree.strides {
            streams[sp as usize][buf.code() as usize].push((id.0 as usize, stride));
        }
        StrideIndex { streams }
    }

    /// Equation 4 for one stream: base + Σ loop_iterator × stride. Inactive
    /// loops hold iterator 0, contributing nothing — identical to skipping
    /// them.
    fn address(
        &self,
        tree: &LoopTree,
        iters: &[u64; (MAX_LOOP_ID as usize) + 1],
        space: AddressSpace,
        buffer: Scratchpad,
    ) -> u64 {
        let base = match space {
            AddressSpace::OffChip => tree.bases.base(buffer),
            AddressSpace::OnChip => 0,
        };
        self.streams[space.code() as usize][buffer.code() as usize]
            .iter()
            .fold(base, |addr, &(id, stride)| addr + iters[id] * stride)
    }
}

fn walk_items(
    tree: &LoopTree,
    strides: &StrideIndex,
    items: &[BodyItem],
    iters: &mut [u64; (MAX_LOOP_ID as usize) + 1],
    visit: &mut impl FnMut(Event),
) {
    for item in items {
        match item {
            BodyItem::Instr(instr) => match *instr {
                Instruction::LdMem { buffer, bits, words } => visit(Event::DmaLoad {
                    buffer,
                    bits,
                    words,
                    addr: strides.address(tree, iters, AddressSpace::OffChip, buffer),
                }),
                Instruction::StMem { buffer, bits, words } => visit(Event::DmaStore {
                    buffer,
                    bits,
                    words,
                    addr: strides.address(tree, iters, AddressSpace::OffChip, buffer),
                }),
                Instruction::RdBuf { buffer } => visit(Event::BufRead {
                    buffer,
                    addr: strides.address(tree, iters, AddressSpace::OnChip, buffer),
                }),
                Instruction::WrBuf { buffer } => visit(Event::BufWrite {
                    buffer,
                    addr: strides.address(tree, iters, AddressSpace::OnChip, buffer),
                }),
                Instruction::Compute { op } => visit(Event::Compute { op }),
                _ => {}
            },
            BodyItem::Loop(node) => {
                for i in 0..node.iterations as u64 {
                    iters[node.id.0 as usize] = i;
                    walk_items(tree, strides, &node.body, iters, visit);
                }
                iters[node.id.0 as usize] = 0;
            }
        }
    }
}

/// Per-scratchpad aggregate access counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferCounts {
    /// `rd-buf` executions.
    pub reads: u64,
    /// `wr-buf` executions.
    pub writes: u64,
    /// Bits loaded from DRAM into this scratchpad.
    pub dma_load_bits: u64,
    /// Bits stored from this scratchpad to DRAM.
    pub dma_store_bits: u64,
}

/// Dynamic execution counts per compute function, held as a fixed array
/// indexed by [`ComputeFn::code`].
///
/// [`ComputeFn`] is a small closed enum, so a flat array makes merging,
/// resetting, and lookups branch-free and allocation-free — this is what
/// lets a [`Segment`] accumulator be reused across millions of tile
/// iterations without touching the heap (the previous `BTreeMap` paid an
/// allocation per distinct function per segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComputeCounts([u64; ComputeFn::COUNT]);

impl ComputeCounts {
    /// Dynamic executions of one compute function.
    pub fn get(&self, op: ComputeFn) -> u64 {
        self.0[op.code() as usize]
    }

    /// Adds `n` executions of `op`.
    pub fn add(&mut self, op: ComputeFn, n: u64) {
        self.0[op.code() as usize] += n;
    }

    /// Total executions across all functions.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Resets every count to zero in place.
    pub fn clear(&mut self) {
        self.0 = [0; ComputeFn::COUNT];
    }

    /// Accumulates another count set into this one.
    pub fn merge(&mut self, other: &ComputeCounts) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += *b;
        }
    }

    /// Iterates the functions with a nonzero count, in code order.
    pub fn iter(&self) -> impl Iterator<Item = (ComputeFn, u64)> + '_ {
        self.0
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(code, &n)| (ComputeFn::from_code(code as u8).expect("code < COUNT"), n))
    }
}

/// Analytic execution summary of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockSummary {
    /// Counts per scratchpad, indexed by [`Scratchpad::code`].
    pub buffers: [BufferCounts; 3],
    /// Dynamic executions per compute function.
    pub compute: ComputeCounts,
    /// Total dynamic instructions (all kinds).
    pub dynamic_instructions: u64,
}

impl BlockSummary {
    /// Counts for a scratchpad.
    pub fn buffer(&self, buffer: Scratchpad) -> &BufferCounts {
        &self.buffers[buffer.code() as usize]
    }

    /// Total DRAM traffic in bits (loads + stores).
    pub fn dram_bits(&self) -> u64 {
        self.buffers
            .iter()
            .map(|b| b.dma_load_bits + b.dma_store_bits)
            .sum()
    }

    /// Bits loaded from DRAM across all scratchpads.
    pub fn dma_load_bits(&self) -> u64 {
        self.buffers.iter().map(|b| b.dma_load_bits).sum()
    }

    /// Bits stored to DRAM across all scratchpads.
    pub fn dma_store_bits(&self) -> u64 {
        self.buffers.iter().map(|b| b.dma_store_bits).sum()
    }

    /// Total dynamic `compute` executions across all functions.
    pub fn compute_steps(&self) -> u64 {
        self.compute.total()
    }

    /// Dynamic executions of one compute function.
    pub fn compute_count(&self, op: ComputeFn) -> u64 {
        self.compute.get(op)
    }

    /// Whether the summary records no dynamic instructions.
    pub fn is_empty(&self) -> bool {
        self.dynamic_instructions == 0
    }

    /// Resets every count to zero in place. With the flat [`ComputeCounts`]
    /// representation this is a plain memset: a caller-owned accumulator can
    /// be cleared between segments without dropping or reallocating anything.
    pub fn clear(&mut self) {
        *self = BlockSummary::default();
    }

    /// Accumulates another summary into this one. Merging every [`Segment`]
    /// of a block reproduces the block's [`summarize`] result exactly — the
    /// segmentation invariant the simulation backends rely on.
    pub fn merge(&mut self, other: &BlockSummary) {
        for (a, b) in self.buffers.iter_mut().zip(&other.buffers) {
            a.reads += b.reads;
            a.writes += b.writes;
            a.dma_load_bits += b.dma_load_bits;
            a.dma_store_bits += b.dma_store_bits;
        }
        self.compute.merge(&other.compute);
        self.dynamic_instructions += other.dynamic_instructions;
    }
}

/// Computes the aggregate execution counts of a block analytically (without
/// enumerating loop iterations).
pub fn summarize(block: &InstructionBlock) -> BlockSummary {
    let tree = block.loop_tree();
    let mut summary = BlockSummary::default();
    fold_items(&tree.body, 1, &mut summary);
    summary
}

pub(crate) fn fold_instr(instr: &Instruction, multiplier: u64, summary: &mut BlockSummary) {
    summary.dynamic_instructions += multiplier;
    match *instr {
        Instruction::LdMem { buffer, bits, words } => {
            summary.buffers[buffer.code() as usize].dma_load_bits +=
                multiplier * words * bits as u64;
        }
        Instruction::StMem { buffer, bits, words } => {
            summary.buffers[buffer.code() as usize].dma_store_bits +=
                multiplier * words * bits as u64;
        }
        Instruction::RdBuf { buffer } => {
            summary.buffers[buffer.code() as usize].reads += multiplier;
        }
        Instruction::WrBuf { buffer } => {
            summary.buffers[buffer.code() as usize].writes += multiplier;
        }
        Instruction::Compute { op } => {
            summary.compute.add(op, multiplier);
        }
        _ => {}
    }
}

pub(crate) fn fold_items(items: &[BodyItem], multiplier: u64, summary: &mut BlockSummary) {
    for item in items {
        match item {
            BodyItem::Instr(instr) => fold_instr(instr, multiplier, summary),
            BodyItem::Loop(node) => {
                fold_items(&node.body, multiplier * node.iterations as u64, summary);
            }
        }
    }
}

/// One double-buffering segment of a block's execution: the access counts of
/// the dynamic instruction slice between two tile-iteration boundaries (see
/// [`for_each_segment`]).
pub type Segment = BlockSummary;

pub(crate) fn subtree_has_dma(items: &[BodyItem]) -> bool {
    items.iter().any(|item| match item {
        BodyItem::Instr(instr) => matches!(
            instr,
            Instruction::LdMem { .. } | Instruction::StMem { .. }
        ),
        BodyItem::Loop(node) => subtree_has_dma(&node.body),
    })
}

fn collect_segments_reference(
    items: &[BodyItem],
    cur: &mut Segment,
    visit: &mut impl FnMut(&Segment),
) {
    for item in items {
        match item {
            BodyItem::Instr(instr) => fold_instr(instr, 1, cur),
            BodyItem::Loop(node) if subtree_has_dma(&node.body) => {
                // A DMA-carrying loop is *enumerated*: each iteration closes
                // a segment (tile loads issued at shallower depths were
                // accumulated into `cur` and ride the iteration's first
                // segment; post-body stores ride its last).
                for _ in 0..node.iterations {
                    collect_segments_reference(&node.body, cur, visit);
                    if !cur.is_empty() {
                        visit(cur);
                        *cur = Segment::default();
                    }
                }
            }
            BodyItem::Loop(node) => {
                // DMA-free subtrees (the inner compute nest) fold
                // analytically into the current segment.
                fold_items(&node.body, node.iterations as u64, cur);
            }
        }
    }
}

/// Streams the block's [`Segment`]s in execution order.
///
/// Segmentation rule: every loop whose subtree issues DMA (`ld-mem` /
/// `st-mem`) is enumerated, and each iteration of the *innermost* such loop
/// ends a segment; loops without DMA below them (the `m/n/k` compute nest)
/// are folded analytically into the enclosing segment. Instructions that
/// execute outside any DMA loop land in the segment being built when they
/// run — outer-tile loads prefetch with the first inner segment of their
/// iteration, and a tile loop's post-body `st-mem` drains with its last.
///
/// The stream is produced by compiling the loop tree once into a
/// [`SegmentProgram`] and replaying it:
/// per-segment cost is O(1) array arithmetic (DMA-free subtrees are folded
/// a single time at build, not once per tile iteration), and replay never
/// allocates. Compile the program yourself to amortize the build across
/// replays.
///
/// Invariant: merging every visited segment equals [`summarize`]
/// (see [`BlockSummary::merge`]); the ISA property tests pin this, and pin
/// the stream against [`for_each_segment_reference`].
pub fn for_each_segment(block: &InstructionBlock, visit: &mut impl FnMut(&Segment)) {
    SegmentProgram::compile(block).replay(&mut |seg, _, _| visit(seg));
}

/// The naive per-iteration tree walk [`for_each_segment`] replaced: it
/// re-decides `subtree_has_dma` on every iteration of every enumerated tile
/// loop and re-folds each DMA-free compute nest once per segment.
///
/// Kept as the executable specification of the segmentation rule: the
/// property tests replay every [`SegmentProgram`](crate::program) against
/// it, and the bench trajectory uses it as the cold-path baseline. Not for
/// production use.
#[doc(hidden)]
pub fn for_each_segment_reference(
    block: &InstructionBlock,
    visit: &mut impl FnMut(&Segment),
) {
    let tree = block.loop_tree();
    let mut cur = Segment::default();
    collect_segments_reference(&tree.body, &mut cur, visit);
    if !cur.is_empty() {
        visit(&cur);
    }
}

/// Collects the block's [`Segment`]s into a vector (see
/// [`for_each_segment`]; prefer the streaming form for large blocks).
pub fn segments(block: &InstructionBlock) -> Vec<Segment> {
    let mut out = Vec::new();
    for_each_segment(block, &mut |s| out.push(*s));
    out
}

/// Facts about one innermost DMA-issuing tile loop — the loops whose
/// iterations the performance model double-buffers (see [`dma_loops`]).
///
/// Carries what the consumers actually use (identity and trip counts)
/// instead of a deep clone of the loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaLoopFacts {
    /// The loop's identifier.
    pub id: LoopId,
    /// The loop's own trip count.
    pub iterations: u32,
    /// Product of the enclosing loops' trip counts (how many times this
    /// loop's full iteration space runs).
    pub outer_trips: u64,
}

impl DmaLoopFacts {
    /// Total tile iterations this loop contributes:
    /// `iterations × outer_trips`.
    pub fn total_iterations(&self) -> u64 {
        self.iterations as u64 * self.outer_trips
    }
}

/// Finds the innermost loops that directly issue DMA instructions — the tile
/// loops whose iterations the performance model double-buffers — returning
/// lightweight [`DmaLoopFacts`] rather than cloned subtrees.
pub fn dma_loops(block: &InstructionBlock) -> Vec<DmaLoopFacts> {
    let tree = block.loop_tree();
    let mut found = Vec::new();
    collect_dma_loops(&tree.body, 1, &mut found);
    found
}

fn has_direct_dma(node: &LoopNode) -> bool {
    node.body.iter().any(|item| {
        matches!(
            item,
            BodyItem::Instr(Instruction::LdMem { .. }) | BodyItem::Instr(Instruction::StMem { .. })
        )
    })
}

fn collect_dma_loops(items: &[BodyItem], outer_trips: u64, found: &mut Vec<DmaLoopFacts>) {
    for item in items {
        if let BodyItem::Loop(node) = item {
            // Recurse first: prefer the innermost DMA loop.
            let before = found.len();
            collect_dma_loops(&node.body, outer_trips * node.iterations as u64, found);
            if found.len() == before && has_direct_dma(node) {
                found.push(DmaLoopFacts {
                    id: node.id,
                    iterations: node.iterations,
                    outer_trips,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BlockBuilder;
    use bitfusion_core::bitwidth::PairPrecision;

    /// A tiled block: 3 tiles, each loading 10 weights then computing 4
    /// MACs per tile with a weight-buffer walk.
    fn tiled_block() -> InstructionBlock {
        let pair = PairPrecision::from_bits(4, 2).unwrap();
        let mut b = BlockBuilder::new("walk-test", pair);
        b.set_base(Scratchpad::Wbuf, 1000);
        let t = b.open_loop(3).unwrap();
        b.gen_addr(t, AddressSpace::OffChip, Scratchpad::Wbuf, 10).unwrap();
        b.ld_mem(Scratchpad::Wbuf, 2, 10).unwrap();
        let k = b.open_loop(4).unwrap();
        b.gen_addr(k, AddressSpace::OnChip, Scratchpad::Wbuf, 2).unwrap();
        b.rd_buf(Scratchpad::Ibuf);
        b.rd_buf(Scratchpad::Wbuf);
        b.compute(ComputeFn::Mac);
        b.close_loop();
        b.wr_buf(Scratchpad::Obuf);
        b.close_loop();
        b.st_mem(Scratchpad::Obuf, 8, 3).unwrap();
        b.finish(0).unwrap()
    }

    #[test]
    fn walk_produces_equation_4_addresses() {
        let block = tiled_block();
        let mut dma_addrs = Vec::new();
        let mut wbuf_read_addrs = Vec::new();
        walk(&block, &mut |e| match e {
            Event::DmaLoad { buffer: Scratchpad::Wbuf, addr, .. } => dma_addrs.push(addr),
            Event::BufRead { buffer: Scratchpad::Wbuf, addr } => wbuf_read_addrs.push(addr),
            _ => {}
        });
        // DMA: base 1000 + tile * 10.
        assert_eq!(dma_addrs, vec![1000, 1010, 1020]);
        // On-chip weight walk: k * 2, repeating per tile.
        assert_eq!(wbuf_read_addrs.len(), 12);
        assert_eq!(&wbuf_read_addrs[0..4], &[0, 2, 4, 6]);
        assert_eq!(&wbuf_read_addrs[4..8], &[0, 2, 4, 6]);
    }

    #[test]
    fn summary_matches_brute_force_walk() {
        let block = tiled_block();
        let summary = summarize(&block);
        let mut compute = 0u64;
        let mut wbuf_reads = 0u64;
        let mut load_bits = 0u64;
        let mut store_bits = 0u64;
        let mut events = 0u64;
        walk(&block, &mut |e| {
            events += 1;
            match e {
                Event::Compute { .. } => compute += 1,
                Event::BufRead { buffer: Scratchpad::Wbuf, .. } => wbuf_reads += 1,
                Event::DmaLoad { bits, words, .. } => load_bits += bits as u64 * words,
                Event::DmaStore { bits, words, .. } => store_bits += bits as u64 * words,
                _ => {}
            }
        });
        assert_eq!(summary.compute_steps(), compute);
        assert_eq!(summary.compute_count(ComputeFn::Mac), 12);
        assert_eq!(summary.buffer(Scratchpad::Wbuf).reads, wbuf_reads);
        assert_eq!(
            summary.buffers.iter().map(|b| b.dma_load_bits).sum::<u64>(),
            load_bits
        );
        assert_eq!(
            summary.buffers.iter().map(|b| b.dma_store_bits).sum::<u64>(),
            store_bits
        );
        assert_eq!(summary.dynamic_instructions, events);
        // DRAM totals: 3 tiles x 10 weights x 2 bits + 3 outputs x 8 bits.
        assert_eq!(summary.dram_bits(), 3 * 10 * 2 + 3 * 8);
    }

    #[test]
    fn dma_loops_finds_tile_loop() {
        let block = tiled_block();
        let loops = dma_loops(&block);
        assert_eq!(loops.len(), 1);
        let facts = loops[0];
        assert_eq!(facts.iterations, 3);
        assert_eq!(facts.outer_trips, 1);
        assert_eq!(facts.total_iterations(), 3);
    }

    #[test]
    fn segments_cut_at_tile_iterations() {
        let block = tiled_block();
        let segs = segments(&block);
        // 3 tile iterations plus the trailing top-level st-mem drain.
        assert_eq!(segs.len(), 4);
        for seg in &segs[0..3] {
            assert_eq!(seg.buffer(Scratchpad::Wbuf).dma_load_bits, 10 * 2);
            assert_eq!(seg.compute_count(ComputeFn::Mac), 4);
            assert_eq!(seg.buffer(Scratchpad::Obuf).writes, 1);
        }
        assert_eq!(segs[3].buffer(Scratchpad::Obuf).dma_store_bits, 3 * 8);
        assert_eq!(segs[3].compute_steps(), 0);
    }

    #[test]
    fn segments_merge_back_to_summary() {
        let block = tiled_block();
        let mut merged = BlockSummary::default();
        for_each_segment(&block, &mut |s| merged.merge(s));
        assert_eq!(merged, summarize(&block));
    }

    #[test]
    fn dma_free_block_is_one_segment() {
        let pair = PairPrecision::from_bits(2, 2).unwrap();
        let mut b = BlockBuilder::new("no-dma", pair);
        b.open_loop(5).unwrap();
        b.rd_buf(Scratchpad::Ibuf);
        b.compute(ComputeFn::Mac);
        b.close_loop();
        let block = b.finish(0).unwrap();
        let segs = segments(&block);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0], summarize(&block));
    }

    #[test]
    fn nested_dma_loops_segment_at_the_innermost() {
        // Outer loop loads IBUF, inner loop loads WBUF: segments cut at the
        // inner loop, outer loads riding each outer iteration's first
        // segment.
        let pair = PairPrecision::from_bits(4, 2).unwrap();
        let mut b = BlockBuilder::new("nested", pair);
        b.open_loop(2).unwrap();
        b.ld_mem(Scratchpad::Ibuf, 4, 100).unwrap();
        b.open_loop(3).unwrap();
        b.ld_mem(Scratchpad::Wbuf, 2, 10).unwrap();
        b.compute(ComputeFn::Mac);
        b.close_loop();
        b.close_loop();
        let block = b.finish(0).unwrap();
        let segs = segments(&block);
        assert_eq!(segs.len(), 2 * 3);
        for (i, seg) in segs.iter().enumerate() {
            let expect_ibuf = if i % 3 == 0 { 400 } else { 0 };
            assert_eq!(seg.buffer(Scratchpad::Ibuf).dma_load_bits, expect_ibuf, "{i}");
            assert_eq!(seg.buffer(Scratchpad::Wbuf).dma_load_bits, 20, "{i}");
            assert_eq!(seg.compute_count(ComputeFn::Mac), 1, "{i}");
        }
    }

    #[test]
    fn empty_interior_block_summary_is_zero() {
        let pair = PairPrecision::from_bits(8, 8).unwrap();
        let block = BlockBuilder::new("empty", pair).finish(0).unwrap();
        let s = summarize(&block);
        assert_eq!(s.compute_steps(), 0);
        assert_eq!(s.dram_bits(), 0);
        assert_eq!(s.dynamic_instructions, 0);
    }
}
