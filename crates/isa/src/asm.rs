//! Textual assembly for Fusion-ISA blocks.
//!
//! The format mirrors the paper's Figure 12 listings: one instruction per
//! line, loop nesting shown by two-space indentation, plus `.block`/`.base`
//! directives for metadata. [`format_block`] and [`parse_block`] round-trip.
//!
//! ```text
//! .block fc-tiled
//! .base wbuf 1000
//! setup u4, s2
//! loop l0, 3
//!   gen-addr l0, dram.wbuf, 10
//!   ld-mem wbuf, 2b, 10
//!   loop l1, 4
//!     rd-buf ibuf
//!     rd-buf wbuf
//!     compute mac
//!   wr-buf obuf
//! block-end 0
//! ```

use std::fmt::Write as _;

use bitfusion_core::bitwidth::{BitWidth, Precision, Signedness};

use crate::block::{DramBases, InstructionBlock};
use crate::error::IsaError;
use crate::instruction::{
    AddressSpace, ComputeFn, Instruction, LoopId, Scratchpad, TaggedInstruction,
};

/// Formats a block in the canonical text form.
pub fn format_block(block: &InstructionBlock) -> String {
    let mut out = String::new();
    writeln!(out, ".block {}", block.name).expect("infallible");
    for buffer in Scratchpad::ALL {
        let base = block.bases.base(buffer);
        if base != 0 {
            writeln!(out, ".base {buffer} {base}").expect("infallible");
        }
    }
    for t in block.instructions() {
        for _ in 0..t.level {
            out.push_str("  ");
        }
        writeln!(out, "{}", t.instruction).expect("infallible");
    }
    out
}

fn parse_err(line: usize, reason: impl Into<String>) -> IsaError {
    IsaError::Parse {
        line,
        reason: reason.into(),
    }
}

fn parse_precision(tok: &str, line: usize) -> Result<Precision, IsaError> {
    let (sign, rest) = match tok.split_at_checked(1) {
        Some(("u", rest)) => (Signedness::Unsigned, rest),
        Some(("s", rest)) => (Signedness::Signed, rest),
        _ => return Err(parse_err(line, format!("bad precision `{tok}`"))),
    };
    let bits: u32 = rest
        .parse()
        .map_err(|_| parse_err(line, format!("bad precision bits `{tok}`")))?;
    let width =
        BitWidth::from_bits(bits).map_err(|e| parse_err(line, format!("{e} in `{tok}`")))?;
    Ok(Precision::new(width, sign))
}

fn parse_scratchpad(tok: &str, line: usize) -> Result<Scratchpad, IsaError> {
    match tok {
        "ibuf" => Ok(Scratchpad::Ibuf),
        "wbuf" => Ok(Scratchpad::Wbuf),
        "obuf" => Ok(Scratchpad::Obuf),
        _ => Err(parse_err(line, format!("bad scratchpad `{tok}`"))),
    }
}

fn parse_loop_id(tok: &str, line: usize) -> Result<LoopId, IsaError> {
    let id = tok
        .strip_prefix('l')
        .and_then(|n| n.parse::<u8>().ok())
        .ok_or_else(|| parse_err(line, format!("bad loop id `{tok}`")))?;
    Ok(LoopId(id))
}

fn parse_u64(tok: &str, line: usize) -> Result<u64, IsaError> {
    tok.parse()
        .map_err(|_| parse_err(line, format!("bad number `{tok}`")))
}

fn parse_compute_fn(tok: &str, line: usize) -> Result<ComputeFn, IsaError> {
    ComputeFn::ALL
        .into_iter()
        .find(|op| op.to_string() == tok)
        .ok_or_else(|| parse_err(line, format!("bad compute fn `{tok}`")))
}

/// Parses a block from the canonical text form.
///
/// # Errors
///
/// Returns [`IsaError::Parse`] with a line number for syntax errors, and the
/// structural validation errors of [`InstructionBlock::new`].
pub fn parse_block(text: &str) -> Result<InstructionBlock, IsaError> {
    let mut name = String::from("unnamed");
    let mut bases = DramBases::default();
    let mut instrs: Vec<TaggedInstruction> = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.trim_end();
        let trimmed = line.trim_start();
        if trimmed.is_empty() || trimmed.starts_with(';') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix(".block") {
            name = rest.trim().to_string();
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix(".base") {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() != 2 {
                return Err(parse_err(lineno, ".base expects `<buffer> <addr>`"));
            }
            let buffer = parse_scratchpad(toks[0], lineno)?;
            bases.set_base(buffer, parse_u64(toks[1], lineno)?);
            continue;
        }
        let indent = line.len() - trimmed.len();
        if indent % 2 != 0 {
            return Err(parse_err(lineno, "indentation must be two spaces per level"));
        }
        let level = (indent / 2) as u8;
        let mut toks = trimmed
            .split([' ', ',', '\t'])
            .filter(|t| !t.is_empty());
        let mnemonic = toks.next().expect("non-empty line");
        let args: Vec<&str> = toks.collect();
        let arg = |i: usize| -> Result<&str, IsaError> {
            args.get(i)
                .copied()
                .ok_or_else(|| parse_err(lineno, format!("{mnemonic}: missing operand {i}")))
        };
        let instruction = match mnemonic {
            "setup" => Instruction::Setup {
                input: parse_precision(arg(0)?, lineno)?,
                weight: parse_precision(arg(1)?, lineno)?,
            },
            "loop" => Instruction::Loop {
                id: parse_loop_id(arg(0)?, lineno)?,
                iterations: parse_u64(arg(1)?, lineno)? as u32,
            },
            "gen-addr" => {
                let target = arg(1)?;
                let (space_tok, buf_tok) = target.split_once('.').ok_or_else(|| {
                    parse_err(lineno, format!("bad gen-addr target `{target}`"))
                })?;
                let space = match space_tok {
                    "dram" => AddressSpace::OffChip,
                    "chip" => AddressSpace::OnChip,
                    other => {
                        return Err(parse_err(lineno, format!("bad address space `{other}`")))
                    }
                };
                Instruction::GenAddr {
                    loop_id: parse_loop_id(arg(0)?, lineno)?,
                    space,
                    buffer: parse_scratchpad(buf_tok, lineno)?,
                    stride: parse_u64(arg(2)?, lineno)?,
                }
            }
            "ld-mem" | "st-mem" => {
                let buffer = parse_scratchpad(arg(0)?, lineno)?;
                let bits_tok = arg(1)?;
                let bits = bits_tok
                    .strip_suffix('b')
                    .and_then(|n| n.parse::<u32>().ok())
                    .ok_or_else(|| parse_err(lineno, format!("bad bitwidth `{bits_tok}`")))?;
                let words = parse_u64(arg(2)?, lineno)?;
                if mnemonic == "ld-mem" {
                    Instruction::LdMem { buffer, bits, words }
                } else {
                    Instruction::StMem { buffer, bits, words }
                }
            }
            "rd-buf" => Instruction::RdBuf {
                buffer: parse_scratchpad(arg(0)?, lineno)?,
            },
            "wr-buf" => Instruction::WrBuf {
                buffer: parse_scratchpad(arg(0)?, lineno)?,
            },
            "compute" => Instruction::Compute {
                op: parse_compute_fn(arg(0)?, lineno)?,
            },
            "block-end" => Instruction::BlockEnd {
                next: parse_u64(arg(0)?, lineno)? as u16,
            },
            other => return Err(parse_err(lineno, format!("unknown mnemonic `{other}`"))),
        };
        instrs.push(TaggedInstruction::new(instruction, level));
    }
    InstructionBlock::new(name, bases, instrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BlockBuilder;
    use bitfusion_core::bitwidth::PairPrecision;

    fn sample() -> InstructionBlock {
        let pair = PairPrecision::from_bits(2, 2).unwrap();
        let mut b = BlockBuilder::new("asm-sample", pair);
        b.set_base(Scratchpad::Ibuf, 4096);
        let t = b.open_loop(5).unwrap();
        b.gen_addr(t, AddressSpace::OffChip, Scratchpad::Ibuf, 128).unwrap();
        b.ld_mem(Scratchpad::Ibuf, 2, 128).unwrap();
        let k = b.open_loop(8).unwrap();
        b.gen_addr(k, AddressSpace::OnChip, Scratchpad::Ibuf, 16).unwrap();
        b.rd_buf(Scratchpad::Ibuf);
        b.rd_buf(Scratchpad::Wbuf);
        b.compute(ComputeFn::Mac);
        b.close_loop();
        b.wr_buf(Scratchpad::Obuf);
        b.close_loop();
        b.st_mem(Scratchpad::Obuf, 8, 5).unwrap();
        b.finish(2).unwrap()
    }

    #[test]
    fn round_trip() {
        let block = sample();
        let text = format_block(&block);
        let parsed = parse_block(&text).unwrap();
        assert_eq!(parsed.name, block.name);
        assert_eq!(parsed.bases, block.bases);
        assert_eq!(parsed.instructions(), block.instructions());
    }

    #[test]
    fn format_shows_nesting() {
        let text = format_block(&sample());
        assert!(text.contains("\n  loop l1, 8"));
        assert!(text.contains("\n    compute mac"));
        assert!(text.starts_with(".block asm-sample\n.base ibuf 4096\n"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "; a comment\n\n.block c\nsetup u8, s8\n; interior comment\nblock-end 0\n";
        let block = parse_block(text).unwrap();
        assert_eq!(block.len(), 2);
        assert_eq!(block.name, "c");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = ".block x\nsetup u8, s8\nfrobnicate 1\nblock-end 0\n";
        match parse_block(text) {
            Err(IsaError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn bad_precision_rejected() {
        assert!(parse_block(".block x\nsetup q8, s8\nblock-end 0\n").is_err());
        assert!(parse_block(".block x\nsetup u3, s8\nblock-end 0\n").is_err());
    }

    #[test]
    fn odd_indent_rejected() {
        let text = ".block x\nsetup u8, s8\n compute mac\nblock-end 0\n";
        assert!(matches!(parse_block(text), Err(IsaError::Parse { .. })));
    }

    #[test]
    fn structural_validation_applies() {
        // Parses fine but violates block structure (no setup).
        let text = ".block x\ncompute mac\nblock-end 0\n";
        assert!(matches!(
            parse_block(text),
            Err(IsaError::MalformedBlock(_))
        ));
    }
}
