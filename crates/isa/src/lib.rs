//! # bitfusion-isa
//!
//! The Fusion-ISA: the block-structured hardware/software interface of the
//! Bit Fusion accelerator (§IV and Table I of Sharma et al., ISCA 2018).
//!
//! The ISA has three jobs (§IV): amortize the cost of bit-level fusion by
//! grouping a layer's operations into *instruction blocks* whose fusion
//! configuration is fixed by one `setup`; express DNN layers concisely with
//! `loop`/`gen-addr`/`compute` iterative semantics (blocks of 30–86
//! instructions cover LSTM, CNN, pooling, and fully-connected layers); and
//! decouple on-chip from off-chip memory accesses (`ld-mem`/`st-mem` vs
//! `rd-buf`/`wr-buf`).
//!
//! * [`instruction`] — instruction definitions and the loop-level tagging
//!   scheme;
//! * [`block`] — validated instruction blocks and loop-tree reconstruction;
//! * [`builder`] — ergonomic block construction;
//! * [`encode`] — the 32-bit binary format of Table I
//!   (`opcode | field1 | field2 | immediate`);
//! * [`asm`] — textual assembly in the style of the paper's Figure 12;
//! * [`walker`] — execution semantics: the Equation 4 address walker, the
//!   analytic summarizer, and the tile-segment iterator the simulation
//!   backends consume;
//! * [`program`] — compiled segment programs: a block's segment stream
//!   flattened once into a reusable, allocation-free op sequence (the event
//!   backend's cache-miss fast path).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod asm;
pub mod block;
pub mod builder;
pub mod encode;
pub mod error;
pub mod instruction;
pub mod program;
pub mod walker;

pub use block::{BodyItem, DramBases, InstructionBlock, LoopNode, LoopTree, Program};
pub use builder::BlockBuilder;
pub use error::IsaError;
pub use instruction::{
    AddressSpace, ComputeFn, Instruction, LoopId, Scratchpad, TaggedInstruction,
};
pub use program::SegmentProgram;
pub use walker::{
    dma_loops, for_each_segment, segments, summarize, walk, BlockSummary, BufferCounts,
    ComputeCounts, DmaLoopFacts, Event, Segment,
};
