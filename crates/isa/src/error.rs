//! Error type for the Fusion-ISA crate.

use std::error::Error;
use std::fmt;

/// Errors produced while building, encoding, decoding, or parsing Fusion-ISA
/// blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// Structural rule violation (setup/block-end placement, size).
    MalformedBlock(&'static str),
    /// A loop id exceeds the 6-bit field.
    LoopIdOutOfRange(u8),
    /// The same loop id declared twice in one block.
    DuplicateLoop(u8),
    /// A loop declared with zero iterations.
    ZeroTripLoop(u8),
    /// `gen-addr` references a loop that was not declared.
    UndeclaredLoop(u8),
    /// An instruction's level exceeds the reachable loop depth.
    LevelJump {
        /// Instruction index within the block.
        index: usize,
        /// The offending level tag.
        level: u8,
        /// The maximum level reachable at that point.
        depth: u8,
    },
    /// A field value does not fit its binary encoding.
    FieldOverflow {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: u64,
    },
    /// An unknown opcode or field code during decoding.
    BadEncoding {
        /// Word index in the encoded stream.
        index: usize,
        /// Description of the problem.
        reason: &'static str,
    },
    /// Text assembly parse error.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::MalformedBlock(why) => write!(f, "malformed block: {why}"),
            IsaError::LoopIdOutOfRange(id) => write!(f, "loop id {id} exceeds 6-bit field"),
            IsaError::DuplicateLoop(id) => write!(f, "loop id {id} declared twice"),
            IsaError::ZeroTripLoop(id) => write!(f, "loop id {id} has zero iterations"),
            IsaError::UndeclaredLoop(id) => {
                write!(f, "gen-addr references undeclared loop id {id}")
            }
            IsaError::LevelJump { index, level, depth } => write!(
                f,
                "instruction {index} tagged level {level} but only depth {depth} is open"
            ),
            IsaError::FieldOverflow { field, value } => {
                write!(f, "field {field} value {value} does not fit its encoding")
            }
            IsaError::BadEncoding { index, reason } => {
                write!(f, "bad encoding at word {index}: {reason}")
            }
            IsaError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errors = [
            IsaError::MalformedBlock("x"),
            IsaError::LoopIdOutOfRange(64),
            IsaError::DuplicateLoop(1),
            IsaError::ZeroTripLoop(2),
            IsaError::UndeclaredLoop(3),
            IsaError::LevelJump {
                index: 4,
                level: 5,
                depth: 2,
            },
            IsaError::FieldOverflow {
                field: "stride",
                value: u64::MAX,
            },
            IsaError::BadEncoding {
                index: 0,
                reason: "zero word",
            },
            IsaError::Parse {
                line: 3,
                reason: "what".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<IsaError>();
    }
}
