//! Binary encoding of Fusion-ISA instructions.
//!
//! Instructions are 32-bit words in the Table I format:
//!
//! ```text
//! [31:27] opcode | [26:21] field1 (6 b) | [20:16] field2 (5 b) | [15:0] immediate
//! ```
//!
//! Wide structured fields are split across multiple words whose semantics
//! *sum*:
//!
//! * `gen-addr` strides wider than 16 bits are emitted as several `gen-addr`
//!   words for the same stream with a 2-bit chunk selector in field2; the
//!   contributions add (Equation 4 already sums strides per loop).
//! * `ld-mem`/`st-mem` word counts wider than 16 bits use the same chunk
//!   scheme; consecutive DMAs to the same target concatenate.
//! * `loop` trip counts wider than 16 bits set an extension bit; the
//!   following word carries the high half.
//!
//! The DRAM base addresses travel as six raw words immediately after `setup`
//! (the paper: "the words after the setup instruction define the memory base
//! address").

use bitfusion_core::bitwidth::{BitWidth, Precision, Signedness};

use crate::block::{DramBases, InstructionBlock};
use crate::error::IsaError;
use crate::instruction::{
    AddressSpace, ComputeFn, Instruction, LoopId, Scratchpad, TaggedInstruction,
};

/// Opcode values (5-bit field). Zero is deliberately unused so an all-zero
/// word is never a valid instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Opcode {
    Setup = 1,
    Loop = 2,
    GenAddr = 3,
    LdMem = 4,
    StMem = 5,
    RdBuf = 6,
    WrBuf = 7,
    Compute = 8,
    BlockEnd = 9,
}

impl Opcode {
    fn from_bits(bits: u32) -> Option<Opcode> {
        Some(match bits {
            1 => Opcode::Setup,
            2 => Opcode::Loop,
            3 => Opcode::GenAddr,
            4 => Opcode::LdMem,
            5 => Opcode::StMem,
            6 => Opcode::RdBuf,
            7 => Opcode::WrBuf,
            8 => Opcode::Compute,
            9 => Opcode::BlockEnd,
            _ => return None,
        })
    }
}

fn pack(op: Opcode, f1: u32, f2: u32, imm: u32) -> u32 {
    debug_assert!(f1 < 64 && f2 < 32 && imm < 65536);
    ((op as u32) << 27) | (f1 << 21) | (f2 << 16) | imm
}

fn width_code(w: BitWidth) -> u32 {
    match w {
        BitWidth::B1 => 0,
        BitWidth::B2 => 1,
        BitWidth::B4 => 2,
        BitWidth::B8 => 3,
        BitWidth::B16 => 4,
    }
}

fn width_from_code(code: u32) -> Option<BitWidth> {
    Some(match code {
        0 => BitWidth::B1,
        1 => BitWidth::B2,
        2 => BitWidth::B4,
        3 => BitWidth::B8,
        4 => BitWidth::B16,
        _ => return None,
    })
}

fn precision_code(p: Precision) -> u32 {
    (if p.signedness.is_signed() { 1 << 3 } else { 0 }) | width_code(p.width)
}

fn precision_from_code(code: u32) -> Option<Precision> {
    let signedness = if code & 0b1000 != 0 {
        Signedness::Signed
    } else {
        Signedness::Unsigned
    };
    Some(Precision::new(width_from_code(code & 0b111)?, signedness))
}

/// Memory bitwidth codes used by `ld-mem`/`st-mem` (`mem.bitwidth` of
/// Table I); includes 32-bit for partial-sum spills.
fn mem_bits_code(bits: u32) -> Result<u32, IsaError> {
    Ok(match bits {
        1 => 0,
        2 => 1,
        4 => 2,
        8 => 3,
        16 => 4,
        32 => 5,
        _ => {
            return Err(IsaError::FieldOverflow {
                field: "mem.bitwidth",
                value: bits as u64,
            })
        }
    })
}

fn mem_bits_from_code(code: u32) -> Option<u32> {
    Some(match code {
        0 => 1,
        1 => 2,
        2 => 4,
        3 => 8,
        4 => 16,
        5 => 32,
        _ => return None,
    })
}

const IMM_MASK: u64 = 0xFFFF;

/// Encodes one block to its 32-bit word stream.
///
/// # Errors
///
/// Returns [`IsaError::FieldOverflow`] when a field cannot be represented
/// (loop id > 63, level > 15, trip count > 2^32-1, stride needing more than
/// four 16-bit chunks, etc.).
pub fn encode_block(block: &InstructionBlock) -> Result<Vec<u32>, IsaError> {
    let mut words = Vec::with_capacity(block.len() + 6);
    for (idx, t) in block.instructions().iter().enumerate() {
        let level = t.level as u32;
        if level > 15 {
            return Err(IsaError::FieldOverflow {
                field: "level",
                value: level as u64,
            });
        }
        match t.instruction {
            Instruction::Setup { input, weight } => {
                words.push(pack(
                    Opcode::Setup,
                    precision_code(input),
                    precision_code(weight),
                    0,
                ));
                // Base-address words follow setup (3 bases × 2 words).
                for base in [block.bases.ibuf, block.bases.wbuf, block.bases.obuf] {
                    words.push((base & 0xFFFF_FFFF) as u32);
                    words.push((base >> 32) as u32);
                }
            }
            Instruction::Loop { id, iterations } => {
                if id.0 > 63 {
                    return Err(IsaError::FieldOverflow {
                        field: "loop-id",
                        value: id.0 as u64,
                    });
                }
                let lo = iterations as u64 & IMM_MASK;
                let hi = iterations as u64 >> 16;
                let ext = if hi != 0 { 1u32 << 4 } else { 0 };
                words.push(pack(Opcode::Loop, id.0 as u32, ext | level, lo as u32));
                if hi != 0 {
                    words.push(pack(Opcode::Loop, id.0 as u32, level, hi as u32));
                }
            }
            Instruction::GenAddr {
                loop_id,
                space,
                buffer,
                stride,
            } => {
                // Any u64 stride is representable as at most four 16-bit
                // chunks, so no overflow check is needed.
                let mut emitted = false;
                for chunk in 0..4u32 {
                    let part = (stride >> (16 * chunk)) & IMM_MASK;
                    if part != 0 {
                        let f2 = (space.code() as u32) << 4
                            | (buffer.code() as u32) << 2
                            | chunk;
                        words.push(pack(Opcode::GenAddr, loop_id.0 as u32, f2, part as u32));
                        emitted = true;
                    }
                }
                if !emitted {
                    // Stride zero: emit a single explicit zero-stride word.
                    let f2 = (space.code() as u32) << 4 | (buffer.code() as u32) << 2;
                    words.push(pack(Opcode::GenAddr, loop_id.0 as u32, f2, 0));
                }
            }
            Instruction::LdMem { buffer, bits, words: count }
            | Instruction::StMem { buffer, bits, words: count } => {
                let op = if matches!(t.instruction, Instruction::LdMem { .. }) {
                    Opcode::LdMem
                } else {
                    Opcode::StMem
                };
                if count == 0 {
                    return Err(IsaError::FieldOverflow {
                        field: "num-words",
                        value: 0,
                    });
                }
                if count >= 1 << 32 {
                    return Err(IsaError::FieldOverflow {
                        field: "num-words",
                        value: count,
                    });
                }
                let f1 = (buffer.code() as u32) << 3 | mem_bits_code(bits)?;
                let lo = count & IMM_MASK;
                let hi = count >> 16;
                let ext = if hi != 0 { 1u32 << 4 } else { 0 };
                words.push(pack(op, f1, ext | level, lo as u32));
                if hi != 0 {
                    words.push(pack(op, f1, level, hi as u32));
                }
            }
            Instruction::RdBuf { buffer } => {
                words.push(pack(Opcode::RdBuf, buffer.code() as u32, level, 0));
            }
            Instruction::WrBuf { buffer } => {
                words.push(pack(Opcode::WrBuf, buffer.code() as u32, level, 0));
            }
            Instruction::Compute { op } => {
                words.push(pack(Opcode::Compute, op.code() as u32, level, 0));
            }
            Instruction::BlockEnd { next } => {
                let _ = idx;
                words.push(pack(Opcode::BlockEnd, 0, 0, next as u32));
            }
        }
    }
    Ok(words)
}

/// Decodes a 32-bit word stream back into a block.
///
/// Split instructions (loop extensions, chunked strides, chained DMAs) are
/// reassembled where the format marks them; independent duplicates are left
/// as-is (use [`InstructionBlock::canonicalize`] before semantic comparison).
///
/// # Errors
///
/// Returns [`IsaError::BadEncoding`] for unknown opcodes/field codes or a
/// truncated stream, and the [`InstructionBlock::new`] validation errors for
/// structurally invalid blocks.
pub fn decode_block(name: &str, words: &[u32]) -> Result<InstructionBlock, IsaError> {
    let mut instrs: Vec<TaggedInstruction> = Vec::new();
    let mut bases = DramBases::default();
    let mut i = 0usize;
    while i < words.len() {
        let w = words[i];
        let op = Opcode::from_bits(w >> 27).ok_or(IsaError::BadEncoding {
            index: i,
            reason: "unknown opcode",
        })?;
        let f1 = (w >> 21) & 0x3F;
        let f2 = (w >> 16) & 0x1F;
        let imm = w & 0xFFFF;
        match op {
            Opcode::Setup => {
                let input = precision_from_code(f1).ok_or(IsaError::BadEncoding {
                    index: i,
                    reason: "bad input precision",
                })?;
                let weight = precision_from_code(f2).ok_or(IsaError::BadEncoding {
                    index: i,
                    reason: "bad weight precision",
                })?;
                if i + 6 >= words.len() {
                    return Err(IsaError::BadEncoding {
                        index: i,
                        reason: "truncated base-address words",
                    });
                }
                bases.ibuf = words[i + 1] as u64 | (words[i + 2] as u64) << 32;
                bases.wbuf = words[i + 3] as u64 | (words[i + 4] as u64) << 32;
                bases.obuf = words[i + 5] as u64 | (words[i + 6] as u64) << 32;
                i += 6;
                instrs.push(TaggedInstruction::new(
                    Instruction::Setup { input, weight },
                    0,
                ));
            }
            Opcode::Loop => {
                let level = (f2 & 0xF) as u8;
                let ext = f2 & 0x10 != 0;
                let mut iterations = imm;
                if ext {
                    i += 1;
                    let hi = words.get(i).ok_or(IsaError::BadEncoding {
                        index: i,
                        reason: "truncated loop extension",
                    })?;
                    iterations |= (hi & 0xFFFF) << 16;
                }
                instrs.push(TaggedInstruction::new(
                    Instruction::Loop {
                        id: LoopId(f1 as u8),
                        iterations,
                    },
                    level,
                ));
            }
            Opcode::GenAddr => {
                let space = AddressSpace::from_code(((f2 >> 4) & 1) as u8)
                    .expect("1-bit space code");
                let buffer =
                    Scratchpad::from_code(((f2 >> 2) & 0b11) as u8).ok_or(IsaError::BadEncoding {
                        index: i,
                        reason: "bad scratchpad code",
                    })?;
                let chunk = f2 & 0b11;
                instrs.push(TaggedInstruction::new(
                    Instruction::GenAddr {
                        loop_id: LoopId(f1 as u8),
                        space,
                        buffer,
                        stride: (imm as u64) << (16 * chunk),
                    },
                    0,
                ));
            }
            Opcode::LdMem | Opcode::StMem => {
                let buffer =
                    Scratchpad::from_code(((f1 >> 3) & 0b11) as u8).ok_or(IsaError::BadEncoding {
                        index: i,
                        reason: "bad scratchpad code",
                    })?;
                let bits = mem_bits_from_code(f1 & 0b111).ok_or(IsaError::BadEncoding {
                    index: i,
                    reason: "bad mem.bitwidth code",
                })?;
                let level = (f2 & 0xF) as u8;
                let ext = f2 & 0x10 != 0;
                let mut count = imm as u64;
                if ext {
                    i += 1;
                    let hi = words.get(i).ok_or(IsaError::BadEncoding {
                        index: i,
                        reason: "truncated dma extension",
                    })?;
                    count |= ((hi & 0xFFFF) as u64) << 16;
                }
                let instr = if op == Opcode::LdMem {
                    Instruction::LdMem {
                        buffer,
                        bits,
                        words: count,
                    }
                } else {
                    Instruction::StMem {
                        buffer,
                        bits,
                        words: count,
                    }
                };
                instrs.push(TaggedInstruction::new(instr, level));
            }
            Opcode::RdBuf | Opcode::WrBuf => {
                let buffer =
                    Scratchpad::from_code((f1 & 0b11) as u8).ok_or(IsaError::BadEncoding {
                        index: i,
                        reason: "bad scratchpad code",
                    })?;
                let level = (f2 & 0xF) as u8;
                let instr = if op == Opcode::RdBuf {
                    Instruction::RdBuf { buffer }
                } else {
                    Instruction::WrBuf { buffer }
                };
                instrs.push(TaggedInstruction::new(instr, level));
            }
            Opcode::Compute => {
                let op_fn = ComputeFn::from_code(f1 as u8).ok_or(IsaError::BadEncoding {
                    index: i,
                    reason: "bad fn code",
                })?;
                instrs.push(TaggedInstruction::new(
                    Instruction::Compute { op: op_fn },
                    (f2 & 0xF) as u8,
                ));
            }
            Opcode::BlockEnd => {
                instrs.push(TaggedInstruction::new(
                    Instruction::BlockEnd { next: imm as u16 },
                    0,
                ));
            }
        }
        i += 1;
    }
    InstructionBlock::new(name, bases, instrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BlockBuilder;
    use bitfusion_core::bitwidth::PairPrecision;

    fn sample_block() -> InstructionBlock {
        let pair = PairPrecision::from_bits(4, 2).unwrap();
        let mut b = BlockBuilder::new("sample", pair);
        b.set_base(Scratchpad::Ibuf, 0x1_0000_0000);
        b.set_base(Scratchpad::Wbuf, 0xDEAD_BEEF);
        let tic = b.open_loop(70000).unwrap(); // forces the loop extension
        b.ld_mem(Scratchpad::Ibuf, 4, 100_000).unwrap(); // forces dma chaining
        b.gen_addr(tic, AddressSpace::OffChip, Scratchpad::Ibuf, 0x1_0002)
            .unwrap(); // forces stride chunking
        let ic = b.open_loop(16).unwrap();
        b.gen_addr(ic, AddressSpace::OnChip, Scratchpad::Wbuf, 0).unwrap();
        b.rd_buf(Scratchpad::Ibuf);
        b.rd_buf(Scratchpad::Wbuf);
        b.compute(ComputeFn::Mac);
        b.close_loop();
        b.wr_buf(Scratchpad::Obuf);
        b.close_loop();
        b.st_mem(Scratchpad::Obuf, 8, 64).unwrap();
        b.finish(0).unwrap()
    }

    #[test]
    fn round_trip_preserves_semantics() {
        let block = sample_block();
        let words = encode_block(&block).unwrap();
        let decoded = decode_block("sample", &words).unwrap();
        // The decoded block may split wide fields; canonical forms and all
        // semantic accessors must agree.
        assert_eq!(decoded.canonicalize().instructions(), block.canonicalize().instructions());
        assert_eq!(decoded.bases, block.bases);
        assert_eq!(decoded.setup_pair(), block.setup_pair());
        assert_eq!(decoded.stride_table(), block.stride_table());
        let t1 = block.loop_tree();
        let t2 = decoded.loop_tree();
        assert_eq!(t1.dynamic_compute_count(), t2.dynamic_compute_count());
        assert_eq!(t1.depth(), t2.depth());
    }

    #[test]
    fn opcode_zero_rejected() {
        assert!(matches!(
            decode_block("z", &[0]),
            Err(IsaError::BadEncoding { .. })
        ));
    }

    #[test]
    fn truncated_setup_rejected() {
        let block = sample_block();
        let words = encode_block(&block).unwrap();
        assert!(matches!(
            decode_block("t", &words[..3]),
            Err(IsaError::BadEncoding { .. })
        ));
    }

    #[test]
    fn word_count_reasonable() {
        // The sample block's static encoding stays compact: Table I blocks
        // run 30-86 instructions; the encoded form adds only base words and
        // extension words.
        let block = sample_block();
        let words = encode_block(&block).unwrap();
        assert!(words.len() >= block.len());
        assert!(words.len() <= block.len() + 12);
    }

    #[test]
    fn all_mem_bits_codes_round_trip() {
        for bits in [1u32, 2, 4, 8, 16, 32] {
            let code = mem_bits_code(bits).unwrap();
            assert_eq!(mem_bits_from_code(code), Some(bits));
        }
        assert!(mem_bits_code(12).is_err());
    }

    #[test]
    fn precision_codes_round_trip() {
        use bitfusion_core::bitwidth::{BitWidth, Signedness};
        for w in BitWidth::ALL {
            for s in [Signedness::Signed, Signedness::Unsigned] {
                let p = Precision::new(w, s);
                assert_eq!(precision_from_code(precision_code(p)), Some(p));
            }
        }
    }
}

/// Encodes a whole program: blocks concatenated in chain order, prefixed by
/// a word count per block so the decoder can restore block boundaries. The
/// `block-end.next` chain (§IV-A: "provides the address of the next
/// instruction") is validated on decode.
///
/// # Errors
///
/// Propagates per-block encoding failures.
pub fn encode_program(program: &crate::block::Program) -> Result<Vec<u32>, IsaError> {
    let mut words = vec![program.blocks.len() as u32];
    for block in &program.blocks {
        let body = encode_block(block)?;
        words.push(body.len() as u32);
        words.extend(body);
    }
    Ok(words)
}

/// Decodes a program stream produced by [`encode_program`].
///
/// # Errors
///
/// Returns [`IsaError::BadEncoding`] for truncated streams or broken
/// `block-end` chains, and propagates per-block decode failures.
pub fn decode_program(words: &[u32]) -> Result<crate::block::Program, IsaError> {
    let mut program = crate::block::Program::new();
    let &count = words.first().ok_or(IsaError::BadEncoding {
        index: 0,
        reason: "empty program stream",
    })?;
    let mut pos = 1usize;
    for i in 0..count as usize {
        let len = *words.get(pos).ok_or(IsaError::BadEncoding {
            index: pos,
            reason: "truncated block header",
        })? as usize;
        pos += 1;
        let end = pos + len;
        let body = words.get(pos..end).ok_or(IsaError::BadEncoding {
            index: pos,
            reason: "truncated block body",
        })?;
        let block = decode_block(&format!("block{i}"), body)?;
        // Chain validation: every block but the last must name its
        // successor; the last wraps to 0.
        let expected_next = if i + 1 == count as usize { 0 } else { (i + 1) as u16 };
        if block.next_block() != expected_next {
            return Err(IsaError::BadEncoding {
                index: pos,
                reason: "block-end chain does not match block order",
            });
        }
        program.push(block);
        pos = end;
    }
    Ok(program)
}

#[cfg(test)]
mod program_tests {
    use super::*;
    use crate::builder::BlockBuilder;
    use bitfusion_core::bitwidth::PairPrecision;

    fn two_block_program() -> crate::block::Program {
        let pair = PairPrecision::from_bits(2, 2).unwrap();
        let mut program = crate::block::Program::new();
        let mut b0 = BlockBuilder::new("first", pair);
        b0.ld_mem(crate::instruction::Scratchpad::Wbuf, 2, 64).unwrap();
        program.push(b0.finish(1).unwrap());
        let mut b1 = BlockBuilder::new("second", pair);
        b1.st_mem(crate::instruction::Scratchpad::Obuf, 8, 16).unwrap();
        program.push(b1.finish(0).unwrap());
        program
    }

    #[test]
    fn program_round_trip() {
        let program = two_block_program();
        let words = encode_program(&program).unwrap();
        let decoded = decode_program(&words).unwrap();
        assert_eq!(decoded.blocks.len(), 2);
        for (a, b) in decoded.blocks.iter().zip(&program.blocks) {
            assert_eq!(
                a.canonicalize().instructions(),
                b.canonicalize().instructions()
            );
        }
        assert_eq!(decoded.static_instructions(), program.static_instructions());
    }

    #[test]
    fn broken_chain_rejected() {
        let pair = PairPrecision::from_bits(2, 2).unwrap();
        let mut program = crate::block::Program::new();
        // First block claims its successor is block 5: chain is broken.
        program.push(BlockBuilder::new("a", pair).finish(5).unwrap());
        program.push(BlockBuilder::new("b", pair).finish(0).unwrap());
        let words = encode_program(&program).unwrap();
        assert!(matches!(
            decode_program(&words),
            Err(IsaError::BadEncoding { .. })
        ));
    }

    #[test]
    fn truncated_program_rejected() {
        let words = encode_program(&two_block_program()).unwrap();
        assert!(decode_program(&words[..words.len() - 2]).is_err());
        assert!(decode_program(&[]).is_err());
    }
}
