//! Fusion-ISA instruction definitions (Table I of the paper).
//!
//! The ISA is block-structured: a `setup` instruction opens a block and fixes
//! the fusion configuration for every instruction in it; `block-end` closes
//! the block and names its successor. In between, `loop` instructions declare
//! iterative scopes, `gen-addr` instructions declare the per-loop address
//! strides of Equation 4, `ld-mem`/`st-mem` move data between DRAM and the
//! on-chip scratchpads, `rd-buf`/`wr-buf` move operands between scratchpads
//! and the datapath, and `compute` performs the configured operation.
//!
//! ## Loop levels
//!
//! Table I gives `gen-addr` a *loop-level* field but leaves the nesting of
//! other instructions to the block structure. We concretize this the way an
//! indentation-based language would: every non-loop instruction carries the
//! loop depth it executes at ([`TaggedInstruction::level`]); an instruction
//! tagged shallower than the preceding instruction closes the intervening
//! loops (it sits in the *post-body* section of its level, like the final
//! `st-mem` of Figure 12(b)). This makes the linear instruction stream an
//! unambiguous encoding of a non-perfect loop nest.

use std::fmt;

use bitfusion_core::bitwidth::Precision;

/// On-chip scratchpad buffers (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scratchpad {
    /// Input buffer, shared across array rows.
    Ibuf,
    /// Weight buffer, distributed per Fusion Unit.
    Wbuf,
    /// Output buffer, one collector per column.
    Obuf,
}

impl Scratchpad {
    /// All scratchpads.
    pub const ALL: [Scratchpad; 3] = [Scratchpad::Ibuf, Scratchpad::Wbuf, Scratchpad::Obuf];

    /// Two-bit encoding.
    pub const fn code(self) -> u8 {
        match self {
            Scratchpad::Ibuf => 0,
            Scratchpad::Wbuf => 1,
            Scratchpad::Obuf => 2,
        }
    }

    /// Decodes a two-bit scratchpad code.
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Scratchpad::Ibuf),
            1 => Some(Scratchpad::Wbuf),
            2 => Some(Scratchpad::Obuf),
            _ => None,
        }
    }
}

impl fmt::Display for Scratchpad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scratchpad::Ibuf => write!(f, "ibuf"),
            Scratchpad::Wbuf => write!(f, "wbuf"),
            Scratchpad::Obuf => write!(f, "obuf"),
        }
    }
}

/// Address spaces a `gen-addr` stream can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressSpace {
    /// Off-chip DRAM addresses consumed by `ld-mem`/`st-mem`.
    OffChip,
    /// On-chip scratchpad addresses consumed by `rd-buf`/`wr-buf`.
    OnChip,
}

impl AddressSpace {
    /// One-bit encoding.
    pub const fn code(self) -> u8 {
        match self {
            AddressSpace::OffChip => 0,
            AddressSpace::OnChip => 1,
        }
    }

    /// Decodes the one-bit space code.
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(AddressSpace::OffChip),
            1 => Some(AddressSpace::OnChip),
            _ => None,
        }
    }
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressSpace::OffChip => write!(f, "dram"),
            AddressSpace::OnChip => write!(f, "chip"),
        }
    }
}

/// Operation selected by a `compute` instruction (the `fn` field of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComputeFn {
    /// Multiply-accumulate on the systolic array.
    Mac,
    /// Max reduction (pooling unit).
    Max,
    /// Average reduction (pooling unit).
    Avg,
    /// Elementwise addition (residual connections, LSTM cell state).
    Add,
    /// Elementwise multiplication (LSTM gates).
    Mul,
    /// Rectified linear activation.
    Relu,
    /// Logistic sigmoid (lookup-table activation unit).
    Sigmoid,
    /// Hyperbolic tangent (lookup-table activation unit).
    Tanh,
}

impl ComputeFn {
    /// Number of compute functions (the `fn` field codes are `0..COUNT`).
    pub const COUNT: usize = 8;

    /// All compute functions.
    pub const ALL: [ComputeFn; Self::COUNT] = [
        ComputeFn::Mac,
        ComputeFn::Max,
        ComputeFn::Avg,
        ComputeFn::Add,
        ComputeFn::Mul,
        ComputeFn::Relu,
        ComputeFn::Sigmoid,
        ComputeFn::Tanh,
    ];

    /// Encoding of the `fn` field.
    pub const fn code(self) -> u8 {
        match self {
            ComputeFn::Mac => 0,
            ComputeFn::Max => 1,
            ComputeFn::Avg => 2,
            ComputeFn::Add => 3,
            ComputeFn::Mul => 4,
            ComputeFn::Relu => 5,
            ComputeFn::Sigmoid => 6,
            ComputeFn::Tanh => 7,
        }
    }

    /// Decodes the `fn` field.
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(ComputeFn::Mac),
            1 => Some(ComputeFn::Max),
            2 => Some(ComputeFn::Avg),
            3 => Some(ComputeFn::Add),
            4 => Some(ComputeFn::Mul),
            5 => Some(ComputeFn::Relu),
            6 => Some(ComputeFn::Sigmoid),
            7 => Some(ComputeFn::Tanh),
            _ => None,
        }
    }

    /// Whether the function runs on the systolic array (as opposed to the
    /// per-column pooling/activation units).
    pub const fn uses_systolic_array(self) -> bool {
        matches!(self, ComputeFn::Mac)
    }
}

impl fmt::Display for ComputeFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComputeFn::Mac => "mac",
            ComputeFn::Max => "max",
            ComputeFn::Avg => "avg",
            ComputeFn::Add => "add",
            ComputeFn::Mul => "mul",
            ComputeFn::Relu => "relu",
            ComputeFn::Sigmoid => "sigmoid",
            ComputeFn::Tanh => "tanh",
        };
        write!(f, "{s}")
    }
}

/// Identifier of a `loop` instruction within its block (the *Loop
/// Identifier* field of Table I; 6 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u8);

/// Maximum loop identifier (6-bit field).
pub const MAX_LOOP_ID: u8 = 63;

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A Fusion-ISA instruction (structured form).
///
/// Wide fields (`stride`, `words`) hold full-range values here; the binary
/// encoder splits values that exceed the 16-bit immediate across multiple
/// instructions whose contributions sum (for `gen-addr`, Equation 4 already
/// sums stride contributions per loop; for `ld-mem`/`st-mem`, consecutive
/// DMAs concatenate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Opens a block and configures the Fusion Units and data-delivery logic
    /// for the given operand precisions.
    Setup {
        /// Input (activation) precision.
        input: Precision,
        /// Weight precision.
        weight: Precision,
    },
    /// Declares an iterative scope executed `iterations` times.
    Loop {
        /// Identifier referenced by `gen-addr`.
        id: LoopId,
        /// Trip count (at least 1).
        iterations: u32,
    },
    /// Declares the address stride of loop `loop_id` for one
    /// (space, buffer) stream: `address = base + Σ iter[id] × stride[id]`
    /// (Equation 4). Strides are in elements.
    GenAddr {
        /// The loop whose iterator scales this stride.
        loop_id: LoopId,
        /// Off-chip (DMA) or on-chip (datapath) stream.
        space: AddressSpace,
        /// Which buffer the stream feeds.
        buffer: Scratchpad,
        /// Stride in elements.
        stride: u64,
    },
    /// DMA from DRAM into a scratchpad: `words` elements of `bits`-wide data.
    LdMem {
        /// Destination scratchpad.
        buffer: Scratchpad,
        /// Element bitwidth in memory (`mem.bitwidth` of Table I).
        bits: u32,
        /// Element count.
        words: u64,
    },
    /// DMA from a scratchpad to DRAM.
    StMem {
        /// Source scratchpad.
        buffer: Scratchpad,
        /// Element bitwidth in memory.
        bits: u32,
        /// Element count.
        words: u64,
    },
    /// Reads the next operand vector from a scratchpad into the datapath.
    RdBuf {
        /// Source scratchpad.
        buffer: Scratchpad,
    },
    /// Writes the datapath result vector into a scratchpad.
    WrBuf {
        /// Destination scratchpad.
        buffer: Scratchpad,
    },
    /// Performs the selected operation on the operands staged by `rd-buf`.
    Compute {
        /// The operation.
        op: ComputeFn,
    },
    /// Ends the block; `next` is the index of the successor block.
    BlockEnd {
        /// Successor block index (0 for the final block).
        next: u16,
    },
}

impl Instruction {
    /// The Table I mnemonic.
    pub const fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::Setup { .. } => "setup",
            Instruction::Loop { .. } => "loop",
            Instruction::GenAddr { .. } => "gen-addr",
            Instruction::LdMem { .. } => "ld-mem",
            Instruction::StMem { .. } => "st-mem",
            Instruction::RdBuf { .. } => "rd-buf",
            Instruction::WrBuf { .. } => "wr-buf",
            Instruction::Compute { .. } => "compute",
            Instruction::BlockEnd { .. } => "block-end",
        }
    }

    /// Whether this is a memory instruction (DMA or buffer access).
    pub const fn is_memory(&self) -> bool {
        matches!(
            self,
            Instruction::LdMem { .. }
                | Instruction::StMem { .. }
                | Instruction::RdBuf { .. }
                | Instruction::WrBuf { .. }
        )
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Setup { input, weight } => write!(f, "setup {input}, {weight}"),
            Instruction::Loop { id, iterations } => write!(f, "loop {id}, {iterations}"),
            Instruction::GenAddr {
                loop_id,
                space,
                buffer,
                stride,
            } => write!(f, "gen-addr {loop_id}, {space}.{buffer}, {stride}"),
            Instruction::LdMem { buffer, bits, words } => {
                write!(f, "ld-mem {buffer}, {bits}b, {words}")
            }
            Instruction::StMem { buffer, bits, words } => {
                write!(f, "st-mem {buffer}, {bits}b, {words}")
            }
            Instruction::RdBuf { buffer } => write!(f, "rd-buf {buffer}"),
            Instruction::WrBuf { buffer } => write!(f, "wr-buf {buffer}"),
            Instruction::Compute { op } => write!(f, "compute {op}"),
            Instruction::BlockEnd { next } => write!(f, "block-end {next}"),
        }
    }
}

/// An instruction plus the loop depth it executes at (see the module docs).
///
/// `level` counts enclosing loops: 0 executes once per block, `n` executes
/// once per iteration of the `n`-th enclosing loop. `Loop` instructions are
/// tagged with the depth at which they are *declared* (their body is
/// `level + 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaggedInstruction {
    /// The instruction.
    pub instruction: Instruction,
    /// Loop depth (0 = block scope).
    pub level: u8,
}

impl TaggedInstruction {
    /// Creates a tagged instruction.
    pub const fn new(instruction: Instruction, level: u8) -> Self {
        TaggedInstruction { instruction, level }
    }
}

impl fmt::Display for TaggedInstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for _ in 0..self.level {
            write!(f, "  ")?;
        }
        write!(f, "{}", self.instruction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_core::bitwidth::BitWidth;

    #[test]
    fn scratchpad_codes_round_trip() {
        for s in Scratchpad::ALL {
            assert_eq!(Scratchpad::from_code(s.code()), Some(s));
        }
        assert_eq!(Scratchpad::from_code(3), None);
    }

    #[test]
    fn compute_fn_codes_round_trip() {
        for op in ComputeFn::ALL {
            assert_eq!(ComputeFn::from_code(op.code()), Some(op));
        }
        assert_eq!(ComputeFn::from_code(8), None);
    }

    #[test]
    fn address_space_codes_round_trip() {
        for s in [AddressSpace::OffChip, AddressSpace::OnChip] {
            assert_eq!(AddressSpace::from_code(s.code()), Some(s));
        }
        assert_eq!(AddressSpace::from_code(2), None);
    }

    #[test]
    fn only_mac_uses_the_array() {
        for op in ComputeFn::ALL {
            assert_eq!(op.uses_systolic_array(), op == ComputeFn::Mac);
        }
    }

    #[test]
    fn display_forms_match_table_1_mnemonics() {
        let setup = Instruction::Setup {
            input: Precision::unsigned(BitWidth::B4),
            weight: Precision::signed(BitWidth::B2),
        };
        assert_eq!(setup.to_string(), "setup u4, s2");
        assert_eq!(setup.mnemonic(), "setup");
        let ga = Instruction::GenAddr {
            loop_id: LoopId(3),
            space: AddressSpace::OffChip,
            buffer: Scratchpad::Wbuf,
            stride: 1024,
        };
        assert_eq!(ga.to_string(), "gen-addr l3, dram.wbuf, 1024");
        let ld = Instruction::LdMem {
            buffer: Scratchpad::Ibuf,
            bits: 4,
            words: 256,
        };
        assert_eq!(ld.to_string(), "ld-mem ibuf, 4b, 256");
        assert!(ld.is_memory());
        assert!(!setup.is_memory());
    }

    #[test]
    fn tagged_display_indents() {
        let t = TaggedInstruction::new(Instruction::Compute { op: ComputeFn::Mac }, 2);
        assert_eq!(t.to_string(), "    compute mac");
    }
}
