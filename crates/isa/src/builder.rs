//! Ergonomic construction of instruction blocks.
//!
//! [`BlockBuilder`] manages loop nesting and level tags so compiler passes
//! (and humans writing kernels by hand) never deal with raw
//! [`TaggedInstruction`] levels.
//!
//! # Examples
//!
//! ```
//! use bitfusion_core::bitwidth::PairPrecision;
//! use bitfusion_isa::builder::BlockBuilder;
//! use bitfusion_isa::instruction::{AddressSpace, ComputeFn, Scratchpad};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pair = PairPrecision::from_bits(2, 2)?;
//! let mut b = BlockBuilder::new("ternary-fc", pair);
//! b.ld_mem(Scratchpad::Wbuf, 2, 4096)?;
//! let oc = b.open_loop(64)?;
//! b.gen_addr(oc, AddressSpace::OffChip, Scratchpad::Wbuf, 64)?;
//! let ic = b.open_loop(64)?;
//! b.rd_buf(Scratchpad::Ibuf);
//! b.rd_buf(Scratchpad::Wbuf);
//! b.compute(ComputeFn::Mac);
//! b.close_loop(); // ic
//! b.wr_buf(Scratchpad::Obuf);
//! b.close_loop(); // oc
//! let block = b.finish(0)?;
//! assert_eq!(block.loop_tree().depth(), 2);
//! # Ok(())
//! # }
//! ```

use bitfusion_core::bitwidth::PairPrecision;

use crate::block::{DramBases, InstructionBlock, MAX_LOOP_DEPTH};
use crate::error::IsaError;
use crate::instruction::{
    AddressSpace, ComputeFn, Instruction, LoopId, Scratchpad, TaggedInstruction, MAX_LOOP_ID,
};

/// Builder for a single instruction block.
#[derive(Debug, Clone)]
pub struct BlockBuilder {
    name: String,
    pair: PairPrecision,
    bases: DramBases,
    body: Vec<TaggedInstruction>,
    depth: u8,
    next_loop_id: u8,
}

impl BlockBuilder {
    /// Starts a block for the given precision pair (this becomes the `setup`
    /// instruction).
    pub fn new(name: impl Into<String>, pair: PairPrecision) -> Self {
        BlockBuilder {
            name: name.into(),
            pair,
            bases: DramBases::default(),
            body: Vec::new(),
            depth: 0,
            next_loop_id: 0,
        }
    }

    /// Sets the DRAM base address of a stream.
    pub fn set_base(&mut self, buffer: Scratchpad, base: u64) -> &mut Self {
        self.bases.set_base(buffer, base);
        self
    }

    /// Current loop depth.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Opens a loop and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ZeroTripLoop`] for zero iterations,
    /// [`IsaError::LoopIdOutOfRange`] when more than 64 loops are declared,
    /// or [`IsaError::LevelJump`] when nesting exceeds [`MAX_LOOP_DEPTH`].
    pub fn open_loop(&mut self, iterations: u32) -> Result<LoopId, IsaError> {
        if iterations == 0 {
            return Err(IsaError::ZeroTripLoop(self.next_loop_id));
        }
        if self.next_loop_id > MAX_LOOP_ID {
            return Err(IsaError::LoopIdOutOfRange(self.next_loop_id));
        }
        if self.depth + 1 > MAX_LOOP_DEPTH {
            return Err(IsaError::LevelJump {
                index: self.body.len(),
                level: self.depth + 1,
                depth: MAX_LOOP_DEPTH,
            });
        }
        let id = LoopId(self.next_loop_id);
        self.next_loop_id += 1;
        self.body.push(TaggedInstruction::new(
            Instruction::Loop { id, iterations },
            self.depth,
        ));
        self.depth += 1;
        Ok(id)
    }

    /// Closes the innermost open loop. Subsequent instructions land in the
    /// enclosing scope (the *post-body* position).
    ///
    /// # Panics
    ///
    /// Panics when no loop is open — a builder-usage bug.
    pub fn close_loop(&mut self) -> &mut Self {
        assert!(self.depth > 0, "close_loop with no open loop");
        self.depth -= 1;
        self
    }

    /// Declares an address stride (Equation 4 term) for a stream.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UndeclaredLoop`] when `loop_id` has not been
    /// opened by this builder.
    pub fn gen_addr(
        &mut self,
        loop_id: LoopId,
        space: AddressSpace,
        buffer: Scratchpad,
        stride: u64,
    ) -> Result<&mut Self, IsaError> {
        if loop_id.0 >= self.next_loop_id {
            return Err(IsaError::UndeclaredLoop(loop_id.0));
        }
        self.body.push(TaggedInstruction::new(
            Instruction::GenAddr {
                loop_id,
                space,
                buffer,
                stride,
            },
            self.depth,
        ));
        Ok(self)
    }

    /// Emits a DRAM→scratchpad DMA of `words` elements of `bits` each.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::FieldOverflow`] for zero words or unsupported
    /// bitwidths.
    pub fn ld_mem(
        &mut self,
        buffer: Scratchpad,
        bits: u32,
        words: u64,
    ) -> Result<&mut Self, IsaError> {
        self.check_dma(bits, words)?;
        self.body.push(TaggedInstruction::new(
            Instruction::LdMem { buffer, bits, words },
            self.depth,
        ));
        Ok(self)
    }

    /// Emits a scratchpad→DRAM DMA.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::FieldOverflow`] for zero words or unsupported
    /// bitwidths.
    pub fn st_mem(
        &mut self,
        buffer: Scratchpad,
        bits: u32,
        words: u64,
    ) -> Result<&mut Self, IsaError> {
        self.check_dma(bits, words)?;
        self.body.push(TaggedInstruction::new(
            Instruction::StMem { buffer, bits, words },
            self.depth,
        ));
        Ok(self)
    }

    fn check_dma(&self, bits: u32, words: u64) -> Result<(), IsaError> {
        if !matches!(bits, 1 | 2 | 4 | 8 | 16 | 32) {
            return Err(IsaError::FieldOverflow {
                field: "mem.bitwidth",
                value: bits as u64,
            });
        }
        if words == 0 || words >= 1 << 32 {
            return Err(IsaError::FieldOverflow {
                field: "num-words",
                value: words,
            });
        }
        Ok(())
    }

    /// Emits a buffer→datapath read.
    pub fn rd_buf(&mut self, buffer: Scratchpad) -> &mut Self {
        self.body.push(TaggedInstruction::new(
            Instruction::RdBuf { buffer },
            self.depth,
        ));
        self
    }

    /// Emits a datapath→buffer write.
    pub fn wr_buf(&mut self, buffer: Scratchpad) -> &mut Self {
        self.body.push(TaggedInstruction::new(
            Instruction::WrBuf { buffer },
            self.depth,
        ));
        self
    }

    /// Emits a compute instruction.
    pub fn compute(&mut self, op: ComputeFn) -> &mut Self {
        self.body.push(TaggedInstruction::new(
            Instruction::Compute { op },
            self.depth,
        ));
        self
    }

    /// Closes any open loops and finishes the block with `block-end next`.
    ///
    /// # Errors
    ///
    /// Propagates [`InstructionBlock::new`] validation errors.
    pub fn finish(mut self, next: u16) -> Result<InstructionBlock, IsaError> {
        self.depth = 0;
        let mut instrs = Vec::with_capacity(self.body.len() + 2);
        instrs.push(TaggedInstruction::new(
            Instruction::Setup {
                input: self.pair.input,
                weight: self.pair.weight,
            },
            0,
        ));
        instrs.extend(self.body);
        instrs.push(TaggedInstruction::new(Instruction::BlockEnd { next }, 0));
        InstructionBlock::new(self.name, self.bases, instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BodyItem;

    fn pair() -> PairPrecision {
        PairPrecision::from_bits(8, 8).unwrap()
    }

    #[test]
    fn builder_produces_figure_12a_shape() {
        // Figure 12(a): untiled FC inner pattern.
        let mut b = BlockBuilder::new("fc", pair());
        let oc = b.open_loop(16).unwrap();
        b.ld_mem(Scratchpad::Obuf, 32, 1).unwrap();
        b.rd_buf(Scratchpad::Obuf);
        let ic = b.open_loop(32).unwrap();
        b.ld_mem(Scratchpad::Ibuf, 8, 1).unwrap();
        b.ld_mem(Scratchpad::Wbuf, 8, 1).unwrap();
        b.rd_buf(Scratchpad::Ibuf);
        b.rd_buf(Scratchpad::Wbuf);
        b.compute(ComputeFn::Mac);
        b.close_loop();
        b.wr_buf(Scratchpad::Obuf);
        b.st_mem(Scratchpad::Obuf, 32, 1).unwrap();
        b.close_loop();
        b.gen_addr(oc, AddressSpace::OffChip, Scratchpad::Obuf, 1).unwrap();
        b.gen_addr(ic, AddressSpace::OffChip, Scratchpad::Ibuf, 1).unwrap();
        let block = b.finish(0).unwrap();
        let tree = block.loop_tree();
        assert_eq!(tree.depth(), 2);
        // The oc loop body ends with wr-buf + st-mem after the ic loop.
        let BodyItem::Loop(oc_node) = &tree.body[0] else {
            panic!("oc loop expected");
        };
        assert!(matches!(
            oc_node.body.last(),
            Some(BodyItem::Instr(Instruction::StMem { .. }))
        ));
    }

    #[test]
    fn loop_ids_sequential() {
        let mut b = BlockBuilder::new("ids", pair());
        let a = b.open_loop(2).unwrap();
        let c = b.open_loop(2).unwrap();
        assert_eq!((a, c), (LoopId(0), LoopId(1)));
    }

    #[test]
    fn finish_closes_open_loops() {
        let mut b = BlockBuilder::new("open", pair());
        b.open_loop(2).unwrap();
        b.open_loop(3).unwrap();
        b.compute(ComputeFn::Mac);
        let block = b.finish(7).unwrap();
        assert_eq!(block.next_block(), 7);
        assert_eq!(block.loop_tree().depth(), 2);
    }

    #[test]
    #[should_panic(expected = "close_loop with no open loop")]
    fn close_without_open_panics() {
        BlockBuilder::new("x", pair()).close_loop();
    }

    #[test]
    fn gen_addr_requires_declared_loop() {
        let mut b = BlockBuilder::new("ga", pair());
        assert!(matches!(
            b.gen_addr(LoopId(0), AddressSpace::OffChip, Scratchpad::Ibuf, 1),
            Err(IsaError::UndeclaredLoop(0))
        ));
    }

    #[test]
    fn dma_validation() {
        let mut b = BlockBuilder::new("dma", pair());
        assert!(b.ld_mem(Scratchpad::Ibuf, 3, 10).is_err());
        assert!(b.ld_mem(Scratchpad::Ibuf, 8, 0).is_err());
        assert!(b.ld_mem(Scratchpad::Ibuf, 8, 1 << 32).is_err());
        assert!(b.ld_mem(Scratchpad::Ibuf, 8, (1 << 32) - 1).is_ok());
    }

    #[test]
    fn deep_nesting_capped() {
        let mut b = BlockBuilder::new("deep", pair());
        for _ in 0..MAX_LOOP_DEPTH {
            b.open_loop(1).unwrap();
        }
        assert!(matches!(b.open_loop(1), Err(IsaError::LevelJump { .. })));
    }
}
