//! Steady-state segment replay must never touch the heap.
//!
//! A whole-zoo sweep replays millions of tile segments; the PR that
//! introduced [`bitfusion_isa::SegmentProgram`] exists to make that replay
//! allocation-free (the previous walk dropped and reallocated a `BTreeMap`
//! inside every segment accumulator reset). This test pins the property
//! with a counting global allocator: once a program is compiled, replaying
//! it — any number of times, over any number of segments — performs zero
//! allocations and zero deallocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bitfusion_core::bitwidth::PairPrecision;
use bitfusion_isa::program::SegmentProgram;
use bitfusion_isa::walker::{summarize, BlockSummary};
use bitfusion_isa::{BlockBuilder, ComputeFn, InstructionBlock, Scratchpad};

/// Wraps the system allocator, counting every alloc/dealloc.
struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn heap_events() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        DEALLOCS.load(Ordering::Relaxed),
    )
}

/// A deeply tiled block: two enumerated DMA loop levels over a DMA-free
/// compute nest, plus carried outer loads and a post-body store — every
/// replay code path (Repeat, RepeatEmit, carry-in, trailing emit) runs.
fn tiled_block(outer: u32, inner: u32) -> InstructionBlock {
    let pair = PairPrecision::from_bits(4, 2).unwrap();
    let mut b = BlockBuilder::new("alloc-free", pair);
    b.open_loop(outer).unwrap();
    b.ld_mem(Scratchpad::Ibuf, 4, 256).unwrap();
    b.open_loop(inner).unwrap();
    b.ld_mem(Scratchpad::Wbuf, 2, 64).unwrap();
    b.open_loop(16).unwrap();
    b.rd_buf(Scratchpad::Ibuf);
    b.rd_buf(Scratchpad::Wbuf);
    b.compute(ComputeFn::Mac);
    b.close_loop();
    b.wr_buf(Scratchpad::Obuf);
    b.close_loop();
    b.st_mem(Scratchpad::Obuf, 8, 64).unwrap();
    b.close_loop();
    b.finish(0).unwrap()
}

#[test]
fn steady_state_replay_performs_zero_heap_allocations() {
    let block = tiled_block(50, 40);
    let program = SegmentProgram::compile(&block);

    // Prime: one full replay outside the measured window, so anything lazy
    // (nothing today — this guards regressions) is already resident.
    let mut segments = 0u64;
    let mut merged = BlockSummary::default();
    program.replay(&mut |seg, _, _| {
        segments += 1;
        merged.merge(seg);
    });
    assert!(segments >= 50 * 40, "expected a long stream, got {segments}");
    assert_eq!(merged, summarize(&block), "segmentation invariant");

    // Measured steady state: three more replays, zero heap traffic.
    let (allocs_before, deallocs_before) = heap_events();
    let mut checksum = 0u64;
    for _ in 0..3 {
        program.replay(&mut |seg, load, store| {
            checksum = checksum
                .wrapping_add(seg.dynamic_instructions)
                .wrapping_add(load)
                .wrapping_add(store);
        });
    }
    let (allocs_after, deallocs_after) = heap_events();
    assert_ne!(checksum, 0, "replays visited segments");
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "steady-state replay must not allocate"
    );
    assert_eq!(
        deallocs_after - deallocs_before,
        0,
        "steady-state replay must not free"
    );
}

#[test]
fn segment_accumulator_clear_and_merge_are_allocation_free() {
    // The old accumulator reset (`*cur = Segment::default()`) dropped a
    // BTreeMap per segment; the ComputeCounts representation makes clear()
    // a memset and merge() fixed array arithmetic. Pin that directly.
    let block = tiled_block(4, 4);
    let delta = summarize(&block);
    let mut acc = BlockSummary::default();
    let (a0, d0) = heap_events();
    for _ in 0..10_000 {
        acc.clear();
        acc.merge(&delta);
        std::hint::black_box(&acc);
    }
    let (a1, d1) = heap_events();
    assert_eq!(a1 - a0, 0, "clear+merge must not allocate");
    assert_eq!(d1 - d0, 0, "clear+merge must not free");
    assert_eq!(acc, delta);
}
