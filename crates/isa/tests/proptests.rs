//! Property tests for the Fusion-ISA: randomly generated valid blocks
//! survive binary and text round trips, the analytic summarizer always
//! agrees with brute-force walking, the segment iterator concatenates back
//! to the summary, and the binary decoder never panics on arbitrary words.

use bitfusion_core::bitwidth::PairPrecision;
use bitfusion_isa::asm::{format_block, parse_block};
use bitfusion_isa::builder::BlockBuilder;
use bitfusion_isa::encode::{decode_block, encode_block};
use bitfusion_isa::instruction::{AddressSpace, ComputeFn, Scratchpad};
use bitfusion_isa::program::SegmentProgram;
use bitfusion_isa::walker::{
    for_each_segment, for_each_segment_reference, summarize, walk, BlockSummary, Event, Segment,
};
use bitfusion_isa::InstructionBlock;
use proptest::prelude::*;

/// A recipe for one randomly shaped (but always valid) block: a loop nest
/// described by per-level trip counts, with per-level DMA/compute payloads.
#[derive(Debug, Clone)]
struct BlockRecipe {
    input_bits: u32,
    weight_bits: u32,
    levels: Vec<LevelRecipe>,
    base: u64,
}

#[derive(Debug, Clone)]
struct LevelRecipe {
    trips: u32,
    ld_words: Option<u64>,
    stride: u64,
    computes: u8,
}

fn arb_recipe() -> impl Strategy<Value = BlockRecipe> {
    let level = (1u32..200, prop::option::of(1u64..100_000), 0u64..1 << 40, 0u8..3).prop_map(
        |(trips, ld_words, stride, computes)| LevelRecipe {
            trips,
            ld_words,
            stride,
            computes,
        },
    );
    (
        prop::sample::select(vec![1u32, 2, 4, 8, 16]),
        prop::sample::select(vec![1u32, 2, 4, 8, 16]),
        prop::collection::vec(level, 1..5),
        0u64..1 << 45,
    )
        .prop_map(|(input_bits, weight_bits, levels, base)| BlockRecipe {
            input_bits,
            weight_bits,
            levels,
            base,
        })
}

fn build(recipe: &BlockRecipe) -> InstructionBlock {
    let pair = PairPrecision::from_bits(recipe.input_bits, recipe.weight_bits)
        .expect("generated from supported widths");
    let mut b = BlockBuilder::new("prop", pair);
    b.set_base(Scratchpad::Wbuf, recipe.base);
    for (i, level) in recipe.levels.iter().enumerate() {
        let id = b.open_loop(level.trips).expect("depth < 15");
        if level.stride > 0 {
            b.gen_addr(id, AddressSpace::OffChip, Scratchpad::Wbuf, level.stride)
                .expect("declared loop");
        }
        if let Some(words) = level.ld_words {
            let buffer = if i % 2 == 0 { Scratchpad::Ibuf } else { Scratchpad::Wbuf };
            b.ld_mem(buffer, recipe.weight_bits.max(1), words).expect("valid dma");
        }
        for _ in 0..level.computes {
            b.rd_buf(Scratchpad::Ibuf);
            b.rd_buf(Scratchpad::Wbuf);
            b.compute(ComputeFn::Mac);
        }
    }
    for _ in 0..recipe.levels.len() {
        b.close_loop();
    }
    b.st_mem(Scratchpad::Obuf, 8, 1).expect("valid dma");
    b.finish(0).expect("builder produces valid blocks")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_round_trip(recipe in arb_recipe()) {
        let block = build(&recipe);
        let words = encode_block(&block).expect("encodes");
        let decoded = decode_block("prop", &words).expect("decodes");
        let decoded_canon = decoded.canonicalize();
        let block_canon = block.canonicalize();
        prop_assert_eq!(decoded_canon.instructions(), block_canon.instructions());
        prop_assert_eq!(decoded.bases, block.bases);
        prop_assert_eq!(decoded.stride_table(), block.stride_table());
    }

    #[test]
    fn encode_decode_encode_is_a_fixed_point(recipe in arb_recipe()) {
        // Table I's binary format must be a fixed point of one decode:
        // re-encoding a decoded block reproduces the original words exactly,
        // so binaries can be round-tripped through tooling byte-for-byte.
        let block = build(&recipe);
        let words = encode_block(&block).expect("encodes");
        let decoded = decode_block("prop", &words).expect("decodes");
        let words_again = encode_block(&decoded).expect("re-encodes");
        prop_assert_eq!(words, words_again);
    }

    #[test]
    fn text_round_trip(recipe in arb_recipe()) {
        let block = build(&recipe);
        let text = format_block(&block);
        let parsed = parse_block(&text).expect("parses its own output");
        prop_assert_eq!(parsed.instructions(), block.instructions());
    }

    #[test]
    fn summary_matches_walk_when_small(recipe in arb_recipe()) {
        let block = build(&recipe);
        let tree = block.loop_tree();
        // Only brute-force small nests (the summarizer exists precisely so
        // big nests never need walking).
        let dynamic: u64 = summarize(&block).dynamic_instructions;
        if dynamic > 200_000 {
            return Ok(());
        }
        let mut computes = 0u64;
        let mut dma_bits = 0u64;
        let mut events = 0u64;
        walk(&block, &mut |e| {
            events += 1;
            match e {
                Event::Compute { .. } => computes += 1,
                Event::DmaLoad { bits, words, .. } | Event::DmaStore { bits, words, .. } => {
                    dma_bits += bits as u64 * words
                }
                _ => {}
            }
        });
        let s = summarize(&block);
        prop_assert_eq!(s.compute_steps(), computes);
        prop_assert_eq!(s.dram_bits(), dma_bits);
        prop_assert_eq!(s.dynamic_instructions, events);
        prop_assert_eq!(tree.dynamic_compute_count(), computes);
    }

    #[test]
    fn segments_concatenate_to_the_summary(recipe in arb_recipe()) {
        // The segmentation invariant the simulation backends rely on:
        // merging every segment of a block reproduces `summarize` exactly —
        // same DMA bits, buffer accesses, compute steps, and dynamic
        // instruction count.
        let block = build(&recipe);
        let summary = summarize(&block);
        // Segment enumeration is O(tile iterations); skip the pathological
        // deep-DMA nests the generator can produce (same guard as the
        // brute-force walk above).
        if summary.dynamic_instructions > 200_000 {
            return Ok(());
        }
        let mut merged = BlockSummary::default();
        let mut count = 0u64;
        let mut all_non_empty = true;
        for_each_segment(&block, &mut |seg| {
            all_non_empty &= !seg.is_empty();
            count += 1;
            merged.merge(seg);
        });
        prop_assert!(count > 0, "a non-empty block yields at least one segment");
        prop_assert!(all_non_empty, "the iterator never yields empty segments");
        prop_assert_eq!(merged, summary);
    }

    #[test]
    fn compiled_program_replays_the_reference_stream(recipe in arb_recipe()) {
        // The tentpole invariant of the compiled-segment-program path: for
        // any valid block, `SegmentProgram::compile(..).replay(..)` yields
        // byte-for-byte the segment stream of the naive reference tree walk
        // (same segments, same order), with per-segment DMA bit totals that
        // match re-summing the segment's buffers; and the program's
        // build-time total equals `summarize`.
        let block = build(&recipe);
        let summary = summarize(&block);
        if summary.dynamic_instructions > 200_000 {
            return Ok(());
        }
        let mut reference: Vec<Segment> = Vec::new();
        for_each_segment_reference(&block, &mut |seg| reference.push(*seg));
        let program = SegmentProgram::compile(&block);
        prop_assert_eq!(*program.total(), summary);
        let mut replayed: Vec<(Segment, u64, u64)> = Vec::new();
        program.replay(&mut |seg, load, store| replayed.push((*seg, load, store)));
        prop_assert_eq!(replayed.len(), reference.len());
        for (i, ((seg, load, store), want)) in replayed.iter().zip(&reference).enumerate() {
            prop_assert_eq!(seg, want, "segment {} diverged", i);
            prop_assert_eq!(*load, want.dma_load_bits(), "segment {} load bits", i);
            prop_assert_eq!(*store, want.dma_store_bits(), "segment {} store bits", i);
        }
    }

    #[test]
    fn decoder_never_panics(words in prop::collection::vec(any::<u32>(), 0..64)) {
        // Arbitrary words must produce Ok or Err, never a panic.
        let _ = decode_block("fuzz", &words);
    }

    #[test]
    fn walked_addresses_follow_equation_4(
        trips in 1u32..20,
        stride in 0u64..1_000_000,
        base in 0u64..1 << 30,
    ) {
        let pair = PairPrecision::from_bits(4, 2).expect("supported");
        let mut b = BlockBuilder::new("eq4", pair);
        b.set_base(Scratchpad::Ibuf, base);
        let l = b.open_loop(trips).expect("one loop");
        b.gen_addr(l, AddressSpace::OffChip, Scratchpad::Ibuf, stride).expect("declared");
        b.ld_mem(Scratchpad::Ibuf, 4, 16).expect("valid");
        b.close_loop();
        let block = b.finish(0).expect("valid");
        let mut addrs = Vec::new();
        walk(&block, &mut |e| {
            if let Event::DmaLoad { addr, .. } = e {
                addrs.push(addr);
            }
        });
        prop_assert_eq!(addrs.len(), trips as usize);
        for (i, &a) in addrs.iter().enumerate() {
            prop_assert_eq!(a, base + i as u64 * stride);
        }
    }
}
