//! # bitfusion-sim
//!
//! The cycle-level performance and energy simulator for the Bit Fusion
//! accelerator (§V-A of Sharma et al., ISCA 2018: "a cycle-accurate
//! simulator that takes the Fusion-ISA instructions for the given DNN and
//! simulates the execution to calculate the cycle counts as well as the
//! number of accesses to on-chip buffers and off-chip memory").
//!
//! * [`engine`] — per-layer evaluation: systolic compute timing (steps,
//!   temporal cycles, fill/drain), double-buffered DMA overlap, bit-granular
//!   buffer access counting, and the energy model;
//! * [`accelerator`] — the [`BitFusionSim`] front end (compile + evaluate);
//! * [`stats`] — [`PerfReport`]/[`LayerPerf`] result types.
//!
//! The DMA traffic comes from analytically walking the *actual compiled
//! instruction blocks* (`bitfusion_isa::walker`), so the performance model
//! and the ISA semantics cannot drift apart.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accelerator;
pub mod engine;
pub mod stats;
pub mod sweep;

pub use accelerator::BitFusionSim;
pub use engine::{evaluate_layer, SimOptions};
pub use stats::{LayerPerf, PerfReport};
pub use sweep::{bandwidth_sweep, batch_sweep, Sweep, SweepPoint};
