//! # bitfusion-sim
//!
//! The cycle-level performance and energy simulator for the Bit Fusion
//! accelerator (§V-A of Sharma et al., ISCA 2018: "a cycle-accurate
//! simulator that takes the Fusion-ISA instructions for the given DNN and
//! simulates the execution to calculate the cycle counts as well as the
//! number of accesses to on-chip buffers and off-chip memory").
//!
//! * [`backend`] — the pluggable [`SimBackend`] interface and the
//!   closed-form [`AnalyticBackend`];
//! * [`engine`] — the analytic per-layer evaluation: systolic compute
//!   timing (steps, temporal cycles, fill/drain), double-buffered DMA
//!   overlap, bit-granular buffer access counting, and the energy model
//!   shared by all backends;
//! * [`event`] — the trace-driven [`EventBackend`]: explicit
//!   DMA/systolic/post-op pipeline state advanced over the block's tile
//!   segments, with stall attribution and occupancy highwater marks;
//! * [`accelerator`] — the [`BitFusionSim`] front end (compile + evaluate),
//!   generic over the backend;
//! * [`stats`] — [`PerfReport`]/[`LayerPerf`] result types plus
//!   [`StallBreakdown`]/[`BufferOccupancy`];
//! * [`layer_cache`] — the layer tier of the two-tier cache: memoized
//!   per-layer evaluation results keyed on structural fingerprints, below
//!   the model-level artifact cache;
//! * [`sweep`] — the Figure 15/16 sensitivity sweeps, thin views over the
//!   DSE engine, generic over the backend;
//! * [`dse`] — sharded design-space exploration: an
//!   architecture-grid × network × batch sweep with a memoized compile
//!   cache, `std::thread` workers ([`pool`]), and Pareto-frontier
//!   reduction over (cycles, energy, area).
//!
//! The DMA traffic comes from walking the *actual compiled instruction
//! blocks* (`bitfusion_isa::walker`) — summarized analytically for the
//! analytic backend, streamed as tile segments for the event backend — so
//! the performance models and the ISA semantics cannot drift apart, and the
//! two backends are cross-validated bit-exactly on traffic and MACs (see
//! `DESIGN.md`, "Simulation backends").

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accelerator;
pub mod backend;
pub mod dse;
pub mod engine;
pub mod event;
pub mod layer_cache;
pub mod pool;
pub mod stats;
pub mod sweep;

pub use accelerator::BitFusionSim;
pub use backend::{AnalyticBackend, SimBackend, BACKEND_CYCLE_TOLERANCE};
pub use engine::{energy_for_layer, evaluate_layer, DeratedRate, SimOptions};
pub use event::EventBackend;
#[doc(hidden)]
pub use event::evaluate_layer_naive;
pub use layer_cache::{
    eval_context, evaluate_layer_cached, plan_layer_sharing, run_plan_cached, LayerPerfCache,
};
pub use stats::{BufferOccupancy, LayerPerf, PerfReport, StallBreakdown};
pub use dse::{
    explore, explore_checkpointed, explore_with_cache, explore_with_caches, ArchSummary, DsePoint,
    DseResult, DseSpec,
    InfeasiblePoint, PointError, QuantSpeedup, QuantSummary,
};
pub use sweep::{
    bandwidth_sweep, bandwidth_sweep_cached, bandwidth_sweep_tiered, bandwidth_sweep_with,
    batch_sweep, batch_sweep_cached, batch_sweep_tiered, batch_sweep_with, Sweep, SweepPoint,
};
