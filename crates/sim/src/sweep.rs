//! Reusable parameter sweeps: the bandwidth (Figure 15) and batch
//! (Figure 16) sensitivity studies as library functions, shared by the
//! bench harnesses, the CLI, and downstream users.
//!
//! Both sweeps are thin views over the design-space exploration engine
//! ([`crate::dse`]): each builds a one-axis [`DseSpec`] and projects the
//! resulting points back into a [`Sweep`]. The bandwidth sweep inherits the
//! engine's compile memoization for free — tiling does not depend on
//! bandwidth, so the whole axis shares a single compilation.
//!
//! Every sweep is generic over the [`SimBackend`]; the plain functions run
//! the cheap [`AnalyticBackend`] (a sweep multiplies simulation count by
//! its point count), and the `*_with` variants accept any backend — e.g.
//! the trace-driven [`EventBackend`](crate::EventBackend) for a
//! high-fidelity pass over the interesting points.

use bitfusion_compiler::ArtifactCache;
use bitfusion_core::arch::ArchConfig;
use bitfusion_core::grid::ArchGrid;
use bitfusion_dnn::model::Model;
use bitfusion_dnn::quantspec::QuantSpec;

use crate::backend::{AnalyticBackend, SimBackend};
use crate::dse::{explore_with_caches, DseSpec, PointError};
use crate::engine::SimOptions;
use crate::layer_cache::LayerPerfCache;
use crate::stats::PerfReport;

/// One point of a sweep: the swept value and the resulting report.
#[derive(Debug, Clone)]
pub struct SweepPoint<T> {
    /// The swept parameter value.
    pub value: T,
    /// The simulation result at that value.
    pub report: PerfReport,
}

/// Result of a sweep over one model.
#[derive(Debug, Clone)]
pub struct Sweep<T> {
    /// Model name.
    pub model_name: String,
    /// Points in sweep order.
    pub points: Vec<SweepPoint<T>>,
    /// Layer evaluations the sweep's points requested (see
    /// [`crate::dse::DseResult::layer_evals`]).
    pub layer_evals: u64,
    /// Unique layer-tier keys those evaluations resolve to — deterministic
    /// for the sweep, independent of cache warmth (see
    /// [`crate::dse::DseResult::layer_unique`]).
    pub layer_unique: u64,
}

impl<T: Copy + PartialEq> Sweep<T> {
    /// Speedups relative to the point with value `baseline` (total cycles,
    /// whole batch), or `None` when `baseline` is not one of the swept
    /// values.
    pub fn speedups_vs(&self, baseline: T) -> Option<Vec<(T, f64)>> {
        let base = self
            .points
            .iter()
            .find(|p| p.value == baseline)?
            .report
            .total_cycles() as f64;
        Some(
            self.points
                .iter()
                .map(|p| (p.value, base / p.report.total_cycles() as f64))
                .collect(),
        )
    }

    /// Per-input speedups relative to the point with value `baseline`, or
    /// `None` when `baseline` is not one of the swept values.
    pub fn per_input_speedups_vs(&self, baseline: T) -> Option<Vec<(T, f64)>> {
        let base = self
            .points
            .iter()
            .find(|p| p.value == baseline)?
            .report
            .cycles_per_input();
        Some(
            self.points
                .iter()
                .map(|p| (p.value, base / p.report.cycles_per_input()))
                .collect(),
        )
    }

    /// Spec-level layer-tier sharing within this sweep: evaluations
    /// answered by a key another layer of the same sweep also resolves to.
    pub fn spec_layer_hits(&self) -> u64 {
        self.layer_evals - self.layer_unique
    }
}

/// Projects a one-axis exploration back into a sweep, propagating the
/// first infeasible point as an error (a compile failure, or an invalid
/// swept configuration such as a zero bandwidth).
fn sweep_view<B: SimBackend + Sync, T>(
    backend: &B,
    spec: &DseSpec,
    cache: &ArtifactCache,
    layer_cache: &LayerPerfCache,
    value_of: impl Fn(&crate::dse::DsePoint) -> T,
) -> Result<Sweep<T>, bitfusion_compiler::CompileError> {
    let result = explore_with_caches(spec, backend, 1, cache, layer_cache);
    if let Some(bad) = result.infeasible.first() {
        return Err(match &bad.error {
            PointError::Compile(e) => e.clone(),
            PointError::InvalidConfig(e) => {
                bitfusion_compiler::CompileError::InvalidArch(e.clone())
            }
            // Sweeps always run at the paper quantization, which applies
            // to every model.
            PointError::Quant(e) => unreachable!("paper quantization failed: {e}"),
        });
    }
    Ok(Sweep {
        model_name: spec.models[0].name.clone(),
        layer_evals: result.layer_evals,
        layer_unique: result.layer_unique,
        points: result
            .points
            .into_iter()
            .map(|p| {
                let value = value_of(&p);
                SweepPoint {
                    value,
                    report: p.report,
                }
            })
            .collect(),
    })
}

/// Sweeps off-chip bandwidth (bits/cycle) at a fixed batch size (Figure 15)
/// on an explicit backend.
///
/// # Errors
///
/// Propagates compilation failures, and rejects invalid swept
/// configurations (e.g. a zero bandwidth) as
/// [`CompileError::InvalidArch`](bitfusion_compiler::CompileError).
pub fn bandwidth_sweep_with<B: SimBackend + Sync>(
    backend: &B,
    base_arch: &ArchConfig,
    model: &Model,
    batch: u64,
    bandwidths: &[u32],
) -> Result<Sweep<u32>, bitfusion_compiler::CompileError> {
    bandwidth_sweep_cached(
        backend,
        base_arch,
        model,
        batch,
        bandwidths,
        SimOptions::default(),
        &ArtifactCache::default(),
    )
}

/// [`bandwidth_sweep_with`] with explicit calibration options and a shared
/// artifact cache, evaluating through a private layer cache — see
/// [`bandwidth_sweep_tiered`] for the two-tier (session-owned) variant.
///
/// # Errors
///
/// Propagates compilation failures, and rejects invalid swept
/// configurations (e.g. a zero bandwidth) as
/// [`CompileError::InvalidArch`](bitfusion_compiler::CompileError).
pub fn bandwidth_sweep_cached<B: SimBackend + Sync>(
    backend: &B,
    base_arch: &ArchConfig,
    model: &Model,
    batch: u64,
    bandwidths: &[u32],
    options: SimOptions,
    cache: &ArtifactCache,
) -> Result<Sweep<u32>, bitfusion_compiler::CompileError> {
    bandwidth_sweep_tiered(
        backend,
        base_arch,
        model,
        batch,
        bandwidths,
        options,
        cache,
        &LayerPerfCache::default(),
    )
}

/// [`bandwidth_sweep_cached`] with both cache tiers caller-owned — the
/// session facade's path. The whole axis resolves to one artifact key
/// (tiling ignores bandwidth), so a warm cache makes the sweep
/// compilation-free; per-layer evaluations resolve through `layer_cache`
/// (bandwidth *is* part of the layer key, so each swept value evaluates
/// its own layers — sharing comes from repeated shapes and warm sessions).
///
/// # Errors
///
/// Propagates compilation failures, and rejects invalid swept
/// configurations (e.g. a zero bandwidth) as
/// [`CompileError::InvalidArch`](bitfusion_compiler::CompileError).
#[allow(clippy::too_many_arguments)]
pub fn bandwidth_sweep_tiered<B: SimBackend + Sync>(
    backend: &B,
    base_arch: &ArchConfig,
    model: &Model,
    batch: u64,
    bandwidths: &[u32],
    options: SimOptions,
    cache: &ArtifactCache,
    layer_cache: &LayerPerfCache,
) -> Result<Sweep<u32>, bitfusion_compiler::CompileError> {
    let spec = DseSpec {
        grid: ArchGrid {
            dram_bits_per_cycle: bandwidths.to_vec(),
            ..ArchGrid::from_base(base_arch.clone())
        },
        models: vec![model.clone()],
        quant_specs: vec![QuantSpec::paper()],
        batches: vec![batch],
        options,
    };
    sweep_view(backend, &spec, cache, layer_cache, |p| {
        p.arch.dram_bits_per_cycle
    })
}

/// Sweeps off-chip bandwidth on the analytic backend (the fast default).
///
/// # Errors
///
/// Propagates compilation failures.
pub fn bandwidth_sweep(
    base_arch: &ArchConfig,
    model: &Model,
    batch: u64,
    bandwidths: &[u32],
) -> Result<Sweep<u32>, bitfusion_compiler::CompileError> {
    bandwidth_sweep_with(&AnalyticBackend, base_arch, model, batch, bandwidths)
}

/// Sweeps batch size at a fixed architecture (Figure 16) on an explicit
/// backend.
///
/// # Errors
///
/// Propagates compilation failures.
pub fn batch_sweep_with<B: SimBackend + Sync>(
    backend: &B,
    arch: &ArchConfig,
    model: &Model,
    batches: &[u64],
) -> Result<Sweep<u64>, bitfusion_compiler::CompileError> {
    batch_sweep_cached(
        backend,
        arch,
        model,
        batches,
        SimOptions::default(),
        &ArtifactCache::default(),
    )
}

/// [`batch_sweep_with`] with explicit calibration options and a shared
/// artifact cache, evaluating through a private layer cache — see
/// [`batch_sweep_tiered`] for the two-tier (session-owned) variant.
///
/// # Errors
///
/// Propagates compilation failures.
pub fn batch_sweep_cached<B: SimBackend + Sync>(
    backend: &B,
    arch: &ArchConfig,
    model: &Model,
    batches: &[u64],
    options: SimOptions,
    cache: &ArtifactCache,
) -> Result<Sweep<u64>, bitfusion_compiler::CompileError> {
    batch_sweep_tiered(
        backend,
        arch,
        model,
        batches,
        options,
        cache,
        &LayerPerfCache::default(),
    )
}

/// [`batch_sweep_cached`] with both cache tiers caller-owned — the session
/// facade's path.
///
/// # Errors
///
/// Propagates compilation failures.
pub fn batch_sweep_tiered<B: SimBackend + Sync>(
    backend: &B,
    arch: &ArchConfig,
    model: &Model,
    batches: &[u64],
    options: SimOptions,
    cache: &ArtifactCache,
    layer_cache: &LayerPerfCache,
) -> Result<Sweep<u64>, bitfusion_compiler::CompileError> {
    let spec = DseSpec {
        grid: ArchGrid::from_base(arch.clone()),
        models: vec![model.clone()],
        quant_specs: vec![QuantSpec::paper()],
        batches: batches.to_vec(),
        options,
    };
    sweep_view(backend, &spec, cache, layer_cache, |p| p.batch)
}

/// Sweeps batch size on the analytic backend (the fast default).
///
/// # Errors
///
/// Propagates compilation failures.
pub fn batch_sweep(
    arch: &ArchConfig,
    model: &Model,
    batches: &[u64],
) -> Result<Sweep<u64>, bitfusion_compiler::CompileError> {
    batch_sweep_with(&AnalyticBackend, arch, model, batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_dnn::zoo::Benchmark;

    #[test]
    fn bandwidth_sweep_monotone() {
        let arch = ArchConfig::isca_45nm();
        let sweep =
            bandwidth_sweep(&arch, &Benchmark::Rnn.model(), 16, &[32, 128, 512]).unwrap();
        let speedups = sweep.speedups_vs(128).expect("128 is swept");
        assert_eq!(speedups.len(), 3);
        assert!(speedups[0].1 < 1.0); // 32 b/cyc slower
        assert!((speedups[1].1 - 1.0).abs() < 1e-9);
        assert!(speedups[2].1 > 1.0); // 512 b/cyc faster
    }

    #[test]
    fn batch_sweep_per_input_improves() {
        let arch = ArchConfig::isca_45nm();
        let sweep = batch_sweep(&arch, &Benchmark::Lstm.model(), &[1, 16]).unwrap();
        let speedups = sweep.per_input_speedups_vs(1).expect("1 is swept");
        assert!(speedups[1].1 > 2.0, "{speedups:?}");
    }

    #[test]
    fn missing_baseline_is_none_not_a_panic() {
        let arch = ArchConfig::isca_45nm();
        let sweep = batch_sweep(&arch, &Benchmark::Lstm.model(), &[1, 4]).unwrap();
        assert!(sweep.speedups_vs(999).is_none());
        assert!(sweep.per_input_speedups_vs(999).is_none());
    }

    #[test]
    fn invalid_swept_bandwidth_is_an_error_not_a_panic() {
        use bitfusion_compiler::CompileError;
        let arch = ArchConfig::isca_45nm();
        let result = bandwidth_sweep(&arch, &Benchmark::Rnn.model(), 1, &[0, 128]);
        assert!(matches!(result, Err(CompileError::InvalidArch(_))), "{result:?}");
    }

    #[test]
    fn sweep_points_follow_input_order() {
        let arch = ArchConfig::isca_45nm();
        let bws = [512, 32, 128];
        let sweep = bandwidth_sweep(&arch, &Benchmark::Lstm.model(), 4, &bws).unwrap();
        let got: Vec<u32> = sweep.points.iter().map(|p| p.value).collect();
        assert_eq!(got, bws);
    }

    #[test]
    fn tiered_sweep_reuses_layer_results_across_runs() {
        let arch = ArchConfig::isca_45nm();
        let model = Benchmark::ResNet18.model();
        let cache = ArtifactCache::default();
        let layer_cache = LayerPerfCache::default();
        let opts = SimOptions::default();
        let cold = bandwidth_sweep_tiered(
            &AnalyticBackend,
            &arch,
            &model,
            16,
            &[64, 128],
            opts,
            &cache,
            &layer_cache,
        )
        .unwrap();
        assert!(cold.spec_layer_hits() > 0, "ResNet-18 repeats shapes");
        assert_eq!(layer_cache.stats().misses, cold.layer_unique);
        let misses_after_cold = layer_cache.stats().misses;
        let warm = bandwidth_sweep_tiered(
            &AnalyticBackend,
            &arch,
            &model,
            16,
            &[64, 128],
            opts,
            &cache,
            &layer_cache,
        )
        .unwrap();
        assert_eq!(layer_cache.stats().misses, misses_after_cold, "no re-evaluation");
        assert_eq!(warm.layer_evals, cold.layer_evals, "counters are warmth-independent");
        assert_eq!(warm.layer_unique, cold.layer_unique);
        for (a, b) in cold.points.iter().zip(&warm.points) {
            assert_eq!(a.report, b.report, "warmth must never change bytes");
        }
    }

    #[test]
    fn event_backend_sweep_shows_the_same_sensitivity() {
        use crate::event::EventBackend;
        let arch = ArchConfig::isca_45nm();
        let sweep = bandwidth_sweep_with(
            &EventBackend,
            &arch,
            &Benchmark::Rnn.model(),
            16,
            &[32, 128, 512],
        )
        .unwrap();
        let speedups = sweep.speedups_vs(128).expect("128 is swept");
        assert!(speedups[0].1 < 1.0, "{speedups:?}");
        assert!(speedups[2].1 > 1.0, "{speedups:?}");
    }
}
