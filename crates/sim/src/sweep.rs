//! Reusable parameter sweeps: the bandwidth (Figure 15) and batch
//! (Figure 16) sensitivity studies as library functions, shared by the
//! bench harnesses, the CLI, and downstream users.
//!
//! Every sweep is generic over the [`SimBackend`]; the plain functions run
//! the cheap [`AnalyticBackend`] (a sweep multiplies simulation count by
//! its point count), and the `*_with` variants accept any backend — e.g.
//! the trace-driven [`EventBackend`](crate::EventBackend) for a
//! high-fidelity pass over the interesting points.

use bitfusion_core::arch::ArchConfig;
use bitfusion_dnn::model::Model;

use crate::accelerator::BitFusionSim;
use crate::backend::{AnalyticBackend, SimBackend};
use crate::stats::PerfReport;

/// One point of a sweep: the swept value and the resulting report.
#[derive(Debug, Clone)]
pub struct SweepPoint<T> {
    /// The swept parameter value.
    pub value: T,
    /// The simulation result at that value.
    pub report: PerfReport,
}

/// Result of a sweep over one model.
#[derive(Debug, Clone)]
pub struct Sweep<T> {
    /// Model name.
    pub model_name: String,
    /// Points in sweep order.
    pub points: Vec<SweepPoint<T>>,
}

impl<T: Copy + PartialEq> Sweep<T> {
    /// Speedups relative to the point with value `baseline` (total cycles,
    /// whole batch).
    ///
    /// # Panics
    ///
    /// Panics when `baseline` is not one of the swept values — a caller bug.
    pub fn speedups_vs(&self, baseline: T) -> Vec<(T, f64)> {
        let base = self
            .points
            .iter()
            .find(|p| p.value == baseline)
            .expect("baseline must be a swept value")
            .report
            .total_cycles() as f64;
        self.points
            .iter()
            .map(|p| (p.value, base / p.report.total_cycles() as f64))
            .collect()
    }

    /// Per-input speedups relative to the point with value `baseline`.
    ///
    /// # Panics
    ///
    /// Panics when `baseline` is not one of the swept values.
    pub fn per_input_speedups_vs(&self, baseline: T) -> Vec<(T, f64)> {
        let base_point = self
            .points
            .iter()
            .find(|p| p.value == baseline)
            .expect("baseline must be a swept value");
        let base = base_point.report.cycles_per_input();
        self.points
            .iter()
            .map(|p| (p.value, base / p.report.cycles_per_input()))
            .collect()
    }
}

/// Sweeps off-chip bandwidth (bits/cycle) at a fixed batch size (Figure 15)
/// on an explicit backend.
///
/// # Errors
///
/// Propagates compilation failures.
pub fn bandwidth_sweep_with<B: SimBackend + Clone>(
    backend: &B,
    base_arch: &ArchConfig,
    model: &Model,
    batch: u64,
    bandwidths: &[u32],
) -> Result<Sweep<u32>, bitfusion_compiler::CompileError> {
    let mut points = Vec::with_capacity(bandwidths.len());
    for &bw in bandwidths {
        let sim =
            BitFusionSim::with_backend(base_arch.clone().with_bandwidth(bw), backend.clone());
        points.push(SweepPoint {
            value: bw,
            report: sim.run(model, batch)?,
        });
    }
    Ok(Sweep {
        model_name: model.name.clone(),
        points,
    })
}

/// Sweeps off-chip bandwidth on the analytic backend (the fast default).
///
/// # Errors
///
/// Propagates compilation failures.
pub fn bandwidth_sweep(
    base_arch: &ArchConfig,
    model: &Model,
    batch: u64,
    bandwidths: &[u32],
) -> Result<Sweep<u32>, bitfusion_compiler::CompileError> {
    bandwidth_sweep_with(&AnalyticBackend, base_arch, model, batch, bandwidths)
}

/// Sweeps batch size at a fixed architecture (Figure 16) on an explicit
/// backend.
///
/// # Errors
///
/// Propagates compilation failures.
pub fn batch_sweep_with<B: SimBackend + Clone>(
    backend: &B,
    arch: &ArchConfig,
    model: &Model,
    batches: &[u64],
) -> Result<Sweep<u64>, bitfusion_compiler::CompileError> {
    let sim = BitFusionSim::with_backend(arch.clone(), backend.clone());
    let mut points = Vec::with_capacity(batches.len());
    for &batch in batches {
        points.push(SweepPoint {
            value: batch,
            report: sim.run(model, batch)?,
        });
    }
    Ok(Sweep {
        model_name: model.name.clone(),
        points,
    })
}

/// Sweeps batch size on the analytic backend (the fast default).
///
/// # Errors
///
/// Propagates compilation failures.
pub fn batch_sweep(
    arch: &ArchConfig,
    model: &Model,
    batches: &[u64],
) -> Result<Sweep<u64>, bitfusion_compiler::CompileError> {
    batch_sweep_with(&AnalyticBackend, arch, model, batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_dnn::zoo::Benchmark;

    #[test]
    fn bandwidth_sweep_monotone() {
        let arch = ArchConfig::isca_45nm();
        let sweep =
            bandwidth_sweep(&arch, &Benchmark::Rnn.model(), 16, &[32, 128, 512]).unwrap();
        let speedups = sweep.speedups_vs(128);
        assert_eq!(speedups.len(), 3);
        assert!(speedups[0].1 < 1.0); // 32 b/cyc slower
        assert!((speedups[1].1 - 1.0).abs() < 1e-9);
        assert!(speedups[2].1 > 1.0); // 512 b/cyc faster
    }

    #[test]
    fn batch_sweep_per_input_improves() {
        let arch = ArchConfig::isca_45nm();
        let sweep = batch_sweep(&arch, &Benchmark::Lstm.model(), &[1, 16]).unwrap();
        let speedups = sweep.per_input_speedups_vs(1);
        assert!(speedups[1].1 > 2.0, "{speedups:?}");
    }

    #[test]
    #[should_panic(expected = "baseline must be a swept value")]
    fn missing_baseline_panics() {
        let arch = ArchConfig::isca_45nm();
        let sweep = batch_sweep(&arch, &Benchmark::Lstm.model(), &[1, 4]).unwrap();
        let _ = sweep.speedups_vs(999);
    }

    #[test]
    fn event_backend_sweep_shows_the_same_sensitivity() {
        use crate::event::EventBackend;
        let arch = ArchConfig::isca_45nm();
        let sweep = bandwidth_sweep_with(
            &EventBackend,
            &arch,
            &Benchmark::Rnn.model(),
            16,
            &[32, 128, 512],
        )
        .unwrap();
        let speedups = sweep.speedups_vs(128);
        assert!(speedups[0].1 < 1.0, "{speedups:?}");
        assert!(speedups[2].1 > 1.0, "{speedups:?}");
    }
}
