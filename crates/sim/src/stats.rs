//! Simulation results: per-layer and whole-model performance/energy, with
//! stall attribution and buffer-occupancy detail from the trace-driven
//! backend.

use std::fmt;

use bitfusion_energy::EnergyBreakdown;
use bitfusion_isa::Scratchpad;

/// Attribution of a layer's cycles to pipeline conditions.
///
/// The trace-driven backend measures these from the segment timeline; the
/// analytic backend derives coarse whole-layer estimates from its closed
/// form (see `DESIGN.md`, "Simulation backends").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallBreakdown {
    /// Cycles the systolic array sat idle waiting for off-chip data
    /// (bandwidth-starved).
    pub bandwidth_starved: u64,
    /// Cycles the DMA engine sat idle with nothing to transfer because the
    /// double buffers were still in use by compute (compute-starved).
    pub compute_starved: u64,
    /// Cycles spent filling/draining the systolic array between passes
    /// (before efficiency derating).
    pub fill_drain: u64,
}

/// Peak scratchpad residency over a layer's execution, in bits, under the
/// double-buffered DMA model: per scratchpad, a tile stays resident until
/// the next DMA transfer into that scratchpad replaces it, so the peak is
/// the largest sum of two consecutive transfers.
///
/// Only the trace-driven backend fills this; the analytic model reports
/// zeros (it never materializes per-tile state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferOccupancy {
    /// Highwater bits per scratchpad, indexed by [`Scratchpad::code`].
    pub highwater_bits: [u64; 3],
}

impl BufferOccupancy {
    /// Highwater residency of one scratchpad.
    pub fn bits(&self, buffer: Scratchpad) -> u64 {
        self.highwater_bits[buffer.code() as usize]
    }
}

/// Performance and energy of one compiled layer group (whole batch).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPerf {
    /// Layer/group name.
    pub name: String,
    /// Total cycles.
    pub cycles: u64,
    /// Cycles the compute model needed (systolic array busy).
    pub compute_cycles: u64,
    /// Cycles the DMA model needed (off-chip transfers).
    pub dma_cycles: u64,
    /// Off-chip bits moved.
    pub dram_bits: u64,
    /// Multiply-accumulates performed.
    pub macs: u64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Stall attribution (measured by the event backend, estimated by the
    /// analytic one).
    pub stalls: StallBreakdown,
    /// Peak scratchpad residency (event backend only).
    pub occupancy: BufferOccupancy,
}

impl LayerPerf {
    /// Whether the layer was limited by off-chip bandwidth.
    pub fn is_bandwidth_bound(&self) -> bool {
        self.dma_cycles > self.compute_cycles
    }

    /// Achieved MACs per cycle.
    pub fn macs_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.macs as f64 / self.cycles as f64
        }
    }
}

/// Whole-model simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Model name.
    pub model_name: String,
    /// Batch size simulated.
    pub batch: u64,
    /// Clock frequency in MHz (for time conversion).
    pub freq_mhz: u32,
    /// Per-layer results, in execution order.
    pub layers: Vec<LayerPerf>,
}

impl PerfReport {
    /// Total cycles for the whole batch.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Cycles per single input.
    pub fn cycles_per_input(&self) -> f64 {
        self.total_cycles() as f64 / self.batch as f64
    }

    /// Wall-clock time for the batch, in milliseconds.
    pub fn runtime_ms(&self) -> f64 {
        self.total_cycles() as f64 / (self.freq_mhz as f64 * 1e3)
    }

    /// Latency per input, in milliseconds.
    pub fn latency_ms_per_input(&self) -> f64 {
        self.runtime_ms() / self.batch as f64
    }

    /// Total energy for the batch.
    pub fn total_energy(&self) -> EnergyBreakdown {
        self.layers.iter().map(|l| l.energy).sum()
    }

    /// Energy per input, already broken down by component.
    pub fn energy_per_input(&self) -> EnergyBreakdown {
        self.total_energy().scaled(1.0 / self.batch as f64)
    }

    /// Total off-chip traffic in bits.
    pub fn total_dram_bits(&self) -> u64 {
        self.layers.iter().map(|l| l.dram_bits).sum()
    }

    /// Total MACs.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Average achieved MACs per cycle across the run.
    pub fn macs_per_cycle(&self) -> f64 {
        self.total_macs() as f64 / self.total_cycles() as f64
    }

    /// Total stall attribution across layers.
    pub fn total_stalls(&self) -> StallBreakdown {
        self.layers.iter().fold(StallBreakdown::default(), |a, l| StallBreakdown {
            bandwidth_starved: a.bandwidth_starved + l.stalls.bandwidth_starved,
            compute_starved: a.compute_starved + l.stalls.compute_starved,
            fill_drain: a.fill_drain + l.stalls.fill_drain,
        })
    }
}

impl fmt::Display for PerfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} (batch {}): {:.3} ms/input, {} cycles, {:.1} MACs/cycle, {}",
            self.model_name,
            self.batch,
            self.latency_ms_per_input(),
            self.total_cycles(),
            self.macs_per_cycle(),
            self.energy_per_input()
        )?;
        for l in &self.layers {
            writeln!(
                f,
                "  {:<12} {:>12} cyc ({}) {:>8.1} MACs/cyc",
                l.name,
                l.cycles,
                if l.is_bandwidth_bound() { "mem " } else { "comp" },
                l.macs_per_cycle()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(name: &str, cycles: u64, compute: u64, dma: u64) -> LayerPerf {
        LayerPerf {
            name: name.into(),
            cycles,
            compute_cycles: compute,
            dma_cycles: dma,
            dram_bits: 1000,
            macs: 10_000,
            energy: EnergyBreakdown {
                compute_pj: 1.0,
                buffer_pj: 2.0,
                rf_pj: 0.0,
                dram_pj: 7.0,
            },
            stalls: StallBreakdown {
                bandwidth_starved: 10,
                compute_starved: 5,
                fill_drain: 2,
            },
            occupancy: BufferOccupancy::default(),
        }
    }

    fn report() -> PerfReport {
        PerfReport {
            model_name: "m".into(),
            batch: 2,
            freq_mhz: 500,
            layers: vec![layer("a", 100, 100, 20), layer("b", 300, 50, 300)],
        }
    }

    #[test]
    fn totals() {
        let r = report();
        assert_eq!(r.total_cycles(), 400);
        assert_eq!(r.cycles_per_input(), 200.0);
        assert_eq!(r.total_macs(), 20_000);
        assert_eq!(r.total_dram_bits(), 2000);
        assert!((r.runtime_ms() - 400.0 / 500e3).abs() < 1e-12);
        assert!((r.total_energy().total_pj() - 20.0).abs() < 1e-12);
        assert!((r.energy_per_input().total_pj() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn stall_totals_sum_layers() {
        let r = report();
        let s = r.total_stalls();
        assert_eq!(s.bandwidth_starved, 20);
        assert_eq!(s.compute_starved, 10);
        assert_eq!(s.fill_drain, 4);
    }

    #[test]
    fn occupancy_indexes_by_scratchpad() {
        let o = BufferOccupancy {
            highwater_bits: [10, 20, 30],
        };
        assert_eq!(o.bits(Scratchpad::Ibuf), 10);
        assert_eq!(o.bits(Scratchpad::Wbuf), 20);
        assert_eq!(o.bits(Scratchpad::Obuf), 30);
    }

    #[test]
    fn bandwidth_bound_flag() {
        let r = report();
        assert!(!r.layers[0].is_bandwidth_bound());
        assert!(r.layers[1].is_bandwidth_bound());
    }

    #[test]
    fn display_contains_layers() {
        let text = report().to_string();
        assert!(text.contains("mem"));
        assert!(text.contains("comp"));
    }
}
