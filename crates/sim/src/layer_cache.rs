//! The layer tier of the two-tier cache, instantiated for simulation: a
//! shared memo of per-layer [`LayerPerf`] results.
//!
//! The model tier ([`bitfusion_compiler::ArtifactCache`]) makes *plans*
//! compile-once; this tier makes *evaluations* run-once. A layer's
//! performance depends only on its structural fingerprint
//! ([`bitfusion_compiler::layer_fingerprint`] — shape, `PairPrecision`,
//! tiling, fused post-ops), the batch, the architecture's geometry and
//! off-chip bandwidth, and the evaluation context (backend + calibration
//! knobs, folded into [`eval_context`]). Networks full of repeated layer
//! shapes — ResNet-18's basic blocks, VGG's conv stacks — and design-space
//! sweeps that re-visit the same layer at many grid points collapse onto
//! one evaluation per unique [`LayerKey`].
//!
//! Correctness note: cached values are *deterministic* functions of their
//! key (both backends are pure), so cache warmth can change wall-clock
//! time but never a result — the service-layer byte-determinism contract
//! holds whether a result came from the cache or a fresh evaluation. The
//! one key-exempt field is the layer's *name*: identical twins at
//! different depths share an entry, so the name is re-stamped from the
//! requesting layer on every hit.
//!
//! When a [`bitfusion_compiler::DiskArtifactStore`] is attached to the
//! cache, this module is also the tier's codec: [`LayerPerf`] values are
//! persisted with `f64` energies as exact bit patterns and a fingerprint
//! of the value's debug form that is re-verified on load, so lookup order
//! becomes memory → disk → compute and a disk-served result is
//! bit-identical to a fresh evaluation (same contract, third tier).

use bitfusion_compiler::store::{content_hash, hash_hex, json_u64};
use bitfusion_compiler::{layer_fingerprint, LayerArtifactCache, LayerKey, PlannedLayer};
use bitfusion_core::arch::ArchConfig;
use bitfusion_core::json::Json;
use bitfusion_dnn::model::Model;
use bitfusion_energy::{EnergyBreakdown, FusionEnergy};

use crate::backend::SimBackend;
use crate::engine::SimOptions;
use crate::stats::{BufferOccupancy, LayerPerf, PerfReport, StallBreakdown};

/// The layer tier instantiated with simulation results.
pub type LayerPerfCache = LayerArtifactCache<LayerPerf>;

/// Folds every evaluation input [`LayerKey`] cannot cover structurally
/// into its `context` discriminant: the backend identity and the exact bit
/// patterns of the calibration knobs (two [`SimOptions`] differing in the
/// last ulp of an efficiency are different contexts — never aliased).
pub fn eval_context(backend_name: &str, opts: &SimOptions) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for b in backend_name.bytes() {
        eat(b);
    }
    eat(b'|');
    for bits in [
        opts.systolic_efficiency.to_bits(),
        opts.dram_efficiency.to_bits(),
    ] {
        for b in bits.to_le_bytes() {
            eat(b);
        }
    }
    for b in format!("{:?}", opts.node).bytes() {
        eat(b);
    }
    h
}

/// Fingerprint of a [`LayerPerf`]'s full debug form — stored inside every
/// persisted layer entry and re-verified after decode, the same exactness
/// safety net the plan tier uses.
pub fn layer_perf_fingerprint(perf: &LayerPerf) -> u64 {
    content_hash(format!("{perf:?}").as_bytes())
}

/// Serializes a [`LayerPerf`] for the disk tier: `u64` counters as checked
/// JSON integers (an overflowing value aborts persistence rather than
/// saturating), `f64` energies as exact bit patterns, plus the value
/// fingerprint. Returns `None` when the value cannot round-trip exactly.
pub fn layer_perf_payload(perf: &LayerPerf) -> Option<Json> {
    let f64_bits = |v: f64| Json::Int(v.to_bits() as i64);
    let body = Json::obj(vec![
        ("name", Json::Str(perf.name.clone())),
        ("cycles", json_u64(perf.cycles)?),
        ("compute_cycles", json_u64(perf.compute_cycles)?),
        ("dma_cycles", json_u64(perf.dma_cycles)?),
        ("dram_bits", json_u64(perf.dram_bits)?),
        ("macs", json_u64(perf.macs)?),
        (
            "energy",
            Json::Arr(vec![
                f64_bits(perf.energy.compute_pj),
                f64_bits(perf.energy.buffer_pj),
                f64_bits(perf.energy.rf_pj),
                f64_bits(perf.energy.dram_pj),
            ]),
        ),
        (
            "stalls",
            Json::Arr(vec![
                json_u64(perf.stalls.bandwidth_starved)?,
                json_u64(perf.stalls.compute_starved)?,
                json_u64(perf.stalls.fill_drain)?,
            ]),
        ),
        (
            "occupancy",
            Json::Arr(
                perf.occupancy
                    .highwater_bits
                    .iter()
                    .map(|&b| json_u64(b))
                    .collect::<Option<Vec<_>>>()?,
            ),
        ),
    ]);
    Some(Json::obj(vec![
        ("fp", Json::Str(hash_hex(layer_perf_fingerprint(perf)))),
        ("perf", body),
    ]))
}

/// Decodes a persisted layer entry, verifying the stored value
/// fingerprint against the decoded result. `None` (any malformed field or
/// a fingerprint mismatch) quarantines the entry at the store layer.
pub fn layer_perf_from_payload(payload: &Json) -> Option<LayerPerf> {
    let doc = payload.get("perf")?;
    // Bit patterns with the sign bit set decode as negative `Json::Int`s,
    // so read the raw integer rather than going through `as_u64`.
    let f64_bits = |j: &Json| match j {
        Json::Int(i) => Some(f64::from_bits(*i as u64)),
        _ => None,
    };
    let energy = doc.get("energy")?.as_arr()?;
    let stalls = doc.get("stalls")?.as_arr()?;
    let occupancy = doc.get("occupancy")?.as_arr()?;
    if energy.len() != 4 || stalls.len() != 3 || occupancy.len() != 3 {
        return None;
    }
    let perf = LayerPerf {
        name: doc.get("name")?.as_str()?.to_string(),
        cycles: doc.get("cycles")?.as_u64()?,
        compute_cycles: doc.get("compute_cycles")?.as_u64()?,
        dma_cycles: doc.get("dma_cycles")?.as_u64()?,
        dram_bits: doc.get("dram_bits")?.as_u64()?,
        macs: doc.get("macs")?.as_u64()?,
        energy: EnergyBreakdown {
            compute_pj: f64_bits(&energy[0])?,
            buffer_pj: f64_bits(&energy[1])?,
            rf_pj: f64_bits(&energy[2])?,
            dram_pj: f64_bits(&energy[3])?,
        },
        stalls: StallBreakdown {
            bandwidth_starved: stalls[0].as_u64()?,
            compute_starved: stalls[1].as_u64()?,
            fill_drain: stalls[2].as_u64()?,
        },
        occupancy: BufferOccupancy {
            highwater_bits: [
                occupancy[0].as_u64()?,
                occupancy[1].as_u64()?,
                occupancy[2].as_u64()?,
            ],
        },
    };
    (payload.get("fp")?.as_str()? == hash_hex(layer_perf_fingerprint(&perf))).then_some(perf)
}

/// Evaluates one planned layer through the layer cache: a hit returns the
/// memoized [`LayerPerf`] (name re-stamped from `layer`), a miss runs the
/// backend and publishes the result.
///
/// `fingerprint` is taken precomputed (see
/// [`bitfusion_compiler::layer_fingerprint`]) so sweeps hashing a plan's
/// layers once can reuse them across thousands of points; likewise
/// `context` (see [`eval_context`]).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_layer_cached<B: SimBackend + ?Sized>(
    backend: &B,
    layer: &PlannedLayer,
    fingerprint: u64,
    batch: u64,
    arch: &ArchConfig,
    energy: &FusionEnergy,
    opts: &SimOptions,
    context: u64,
    cache: &LayerPerfCache,
) -> LayerPerf {
    let key = LayerKey::of(fingerprint, arch, batch, context);
    if let Some(mut perf) = cache.lookup(&key) {
        // Identical twins at different depths share the entry; only the
        // name is per-instance.
        perf.name.clone_from(&layer.name);
        return perf;
    }
    if let Some(store) = cache.disk() {
        // Memory miss, disk tier attached: a verified disk entry is
        // promoted into memory and re-stamped like any other hit.
        if let Some(mut perf) = store.load_layer_with(&key, layer_perf_from_payload) {
            cache.insert(key, perf.clone());
            perf.name.clone_from(&layer.name);
            return perf;
        }
    }
    let perf = backend.evaluate_layer(layer, arch, energy, opts);
    if let Some(store) = cache.disk() {
        if let Some(payload) = layer_perf_payload(&perf) {
            store.store_layer(&key, payload);
        }
    }
    cache.insert(key, perf.clone());
    perf
}

/// Evaluates a whole compiled plan through the layer cache, assembling the
/// same [`PerfReport`] as `BitFusionSim::run_plan` — the session facade's
/// `report`/`compare` path.
pub fn run_plan_cached<B: SimBackend + ?Sized>(
    backend: &B,
    plan: &bitfusion_compiler::ExecutionPlan,
    arch: &ArchConfig,
    energy: &FusionEnergy,
    opts: &SimOptions,
    cache: &LayerPerfCache,
) -> PerfReport {
    let context = eval_context(backend.name(), opts);
    PerfReport {
        model_name: plan.model_name.clone(),
        batch: plan.batch,
        freq_mhz: arch.freq_mhz,
        layers: plan
            .layers
            .iter()
            .map(|l| {
                evaluate_layer_cached(
                    backend,
                    l,
                    layer_fingerprint(l),
                    plan.batch,
                    arch,
                    energy,
                    opts,
                    context,
                    cache,
                )
            })
            .collect(),
    }
}

/// Spec-level layer sharing within one plan, independent of cache warmth:
/// `(hits, misses)` where `misses` is the number of unique layer
/// fingerprints and `hits` the evaluations they absorb. This is what the
/// typed protocol reports (warmth-dependent cache counters would break
/// byte-determinism).
pub fn plan_layer_sharing(plan: &bitfusion_compiler::ExecutionPlan) -> (u64, u64) {
    let mut unique = std::collections::HashSet::new();
    for l in &plan.layers {
        unique.insert(layer_fingerprint(l));
    }
    (
        plan.layers.len() as u64 - unique.len() as u64,
        unique.len() as u64,
    )
}

/// Compile (direct, uncached model tier) + evaluate through the layer
/// cache — a convenience mirroring `BitFusionSim::run`.
///
/// # Errors
///
/// Propagates compilation failures.
pub fn run_cached<B: SimBackend + ?Sized>(
    backend: &B,
    model: &Model,
    arch: &ArchConfig,
    batch: u64,
    opts: &SimOptions,
    cache: &LayerPerfCache,
) -> Result<PerfReport, bitfusion_compiler::CompileError> {
    let plan = bitfusion_compiler::compile(model, arch, batch)?;
    let energy = FusionEnergy::isca_45nm();
    Ok(run_plan_cached(backend, &plan, arch, &energy, opts, cache))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::BitFusionSim;
    use crate::backend::AnalyticBackend;
    use crate::event::EventBackend;
    use bitfusion_dnn::zoo::Benchmark;

    #[test]
    fn cached_run_matches_the_direct_path_cold_and_warm() {
        let arch = ArchConfig::isca_45nm();
        let model = Benchmark::ResNet18.model();
        let opts = SimOptions::default();
        let direct = BitFusionSim::new(arch.clone()).run(&model, 16).unwrap();
        let cache = LayerPerfCache::default();
        let cold = run_cached(&AnalyticBackend, &model, &arch, 16, &opts, &cache).unwrap();
        assert_eq!(cold, direct, "cold cached run must equal the direct path");
        let stats = cache.stats();
        assert!(stats.hits > 0, "ResNet-18 repeats basic blocks: {stats:?}");
        let warm = run_cached(&AnalyticBackend, &model, &arch, 16, &opts, &cache).unwrap();
        assert_eq!(warm, direct, "warmth must never change bytes");
        assert_eq!(cache.stats().misses, stats.misses, "no re-evaluation");
    }

    #[test]
    fn twin_layers_keep_their_own_names() {
        let arch = ArchConfig::isca_45nm();
        let cache = LayerPerfCache::default();
        let report = run_cached(
            &AnalyticBackend,
            &Benchmark::ResNet18.model(),
            &arch,
            16,
            &SimOptions::default(),
            &cache,
        )
        .unwrap();
        let mut names = std::collections::HashSet::new();
        for l in &report.layers {
            assert!(names.insert(l.name.clone()), "duplicate name {}", l.name);
        }
    }

    #[test]
    fn contexts_split_backends_options_and_nodes() {
        let base = SimOptions::default();
        let analytic = eval_context("analytic", &base);
        assert_eq!(analytic, eval_context("analytic", &base));
        assert_ne!(analytic, eval_context("event", &base));
        let slow = SimOptions {
            dram_efficiency: 0.35,
            ..base
        };
        assert_ne!(analytic, eval_context("analytic", &slow));
        let node16 = SimOptions {
            node: bitfusion_energy::TechNode::Nm16,
            ..base
        };
        assert_ne!(analytic, eval_context("analytic", &node16));
    }

    #[test]
    fn backends_never_share_layer_entries() {
        // One cache serving both backends: the context discriminant keeps
        // the event backend's stall-attributed results from answering
        // analytic requests.
        let arch = ArchConfig::isca_45nm();
        let model = Benchmark::Rnn.model();
        let opts = SimOptions::default();
        let cache = LayerPerfCache::default();
        let an = run_cached(&AnalyticBackend, &model, &arch, 1, &opts, &cache).unwrap();
        let ev = run_cached(&EventBackend, &model, &arch, 1, &opts, &cache).unwrap();
        assert_eq!(an.total_dram_bits(), ev.total_dram_bits());
        assert_ne!(
            an.layers[0].cycles, ev.layers[0].cycles,
            "backends differ in timing, so entries must not alias"
        );
        let direct_ev = BitFusionSim::event(arch).run(&model, 1).unwrap();
        assert_eq!(ev, direct_ev);
    }

    #[test]
    fn bandwidth_splits_layer_entries() {
        let model = Benchmark::Rnn.model();
        let opts = SimOptions::default();
        let cache = LayerPerfCache::default();
        let narrow = ArchConfig::isca_45nm().with_bandwidth(32);
        let wide = ArchConfig::isca_45nm().with_bandwidth(512);
        let slow = run_cached(&AnalyticBackend, &model, &narrow, 16, &opts, &cache).unwrap();
        let fast = run_cached(&AnalyticBackend, &model, &wide, 16, &opts, &cache).unwrap();
        assert!(
            slow.total_cycles() > fast.total_cycles(),
            "a shared entry across bandwidths would flatten Figure 15"
        );
    }

    #[test]
    fn layer_perf_payload_round_trips_exact_bits() {
        let perf = LayerPerf {
            name: "conv2_1/\"quoted\"".to_string(),
            cycles: 123_456_789,
            compute_cycles: 100_000_000,
            dma_cycles: 23_456_789,
            dram_bits: u64::from(u32::MAX) * 64,
            macs: 1 << 40,
            energy: EnergyBreakdown {
                compute_pj: 0.1 + 0.2, // not exactly representable in decimal
                buffer_pj: -0.0,
                rf_pj: f64::MIN_POSITIVE,
                dram_pj: 1.0e300,
            },
            stalls: StallBreakdown {
                bandwidth_starved: 7,
                compute_starved: 0,
                fill_drain: 42,
            },
            occupancy: BufferOccupancy {
                highwater_bits: [1, 2, 3],
            },
        };
        let payload = layer_perf_payload(&perf).unwrap();
        // Through the deterministic text encoding, as on disk.
        let reparsed = bitfusion_core::json::parse(&payload.encode()).unwrap();
        let back = layer_perf_from_payload(&reparsed).unwrap();
        assert_eq!(format!("{back:?}"), format!("{perf:?}"));
        assert_eq!(back.energy.buffer_pj.to_bits(), (-0.0f64).to_bits());
        // A counter that cannot round-trip through i64 aborts persistence.
        let mut overflowing = perf.clone();
        overflowing.cycles = u64::MAX;
        assert!(layer_perf_payload(&overflowing).is_none());
    }

    #[test]
    fn disk_tier_serves_layers_byte_identically_across_restart() {
        let dir = std::env::temp_dir().join(format!(
            "bf-layer-store-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let arch = ArchConfig::isca_45nm();
        let model = Benchmark::ResNet18.model();
        let opts = SimOptions::default();
        let plain = LayerPerfCache::default();
        let expected =
            run_cached(&EventBackend, &model, &arch, 16, &opts, &plain).unwrap();
        {
            let store =
                std::sync::Arc::new(bitfusion_compiler::DiskArtifactStore::open(&dir).unwrap());
            let cache = LayerPerfCache::default();
            cache.attach_store(store.clone());
            let cold = run_cached(&EventBackend, &model, &arch, 16, &opts, &cache).unwrap();
            assert_eq!(cold, expected, "attaching a store must not change results");
            let stats = store.stats();
            assert!(stats.writes > 0, "{stats:?}");
            assert_eq!(stats.layer_hits, 0, "first run is all disk misses");
        }
        // A "restarted process": fresh memory cache, same directory.
        let store =
            std::sync::Arc::new(bitfusion_compiler::DiskArtifactStore::open(&dir).unwrap());
        let cache = LayerPerfCache::default();
        cache.attach_store(store.clone());
        let warm = run_cached(&EventBackend, &model, &arch, 16, &opts, &cache).unwrap();
        assert_eq!(warm, expected, "disk-served results must be bit-identical");
        let stats = store.stats();
        assert_eq!(
            stats.layer_hits,
            cache.stats().misses,
            "every memory miss was answered from disk: {stats:?}"
        );
        assert_eq!(stats.corrupt, 0);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_layer_sharing_is_structural() {
        let arch = ArchConfig::isca_45nm();
        let plan =
            bitfusion_compiler::compile(&Benchmark::ResNet18.model(), &arch, 16).unwrap();
        let (hits, misses) = plan_layer_sharing(&plan);
        assert_eq!(hits + misses, plan.layers.len() as u64);
        assert!(misses >= 1);
        // ResNet-18 repeats basic-block shapes: some sharing must exist.
        assert!(hits > 0, "{hits} hits / {misses} unique");
    }
}
