//! The layer tier of the two-tier cache, instantiated for simulation: a
//! shared memo of per-layer [`LayerPerf`] results.
//!
//! The model tier ([`bitfusion_compiler::ArtifactCache`]) makes *plans*
//! compile-once; this tier makes *evaluations* run-once. A layer's
//! performance depends only on its structural fingerprint
//! ([`bitfusion_compiler::layer_fingerprint`] — shape, `PairPrecision`,
//! tiling, fused post-ops), the batch, the architecture's geometry and
//! off-chip bandwidth, and the evaluation context (backend + calibration
//! knobs, folded into [`eval_context`]). Networks full of repeated layer
//! shapes — ResNet-18's basic blocks, VGG's conv stacks — and design-space
//! sweeps that re-visit the same layer at many grid points collapse onto
//! one evaluation per unique [`LayerKey`].
//!
//! Correctness note: cached values are *deterministic* functions of their
//! key (both backends are pure), so cache warmth can change wall-clock
//! time but never a result — the service-layer byte-determinism contract
//! holds whether a result came from the cache or a fresh evaluation. The
//! one key-exempt field is the layer's *name*: identical twins at
//! different depths share an entry, so the name is re-stamped from the
//! requesting layer on every hit.

use bitfusion_compiler::{layer_fingerprint, LayerArtifactCache, LayerKey, PlannedLayer};
use bitfusion_core::arch::ArchConfig;
use bitfusion_dnn::model::Model;
use bitfusion_energy::FusionEnergy;

use crate::backend::SimBackend;
use crate::engine::SimOptions;
use crate::stats::{LayerPerf, PerfReport};

/// The layer tier instantiated with simulation results.
pub type LayerPerfCache = LayerArtifactCache<LayerPerf>;

/// Folds every evaluation input [`LayerKey`] cannot cover structurally
/// into its `context` discriminant: the backend identity and the exact bit
/// patterns of the calibration knobs (two [`SimOptions`] differing in the
/// last ulp of an efficiency are different contexts — never aliased).
pub fn eval_context(backend_name: &str, opts: &SimOptions) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for b in backend_name.bytes() {
        eat(b);
    }
    eat(b'|');
    for bits in [
        opts.systolic_efficiency.to_bits(),
        opts.dram_efficiency.to_bits(),
    ] {
        for b in bits.to_le_bytes() {
            eat(b);
        }
    }
    for b in format!("{:?}", opts.node).bytes() {
        eat(b);
    }
    h
}

/// Evaluates one planned layer through the layer cache: a hit returns the
/// memoized [`LayerPerf`] (name re-stamped from `layer`), a miss runs the
/// backend and publishes the result.
///
/// `fingerprint` is taken precomputed (see
/// [`bitfusion_compiler::layer_fingerprint`]) so sweeps hashing a plan's
/// layers once can reuse them across thousands of points; likewise
/// `context` (see [`eval_context`]).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_layer_cached<B: SimBackend + ?Sized>(
    backend: &B,
    layer: &PlannedLayer,
    fingerprint: u64,
    batch: u64,
    arch: &ArchConfig,
    energy: &FusionEnergy,
    opts: &SimOptions,
    context: u64,
    cache: &LayerPerfCache,
) -> LayerPerf {
    let key = LayerKey::of(fingerprint, arch, batch, context);
    if let Some(mut perf) = cache.lookup(&key) {
        // Identical twins at different depths share the entry; only the
        // name is per-instance.
        perf.name.clone_from(&layer.name);
        return perf;
    }
    let perf = backend.evaluate_layer(layer, arch, energy, opts);
    cache.insert(key, perf.clone());
    perf
}

/// Evaluates a whole compiled plan through the layer cache, assembling the
/// same [`PerfReport`] as `BitFusionSim::run_plan` — the session facade's
/// `report`/`compare` path.
pub fn run_plan_cached<B: SimBackend + ?Sized>(
    backend: &B,
    plan: &bitfusion_compiler::ExecutionPlan,
    arch: &ArchConfig,
    energy: &FusionEnergy,
    opts: &SimOptions,
    cache: &LayerPerfCache,
) -> PerfReport {
    let context = eval_context(backend.name(), opts);
    PerfReport {
        model_name: plan.model_name.clone(),
        batch: plan.batch,
        freq_mhz: arch.freq_mhz,
        layers: plan
            .layers
            .iter()
            .map(|l| {
                evaluate_layer_cached(
                    backend,
                    l,
                    layer_fingerprint(l),
                    plan.batch,
                    arch,
                    energy,
                    opts,
                    context,
                    cache,
                )
            })
            .collect(),
    }
}

/// Spec-level layer sharing within one plan, independent of cache warmth:
/// `(hits, misses)` where `misses` is the number of unique layer
/// fingerprints and `hits` the evaluations they absorb. This is what the
/// typed protocol reports (warmth-dependent cache counters would break
/// byte-determinism).
pub fn plan_layer_sharing(plan: &bitfusion_compiler::ExecutionPlan) -> (u64, u64) {
    let mut unique = std::collections::HashSet::new();
    for l in &plan.layers {
        unique.insert(layer_fingerprint(l));
    }
    (
        plan.layers.len() as u64 - unique.len() as u64,
        unique.len() as u64,
    )
}

/// Compile (direct, uncached model tier) + evaluate through the layer
/// cache — a convenience mirroring `BitFusionSim::run`.
///
/// # Errors
///
/// Propagates compilation failures.
pub fn run_cached<B: SimBackend + ?Sized>(
    backend: &B,
    model: &Model,
    arch: &ArchConfig,
    batch: u64,
    opts: &SimOptions,
    cache: &LayerPerfCache,
) -> Result<PerfReport, bitfusion_compiler::CompileError> {
    let plan = bitfusion_compiler::compile(model, arch, batch)?;
    let energy = FusionEnergy::isca_45nm();
    Ok(run_plan_cached(backend, &plan, arch, &energy, opts, cache))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::BitFusionSim;
    use crate::backend::AnalyticBackend;
    use crate::event::EventBackend;
    use bitfusion_dnn::zoo::Benchmark;

    #[test]
    fn cached_run_matches_the_direct_path_cold_and_warm() {
        let arch = ArchConfig::isca_45nm();
        let model = Benchmark::ResNet18.model();
        let opts = SimOptions::default();
        let direct = BitFusionSim::new(arch.clone()).run(&model, 16).unwrap();
        let cache = LayerPerfCache::default();
        let cold = run_cached(&AnalyticBackend, &model, &arch, 16, &opts, &cache).unwrap();
        assert_eq!(cold, direct, "cold cached run must equal the direct path");
        let stats = cache.stats();
        assert!(stats.hits > 0, "ResNet-18 repeats basic blocks: {stats:?}");
        let warm = run_cached(&AnalyticBackend, &model, &arch, 16, &opts, &cache).unwrap();
        assert_eq!(warm, direct, "warmth must never change bytes");
        assert_eq!(cache.stats().misses, stats.misses, "no re-evaluation");
    }

    #[test]
    fn twin_layers_keep_their_own_names() {
        let arch = ArchConfig::isca_45nm();
        let cache = LayerPerfCache::default();
        let report = run_cached(
            &AnalyticBackend,
            &Benchmark::ResNet18.model(),
            &arch,
            16,
            &SimOptions::default(),
            &cache,
        )
        .unwrap();
        let mut names = std::collections::HashSet::new();
        for l in &report.layers {
            assert!(names.insert(l.name.clone()), "duplicate name {}", l.name);
        }
    }

    #[test]
    fn contexts_split_backends_options_and_nodes() {
        let base = SimOptions::default();
        let analytic = eval_context("analytic", &base);
        assert_eq!(analytic, eval_context("analytic", &base));
        assert_ne!(analytic, eval_context("event", &base));
        let slow = SimOptions {
            dram_efficiency: 0.35,
            ..base
        };
        assert_ne!(analytic, eval_context("analytic", &slow));
        let node16 = SimOptions {
            node: bitfusion_energy::TechNode::Nm16,
            ..base
        };
        assert_ne!(analytic, eval_context("analytic", &node16));
    }

    #[test]
    fn backends_never_share_layer_entries() {
        // One cache serving both backends: the context discriminant keeps
        // the event backend's stall-attributed results from answering
        // analytic requests.
        let arch = ArchConfig::isca_45nm();
        let model = Benchmark::Rnn.model();
        let opts = SimOptions::default();
        let cache = LayerPerfCache::default();
        let an = run_cached(&AnalyticBackend, &model, &arch, 1, &opts, &cache).unwrap();
        let ev = run_cached(&EventBackend, &model, &arch, 1, &opts, &cache).unwrap();
        assert_eq!(an.total_dram_bits(), ev.total_dram_bits());
        assert_ne!(
            an.layers[0].cycles, ev.layers[0].cycles,
            "backends differ in timing, so entries must not alias"
        );
        let direct_ev = BitFusionSim::event(arch).run(&model, 1).unwrap();
        assert_eq!(ev, direct_ev);
    }

    #[test]
    fn bandwidth_splits_layer_entries() {
        let model = Benchmark::Rnn.model();
        let opts = SimOptions::default();
        let cache = LayerPerfCache::default();
        let narrow = ArchConfig::isca_45nm().with_bandwidth(32);
        let wide = ArchConfig::isca_45nm().with_bandwidth(512);
        let slow = run_cached(&AnalyticBackend, &model, &narrow, 16, &opts, &cache).unwrap();
        let fast = run_cached(&AnalyticBackend, &model, &wide, 16, &opts, &cache).unwrap();
        assert!(
            slow.total_cycles() > fast.total_cycles(),
            "a shared entry across bandwidths would flatten Figure 15"
        );
    }

    #[test]
    fn plan_layer_sharing_is_structural() {
        let arch = ArchConfig::isca_45nm();
        let plan =
            bitfusion_compiler::compile(&Benchmark::ResNet18.model(), &arch, 16).unwrap();
        let (hits, misses) = plan_layer_sharing(&plan);
        assert_eq!(hits + misses, plan.layers.len() as u64);
        assert!(misses >= 1);
        // ResNet-18 repeats basic-block shapes: some sharing must exist.
        assert!(hits > 0, "{hits} hits / {misses} unique");
    }
}
