//! The closed-form (analytic) performance/energy evaluation of compiled
//! blocks — the fast path behind [`AnalyticBackend`](crate::AnalyticBackend).
//!
//! For each layer group the engine combines two sources of truth:
//!
//! * the **instruction block** — walked analytically
//!   ([`bitfusion_isa::walker::summarize`]) for exact DMA traffic and
//!   dynamic instruction counts; and
//! * the **mapping facts** — the compiler's systolic-step arithmetic
//!   (steps, fills, per-step buffer bits).
//!
//! Timing follows the decoupled-access model of §IV: `ld-mem`/`st-mem` DMA
//! is double-buffered against compute, so a layer costs
//! `prologue + max(compute, dma − prologue) + fill/drain` — the first
//! tiles serialize in front, the rest of the traffic overlaps compute.
//! This is what produces the
//! bandwidth (Figure 15) and batch (Figure 16) sensitivities. The
//! trace-driven [`EventBackend`](crate::EventBackend) models the same
//! machine segment by segment; the two are cross-validated against each
//! other (see `DESIGN.md`, "Simulation backends").
//!
//! The energy model ([`energy_for_layer`]) is shared by both backends, so
//! backend choice affects timing detail only.

use bitfusion_compiler::tiling::residual_tile_bits;
use bitfusion_compiler::{PlannedLayer, PostOp};
use bitfusion_core::arch::ArchConfig;
use bitfusion_energy::{
    EnergyBreakdown, FusionEnergy, SramMacro, TechNode, DRAM_PJ_PER_BIT, POSTOP_OP_PJ,
};
use bitfusion_isa::walker::{summarize, BlockSummary};
use bitfusion_isa::Scratchpad;

use crate::stats::{LayerPerf, StallBreakdown};

/// Calibration knobs of the performance model, documented in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Fraction of peak systolic throughput achieved in steady state
    /// (control bubbles, drain between passes, bank conflicts).
    pub systolic_efficiency: f64,
    /// Fraction of peak DRAM bandwidth achieved (row misses, refresh,
    /// read/write turnaround).
    pub dram_efficiency: f64,
    /// Technology node energies are reported at.
    pub node: TechNode,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            systolic_efficiency: 0.85,
            dram_efficiency: 0.70,
            node: TechNode::Nm45,
        }
    }
}

/// Per-column post-processing throughput: one pooling and one activation
/// unit per column (Figure 3), one operation per cycle each.
fn postop_cycles(ops: u64, cols: u64) -> u64 {
    ops.div_ceil(cols.max(1))
}

/// The energy model shared by both simulation backends: datapath + RF from
/// the mapping facts, buffer traffic from the mapping plus the block's DMA
/// counts, DRAM from the summary. Backends differ in *timing* only, so the
/// same block summary always yields the same energy.
pub fn energy_for_layer(
    layer: &PlannedLayer,
    arch: &ArchConfig,
    energy_model: &FusionEnergy,
    opts: &SimOptions,
    summary: &BlockSummary,
) -> EnergyBreakdown {
    let m = &layer.mapping;
    let scale = opts.node.energy_scale_from_45();
    let compute_pj = (m.macs as f64 * energy_model.compute_mac_pj(layer.gemm.pair)
        // Post-op units: charge a register-scale op each.
        + m.postop_ops as f64 * POSTOP_OP_PJ)
        * scale;
    // Fusion Unit output/pipeline registers: the Figure 14 "RF" category.
    let rf_pj = m.macs as f64 * energy_model.rf_mac_pj(layer.gemm.pair) * scale;

    // Buffer energy: datapath reads plus DMA fill/drain traffic, charged at
    // whole physical accesses on each macro. The weight buffer is
    // distributed (one small slice per Fusion Unit), which is exactly why
    // its per-bit energy stays low at high weight bandwidth.
    let ibuf = SramMacro::new(arch.ibuf_bytes, arch.buffer_access_bits);
    let wbuf_slice = SramMacro::new(
        (arch.wbuf_bytes / arch.fusion_units()).max(16),
        arch.buffer_access_bits,
    );
    let obuf = SramMacro::new(arch.obuf_bytes, arch.buffer_access_bits);
    let ibuf_bits = m.compute_steps * m.ibuf_bits_per_step
        + summary.buffer(Scratchpad::Ibuf).dma_load_bits;
    let wbuf_bits = m.compute_steps * m.wbuf_bits_per_step
        + summary.buffer(Scratchpad::Wbuf).dma_load_bits;
    let obuf_bits = m.obuf_write_bits
        + m.obuf_read_bits
        + summary.buffer(Scratchpad::Obuf).dma_load_bits
        + summary.buffer(Scratchpad::Obuf).dma_store_bits;
    let buffer_pj = (ibuf.energy_for_bits_pj(ibuf_bits)
        + wbuf_slice.energy_for_bits_pj(wbuf_bits)
        + obuf.energy_for_bits_pj(obuf_bits))
        * scale;

    let dram_pj = summary.dram_bits() as f64 * DRAM_PJ_PER_BIT * scale;

    EnergyBreakdown {
        compute_pj,
        buffer_pj,
        rf_pj,
        dram_pj,
    }
}

/// Evaluates one compiled layer group on an architecture with the
/// closed-form model (the [`AnalyticBackend`](crate::AnalyticBackend) path).
pub fn evaluate_layer(
    layer: &PlannedLayer,
    arch: &ArchConfig,
    energy_model: &FusionEnergy,
    opts: &SimOptions,
) -> LayerPerf {
    let m = &layer.mapping;
    let summary = summarize(&layer.block);

    // --- Compute timing. ---
    let fill_drain = m.fill_passes * (arch.rows as u64 + arch.cols as u64);
    let mac_cycles = m.compute_steps * m.temporal_cycles + fill_drain;
    let post_cycles = postop_cycles(m.postop_ops, m.cols);
    // Post-processing units run concurrently with the array; the layer's
    // compute time is whichever pipe is longer.
    let compute_cycles =
        ((mac_cycles.max(post_cycles)) as f64 / opts.systolic_efficiency).ceil() as u64;

    // --- DMA timing. ---
    let dram_bits = summary.dram_bits();
    let effective_bw = arch.dram_bits_per_cycle as f64 * opts.dram_efficiency;
    let dma_cycles = (dram_bits as f64 / effective_bw).ceil() as u64;

    // Prologue: the first weight and input tiles (plus any fused residual
    // stream's first slice — it rides IBUF too) cannot overlap with compute
    // (nothing to compute yet). These bits are part of `dma_cycles` already,
    // so the total is `prologue + max(compute, dma - prologue)`: the
    // prologue serializes in front, and only the *remaining* DMA
    // double-buffers against compute. (A one-tile layer thus costs plain
    // `load + compute + store`, matching the event backend.)
    let residual_bits: u64 = layer.postops.iter().map(PostOp::extra_input_bits).sum();
    let first_tiles_bits = layer.tile_plan.tiles.m * layer.tile_plan.tiles.k
        * layer.gemm.pair.weight.bits() as u64
        + layer.tile_plan.tiles.k * layer.tile_plan.tiles.n * layer.gemm.pair.input.bits() as u64
        + residual_tile_bits(&layer.gemm, layer.tile_plan.tiles, residual_bits);
    let prologue = (first_tiles_bits as f64 / effective_bw).ceil() as u64;
    let dma_after_prologue = dma_cycles.saturating_sub(prologue);

    let cycles = prologue + compute_cycles.max(dma_after_prologue);

    // Whole-layer stall estimate from the closed form: the slower pipe
    // covers the faster one; the array also idles through the prologue.
    let stalls = StallBreakdown {
        bandwidth_starved: dma_after_prologue.saturating_sub(compute_cycles) + prologue,
        compute_starved: compute_cycles.saturating_sub(dma_after_prologue),
        fill_drain,
    };

    LayerPerf {
        name: layer.name.clone(),
        cycles,
        compute_cycles,
        dma_cycles,
        dram_bits,
        macs: m.macs,
        energy: energy_for_layer(layer, arch, energy_model, opts, &summary),
        stalls,
        occupancy: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_compiler::compile;
    use bitfusion_dnn::zoo::Benchmark;

    fn eval(b: Benchmark, batch: u64, arch: &ArchConfig) -> Vec<LayerPerf> {
        let plan = compile(&b.model(), arch, batch).unwrap();
        let e = FusionEnergy::isca_45nm();
        let o = SimOptions::default();
        plan.layers
            .iter()
            .map(|l| evaluate_layer(l, arch, &e, &o))
            .collect()
    }

    #[test]
    fn recurrent_layers_are_bandwidth_bound_at_batch_1() {
        // The paper's Figure 15/16 analysis: RNN/LSTM are bandwidth-bound
        // without batching.
        let arch = ArchConfig::isca_45nm();
        for b in [Benchmark::Lstm, Benchmark::Rnn] {
            for l in eval(b, 1, &arch) {
                assert!(l.is_bandwidth_bound(), "{b}/{}", l.name);
            }
        }
    }

    #[test]
    fn batching_amortizes_weight_traffic() {
        let arch = ArchConfig::isca_45nm();
        let per_input = |batch: u64| {
            eval(Benchmark::Lstm, batch, &arch)
                .iter()
                .map(|l| l.cycles)
                .sum::<u64>() as f64
                / batch as f64
        };
        let b1 = per_input(1);
        let b16 = per_input(16);
        assert!(
            b1 / b16 > 3.0,
            "LSTM batch-16 speedup only {:.2}x",
            b1 / b16
        );
    }

    #[test]
    fn conv_layers_are_compute_bound() {
        let arch = ArchConfig::isca_45nm();
        let layers = eval(Benchmark::Cifar10, 16, &arch);
        // The big middle convolutions must be compute-bound at 128 b/cyc.
        let mid = layers.iter().find(|l| l.name == "conv4").unwrap();
        assert!(!mid.is_bandwidth_bound(), "{mid:?}");
    }

    #[test]
    fn bandwidth_scaling_helps_memory_bound_layers() {
        let narrow = ArchConfig::isca_45nm().with_bandwidth(32);
        let wide = ArchConfig::isca_45nm().with_bandwidth(512);
        let cyc = |arch: &ArchConfig| {
            eval(Benchmark::Rnn, 16, arch)
                .iter()
                .map(|l| l.cycles)
                .sum::<u64>()
        };
        let slow = cyc(&narrow);
        let fast = cyc(&wide);
        assert!(slow > fast * 4, "32b {slow} vs 512b {fast}");
    }

    #[test]
    fn energy_dominated_by_memory_system() {
        // Figure 14: >80% of Bit Fusion energy goes to buffers + DRAM.
        let arch = ArchConfig::isca_45nm();
        let total: EnergyBreakdown = eval(Benchmark::AlexNet, 16, &arch)
            .iter()
            .map(|l| l.energy)
            .sum();
        let [compute, buffers, rf, dram] = total.fractions();
        assert!(buffers + dram > 0.7, "buffers {buffers} dram {dram}");
        // The Fusion Unit output registers are a small but nonzero RF
        // sliver (Figure 14).
        assert!(rf > 0.0 && rf < 0.05, "rf {rf}");
        assert!(compute < 0.3);
    }

    #[test]
    fn efficiency_knobs_move_the_right_way() {
        // Lower systolic efficiency -> more cycles on compute-bound layers;
        // lower DRAM efficiency -> more cycles on memory-bound layers.
        let arch = ArchConfig::isca_45nm();
        let plan = compile(&Benchmark::Cifar10.model(), &arch, 16).unwrap();
        let e = FusionEnergy::isca_45nm();
        let conv = plan.layers.iter().find(|l| l.name == "conv4").unwrap();
        let base = evaluate_layer(conv, &arch, &e, &SimOptions::default());
        let slow_array = SimOptions {
            systolic_efficiency: 0.5,
            ..SimOptions::default()
        };
        let slowed = evaluate_layer(conv, &arch, &e, &slow_array);
        assert!(slowed.cycles > base.cycles, "{} vs {}", slowed.cycles, base.cycles);

        let rnn_plan = compile(&Benchmark::Rnn.model(), &arch, 1).unwrap();
        let fc = &rnn_plan.layers[0];
        let base = evaluate_layer(fc, &arch, &e, &SimOptions::default());
        let slow_dram = SimOptions {
            dram_efficiency: 0.35,
            ..SimOptions::default()
        };
        let slowed = evaluate_layer(fc, &arch, &e, &slow_dram);
        assert!(slowed.cycles > base.cycles * 3 / 2);
        // Energy is independent of the timing knobs.
        assert_eq!(slowed.energy, base.energy);
    }

    #[test]
    fn dram_bits_follow_the_compiled_blocks() {
        // The simulator's DRAM traffic must equal the walker's exactly —
        // the two-sources-of-truth contract.
        use bitfusion_isa::walker::summarize;
        let arch = ArchConfig::isca_45nm();
        let plan = compile(&Benchmark::Svhn.model(), &arch, 4).unwrap();
        let e = FusionEnergy::isca_45nm();
        for l in &plan.layers {
            let perf = evaluate_layer(l, &arch, &e, &SimOptions::default());
            assert_eq!(perf.dram_bits, summarize(&l.block).dram_bits(), "{}", l.name);
        }
    }

    #[test]
    fn node_scaling_reduces_energy() {
        let arch = ArchConfig::isca_45nm();
        let plan = compile(&Benchmark::Svhn.model(), &arch, 4).unwrap();
        let e = FusionEnergy::isca_45nm();
        let e45 = evaluate_layer(&plan.layers[0], &arch, &e, &SimOptions::default());
        let o16 = SimOptions {
            node: TechNode::Nm16,
            ..SimOptions::default()
        };
        let e16 = evaluate_layer(&plan.layers[0], &arch, &e, &o16);
        let ratio = e16.energy.total_pj() / e45.energy.total_pj();
        assert!((ratio - 0.31).abs() < 0.01, "{ratio}");
        // Cycles unchanged by node in this model (frequency held at 500 MHz
        // per the paper's conservative scaling).
        assert_eq!(e16.cycles, e45.cycles);
    }
}
