//! The closed-form (analytic) performance/energy evaluation of compiled
//! blocks — the fast path behind [`AnalyticBackend`](crate::AnalyticBackend).
//!
//! For each layer group the engine combines two sources of truth:
//!
//! * the **instruction block** — walked analytically
//!   ([`bitfusion_isa::walker::summarize`]) for exact DMA traffic and
//!   dynamic instruction counts; and
//! * the **mapping facts** — the compiler's systolic-step arithmetic
//!   (steps, fills, per-step buffer bits).
//!
//! Timing follows the decoupled-access model of §IV: `ld-mem`/`st-mem` DMA
//! is double-buffered against compute, so a layer costs
//! `prologue + max(compute, dma − prologue) + fill/drain` — the first
//! tiles serialize in front, the rest of the traffic overlaps compute.
//! This is what produces the
//! bandwidth (Figure 15) and batch (Figure 16) sensitivities. The
//! trace-driven [`EventBackend`](crate::EventBackend) models the same
//! machine segment by segment; the two are cross-validated against each
//! other (see `DESIGN.md`, "Simulation backends").
//!
//! The energy model ([`energy_for_layer`]) is shared by both backends, so
//! backend choice affects timing detail only.

use bitfusion_compiler::tiling::residual_tile_bits;
use bitfusion_compiler::{PlannedLayer, PostOp};
use bitfusion_core::arch::ArchConfig;
use bitfusion_energy::{
    EnergyBreakdown, FusionEnergy, SramMacro, TechNode, DRAM_PJ_PER_BIT, POSTOP_OP_PJ,
};
use bitfusion_isa::walker::{summarize, BlockSummary};
use bitfusion_isa::Scratchpad;

use crate::stats::{LayerPerf, StallBreakdown};

/// Calibration knobs of the performance model, documented in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Fraction of peak systolic throughput achieved in steady state
    /// (control bubbles, drain between passes, bank conflicts).
    pub systolic_efficiency: f64,
    /// Fraction of peak DRAM bandwidth achieved (row misses, refresh,
    /// read/write turnaround).
    pub dram_efficiency: f64,
    /// Technology node energies are reported at.
    pub node: TechNode,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            systolic_efficiency: 0.85,
            dram_efficiency: 0.70,
            node: TechNode::Nm45,
        }
    }
}

/// Per-column post-processing throughput: one pooling and one activation
/// unit per column (Figure 3), one operation per cycle each.
fn postop_cycles(ops: u64, cols: u64) -> u64 {
    ops.div_ceil(cols.max(1))
}

/// A derated rate (`raw × efficiency` units per cycle) held as an exact
/// dyadic rational `num / 2^shift`, for overflow- and precision-safe cycle
/// division.
///
/// The product `raw as f64 * efficiency` is computed once in f64 and
/// decomposed *exactly* into the rational. [`DeratedRate::cycles_for`]
/// then picks its arithmetic by range:
///
/// * while both the amount and the quotient sit inside f64's
///   integer-exact range (below 2^53), one correctly-rounded f64 division
///   — bit-identical to the historical
///   `(amount as f64 / rate).ceil() as u64`, which is also the intended
///   semantics: `896` bits at a nominal `89.6` bits/cycle is 10 cycles,
///   not 11 ceiled against the rate's representation error;
/// * beyond 2^53 — where the old path silently dropped low bits of the
///   dividend, and a blown-up quotient ceiled to nothing — the division
///   runs as an integer `div_ceil` against the rational in u128,
///   saturating at `u64::MAX` instead of wrapping through a cast.
///
/// A zero, negative, or non-finite rate yields `u64::MAX` cycles for any
/// nonzero amount (a dead channel never transfers) rather than a float
/// `inf` squeezed through a cast. Rates below ~2^-11 clamp the denominator
/// at 2^63, rounding the mantissa.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeratedRate {
    /// Mantissa of the rate: `rate = num / 2^shift`, `num == 0` meaning a
    /// dead channel.
    num: u64,
    shift: u32,
}

impl DeratedRate {
    /// The rate `raw * efficiency`, derived from the f64 product exactly.
    pub fn new(raw: u64, efficiency: f64) -> Self {
        let rate = raw as f64 * efficiency;
        if !rate.is_finite() || rate <= 0.0 {
            return DeratedRate { num: 0, shift: 0 };
        }
        // Decompose the positive finite f64 exactly: rate = m * 2^e.
        let bits = rate.to_bits();
        let biased = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mut m, mut e) = if biased == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1u64 << 52), biased - 1075)
        };
        // Reduce common powers of two so integer rates get shift 0.
        let strip = (m.trailing_zeros() as i64).min((-e).max(0));
        m >>= strip;
        e += strip;
        if e >= 0 {
            // An integer rate; e is small (the mantissa has 53 bits and
            // the rate came from a u64 product, so m << e fits).
            let num = m.checked_shl(e as u32).unwrap_or(u64::MAX);
            DeratedRate { num, shift: 0 }
        } else if -e <= 63 {
            DeratedRate {
                num: m,
                shift: (-e) as u32,
            }
        } else {
            // Rates below ~2^-11 of a unit/cycle: cap the denominator at
            // 2^63 (so `amount << shift` fits u128), rounding the mantissa.
            let extra = ((-e) - 63) as u32;
            let num = if extra >= 64 { 1 } else { (m >> extra).max(1) };
            DeratedRate { num, shift: 63 }
        }
    }

    /// The rate as the f64 it was built from (the dyadic decomposition is
    /// exact, so this reconstructs it exactly — `num` never exceeds 53
    /// significant bits and scaling by a power of two is lossless).
    fn rate_f64(&self) -> f64 {
        self.num as f64 * (2.0f64).powi(-(self.shift as i32))
    }

    /// Ceiling cycles to move `amount` units at this rate, saturating at
    /// `u64::MAX` (never an f64-precision-corrupted count).
    pub fn cycles_for(&self, amount: u64) -> u64 {
        const F64_EXACT: u64 = 1 << 53;
        if amount == 0 {
            return 0;
        }
        if self.num == 0 {
            return u64::MAX;
        }
        if amount < F64_EXACT {
            let q = (amount as f64 / self.rate_f64()).ceil();
            if q < F64_EXACT as f64 {
                return q as u64;
            }
        }
        let numer = (amount as u128) << self.shift;
        let cycles = numer.div_ceil(self.num as u128);
        u64::try_from(cycles).unwrap_or(u64::MAX)
    }
}

/// The energy model shared by both simulation backends: datapath + RF from
/// the mapping facts, buffer traffic from the mapping plus the block's DMA
/// counts, DRAM from the summary. Backends differ in *timing* only, so the
/// same block summary always yields the same energy.
pub fn energy_for_layer(
    layer: &PlannedLayer,
    arch: &ArchConfig,
    energy_model: &FusionEnergy,
    opts: &SimOptions,
    summary: &BlockSummary,
) -> EnergyBreakdown {
    let m = &layer.mapping;
    let scale = opts.node.energy_scale_from_45();
    let compute_pj = (m.macs as f64 * energy_model.compute_mac_pj(layer.gemm.pair)
        // Post-op units: charge a register-scale op each.
        + m.postop_ops as f64 * POSTOP_OP_PJ)
        * scale;
    // Fusion Unit output/pipeline registers: the Figure 14 "RF" category.
    let rf_pj = m.macs as f64 * energy_model.rf_mac_pj(layer.gemm.pair) * scale;

    // Buffer energy: datapath reads plus DMA fill/drain traffic, charged at
    // whole physical accesses on each macro. The weight buffer is
    // distributed (one small slice per Fusion Unit), which is exactly why
    // its per-bit energy stays low at high weight bandwidth.
    let ibuf = SramMacro::new(arch.ibuf_bytes, arch.buffer_access_bits);
    let wbuf_slice = SramMacro::new(
        (arch.wbuf_bytes / arch.fusion_units()).max(16),
        arch.buffer_access_bits,
    );
    let obuf = SramMacro::new(arch.obuf_bytes, arch.buffer_access_bits);
    let ibuf_bits = m.compute_steps * m.ibuf_bits_per_step
        + summary.buffer(Scratchpad::Ibuf).dma_load_bits;
    let wbuf_bits = m.compute_steps * m.wbuf_bits_per_step
        + summary.buffer(Scratchpad::Wbuf).dma_load_bits;
    let obuf_bits = m.obuf_write_bits
        + m.obuf_read_bits
        + summary.buffer(Scratchpad::Obuf).dma_load_bits
        + summary.buffer(Scratchpad::Obuf).dma_store_bits;
    let buffer_pj = (ibuf.energy_for_bits_pj(ibuf_bits)
        + wbuf_slice.energy_for_bits_pj(wbuf_bits)
        + obuf.energy_for_bits_pj(obuf_bits))
        * scale;

    let dram_pj = summary.dram_bits() as f64 * DRAM_PJ_PER_BIT * scale;

    EnergyBreakdown {
        compute_pj,
        buffer_pj,
        rf_pj,
        dram_pj,
    }
}

/// Evaluates one compiled layer group on an architecture with the
/// closed-form model (the [`AnalyticBackend`](crate::AnalyticBackend) path).
pub fn evaluate_layer(
    layer: &PlannedLayer,
    arch: &ArchConfig,
    energy_model: &FusionEnergy,
    opts: &SimOptions,
) -> LayerPerf {
    let m = &layer.mapping;
    let summary = summarize(&layer.block);

    // --- Compute timing. ---
    let systolic = DeratedRate::new(1, opts.systolic_efficiency);
    let fill_drain = m
        .fill_passes
        .saturating_mul(arch.rows as u64 + arch.cols as u64);
    let mac_cycles = m
        .compute_steps
        .saturating_mul(m.temporal_cycles)
        .saturating_add(fill_drain);
    let post_cycles = postop_cycles(m.postop_ops, m.cols);
    // Post-processing units run concurrently with the array; the layer's
    // compute time is whichever pipe is longer.
    let compute_cycles = systolic.cycles_for(mac_cycles.max(post_cycles));

    // --- DMA timing. ---
    let dram_bits = summary.dram_bits();
    let effective_bw = DeratedRate::new(arch.dram_bits_per_cycle as u64, opts.dram_efficiency);
    let dma_cycles = effective_bw.cycles_for(dram_bits);

    // Prologue: the first weight and input tiles (plus any fused residual
    // stream's first slice — it rides IBUF too) cannot overlap with compute
    // (nothing to compute yet). These bits are part of `dma_cycles` already,
    // so the total is `prologue + max(compute, dma - prologue)`: the
    // prologue serializes in front, and only the *remaining* DMA
    // double-buffers against compute. (A one-tile layer thus costs plain
    // `load + compute + store`, matching the event backend.)
    let residual_bits: u64 = layer.postops.iter().map(PostOp::extra_input_bits).sum();
    // Depthwise input tiles span all three dimensions (one window per
    // output row); ordinary GEMMs share one `[k × n]` panel.
    let i_tile_elems = layer.tile_plan.tiles.k
        * layer.tile_plan.tiles.n
        * if layer.gemm.depthwise { layer.tile_plan.tiles.m } else { 1 };
    let first_tiles_bits = layer.tile_plan.tiles.m * layer.tile_plan.tiles.k
        * layer.gemm.pair.weight.bits() as u64
        + i_tile_elems * layer.gemm.pair.input.bits() as u64
        + residual_tile_bits(&layer.gemm, layer.tile_plan.tiles, residual_bits);
    let prologue = effective_bw.cycles_for(first_tiles_bits);
    let dma_after_prologue = dma_cycles.saturating_sub(prologue);

    // Epilogue: the last tile's compute starts only after its own load —
    // there is no later DMA left to overlap it, so in a bandwidth-bound
    // layer it serializes at the end, exactly as the event timeline plays
    // it (`T·L + C` for T uniform tiles of load L and compute C < L). A
    // compute-bound layer absorbs it inside `compute_cycles`, and a
    // one-tile layer is fully serial through the prologue term already.
    let epilogue = if m.per_tile.tiles > 1 {
        let last_tile_macs = m
            .per_tile
            .compute_steps
            .saturating_mul(m.temporal_cycles)
            .saturating_add(m.per_tile.fill_passes * (arch.rows as u64 + arch.cols as u64));
        systolic.cycles_for(last_tile_macs)
    } else {
        0
    };
    let dma_and_tail = dma_after_prologue.saturating_add(epilogue);

    let cycles = prologue.saturating_add(compute_cycles.max(dma_and_tail));

    // Whole-layer stall estimate from the closed form: the slower pipe
    // covers the faster one; the array also idles through the prologue.
    let stalls = StallBreakdown {
        bandwidth_starved: dma_and_tail
            .saturating_sub(compute_cycles)
            .saturating_add(prologue),
        compute_starved: compute_cycles.saturating_sub(dma_and_tail),
        fill_drain,
    };

    LayerPerf {
        name: layer.name.clone(),
        cycles,
        compute_cycles,
        dma_cycles,
        dram_bits,
        macs: m.macs,
        energy: energy_for_layer(layer, arch, energy_model, opts, &summary),
        stalls,
        occupancy: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_compiler::compile;
    use bitfusion_dnn::zoo::Benchmark;

    fn eval(b: Benchmark, batch: u64, arch: &ArchConfig) -> Vec<LayerPerf> {
        let plan = compile(&b.model(), arch, batch).unwrap();
        let e = FusionEnergy::isca_45nm();
        let o = SimOptions::default();
        plan.layers
            .iter()
            .map(|l| evaluate_layer(l, arch, &e, &o))
            .collect()
    }

    #[test]
    fn recurrent_layers_are_bandwidth_bound_at_batch_1() {
        // The paper's Figure 15/16 analysis: RNN/LSTM are bandwidth-bound
        // without batching.
        let arch = ArchConfig::isca_45nm();
        for b in [Benchmark::Lstm, Benchmark::Rnn] {
            for l in eval(b, 1, &arch) {
                assert!(l.is_bandwidth_bound(), "{b}/{}", l.name);
            }
        }
    }

    #[test]
    fn batching_amortizes_weight_traffic() {
        let arch = ArchConfig::isca_45nm();
        let per_input = |batch: u64| {
            eval(Benchmark::Lstm, batch, &arch)
                .iter()
                .map(|l| l.cycles)
                .sum::<u64>() as f64
                / batch as f64
        };
        let b1 = per_input(1);
        let b16 = per_input(16);
        assert!(
            b1 / b16 > 3.0,
            "LSTM batch-16 speedup only {:.2}x",
            b1 / b16
        );
    }

    #[test]
    fn conv_layers_are_compute_bound() {
        let arch = ArchConfig::isca_45nm();
        let layers = eval(Benchmark::Cifar10, 16, &arch);
        // The big middle convolutions must be compute-bound at 128 b/cyc.
        let mid = layers.iter().find(|l| l.name == "conv4").unwrap();
        assert!(!mid.is_bandwidth_bound(), "{mid:?}");
    }

    #[test]
    fn bandwidth_scaling_helps_memory_bound_layers() {
        let narrow = ArchConfig::isca_45nm().with_bandwidth(32);
        let wide = ArchConfig::isca_45nm().with_bandwidth(512);
        let cyc = |arch: &ArchConfig| {
            eval(Benchmark::Rnn, 16, arch)
                .iter()
                .map(|l| l.cycles)
                .sum::<u64>()
        };
        let slow = cyc(&narrow);
        let fast = cyc(&wide);
        assert!(slow > fast * 4, "32b {slow} vs 512b {fast}");
    }

    #[test]
    fn energy_dominated_by_memory_system() {
        // Figure 14: >80% of Bit Fusion energy goes to buffers + DRAM.
        let arch = ArchConfig::isca_45nm();
        let total: EnergyBreakdown = eval(Benchmark::AlexNet, 16, &arch)
            .iter()
            .map(|l| l.energy)
            .sum();
        let [compute, buffers, rf, dram] = total.fractions();
        assert!(buffers + dram > 0.7, "buffers {buffers} dram {dram}");
        // The Fusion Unit output registers are a small but nonzero RF
        // sliver (Figure 14).
        assert!(rf > 0.0 && rf < 0.05, "rf {rf}");
        assert!(compute < 0.3);
    }

    #[test]
    fn efficiency_knobs_move_the_right_way() {
        // Lower systolic efficiency -> more cycles on compute-bound layers;
        // lower DRAM efficiency -> more cycles on memory-bound layers.
        let arch = ArchConfig::isca_45nm();
        let plan = compile(&Benchmark::Cifar10.model(), &arch, 16).unwrap();
        let e = FusionEnergy::isca_45nm();
        let conv = plan.layers.iter().find(|l| l.name == "conv4").unwrap();
        let base = evaluate_layer(conv, &arch, &e, &SimOptions::default());
        let slow_array = SimOptions {
            systolic_efficiency: 0.5,
            ..SimOptions::default()
        };
        let slowed = evaluate_layer(conv, &arch, &e, &slow_array);
        assert!(slowed.cycles > base.cycles, "{} vs {}", slowed.cycles, base.cycles);

        let rnn_plan = compile(&Benchmark::Rnn.model(), &arch, 1).unwrap();
        let fc = &rnn_plan.layers[0];
        let base = evaluate_layer(fc, &arch, &e, &SimOptions::default());
        let slow_dram = SimOptions {
            dram_efficiency: 0.35,
            ..SimOptions::default()
        };
        let slowed = evaluate_layer(fc, &arch, &e, &slow_dram);
        assert!(slowed.cycles > base.cycles * 3 / 2);
        // Energy is independent of the timing knobs.
        assert_eq!(slowed.energy, base.energy);
    }

    #[test]
    fn dram_bits_follow_the_compiled_blocks() {
        // The simulator's DRAM traffic must equal the walker's exactly —
        // the two-sources-of-truth contract.
        use bitfusion_isa::walker::summarize;
        let arch = ArchConfig::isca_45nm();
        let plan = compile(&Benchmark::Svhn.model(), &arch, 4).unwrap();
        let e = FusionEnergy::isca_45nm();
        for l in &plan.layers {
            let perf = evaluate_layer(l, &arch, &e, &SimOptions::default());
            assert_eq!(perf.dram_bits, summarize(&l.block).dram_bits(), "{}", l.name);
        }
    }

    #[test]
    fn derated_rate_matches_the_f64_path_at_ordinary_sizes() {
        // Below 2^53 the rational division must reproduce the historical
        // `(x as f64 / (raw as f64 * eff)).ceil() as u64` bit for bit —
        // this is what keeps every pinned cycle figure in place.
        let cases: &[(u64, f64)] = &[
            (128, 0.70),
            (128, 0.35),
            (1, 0.85),
            (1, 0.5),
            (512, 0.70),
            (32, 0.999),
            (64, 1.0),
        ];
        let amounts = [
            0u64,
            1,
            7,
            896,
            12_345,
            1_048_576,
            999_999_937,
            (1u64 << 40) + 12_345,
            (1u64 << 52) - 1,
        ];
        for &(raw, eff) in cases {
            let rate = DeratedRate::new(raw, eff);
            let legacy_rate = raw as f64 * eff;
            for &amount in &amounts {
                let legacy = (amount as f64 / legacy_rate).ceil() as u64;
                assert_eq!(
                    rate.cycles_for(amount),
                    legacy,
                    "raw={raw} eff={eff} amount={amount}"
                );
            }
        }
    }

    #[test]
    fn derated_rate_is_exact_above_f64_integer_range() {
        // The bug under test: `(x as f64)` drops low bits of any x above
        // 2^53, so the legacy ceil-divide silently undercounted cycles.
        // The rational path must not.
        let unit = DeratedRate::new(1, 1.0);
        let x = (1u64 << 53) + 1; // not representable in f64
        assert_eq!(unit.cycles_for(x), x);
        assert_eq!((x as f64).ceil() as u64, x - 1, "f64 loses the +1");

        // Quarter rate: the exact answer is 4x; the f64 round-trip of x
        // loses its low bits first.
        let quarter = DeratedRate::new(1, 0.25);
        let x = (1u64 << 60) + 7;
        assert_eq!(quarter.cycles_for(x), 4 * x);
        assert_ne!((x as f64 / 0.25).ceil() as u64, 4 * x);

        // Ground truth against u128 arithmetic at a messy rate: 89.6
        // bits/cycle as its exact f64 rational.
        let bw = DeratedRate::new(128, 0.70);
        let exact_rate = 128.0f64 * 0.70;
        let bits = exact_rate.to_bits();
        let m = (bits & ((1u64 << 52) - 1)) | (1u64 << 52);
        let e = ((bits >> 52) & 0x7ff) as i64 - 1075; // rate = m * 2^e, e < 0
        for x in [u64::MAX, (1u64 << 62) + 999_999_937, (1u64 << 54) - 3] {
            let want = ((x as u128) << (-e) as u32).div_ceil(m as u128);
            let want = u64::try_from(want).unwrap_or(u64::MAX);
            assert_eq!(bw.cycles_for(x), want, "x={x}");
        }
    }

    #[test]
    fn derated_rate_saturates_instead_of_overflowing() {
        // A derated result past u64::MAX saturates...
        let tiny = DeratedRate::new(1, f64::MIN_POSITIVE);
        assert_eq!(tiny.cycles_for(u64::MAX), u64::MAX);
        assert_eq!(tiny.cycles_for(2), u64::MAX);
        assert!(tiny.cycles_for(1) >= 1 << 63, "clamped rate still enormous");
        // ...and a dead or nonsensical channel never divides by zero.
        for rate in [
            DeratedRate::new(0, 0.7),
            DeratedRate::new(128, 0.0),
            DeratedRate::new(128, -1.0),
            DeratedRate::new(128, f64::NAN),
            DeratedRate::new(128, f64::INFINITY),
        ] {
            assert_eq!(rate.cycles_for(0), 0);
            assert_eq!(rate.cycles_for(1), u64::MAX);
        }
    }

    #[test]
    fn pathological_derating_keeps_backends_in_agreement() {
        // Satellite regression: with a derate small enough that per-layer
        // cycle counts land beyond 2^53, both backends must still agree
        // within the cross-validation band (the old f64 path made them
        // drift independently). 1e-11 of 128 bits/cycle pushes RNN's
        // DMA-dominated layers past 10^16 cycles.
        use crate::backend::{AnalyticBackend, SimBackend, BACKEND_CYCLE_TOLERANCE};
        use crate::event::EventBackend;
        let arch = ArchConfig::isca_45nm();
        let opts = SimOptions {
            dram_efficiency: 1e-11,
            ..SimOptions::default()
        };
        let plan = compile(&Benchmark::Rnn.model(), &arch, 1).unwrap();
        let e = FusionEnergy::isca_45nm();
        let (mut an_total, mut ev_total) = (0u64, 0u64);
        for l in &plan.layers {
            let an = AnalyticBackend.evaluate_layer(l, &arch, &e, &opts);
            let ev = EventBackend.evaluate_layer(l, &arch, &e, &opts);
            assert!(an.cycles > 1 << 53, "not pathological: {}", an.cycles);
            assert_eq!(an.dram_bits, ev.dram_bits, "{}", l.name);
            an_total += an.cycles;
            ev_total += ev.cycles;
        }
        let rel = (ev_total as f64 - an_total as f64).abs() / an_total as f64;
        assert!(
            rel < BACKEND_CYCLE_TOLERANCE,
            "event {ev_total} vs analytic {an_total}"
        );
    }

    #[test]
    fn node_scaling_reduces_energy() {
        let arch = ArchConfig::isca_45nm();
        let plan = compile(&Benchmark::Svhn.model(), &arch, 4).unwrap();
        let e = FusionEnergy::isca_45nm();
        let e45 = evaluate_layer(&plan.layers[0], &arch, &e, &SimOptions::default());
        let o16 = SimOptions {
            node: TechNode::Nm16,
            ..SimOptions::default()
        };
        let e16 = evaluate_layer(&plan.layers[0], &arch, &e, &o16);
        let ratio = e16.energy.total_pj() / e45.energy.total_pj();
        assert!((ratio - 0.31).abs() < 0.01, "{ratio}");
        // Cycles unchanged by node in this model (frequency held at 500 MHz
        // per the paper's conservative scaling).
        assert_eq!(e16.cycles, e45.cycles);
    }
}
