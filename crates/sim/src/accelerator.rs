//! The top-level Bit Fusion simulator: compile + evaluate in one call,
//! generic over the [`SimBackend`] that models timing.

use bitfusion_compiler::{compile, CompileError, ExecutionPlan};
use bitfusion_core::arch::ArchConfig;
use bitfusion_dnn::model::Model;
use bitfusion_energy::FusionEnergy;

use crate::backend::{AnalyticBackend, SimBackend};
use crate::engine::SimOptions;
use crate::event::EventBackend;
use crate::stats::PerfReport;

/// A configured Bit Fusion accelerator simulation.
///
/// The backend type parameter selects the performance model:
/// [`AnalyticBackend`] (the default — closed-form, cheap, used for sweeps)
/// or [`EventBackend`] (trace-driven, with stall attribution and buffer
/// occupancy). Both report identical DRAM traffic, MACs, and energy.
///
/// # Examples
///
/// ```
/// use bitfusion_core::arch::ArchConfig;
/// use bitfusion_dnn::zoo::Benchmark;
/// use bitfusion_sim::BitFusionSim;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sim = BitFusionSim::new(ArchConfig::isca_45nm());
/// let report = sim.run(&Benchmark::Lstm.model(), 16)?;
/// assert!(report.total_cycles() > 0);
///
/// // The trace-driven backend sees the same traffic, cycle by cycle.
/// let ev = BitFusionSim::event(ArchConfig::isca_45nm());
/// let detailed = ev.run(&Benchmark::Lstm.model(), 16)?;
/// assert_eq!(detailed.total_dram_bits(), report.total_dram_bits());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BitFusionSim<B: SimBackend = AnalyticBackend> {
    arch: ArchConfig,
    energy: FusionEnergy,
    options: SimOptions,
    backend: B,
}

impl BitFusionSim<AnalyticBackend> {
    /// Creates a simulator for an architecture with default calibration,
    /// the 45 nm energy model, and the closed-form analytic backend.
    pub fn new(arch: ArchConfig) -> Self {
        BitFusionSim::with_backend(arch, AnalyticBackend)
    }
}

impl BitFusionSim<EventBackend> {
    /// Creates a simulator driven by the trace-driven [`EventBackend`].
    pub fn event(arch: ArchConfig) -> Self {
        BitFusionSim::with_backend(arch, EventBackend)
    }
}

impl<B: SimBackend> BitFusionSim<B> {
    /// Creates a simulator with an explicit backend.
    pub fn with_backend(arch: ArchConfig, backend: B) -> Self {
        BitFusionSim {
            arch,
            energy: FusionEnergy::isca_45nm(),
            options: SimOptions::default(),
            backend,
        }
    }

    /// Overrides the calibration options.
    pub fn with_options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }

    /// The architecture being simulated.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// The calibration options.
    pub fn options(&self) -> &SimOptions {
        &self.options
    }

    /// The performance-model backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Compiles and evaluates a model at a batch size.
    ///
    /// # Errors
    ///
    /// Propagates compilation failures ([`CompileError`]).
    pub fn run(&self, model: &Model, batch: u64) -> Result<PerfReport, CompileError> {
        let plan = compile(model, &self.arch, batch)?;
        Ok(self.run_plan(&plan))
    }

    /// Evaluates an already compiled plan.
    pub fn run_plan(&self, plan: &ExecutionPlan) -> PerfReport {
        PerfReport {
            model_name: plan.model_name.clone(),
            batch: plan.batch,
            freq_mhz: self.arch.freq_mhz,
            layers: plan
                .layers
                .iter()
                .map(|l| {
                    self.backend
                        .evaluate_layer(l, &self.arch, &self.energy, &self.options)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_dnn::zoo::Benchmark;

    #[test]
    fn runs_every_benchmark_at_default_batch() {
        let sim = BitFusionSim::new(ArchConfig::isca_45nm());
        for b in Benchmark::ALL {
            let report = sim.run(&b.model(), 16).unwrap();
            assert!(report.total_cycles() > 0, "{b}");
            assert!(report.total_energy().total_pj() > 0.0, "{b}");
            assert_eq!(report.total_macs(), b.model().total_macs() * 16, "{b}");
        }
    }

    #[test]
    fn lower_bitwidth_benchmarks_achieve_higher_throughput() {
        // The architectural claim: binary Cifar-10 sustains far more MACs
        // per cycle than the 8-bit-edged AlexNet per unit of peak.
        let sim = BitFusionSim::new(ArchConfig::isca_45nm());
        let cifar = sim.run(&Benchmark::Cifar10.model(), 16).unwrap();
        let alex = sim.run(&Benchmark::AlexNet.model(), 16).unwrap();
        assert!(
            cifar.macs_per_cycle() > alex.macs_per_cycle(),
            "cifar {:.0} vs alexnet {:.0}",
            cifar.macs_per_cycle(),
            alex.macs_per_cycle()
        );
    }

    #[test]
    fn plan_reuse_matches_direct_run() {
        let sim = BitFusionSim::new(ArchConfig::isca_45nm());
        let model = Benchmark::Vgg7.model();
        let plan = bitfusion_compiler::compile(&model, sim.arch(), 4).unwrap();
        let a = sim.run(&model, 4).unwrap();
        let b = sim.run_plan(&plan);
        assert_eq!(a.total_cycles(), b.total_cycles());
    }

    #[test]
    fn event_front_end_runs_and_reports_stalls() {
        let sim = BitFusionSim::event(ArchConfig::isca_45nm());
        assert_eq!(sim.backend().name(), "event");
        let report = sim.run(&Benchmark::Rnn.model(), 1).unwrap();
        let stalls = report.total_stalls();
        // RNN at batch 1 is weight-bandwidth-bound: the timeline must show
        // the array starving on DMA.
        assert!(stalls.bandwidth_starved > 0, "{stalls:?}");
    }
}
