//! A minimal scoped thread pool: shard an indexed job list across
//! `std::thread` workers with a shared atomic work queue.
//!
//! The build is offline (no rayon), so this module provides the one
//! primitive the DSE engine needs: [`map_indexed`], a deterministic
//! parallel map. Workers claim job indices from a shared atomic counter
//! (dynamic load balancing — a worker stuck on an expensive point does not
//! hold up the rest of the queue) and results are reassembled in index
//! order, so the output is identical for any worker count or interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Runs `job(0..jobs)` across up to `workers` threads and returns the
/// results in index order.
///
/// `workers == 0` or `workers == 1` (or a single job) runs inline on the
/// calling thread — the sequential path, with no thread or synchronization
/// overhead, used as the baseline in the scaling bench. The worker count is
/// clamped to the job count; `job` must be safe to call concurrently from
/// multiple threads.
///
/// # Panics
///
/// Propagates a panic from any `job` invocation (the pool joins every
/// worker before returning).
pub fn map_indexed<T, F>(jobs: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.min(jobs).max(1);
    if workers == 1 {
        return (0..jobs).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(jobs);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut claimed = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            return claimed;
                        }
                        claimed.push((i, job(i)));
                    }
                })
            })
            .collect();
        for handle in handles {
            tagged.extend(handle.join().expect("DSE worker panicked"));
        }
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), jobs);
    tagged.into_iter().map(|(_, value)| value).collect()
}

/// The machine's available parallelism, defaulting to 1 when unknown.
pub fn default_workers() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_index_order_for_any_worker_count() {
        for workers in [0, 1, 2, 3, 7, 64] {
            let out = map_indexed(23, workers, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "{workers} workers");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let hits = AtomicU64::new(0);
        let out = map_indexed(100, 4, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = map_indexed(0, 8, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
