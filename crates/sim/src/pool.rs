//! A minimal scoped thread pool: shard an indexed job list across
//! `std::thread` workers with a shared atomic work queue.
//!
//! The build is offline (no rayon), so this module provides the two
//! primitives the engines need:
//!
//! * [`map_indexed`] — a deterministic parallel map over a known job
//!   count (the DSE engine's batch phases). Workers claim job indices
//!   from a shared atomic counter (dynamic load balancing — a worker
//!   stuck on an expensive point does not hold up the rest of the queue)
//!   and results are reassembled in index order, so the output is
//!   identical for any worker count or interleaving;
//! * [`for_each_ordered`] — a deterministic streaming pipeline over an
//!   iterator of unknown length (the `serve` loop's stdin requests).
//!   Workers process items concurrently, a reorder buffer hands results
//!   to the sink strictly in input order, and backpressure bounds how far
//!   the pipeline reads ahead of the sink.
//!
//! It also provides [`Gate`], the bounded-admission primitive behind the
//! network server: at most `slots` callers hold a permit concurrently, at
//! most `queue` more wait for one, and any caller beyond that is shed
//! immediately instead of blocking — load shedding as a return value, so
//! the service layer can answer overflow with a well-formed error instead
//! of an unbounded thread pile-up.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread;

/// Runs `job(0..jobs)` across up to `workers` threads and returns the
/// results in index order.
///
/// `workers == 0` or `workers == 1` (or a single job) runs inline on the
/// calling thread — the sequential path, with no thread or synchronization
/// overhead, used as the baseline in the scaling bench. The worker count is
/// clamped to the job count; `job` must be safe to call concurrently from
/// multiple threads.
///
/// # Panics
///
/// Propagates a panic from any `job` invocation (the pool joins every
/// worker before returning).
pub fn map_indexed<T, F>(jobs: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.min(jobs).max(1);
    if workers == 1 {
        return (0..jobs).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(jobs);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut claimed = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            return claimed;
                        }
                        claimed.push((i, job(i)));
                    }
                })
            })
            .collect();
        for handle in handles {
            tagged.extend(handle.join().expect("DSE worker panicked"));
        }
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), jobs);
    tagged.into_iter().map(|(_, value)| value).collect()
}

/// The machine's available parallelism, defaulting to 1 when unknown.
pub fn default_workers() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Streams `items` through `job` on up to `workers` threads and hands every
/// result to `sink` **strictly in input order** — the deterministic
/// pipeline behind `bitfusion-cli serve`.
///
/// Unlike [`map_indexed`] the input length need not be known up front: the
/// iterator is pulled lazily (at most `2 × workers` results are buffered
/// ahead of the sink, so a slow consumer applies backpressure instead of
/// letting the pipeline read arbitrarily far ahead), and each result is
/// delivered as soon as every earlier result has been delivered, not at the
/// end of the batch.
///
/// `workers <= 1` runs everything inline on the calling thread — the
/// sequential baseline with identical observable behaviour.
///
/// # Panics
///
/// Propagates a panic from any `job` or `sink` invocation (remaining
/// workers are released, never left blocked on the reorder buffer).
pub fn for_each_ordered<I, T, F, S>(items: I, workers: usize, job: F, mut sink: S)
where
    I: Iterator + Send,
    I::Item: Send,
    T: Send,
    F: Fn(usize, I::Item) -> T + Sync,
    S: FnMut(usize, T),
{
    if workers <= 1 {
        for (i, item) in items.enumerate() {
            let out = job(i, item);
            sink(i, out);
        }
        return;
    }

    struct State<T> {
        /// Results waiting for every earlier index to be emitted.
        buf: BTreeMap<usize, T>,
        /// The next index the sink will receive.
        next_emit: usize,
        /// Workers still running (tracked via a drop guard so a panicking
        /// job cannot leave the consumer waiting forever).
        active: usize,
        /// A job panicked: its index will never insert, so everyone bails
        /// out and the scope join re-raises the panic.
        panicked: bool,
    }

    /// Locks a mutex, tolerating poisoning (a panicked worker must not
    /// wedge the consumer — the panic is re-raised by the scope join).
    fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    let window = 2 * workers;
    let source = Mutex::new(items.enumerate());
    let state = Mutex::new(State::<T> {
        buf: BTreeMap::new(),
        next_emit: 0,
        active: workers,
        panicked: false,
    });
    let ready = Condvar::new(); // result inserted, or a worker retired
    let slots = Condvar::new(); // the sink drained a buffered result

    struct Retire<'a, T> {
        state: &'a Mutex<State<T>>,
        ready: &'a Condvar,
        slots: &'a Condvar,
    }
    impl<T> Drop for Retire<'_, T> {
        fn drop(&mut self) {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            st.active -= 1;
            if thread::panicking() {
                // The claimed index will never insert: wake the consumer
                // (stuck on `ready`) and any workers gated on `slots` so
                // nobody waits for it.
                st.panicked = true;
            }
            self.ready.notify_all();
            self.slots.notify_all();
        }
    }

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _retire = Retire {
                    state: &state,
                    ready: &ready,
                    slots: &slots,
                };
                loop {
                    // Backpressure: claim new work only while the reorder
                    // buffer has room. In-flight items always complete and
                    // insert, so the worker holding `next_emit` is never
                    // gated here and the sink always makes progress.
                    {
                        let mut st = lock(&state);
                        while st.buf.len() >= window && !st.panicked {
                            st = slots.wait(st).unwrap_or_else(|e| e.into_inner());
                        }
                        if st.panicked {
                            return;
                        }
                    }
                    let claimed = lock(&source).next();
                    let Some((i, item)) = claimed else { break };
                    let out = job(i, item);
                    let mut st = lock(&state);
                    st.buf.insert(i, out);
                    ready.notify_all();
                }
            });
        }

        // The calling thread is the consumer: emit results in index order
        // as they arrive, until every worker has retired and the buffer is
        // drained. The guard mirrors Retire for the sink: if `sink` panics,
        // workers gated on `slots` must wake and bail rather than wait for
        // a drain that will never come (the scope join would deadlock).
        struct Abort<'a, T> {
            state: &'a Mutex<State<T>>,
            slots: &'a Condvar,
        }
        impl<T> Drop for Abort<'_, T> {
            fn drop(&mut self) {
                if thread::panicking() {
                    self.state
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .panicked = true;
                    self.slots.notify_all();
                }
            }
        }
        let _abort = Abort {
            state: &state,
            slots: &slots,
        };
        let mut st = lock(&state);
        loop {
            let i = st.next_emit;
            if let Some(out) = st.buf.remove(&i) {
                st.next_emit += 1;
                slots.notify_all();
                drop(st);
                sink(i, out);
                st = lock(&state);
                continue;
            }
            if st.panicked || st.active == 0 {
                // Indices are claimed contiguously and every claimed item
                // inserts before its worker retires, so a drained pool with
                // `next_emit` absent means the input is exhausted — or a
                // job panicked, in which case that index never arrives and
                // the scope join below re-raises the panic.
                break;
            }
            st = ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    });
}

/// A bounded admission gate: `slots` concurrent permit holders, a wait
/// queue of at most `queue` callers, and immediate shedding beyond that.
///
/// [`Gate::admit`] either returns a [`Permit`] (possibly after waiting in
/// the bounded queue for a slot) or [`Shed`](Admission::Shed) when the
/// queue is already full — it never blocks an over-limit caller. Dropping
/// the permit releases the slot and wakes one waiter. Waiters are woken in
/// arrival order (ticketed FIFO), so a queued caller cannot be starved by
/// later arrivals.
#[derive(Debug)]
pub struct Gate {
    state: Mutex<GateState>,
    freed: Condvar,
    slots: usize,
    queue: usize,
}

#[derive(Debug)]
struct GateState {
    in_flight: usize,
    queued: usize,
    /// Next ticket to hand to a waiter.
    next_ticket: u64,
    /// The ticket currently allowed to take a freed slot.
    serving: u64,
}

/// The outcome of [`Gate::admit`].
#[derive(Debug)]
pub enum Admission<'a> {
    /// A slot was acquired (immediately or after queueing); work may run.
    Admitted(Permit<'a>),
    /// Both the slots and the wait queue were full; the caller must not
    /// run the work.
    Shed,
}

/// An acquired slot; dropping it releases the slot and wakes one waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a Gate,
}

impl Gate {
    /// A gate with `slots` concurrent permits (min 1) and room for
    /// `queue` waiting callers.
    pub fn new(slots: usize, queue: usize) -> Self {
        Gate {
            state: Mutex::new(GateState {
                in_flight: 0,
                queued: 0,
                next_ticket: 0,
                serving: 0,
            }),
            freed: Condvar::new(),
            slots: slots.max(1),
            queue,
        }
    }

    /// Maximum concurrent permit holders.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Maximum waiting callers before shedding.
    pub fn queue_capacity(&self) -> usize {
        self.queue
    }

    /// Permits currently held.
    pub fn in_flight(&self) -> usize {
        self.lock().in_flight
    }

    /// Callers currently waiting for a slot.
    pub fn queue_depth(&self) -> usize {
        self.lock().queued
    }

    /// Acquires a slot, waiting in the bounded queue if necessary, or
    /// sheds the caller when the queue is full.
    pub fn admit(&self) -> Admission<'_> {
        let mut st = self.lock();
        if st.in_flight < self.slots && st.queued == 0 {
            st.in_flight += 1;
            return Admission::Admitted(Permit { gate: self });
        }
        if st.queued >= self.queue {
            return Admission::Shed;
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queued += 1;
        while st.in_flight >= self.slots || st.serving != ticket {
            st = self.freed.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.queued -= 1;
        st.serving += 1;
        st.in_flight += 1;
        // The freed slot this waiter just took may not be the only one:
        // wake the next ticket too in case slots opened while it queued.
        self.freed.notify_all();
        Admission::Admitted(Permit { gate: self })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.gate.lock();
        st.in_flight -= 1;
        self.gate.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_index_order_for_any_worker_count() {
        for workers in [0, 1, 2, 3, 7, 64] {
            let out = map_indexed(23, workers, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "{workers} workers");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let hits = AtomicU64::new(0);
        let out = map_indexed(100, 4, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = map_indexed(0, 8, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn ordered_pipeline_emits_in_input_order_for_any_worker_count() {
        for workers in [0, 1, 2, 3, 8] {
            let mut seen = Vec::new();
            for_each_ordered(0..37usize, workers, |i, x| (i, x * 2), |i, (ji, out)| {
                assert_eq!(i, ji);
                seen.push(out);
            });
            assert_eq!(
                seen,
                (0..37).map(|x| x * 2).collect::<Vec<_>>(),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn ordered_pipeline_handles_uneven_job_times() {
        // Early items are the slowest: the reorder buffer must hold the
        // fast late results until the slow early ones arrive.
        let mut seen = Vec::new();
        for_each_ordered(
            0..16usize,
            4,
            |_, x| {
                if x < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(20 - 4 * x as u64));
                }
                x
            },
            |_, out| seen.push(out),
        );
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn ordered_pipeline_empty_input() {
        let mut calls = 0;
        for_each_ordered(std::iter::empty::<u32>(), 4, |_, x| x, |_, _| calls += 1);
        assert_eq!(calls, 0);
    }

    #[test]
    fn ordered_pipeline_propagates_a_panic_even_with_a_full_buffer() {
        // Job 0 panics while the other workers race far ahead and fill the
        // reorder buffer to the backpressure window: the pipeline must
        // panic, not deadlock (regression: workers used to block on
        // `slots` forever while the consumer waited for index 0).
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for_each_ordered(
                0..1000usize,
                4,
                |_, x| {
                    if x == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        panic!("job 0 failed");
                    }
                    x
                },
                |_, _| {},
            );
        }));
        assert!(result.is_err(), "the job panic must propagate");
    }

    #[test]
    fn ordered_pipeline_propagates_a_sink_panic_without_hanging() {
        // Only the consumer calls the sink; when it unwinds, workers gated
        // on the backpressure window must be released so the scope join
        // can complete and re-raise the panic.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for_each_ordered(
                0..1000usize,
                4,
                |_, x| x,
                |_, x| {
                    if x == 3 {
                        panic!("sink failed");
                    }
                },
            );
        }));
        assert!(result.is_err(), "the sink panic must propagate");
    }

    #[test]
    fn gate_admits_up_to_slots_immediately() {
        let gate = Gate::new(2, 4);
        let a = gate.admit();
        let b = gate.admit();
        assert!(matches!(a, Admission::Admitted(_)));
        assert!(matches!(b, Admission::Admitted(_)));
        assert_eq!(gate.in_flight(), 2);
        assert_eq!(gate.queue_depth(), 0);
        drop(a);
        assert_eq!(gate.in_flight(), 1);
    }

    #[test]
    fn gate_sheds_beyond_slots_plus_queue() {
        // 1 slot, 0 queue: the second concurrent caller is shed, never
        // blocked.
        let gate = Gate::new(1, 0);
        let held = gate.admit();
        assert!(matches!(held, Admission::Admitted(_)));
        assert!(matches!(gate.admit(), Admission::Shed));
        drop(held);
        assert!(matches!(gate.admit(), Admission::Admitted(_)));
    }

    #[test]
    fn gate_queued_caller_runs_after_a_release() {
        let gate = Gate::new(1, 2);
        let ran = AtomicU64::new(0);
        thread::scope(|scope| {
            let held = gate.admit();
            assert!(matches!(held, Admission::Admitted(_)));
            let waiter = scope.spawn(|| match gate.admit() {
                Admission::Admitted(_) => ran.fetch_add(1, Ordering::Relaxed),
                Admission::Shed => panic!("queue had room"),
            });
            // Wait until the waiter is actually queued, then release.
            while gate.queue_depth() == 0 {
                thread::yield_now();
            }
            assert_eq!(ran.load(Ordering::Relaxed), 0, "queued, not running");
            drop(held);
            waiter.join().unwrap();
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert_eq!(gate.in_flight(), 0);
        assert_eq!(gate.queue_depth(), 0);
    }

    #[test]
    fn gate_queue_is_fifo() {
        // Two waiters queue in order; releasing slots serves them in
        // arrival order (tickets), not wakeup-race order.
        let gate = Gate::new(1, 4);
        let order = Mutex::new(Vec::new());
        let (gate, order) = (&gate, &order);
        thread::scope(|scope| {
            let held = gate.admit();
            for tag in 0..3u32 {
                scope.spawn(move || {
                    // Stagger arrivals so tickets are issued in tag order.
                    while gate.queue_depth() < tag as usize {
                        thread::yield_now();
                    }
                    let permit = gate.admit();
                    order.lock().unwrap().push(tag);
                    drop(permit);
                });
                while gate.queue_depth() < (tag + 1) as usize {
                    thread::yield_now();
                }
            }
            drop(held);
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn gate_never_exceeds_slots_under_contention() {
        let gate = Gate::new(3, 64);
        let peak = AtomicU64::new(0);
        let live = AtomicU64::new(0);
        thread::scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        if let Admission::Admitted(_p) = gate.admit() {
                            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                            peak.fetch_max(now, Ordering::SeqCst);
                            live.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 3, "{}", peak.load(Ordering::SeqCst));
    }

    #[test]
    fn ordered_pipeline_runs_every_job_once() {
        let hits = AtomicU64::new(0);
        let mut emitted = 0u64;
        for_each_ordered(
            0..100usize,
            7,
            |_, x| {
                hits.fetch_add(1, Ordering::Relaxed);
                x
            },
            |_, _| emitted += 1,
        );
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(emitted, 100);
    }
}
