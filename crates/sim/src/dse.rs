//! Sharded design-space exploration (DSE): a cartesian
//! [`ArchGrid`] × network × batch sweep, sharded across `std::thread`
//! workers, reduced into Pareto frontiers over (cycles, energy, area).
//!
//! The paper's own evaluation is a design-space walk — array geometry
//! (Figure 10), off-chip bandwidth (Figure 15), and batch size (Figure 16)
//! all swept to locate the 16×16 Fusion Unit sweet spot — and the
//! composability design space is large enough that follow-on work explores
//! it systematically. This module makes that exploration a first-class,
//! parallel operation:
//!
//! * **grid semantics** — a [`DseSpec`] crosses an [`ArchGrid`] (rows ×
//!   cols × scratchpad capacities × DRAM bandwidth) with a model list,
//!   quantization policies ([`QuantSpec`] — the axis the paper is about),
//!   and batch sizes. Points are enumerated in a deterministic nested
//!   order (models, then quant specs, then batches, then grid
//!   configurations with bandwidth innermost);
//! * **memoized compilation** — compilation depends only on
//!   `(model, batch, geometry, buffers)`, *not* on bandwidth or frequency,
//!   and dominates sweep cost. The engine resolves each unique key through
//!   the shared [`ArtifactCache`] (compiling it at most once per run), so
//!   e.g. a 5-point bandwidth axis costs one compilation, not five
//!   ([`DseResult::compile_hits`] counts the points served without a fresh
//!   compilation). [`explore_with_cache`] accepts a caller-owned cache —
//!   the session facade passes its own, so repeated explorations (and
//!   `report`/`compare`/`sweep` requests touching the same keys) skip
//!   compilation entirely;
//! * **memoized evaluation** — below the artifact cache sits the layer
//!   tier ([`crate::layer_cache`]): per-layer results keyed on structural
//!   fingerprints, so a repeated layer shape — within a network, across
//!   duplicate models, or across re-explorations — is evaluated once per
//!   unique `(layer, batch, geometry, bandwidth, backend/options)` key.
//!   [`explore_with_caches`] accepts both tiers caller-owned;
//!   [`DseResult::layer_evals`] / [`DseResult::layer_unique`] report the
//!   spec-level sharing;
//! * **worker model** — unique compilations, then per-point evaluations,
//!   are each sharded across a [`crate::pool`] scoped thread pool. Results
//!   land in point-index order, so the output — and every Pareto frontier
//!   derived from it — is bit-identical for any worker count;
//! * **reduction** — per-architecture aggregation over the whole workload
//!   suite ([`DseResult::arch_summaries`]) and the non-dominated subset
//!   ([`DseResult::pareto_frontier`]) over minimized
//!   (total cycles, total energy, chip area), with per-point stall
//!   attribution from whichever [`SimBackend`] ran the evaluation.
//!
//! The Figure 15/16 sweeps in [`crate::sweep`] are thin views over this
//! engine. See `DESIGN.md`, "Design-space exploration".

use std::collections::{HashMap, HashSet};

use bitfusion_compiler::store::content_hash;
use bitfusion_compiler::{
    layer_fingerprint, ArtifactCache, ArtifactKey, CachedPlan, CompileError, DiskArtifactStore,
    LayerKey,
};
use bitfusion_core::arch::ArchConfig;
use bitfusion_core::grid::ArchGrid;
use bitfusion_core::json::Json;
use bitfusion_dnn::model::Model;
use bitfusion_dnn::quantspec::QuantSpec;
use bitfusion_dnn::zoo::Benchmark;
use bitfusion_energy::{ChipArea, FusionEnergy};

use crate::backend::SimBackend;
use crate::engine::SimOptions;
use crate::layer_cache::{
    eval_context, evaluate_layer_cached, layer_perf_from_payload, layer_perf_payload,
    LayerPerfCache,
};
use crate::pool::map_indexed;
use crate::stats::{LayerPerf, PerfReport, StallBreakdown};

/// The workload × architecture space one exploration covers.
#[derive(Debug, Clone)]
pub struct DseSpec {
    /// Architectural grid (cartesian product of candidate lists).
    pub grid: ArchGrid,
    /// Networks to run at every grid point.
    pub models: Vec<Model>,
    /// Quantization policies each network runs under (applied on top of
    /// its paper assignment; [`QuantSpec::paper`] keeps it).
    pub quant_specs: Vec<QuantSpec>,
    /// Batch sizes to run each network at.
    pub batches: Vec<u64>,
    /// Calibration knobs shared by every evaluation.
    pub options: SimOptions,
}

impl DseSpec {
    /// A spec covering the full eight-network zoo on `grid` at `batches`,
    /// at the paper quantization.
    pub fn zoo(grid: ArchGrid, batches: Vec<u64>) -> Self {
        DseSpec {
            grid,
            models: Benchmark::ALL.iter().map(|b| b.model()).collect(),
            quant_specs: vec![QuantSpec::paper()],
            batches,
            options: SimOptions::default(),
        }
    }

    /// Total points (grid size × models × quant specs × batches).
    pub fn len(&self) -> usize {
        self.grid.len() * self.models.len() * self.quant_specs.len() * self.batches.len()
    }

    /// Whether the spec enumerates no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Workloads (model × batch combinations) per architecture and quant
    /// spec — the unit over which (architecture, quantization) candidates
    /// are aggregated and compared.
    pub fn workloads(&self) -> usize {
        self.models.len() * self.batches.len()
    }
}

/// One evaluated point of the exploration.
#[derive(Debug, Clone)]
pub struct DsePoint {
    /// The architecture of this grid point.
    pub arch: ArchConfig,
    /// Network name.
    pub model_name: String,
    /// Quantization policy the network ran under (canonical spelling).
    pub quant: String,
    /// Batch size.
    pub batch: u64,
    /// Full simulation result (per-layer detail, stall attribution).
    pub report: PerfReport,
    /// Whole-chip area of the architecture at the evaluated node, in mm².
    pub area_mm2: f64,
}

impl DsePoint {
    /// Total cycles for the workload at this point.
    pub fn cycles(&self) -> u64 {
        self.report.total_cycles()
    }

    /// Total energy for the workload at this point, in pJ.
    pub fn energy_pj(&self) -> f64 {
        self.report.total_energy().total_pj()
    }
}

/// A point the engine could not evaluate: the configuration failed
/// validation or the network does not compile onto it (e.g. scratchpads too
/// small for any tiling).
#[derive(Debug, Clone)]
pub struct InfeasiblePoint {
    /// The architecture of the failed point.
    pub arch: ArchConfig,
    /// Network name.
    pub model_name: String,
    /// Quantization policy of the failed point.
    pub quant: String,
    /// Batch size.
    pub batch: u64,
    /// Why the point is infeasible.
    pub error: PointError,
}

/// Why a DSE point could not be evaluated.
#[derive(Debug, Clone)]
pub enum PointError {
    /// The grid point fails [`ArchConfig::validate`].
    InvalidConfig(bitfusion_core::error::CoreError),
    /// The quant spec does not apply to the network (a layer override
    /// naming no layer of it).
    Quant(String),
    /// The network does not compile onto the configuration.
    Compile(CompileError),
}

impl std::fmt::Display for PointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PointError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            PointError::Quant(e) => write!(f, "quantization failed: {e}"),
            PointError::Compile(e) => write!(f, "compilation failed: {e}"),
        }
    }
}

/// Aggregate of one (architecture, quantization) candidate over every
/// workload in the spec.
#[derive(Debug, Clone)]
pub struct ArchSummary {
    /// The architecture.
    pub arch: ArchConfig,
    /// Quantization policy of this candidate (canonical spelling).
    pub quant: String,
    /// Whole-chip area in mm².
    pub area_mm2: f64,
    /// Cycles summed over all workloads.
    pub total_cycles: u64,
    /// Energy summed over all workloads, in pJ.
    pub total_energy_pj: f64,
    /// Stall attribution summed over all workloads.
    pub stalls: StallBreakdown,
    /// Workloads evaluated on this architecture (summaries with fewer than
    /// the spec's full workload count are excluded from the frontier — an
    /// architecture that cannot run the whole suite is not comparable).
    pub workloads: usize,
}

impl ArchSummary {
    /// Whether `self` Pareto-dominates `other`: no worse on every minimized
    /// axis (cycles, energy, area) and strictly better on at least one.
    /// Candidates are (architecture, quantization) pairs, so a
    /// heterogeneous-bitwidth policy can dominate a uniform one on the
    /// same silicon (same area, fewer cycles, less energy).
    pub fn dominates(&self, other: &ArchSummary) -> bool {
        let no_worse = self.total_cycles <= other.total_cycles
            && self.total_energy_pj <= other.total_energy_pj
            && self.area_mm2 <= other.area_mm2;
        let better = self.total_cycles < other.total_cycles
            || self.total_energy_pj < other.total_energy_pj
            || self.area_mm2 < other.area_mm2;
        no_worse && better
    }
}

/// The outcome of one exploration.
#[derive(Debug, Clone)]
pub struct DseResult {
    /// Backend that ran the evaluations.
    pub backend: &'static str,
    /// Evaluated points, in deterministic spec order.
    pub points: Vec<DsePoint>,
    /// Points that failed validation or compilation, in spec order.
    pub infeasible: Vec<InfeasiblePoint>,
    /// Workloads per architecture the spec asked for.
    pub workloads_expected: usize,
    /// Points served without a fresh compilation — shared within the run
    /// (e.g. a bandwidth axis) or already resident in the artifact cache.
    pub compile_hits: u64,
    /// Compilations actually performed during this run.
    pub compile_misses: u64,
    /// Unique compilation keys the spec resolves to. Deterministic for a
    /// given spec — unlike `compile_misses`, which shrinks as the shared
    /// cache warms (`compile_misses == compile_unique` on a cold cache) —
    /// so protocol responses report sharing in terms of this.
    pub compile_unique: u64,
    /// Layer evaluations the run's evaluated points requested (every layer
    /// of every point that reached a compiled plan).
    pub layer_evals: u64,
    /// Unique layer-tier keys those evaluations resolve to — the number of
    /// backend evaluations actually needed. Deterministic for a given spec
    /// (unlike the layer cache's own hit/miss counters, which depend on
    /// warmth), so protocol responses report layer sharing in terms of
    /// this.
    pub layer_unique: u64,
}

impl DseResult {
    /// Per-(architecture, quantization) aggregates over the workload
    /// suite, in point order (models outermost, bandwidth innermost).
    pub fn arch_summaries(&self) -> Vec<ArchSummary> {
        let mut order: Vec<ArchSummary> = Vec::new();
        let mut index: HashMap<(ArchKey, String), usize> = HashMap::new();
        for p in &self.points {
            let key = (ArchKey::of(&p.arch), p.quant.clone());
            let i = *index.entry(key).or_insert_with(|| {
                order.push(ArchSummary {
                    arch: p.arch.clone(),
                    quant: p.quant.clone(),
                    area_mm2: p.area_mm2,
                    total_cycles: 0,
                    total_energy_pj: 0.0,
                    stalls: StallBreakdown::default(),
                    workloads: 0,
                });
                order.len() - 1
            });
            let s = &mut order[i];
            s.total_cycles += p.cycles();
            s.total_energy_pj += p.energy_pj();
            let st = p.report.total_stalls();
            s.stalls.bandwidth_starved += st.bandwidth_starved;
            s.stalls.compute_starved += st.compute_starved;
            s.stalls.fill_drain += st.fill_drain;
            s.workloads += 1;
        }
        order
    }

    /// Points that reached the compiler: evaluated points plus
    /// compile-failed corners (invalid configurations are filtered before
    /// compilation and never get that far).
    pub fn compilable_points(&self) -> u64 {
        self.points.len() as u64
            + self
                .infeasible
                .iter()
                .filter(|p| matches!(p.error, PointError::Compile(_)))
                .count() as u64
    }

    /// Spec-level compile sharing, independent of cache warmth: compilable
    /// points served by an artifact another point of the same run also
    /// resolves to. The typed protocol reports this (not the
    /// warmth-dependent [`DseResult::compile_hits`]) so responses stay
    /// byte-identical between cold and warm sessions.
    pub fn spec_compile_hits(&self) -> u64 {
        self.compilable_points() - self.compile_unique
    }

    /// Spec-level layer-tier sharing, independent of cache warmth: layer
    /// evaluations answered by a key some other layer of the same run also
    /// resolves to — repeated shapes within a network (ResNet basic
    /// blocks), duplicate models, and aliasing quant specs. The typed
    /// protocol reports this for the same reason as
    /// [`DseResult::spec_compile_hits`].
    pub fn spec_layer_hits(&self) -> u64 {
        self.layer_evals - self.layer_unique
    }

    /// The Pareto frontier over (total cycles, total energy, area):
    /// non-dominated (architecture, quantization) candidates that
    /// completed the full workload suite, in summary order.
    pub fn pareto_frontier(&self) -> Vec<ArchSummary> {
        let complete: Vec<ArchSummary> = self
            .arch_summaries()
            .into_iter()
            .filter(|s| s.workloads == self.workloads_expected)
            .collect();
        complete
            .iter()
            .filter(|candidate| !complete.iter().any(|other| other.dominates(candidate)))
            .cloned()
            .collect()
    }

    /// Per-(model, quantization) aggregates over every architecture and
    /// batch, in point order — the projection that compares quantization
    /// policies per network.
    pub fn quant_summaries(&self) -> Vec<QuantSummary> {
        let mut order: Vec<QuantSummary> = Vec::new();
        let mut index: HashMap<(String, String), usize> = HashMap::new();
        for p in &self.points {
            let key = (p.model_name.clone(), p.quant.clone());
            let i = *index.entry(key).or_insert_with(|| {
                order.push(QuantSummary {
                    model: p.model_name.clone(),
                    quant: p.quant.clone(),
                    total_cycles: 0,
                    total_energy_pj: 0.0,
                    workloads: 0,
                });
                order.len() - 1
            });
            let s = &mut order[i];
            s.total_cycles += p.cycles();
            s.total_energy_pj += p.energy_pj();
            s.workloads += 1;
        }
        order
    }

    /// Per-network speedup of every quantization against `baseline`
    /// (e.g. `uniform8`): `baseline cycles / candidate cycles` summed over
    /// the same architectures and batches. Entries keep summary order;
    /// the baseline itself and any (model, quant) pair whose evaluated
    /// workload set differs from the baseline's (an infeasible corner on
    /// one side would skew the ratio) are omitted.
    pub fn quant_speedups_vs(&self, baseline: &str) -> Vec<QuantSpeedup> {
        let summaries = self.quant_summaries();
        let mut out = Vec::new();
        for s in &summaries {
            if s.quant == baseline {
                continue;
            }
            let Some(base) = summaries
                .iter()
                .find(|b| b.quant == baseline && b.model == s.model)
            else {
                continue;
            };
            if base.workloads != s.workloads || s.total_cycles == 0 {
                continue;
            }
            out.push(QuantSpeedup {
                model: s.model.clone(),
                quant: s.quant.clone(),
                speedup: base.total_cycles as f64 / s.total_cycles as f64,
                energy_ratio: if s.total_energy_pj > 0.0 {
                    base.total_energy_pj / s.total_energy_pj
                } else {
                    1.0
                },
            });
        }
        out
    }
}

/// Aggregate of one (model, quantization) pair over every architecture
/// and batch of an exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantSummary {
    /// Network name.
    pub model: String,
    /// Quantization policy (canonical spelling).
    pub quant: String,
    /// Cycles summed over every evaluated (architecture, batch).
    pub total_cycles: u64,
    /// Energy summed over every evaluated (architecture, batch), in pJ.
    pub total_energy_pj: f64,
    /// Points aggregated.
    pub workloads: usize,
}

/// One entry of [`DseResult::quant_speedups_vs`]: how much faster (and
/// how much less energy) a quantization policy is than the baseline on
/// one network — the paper's heterogeneous-vs-fixed-bitwidth benefit.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantSpeedup {
    /// Network name.
    pub model: String,
    /// The candidate quantization policy.
    pub quant: String,
    /// `baseline cycles / candidate cycles` (> 1 means faster).
    pub speedup: f64,
    /// `baseline energy / candidate energy` (> 1 means less energy).
    pub energy_ratio: f64,
}

/// In-run compile identity: the same fields as
/// [`ArtifactKey`] but with the quantized model variant as a spec index
/// (model × quant spec), so per-point dedup never re-fingerprints a
/// model. Only the unique keys are promoted to full [`ArtifactKey`]s when
/// they touch the shared cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct LocalKey {
    variant: usize,
    batch: u64,
    rows: usize,
    cols: usize,
    ibuf_bytes: usize,
    wbuf_bytes: usize,
    obuf_bytes: usize,
    buffer_access_bits: u32,
}

impl LocalKey {
    fn of(variant: usize, batch: u64, arch: &ArchConfig) -> Self {
        LocalKey {
            variant,
            batch,
            rows: arch.rows,
            cols: arch.cols,
            ibuf_bytes: arch.ibuf_bytes,
            wbuf_bytes: arch.wbuf_bytes,
            obuf_bytes: arch.obuf_bytes,
            buffer_access_bits: arch.buffer_access_bits,
        }
    }
}

/// Architecture identity for aggregation (every `ArchConfig` field that can
/// vary across a grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ArchKey {
    rows: usize,
    cols: usize,
    ibuf_bytes: usize,
    wbuf_bytes: usize,
    obuf_bytes: usize,
    buffer_access_bits: u32,
    dram_bits_per_cycle: u32,
    freq_mhz: u32,
}

impl ArchKey {
    fn of(arch: &ArchConfig) -> Self {
        ArchKey {
            rows: arch.rows,
            cols: arch.cols,
            ibuf_bytes: arch.ibuf_bytes,
            wbuf_bytes: arch.wbuf_bytes,
            obuf_bytes: arch.obuf_bytes,
            buffer_access_bits: arch.buffer_access_bits,
            dram_bits_per_cycle: arch.dram_bits_per_cycle,
            freq_mhz: arch.freq_mhz,
        }
    }
}

/// Explores the spec on `backend` with a private, throwaway artifact cache
/// — see [`explore_with_cache`], which this delegates to, for the shared
/// (session-owned) variant.
pub fn explore<B: SimBackend + Sync>(spec: &DseSpec, backend: &B, workers: usize) -> DseResult {
    explore_with_cache(spec, backend, workers, &ArtifactCache::default())
}

/// Explores the spec on `backend` through a shared artifact (model-tier)
/// cache and a private, throwaway layer-tier cache — see
/// [`explore_with_caches`], which this delegates to, for the two-tier
/// (session-owned) variant.
pub fn explore_with_cache<B: SimBackend + Sync>(
    spec: &DseSpec,
    backend: &B,
    workers: usize,
    cache: &ArtifactCache,
) -> DseResult {
    explore_with_caches(spec, backend, workers, cache, &LayerPerfCache::default())
}

/// Explores the spec on `backend`, sharded across `workers` threads
/// (`0` = use [`crate::pool::default_workers`]; `1` = the sequential
/// baseline), resolving compilations through `cache` and per-layer
/// evaluations through `layer_cache`.
///
/// Two sharded phases: every unique compilation not already resident in
/// `cache` first (each exactly once, whatever the worker count), then every
/// point evaluation against the resolved plans — each layer routed through
/// the layer tier, so a repeated shape is evaluated once per
/// [`LayerKey`] however many points and layers request it. Invalid
/// configurations and compile failures become [`InfeasiblePoint`]s rather
/// than aborting the sweep — a wide grid is expected to contain corners no
/// tiling fits.
///
/// Results do not depend on either cache's warmth: plans are pinned in a
/// local table for the duration of the run (eviction cannot drop a plan
/// mid-run), and both compilation and evaluation are deterministic
/// functions of their keys. Only [`DseResult::compile_hits`] /
/// [`DseResult::compile_misses`], the caches' own counters, and wall-clock
/// time change between cold and warm caches.
pub fn explore_with_caches<B: SimBackend + Sync>(
    spec: &DseSpec,
    backend: &B,
    workers: usize,
    cache: &ArtifactCache,
    layer_cache: &LayerPerfCache,
) -> DseResult {
    explore_checkpointed(spec, backend, workers, cache, layer_cache, None)
}

/// [`explore_with_caches`] plus resumable per-point checkpointing: with a
/// `checkpoint` store, every evaluated point's per-layer results are
/// persisted under `(spec fingerprint, point index)`, and a later run of
/// the *same spec* restores checkpointed points without re-evaluating a
/// single layer — the `dse --resume` path, for sweeps bigger than one
/// process lifetime.
///
/// Resume changes wall-clock only, never bytes: the checkpoint stores the
/// one expensive product of a point (its [`LayerPerf`] vector, exact to
/// the bit — `f64`s persisted as bit patterns), everything else
/// (architecture, names, area, spec-level sharing counters) is re-derived
/// deterministically from the spec, and a checkpoint that fails its
/// checksum or value fingerprint is quarantined and recomputed. The spec
/// fingerprint covers the grid, workloads, quantizations, batches,
/// backend, and calibration options, so a checkpoint can never leak
/// across differing sweeps. Phase 1 (compilation) still runs on resume —
/// through both cache tiers, so it is disk-served when the same store
/// backs them — keeping every spec-level counter, and therefore every
/// protocol reply byte, identical to an uninterrupted run. Infeasible
/// points are recomputed, not checkpointed (they are cheap, and a
/// persisted failure could outlive its cause).
pub fn explore_checkpointed<B: SimBackend + Sync>(
    spec: &DseSpec,
    backend: &B,
    workers: usize,
    cache: &ArtifactCache,
    layer_cache: &LayerPerfCache,
    checkpoint: Option<&DiskArtifactStore>,
) -> DseResult {
    let workers = if workers == 0 {
        crate::pool::default_workers()
    } else {
        workers
    };
    let archs: Vec<ArchConfig> = spec.grid.configs().collect();
    let energy = FusionEnergy::isca_45nm();
    let opts = spec.options;

    // Quantized model variants, model-major: variant v = model m under
    // quant spec q, at index m × |quants| + q. A spec that does not apply
    // to a model (layer override naming nothing) marks every point of the
    // variant infeasible rather than aborting the sweep.
    let nquants = spec.quant_specs.len();
    let quant_names: Vec<String> = spec.quant_specs.iter().map(QuantSpec::to_string).collect();
    let variants: Vec<Result<Model, String>> = spec
        .models
        .iter()
        .flat_map(|m| spec.quant_specs.iter().map(|q| q.apply(m)))
        .collect();

    // Point enumeration, deterministic: models → quant specs → batches →
    // grid order.
    struct PointRef {
        variant: usize,
        batch: u64,
        arch: usize,
    }
    let mut point_refs: Vec<PointRef> = Vec::with_capacity(spec.len());
    for variant in 0..variants.len() {
        for &batch in &spec.batches {
            for arch in 0..archs.len() {
                point_refs.push(PointRef {
                    variant,
                    batch,
                    arch,
                });
            }
        }
    }
    let feasible = |p: &PointRef| {
        archs[p.arch].validate().is_ok() && variants[p.variant].is_ok()
    };

    // Phase 1: resolve each unique (variant, batch, compile-relevant arch
    // fields) key — from the shared cache when resident, compiling exactly
    // once otherwise, sharded across the pool. Invalid configs and failed
    // quantizations are filtered here so compilation never sees them.
    let mut key_index: HashMap<LocalKey, usize> = HashMap::new();
    let mut unique: Vec<(LocalKey, usize)> = Vec::new(); // key + an arch index
    for p in &point_refs {
        if !feasible(p) {
            continue;
        }
        let key = LocalKey::of(p.variant, p.batch, &archs[p.arch]);
        key_index.entry(key).or_insert_with(|| {
            unique.push((key, p.arch));
            unique.len() - 1
        });
    }
    // One fingerprint per variant, not one per (variant, geometry) key.
    // The fingerprint covers precisions, so two quantizations of the same
    // network can never alias one artifact.
    let fingerprints: Vec<u64> = variants
        .iter()
        .map(|v| match v {
            Ok(m) => bitfusion_compiler::cache::fingerprint(m),
            Err(_) => 0,
        })
        .collect();
    let mut plans: Vec<Option<CachedPlan>> = vec![None; unique.len()];
    let mut akeys: Vec<ArtifactKey> = Vec::with_capacity(unique.len());
    let mut canonical: HashMap<ArtifactKey, usize> = HashMap::new();
    let mut aliases: Vec<(usize, usize)> = Vec::new(); // (duplicate, canonical)
    let mut missing: Vec<usize> = Vec::new(); // indices into `unique`
    for (i, (key, arch_idx)) in unique.iter().enumerate() {
        let model = variants[key.variant].as_ref().expect("feasible variant");
        let akey = ArtifactKey::with_fingerprint(
            &model.name,
            fingerprints[key.variant],
            &archs[*arch_idx],
            key.batch,
        );
        akeys.push(akey.clone());
        match canonical.entry(akey) {
            std::collections::hash_map::Entry::Occupied(e) => {
                // Two spec entries resolving to one artifact (e.g. the same
                // model listed twice, or two quant specs assigning the same
                // precisions): alias, never compile it twice.
                aliases.push((i, *e.get()));
                continue;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i);
            }
        }
        plans[i] = cache.lookup(&akeys[i]);
        if plans[i].is_none() {
            missing.push(i);
        }
    }
    // Compile outside the cache lock (sharded), then publish each result.
    let compiled: Vec<CachedPlan> = map_indexed(missing.len(), workers, |m| {
        let (key, arch_idx) = unique[missing[m]];
        CachedPlan::new(bitfusion_compiler::compile(
            variants[key.variant].as_ref().expect("feasible variant"),
            &archs[arch_idx],
            key.batch,
        ))
    });
    for (&m, plan) in missing.iter().zip(compiled) {
        cache.insert(akeys[m].clone(), plan.clone());
        plans[m] = Some(plan);
    }
    for (duplicate, canon) in aliases {
        plans[duplicate] = plans[canon].clone();
    }
    let compile_unique = canonical.len() as u64;
    let plans: Vec<CachedPlan> = plans.into_iter().map(|p| p.expect("resolved")).collect();
    let compile_misses = missing.len() as u64;
    let compile_hits = point_refs.iter().filter(|p| feasible(p)).count() as u64 - compile_misses;

    // Layer fingerprints, hashed once per unique plan (not once per point ×
    // layer), and the evaluation context shared by every phase-2 lookup.
    let layer_fps: Vec<Option<Vec<u64>>> = plans
        .iter()
        .map(|p| match p.as_ref() {
            Ok(plan) => Some(plan.layers.iter().map(layer_fingerprint).collect()),
            Err(_) => None,
        })
        .collect();
    let context = eval_context(backend.name(), &opts);

    // Checkpoint namespace: a fingerprint over everything a point's value
    // (and its index) depends on — grid and batch enumeration, the
    // workload variants (model fingerprints cover structure, names, and
    // applied precisions; quant names cover the reply's labels), and the
    // evaluation context (backend identity + calibration knobs + node).
    // Two sweeps differing in any of these can never exchange
    // checkpoints.
    let spec_fp = content_hash(
        format!(
            "{:?}|{:?}|{:?}|{:?}|{context:016x}",
            spec.grid, spec.batches, quant_names, fingerprints
        )
        .as_bytes(),
    );

    // Spec-level layer-tier counters, from the key sets alone: how many
    // layer evaluations the points request and how many unique keys they
    // resolve to. Warmth-independent by construction (the cache is never
    // consulted), so protocol responses built on them stay byte-identical
    // between cold and warm sessions.
    let mut layer_evals: u64 = 0;
    let mut layer_keys: HashSet<LayerKey> = HashSet::new();
    for p in &point_refs {
        if !feasible(p) {
            continue;
        }
        let arch = &archs[p.arch];
        let idx = key_index[&LocalKey::of(p.variant, p.batch, arch)];
        if let Some(fps) = &layer_fps[idx] {
            layer_evals += fps.len() as u64;
            for &fp in fps {
                layer_keys.insert(LayerKey::of(fp, arch, p.batch, context));
            }
        }
    }
    let layer_unique = layer_keys.len() as u64;

    // Phase 2: evaluate every point against its cached plan.
    enum Outcome {
        Ok(Box<DsePoint>),
        Infeasible(Box<InfeasiblePoint>),
    }
    let outcomes = map_indexed(point_refs.len(), workers, |i| {
        let p = &point_refs[i];
        let arch = &archs[p.arch];
        let base = &spec.models[p.variant / nquants];
        let quant = &quant_names[p.variant % nquants];
        if let Err(e) = arch.validate() {
            return Outcome::Infeasible(Box::new(InfeasiblePoint {
                arch: arch.clone(),
                model_name: base.name.clone(),
                quant: quant.clone(),
                batch: p.batch,
                error: PointError::InvalidConfig(e),
            }));
        }
        let model = match &variants[p.variant] {
            Ok(m) => m,
            Err(e) => {
                return Outcome::Infeasible(Box::new(InfeasiblePoint {
                    arch: arch.clone(),
                    model_name: base.name.clone(),
                    quant: quant.clone(),
                    batch: p.batch,
                    error: PointError::Quant(e.clone()),
                }))
            }
        };
        let key = LocalKey::of(p.variant, p.batch, arch);
        let idx = key_index[&key];
        let plan = &plans[idx];
        match plan.as_ref() {
            Err(e) => Outcome::Infeasible(Box::new(InfeasiblePoint {
                arch: arch.clone(),
                model_name: model.name.clone(),
                quant: quant.clone(),
                batch: p.batch,
                error: PointError::Compile(e.clone()),
            })),
            Ok(plan) => {
                let fps = layer_fps[idx].as_ref().expect("Ok plan has fingerprints");
                // A checkpointed point restores its layer results wholesale
                // (each verified against its value fingerprint); a failed
                // or absent checkpoint falls through to evaluation, and
                // the freshly computed layers are checkpointed behind.
                let restored: Option<Vec<LayerPerf>> = checkpoint.and_then(|store| {
                    store.load_point_with(spec_fp, i as u64, |payload| {
                        let layers = payload.get("layers")?.as_arr()?;
                        if layers.len() != fps.len() {
                            return None;
                        }
                        layers
                            .iter()
                            .map(layer_perf_from_payload)
                            .collect::<Option<Vec<_>>>()
                    })
                });
                let layers = match restored {
                    Some(layers) => layers,
                    None => {
                        let layers: Vec<LayerPerf> = plan
                            .layers
                            .iter()
                            .zip(fps)
                            .map(|(l, &fp)| {
                                evaluate_layer_cached(
                                    backend,
                                    l,
                                    fp,
                                    p.batch,
                                    arch,
                                    &energy,
                                    &opts,
                                    context,
                                    layer_cache,
                                )
                            })
                            .collect();
                        if let Some(store) = checkpoint {
                            if let Some(encoded) = layers
                                .iter()
                                .map(layer_perf_payload)
                                .collect::<Option<Vec<_>>>()
                            {
                                store.store_point(
                                    spec_fp,
                                    i as u64,
                                    Json::obj(vec![("layers", Json::Arr(encoded))]),
                                );
                            }
                        }
                        layers
                    }
                };
                let report = PerfReport {
                    model_name: model.name.clone(),
                    batch: p.batch,
                    freq_mhz: arch.freq_mhz,
                    layers,
                };
                let area_mm2 = ChipArea::of(arch, opts.node).chip_mm2();
                Outcome::Ok(Box::new(DsePoint {
                    arch: arch.clone(),
                    model_name: model.name.clone(),
                    quant: quant.clone(),
                    batch: p.batch,
                    report,
                    area_mm2,
                }))
            }
        }
    });

    let mut points = Vec::new();
    let mut infeasible = Vec::new();
    for outcome in outcomes {
        match outcome {
            Outcome::Ok(p) => points.push(*p),
            Outcome::Infeasible(p) => infeasible.push(*p),
        }
    }
    DseResult {
        backend: backend.name(),
        points,
        infeasible,
        workloads_expected: spec.workloads(),
        compile_hits,
        compile_misses,
        compile_unique,
        layer_evals,
        layer_unique,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AnalyticBackend;
    use crate::event::EventBackend;

    fn small_spec() -> DseSpec {
        let grid = ArchGrid {
            rows: vec![16, 32],
            cols: vec![8, 16],
            dram_bits_per_cycle: vec![64, 128, 256],
            ..ArchGrid::from_base(ArchConfig::isca_45nm())
        };
        DseSpec {
            grid,
            models: vec![Benchmark::Lstm.model(), Benchmark::Rnn.model()],
            quant_specs: vec![QuantSpec::paper()],
            batches: vec![1, 16],
            options: SimOptions::default(),
        }
    }

    #[test]
    fn explore_covers_every_point() {
        let spec = small_spec();
        let result = explore(&spec, &AnalyticBackend, 1);
        assert_eq!(result.points.len() + result.infeasible.len(), spec.len());
        assert_eq!(result.points.len(), spec.len(), "zoo nets fit every config");
        assert_eq!(result.backend, "analytic");
        // 12 archs × 2 models × 2 batches = 48 points, but the 3-point
        // bandwidth axis shares compilations: 4 geometry keys × 4
        // model-batch pairs = 16 compiles.
        assert_eq!(result.compile_misses, 16);
        assert_eq!(result.compile_hits, 48 - 16);
    }

    #[test]
    fn warm_cache_skips_every_compilation_with_identical_results() {
        let spec = small_spec();
        let cache = ArtifactCache::default();
        let cold = explore_with_cache(&spec, &AnalyticBackend, 2, &cache);
        assert_eq!(cold.compile_misses, 16);
        assert_eq!(cold.compile_hits, 48 - 16);
        let warm = explore_with_cache(&spec, &AnalyticBackend, 2, &cache);
        assert_eq!(warm.compile_misses, 0, "every key resident");
        assert_eq!(warm.compile_hits, 48);
        assert_eq!(warm.compile_unique, 16, "spec-level sharing is warmth-independent");
        assert_eq!(cold.compile_unique, 16);
        assert_eq!(cold.points.len(), warm.points.len());
        for (a, b) in cold.points.iter().zip(&warm.points) {
            assert_eq!(a.report, b.report, "{}/{}", a.model_name, a.batch);
        }
        let stats = cache.stats();
        assert_eq!(stats.len, 16);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn layer_tier_collapses_repeated_shapes_and_stays_byte_identical() {
        let spec = DseSpec {
            grid: ArchGrid {
                dram_bits_per_cycle: vec![64, 192],
                ..ArchGrid::from_base(ArchConfig::isca_45nm())
            },
            models: vec![Benchmark::ResNet18.model()],
            quant_specs: vec![QuantSpec::paper()],
            batches: vec![16],
            options: SimOptions::default(),
        };
        let cache = ArtifactCache::default();
        let layer_cache = LayerPerfCache::default();
        let cold = explore_with_caches(&spec, &AnalyticBackend, 2, &cache, &layer_cache);
        // ResNet-18's basic blocks repeat shapes: fewer unique keys than
        // evaluations even though the 2-point bandwidth axis splits keys.
        assert!(
            cold.layer_unique < cold.layer_evals,
            "{} unique / {} evals",
            cold.layer_unique,
            cold.layer_evals
        );
        assert_eq!(cold.spec_layer_hits(), cold.layer_evals - cold.layer_unique);
        let cold_stats = layer_cache.stats();
        assert_eq!(cold_stats.misses, cold.layer_unique, "cold cache evaluates each key once");
        assert_eq!(
            cold_stats.hits + cold_stats.misses,
            cold.layer_evals,
            "every evaluation goes through the tier"
        );
        // Warm re-run: zero new evaluations, identical results and
        // identical spec-level counters.
        let warm = explore_with_caches(&spec, &AnalyticBackend, 2, &cache, &layer_cache);
        assert_eq!(layer_cache.stats().misses, cold_stats.misses);
        assert_eq!(warm.layer_evals, cold.layer_evals);
        assert_eq!(warm.layer_unique, cold.layer_unique);
        for (a, b) in cold.points.iter().zip(&warm.points) {
            assert_eq!(a.report, b.report, "{}/{}", a.model_name, a.batch);
        }
        // And the tiered path matches the untier-ed baseline bit for bit.
        let direct = explore(&spec, &AnalyticBackend, 1);
        for (a, b) in direct.points.iter().zip(&cold.points) {
            assert_eq!(a.report, b.report, "{}/{}", a.model_name, a.batch);
        }
    }

    #[test]
    fn layer_counters_separate_quantizations() {
        let spec = DseSpec {
            grid: ArchGrid::from_base(ArchConfig::isca_45nm()),
            models: vec![Benchmark::Lstm.model()],
            quant_specs: vec![QuantSpec::paper(), QuantSpec::parse("uniform16").unwrap()],
            batches: vec![1],
            options: SimOptions::default(),
        };
        let result = explore(&spec, &AnalyticBackend, 1);
        // LSTM's paper assignment is uniform 4/4; the 16-bit variant tiles
        // differently, so the two points must not share layer keys beyond
        // what each shares internally.
        let per_point: u64 = result.points[0].report.layers.len() as u64;
        assert_eq!(result.layer_evals, 2 * per_point);
        assert!(
            result.layer_unique > per_point,
            "quantizations must not alias: {} unique",
            result.layer_unique
        );
    }

    #[test]
    fn duplicate_models_share_one_artifact() {
        let grid = ArchGrid::from_base(ArchConfig::isca_45nm());
        let spec = DseSpec {
            grid,
            models: vec![Benchmark::Rnn.model(), Benchmark::Rnn.model()],
            quant_specs: vec![QuantSpec::paper()],
            batches: vec![4],
            options: SimOptions::default(),
        };
        let result = explore(&spec, &AnalyticBackend, 1);
        assert_eq!(result.points.len(), 2);
        assert_eq!(result.compile_misses, 1, "identical models compile once");
        assert_eq!(result.compile_unique, 1);
        assert_eq!(result.spec_compile_hits(), 1);
        assert_eq!(result.points[0].report, result.points[1].report);
    }

    #[test]
    fn frontier_is_identical_for_any_worker_count() {
        let spec = small_spec();
        let sequential = explore(&spec, &AnalyticBackend, 1);
        for workers in [2, 4, 8] {
            let parallel = explore(&spec, &AnalyticBackend, workers);
            assert_eq!(sequential.points.len(), parallel.points.len());
            for (a, b) in sequential.points.iter().zip(&parallel.points) {
                assert_eq!(a.arch, b.arch, "{workers} workers");
                assert_eq!(a.model_name, b.model_name);
                assert_eq!(a.batch, b.batch);
                assert_eq!(a.report, b.report, "{}/{}", a.model_name, a.batch);
            }
            let fa = sequential.pareto_frontier();
            let fb = parallel.pareto_frontier();
            assert_eq!(fa.len(), fb.len(), "{workers} workers");
            for (a, b) in fa.iter().zip(&fb) {
                assert_eq!(a.arch, b.arch);
                assert_eq!(a.total_cycles, b.total_cycles);
                assert_eq!(a.total_energy_pj, b.total_energy_pj);
                assert_eq!(a.area_mm2, b.area_mm2);
            }
        }
    }

    #[test]
    fn frontier_is_nonempty_and_nondominated() {
        let result = explore(&small_spec(), &AnalyticBackend, 0);
        let frontier = result.pareto_frontier();
        assert!(!frontier.is_empty());
        for a in &frontier {
            assert_eq!(a.workloads, result.workloads_expected);
            for b in &frontier {
                assert!(!a.dominates(b) || a.arch == b.arch);
            }
        }
        // Every non-frontier complete summary is dominated by someone.
        let summaries = result.arch_summaries();
        for s in &summaries {
            let on_frontier = frontier.iter().any(|f| f.arch == s.arch);
            if !on_frontier {
                assert!(summaries.iter().any(|o| o.dominates(s)), "{}", s.arch);
            }
        }
    }

    #[test]
    fn event_backend_attributes_stalls_per_point() {
        let grid = ArchGrid {
            dram_bits_per_cycle: vec![32, 512],
            ..ArchGrid::from_base(ArchConfig::isca_45nm())
        };
        let spec = DseSpec {
            grid,
            models: vec![Benchmark::Rnn.model()],
            quant_specs: vec![QuantSpec::paper()],
            batches: vec![1],
            options: SimOptions::default(),
        };
        let result = explore(&spec, &EventBackend, 2);
        assert_eq!(result.backend, "event");
        assert_eq!(result.points.len(), 2);
        // Starved-for-bandwidth at 32 b/cyc; the 512 b/cyc point must stall
        // strictly less.
        let narrow = result.points[0].report.total_stalls();
        let wide = result.points[1].report.total_stalls();
        assert!(narrow.bandwidth_starved > wide.bandwidth_starved);
    }

    #[test]
    fn infeasible_corners_are_reported_not_fatal() {
        let grid = ArchGrid {
            // 16-byte scratchpads: no tiling fits.
            obuf_bytes: vec![16 * 1024, 1],
            ..ArchGrid::from_base(ArchConfig::isca_45nm())
        };
        let spec = DseSpec {
            grid,
            models: vec![Benchmark::Svhn.model()],
            quant_specs: vec![QuantSpec::paper()],
            batches: vec![4],
            options: SimOptions::default(),
        };
        let result = explore(&spec, &AnalyticBackend, 1);
        assert_eq!(result.points.len(), 1);
        assert_eq!(result.infeasible.len(), 1);
        assert!(matches!(
            result.infeasible[0].error,
            PointError::Compile(CompileError::NoFeasibleTiling { .. })
        ));
        // The surviving arch still forms a frontier.
        assert_eq!(result.pareto_frontier().len(), 1);
    }

    #[test]
    fn invalid_grid_points_are_reported() {
        let grid = ArchGrid {
            rows: vec![32, 0],
            ..ArchGrid::from_base(ArchConfig::isca_45nm())
        };
        let spec = DseSpec {
            grid,
            models: vec![Benchmark::Lstm.model()],
            quant_specs: vec![QuantSpec::paper()],
            batches: vec![1],
            options: SimOptions::default(),
        };
        let result = explore(&spec, &AnalyticBackend, 1);
        assert_eq!(result.points.len(), 1);
        assert_eq!(result.infeasible.len(), 1);
        assert!(matches!(
            result.infeasible[0].error,
            PointError::InvalidConfig(_)
        ));
    }

    #[test]
    fn quant_axis_orders_points_and_splits_artifacts() {
        let spec = DseSpec {
            grid: ArchGrid::from_base(ArchConfig::isca_45nm()),
            models: vec![Benchmark::Lstm.model()],
            quant_specs: vec![
                QuantSpec::paper(),
                QuantSpec::parse("uniform8").unwrap(),
                QuantSpec::parse("uniform16").unwrap(),
            ],
            batches: vec![1],
            options: SimOptions::default(),
        };
        assert_eq!(spec.len(), 3);
        let result = explore(&spec, &AnalyticBackend, 1);
        assert_eq!(result.points.len(), 3);
        assert_eq!(
            result.compile_unique, 3,
            "each quantization is its own artifact (fingerprint covers precisions)"
        );
        let quants: Vec<&str> = result.points.iter().map(|p| p.quant.as_str()).collect();
        assert_eq!(quants, ["paper", "uniform8", "uniform16"], "spec order");
        // Fewer bits never cost cycles: paper (4/4) <= uniform8 <= uniform16.
        let cycles: Vec<u64> = result.points.iter().map(DsePoint::cycles).collect();
        assert!(cycles[0] <= cycles[1], "{cycles:?}");
        assert!(cycles[1] < cycles[2], "{cycles:?}");
    }

    #[test]
    fn quant_points_are_identical_for_any_worker_count() {
        let spec = DseSpec {
            grid: ArchGrid {
                dram_bits_per_cycle: vec![64, 128],
                ..ArchGrid::from_base(ArchConfig::isca_45nm())
            },
            models: vec![Benchmark::Lstm.model(), Benchmark::Rnn.model()],
            quant_specs: vec![QuantSpec::paper(), QuantSpec::parse("uniform8").unwrap()],
            batches: vec![1, 4],
            options: SimOptions::default(),
        };
        let sequential = explore(&spec, &AnalyticBackend, 1);
        assert_eq!(sequential.points.len(), spec.len());
        for workers in [2, 5] {
            let parallel = explore(&spec, &AnalyticBackend, workers);
            assert_eq!(sequential.points.len(), parallel.points.len());
            for (a, b) in sequential.points.iter().zip(&parallel.points) {
                assert_eq!(a.quant, b.quant, "{workers} workers");
                assert_eq!(a.report, b.report, "{}/{}", a.model_name, a.quant);
            }
            assert_eq!(
                sequential.quant_speedups_vs("uniform8"),
                parallel.quant_speedups_vs("uniform8")
            );
        }
    }

    #[test]
    fn quant_speedups_report_the_heterogeneous_benefit() {
        let spec = DseSpec {
            grid: ArchGrid::from_base(ArchConfig::isca_45nm()),
            models: vec![Benchmark::Lstm.model(), Benchmark::Svhn.model()],
            quant_specs: vec![
                QuantSpec::paper(),
                QuantSpec::parse("uniform8").unwrap(),
                QuantSpec::parse("uniform16").unwrap(),
            ],
            batches: vec![4],
            options: SimOptions::default(),
        };
        let result = explore(&spec, &AnalyticBackend, 2);
        let speedups = result.quant_speedups_vs("uniform8");
        // Two models × two non-baseline quants, model-major order.
        let labels: Vec<(&str, &str)> = speedups
            .iter()
            .map(|s| (s.model.as_str(), s.quant.as_str()))
            .collect();
        assert_eq!(
            labels,
            [
                ("LSTM", "paper"),
                ("LSTM", "uniform16"),
                ("SVHN", "paper"),
                ("SVHN", "uniform16"),
            ]
        );
        for s in &speedups {
            match s.quant.as_str() {
                // The paper's point: per-layer bitwidths beat a fixed
                // 8-bit datapath...
                "paper" => assert!(s.speedup >= 1.0, "{}: {}", s.model, s.speedup),
                // ...and a fixed 16-bit datapath is strictly worse.
                "uniform16" => assert!(s.speedup < 1.0, "{}: {}", s.model, s.speedup),
                other => panic!("{other}"),
            }
        }
    }

    #[test]
    fn equivalent_quant_specs_alias_one_artifact() {
        // LSTM's paper assignment is uniform 4/4, so spelling it as a
        // uniform spec resolves to the same fingerprint and artifact.
        let spec = DseSpec {
            grid: ArchGrid::from_base(ArchConfig::isca_45nm()),
            models: vec![Benchmark::Lstm.model()],
            quant_specs: vec![QuantSpec::paper(), QuantSpec::parse("uniform4").unwrap()],
            batches: vec![1],
            options: SimOptions::default(),
        };
        let result = explore(&spec, &AnalyticBackend, 1);
        assert_eq!(result.points.len(), 2);
        assert_eq!(result.compile_unique, 1);
        assert_eq!(result.spec_compile_hits(), 1);
        assert_eq!(result.points[0].report, result.points[1].report);
    }

    #[test]
    fn failed_quant_spec_is_infeasible_not_fatal() {
        let spec = DseSpec {
            grid: ArchGrid::from_base(ArchConfig::isca_45nm()),
            models: vec![Benchmark::Lstm.model(), Benchmark::Rnn.model()],
            quant_specs: vec![
                QuantSpec::paper(),
                // Matches RNN but not LSTM: half the axis fails.
                QuantSpec::parse("layer:rnn1=8/8").unwrap(),
            ],
            batches: vec![1],
            options: SimOptions::default(),
        };
        let result = explore(&spec, &AnalyticBackend, 1);
        assert_eq!(result.points.len(), 3);
        assert_eq!(result.infeasible.len(), 1);
        let bad = &result.infeasible[0];
        assert_eq!(bad.model_name, "LSTM");
        assert!(matches!(&bad.error, PointError::Quant(e) if e.contains("rnn1")));
        // Quant failures never reach the compiler.
        assert_eq!(result.compilable_points(), 3);
        assert_eq!(result.compile_unique, 3);
    }

    #[test]
    fn frontier_prefers_dominating_quantization_on_the_same_silicon() {
        let spec = DseSpec {
            grid: ArchGrid::from_base(ArchConfig::isca_45nm()),
            models: vec![Benchmark::Lstm.model()],
            quant_specs: vec![QuantSpec::paper(), QuantSpec::parse("uniform16").unwrap()],
            batches: vec![4],
            options: SimOptions::default(),
        };
        let result = explore(&spec, &AnalyticBackend, 1);
        let summaries = result.arch_summaries();
        assert_eq!(summaries.len(), 2, "one candidate per quantization");
        let frontier = result.pareto_frontier();
        // Same chip, but the heterogeneous assignment needs fewer cycles
        // and less energy: uniform16 is dominated off the frontier.
        assert_eq!(frontier.len(), 1, "{frontier:?}");
        assert_eq!(frontier[0].quant, "paper");
    }

    #[test]
    fn resume_restores_every_point_with_identical_frontier_bytes() {
        let dir = std::env::temp_dir().join(format!("bf-dse-resume-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = small_spec();
        let uninterrupted = explore(&spec, &AnalyticBackend, 2);
        {
            // First (to-be-"interrupted") run: checkpoints every point.
            let store = DiskArtifactStore::open(&dir).unwrap();
            let first = explore_checkpointed(
                &spec,
                &AnalyticBackend,
                2,
                &ArtifactCache::default(),
                &LayerPerfCache::default(),
                Some(&store),
            );
            assert_eq!(first.points.len(), uninterrupted.points.len());
            let stats = store.stats();
            assert_eq!(stats.point_hits, 0, "cold run restores nothing");
            assert_eq!(
                stats.point_misses,
                uninterrupted.points.len() as u64,
                "{stats:?}"
            );
        }
        // The "restarted process": fresh caches, same directory.
        let store = DiskArtifactStore::open(&dir).unwrap();
        let layer_cache = LayerPerfCache::default();
        let resumed = explore_checkpointed(
            &spec,
            &AnalyticBackend,
            3,
            &ArtifactCache::default(),
            &layer_cache,
            Some(&store),
        );
        let stats = store.stats();
        assert_eq!(
            stats.point_hits,
            uninterrupted.points.len() as u64,
            "every point restored from its checkpoint: {stats:?}"
        );
        assert_eq!(
            layer_cache.stats().misses,
            0,
            "a restored point evaluates zero layers"
        );
        // Byte-identity with the uninterrupted run: points, spec-level
        // counters, and the frontier derived from them.
        assert_eq!(resumed.points.len(), uninterrupted.points.len());
        for (a, b) in uninterrupted.points.iter().zip(&resumed.points) {
            assert_eq!(a.arch, b.arch);
            assert_eq!(a.report, b.report, "{}/{}", a.model_name, a.batch);
            assert_eq!(a.area_mm2.to_bits(), b.area_mm2.to_bits());
        }
        assert_eq!(resumed.compile_unique, uninterrupted.compile_unique);
        assert_eq!(resumed.layer_evals, uninterrupted.layer_evals);
        assert_eq!(resumed.layer_unique, uninterrupted.layer_unique);
        let fa = uninterrupted.pareto_frontier();
        let fb = resumed.pareto_frontier();
        assert_eq!(fa.len(), fb.len());
        for (a, b) in fa.iter().zip(&fb) {
            assert_eq!(a.arch, b.arch);
            assert_eq!(a.total_cycles, b.total_cycles);
            assert_eq!(a.total_energy_pj.to_bits(), b.total_energy_pj.to_bits());
            assert_eq!(a.area_mm2.to_bits(), b.area_mm2.to_bits());
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_and_corrupt_checkpoints_recompute_the_gaps() {
        let dir = std::env::temp_dir().join(format!("bf-dse-partial-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = small_spec();
        let expected = explore(&spec, &AnalyticBackend, 1);
        {
            let store = DiskArtifactStore::open(&dir).unwrap();
            explore_checkpointed(
                &spec,
                &AnalyticBackend,
                2,
                &ArtifactCache::default(),
                &LayerPerfCache::default(),
                Some(&store),
            );
        }
        // Simulate an interrupted sweep: drop some checkpoints, truncate
        // one (disk damage mid-write would be caught the same way).
        let dse_dir = dir.join("dse");
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(&dse_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        assert_eq!(files.len(), expected.points.len());
        for f in files.iter().step_by(3) {
            std::fs::remove_file(f).unwrap();
        }
        let survivor = files.iter().find(|f| f.exists()).unwrap();
        let text = std::fs::read_to_string(survivor).unwrap();
        std::fs::write(survivor, &text[..text.len() / 3]).unwrap();
        let store = DiskArtifactStore::open(&dir).unwrap();
        let resumed = explore_checkpointed(
            &spec,
            &AnalyticBackend,
            2,
            &ArtifactCache::default(),
            &LayerPerfCache::default(),
            Some(&store),
        );
        let stats = store.stats();
        assert!(stats.point_hits > 0, "{stats:?}");
        assert!(stats.point_misses > 0, "{stats:?}");
        assert_eq!(stats.corrupt, 1, "{stats:?}");
        for (a, b) in expected.points.iter().zip(&resumed.points) {
            assert_eq!(a.report, b.report, "{}/{}", a.model_name, a.batch);
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn differing_specs_never_share_checkpoints() {
        let dir = std::env::temp_dir().join(format!("bf-dse-split-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base = DseSpec {
            grid: ArchGrid::from_base(ArchConfig::isca_45nm()),
            models: vec![Benchmark::Rnn.model()],
            quant_specs: vec![QuantSpec::paper()],
            batches: vec![4],
            options: SimOptions::default(),
        };
        let store = DiskArtifactStore::open(&dir).unwrap();
        explore_checkpointed(
            &base,
            &AnalyticBackend,
            1,
            &ArtifactCache::default(),
            &LayerPerfCache::default(),
            Some(&store),
        );
        // Same shape and point count, different backend / options / grid:
        // none may restore the analytic run's checkpoint.
        let other_backend = explore_checkpointed(
            &base,
            &EventBackend,
            1,
            &ArtifactCache::default(),
            &LayerPerfCache::default(),
            Some(&store),
        );
        assert_eq!(other_backend.points.len(), 1);
        let stats = store.stats();
        assert_eq!(
            stats.point_hits, 0,
            "a different backend must miss: {stats:?}"
        );
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zoo_spec_covers_all_networks() {
        let spec = DseSpec::zoo(
            ArchGrid::from_base(ArchConfig::isca_45nm()),
            vec![16],
        );
        assert_eq!(spec.models.len(), 8);
        assert_eq!(spec.workloads(), 8);
        assert!(!spec.is_empty());
    }
}

