//! The pluggable simulation-backend interface.
//!
//! A [`SimBackend`] turns one compiled layer group into a [`LayerPerf`].
//! Two implementations ship with the crate:
//!
//! * [`AnalyticBackend`] — the closed-form model of [`crate::engine`]:
//!   `prologue + max(compute, dma − prologue)`, O(static block size) per
//!   layer. The fast path for sweeps and design-space exploration.
//! * [`EventBackend`](crate::EventBackend) — the trace-driven model of
//!   [`crate::event`]: advances explicit double-buffered DMA, systolic, and
//!   post-op pipeline state over the block's tile segments, producing stall
//!   attribution and buffer-occupancy highwater marks.
//!
//! The backend contract (`DESIGN.md`, "Simulation backends"): every backend
//! must report *identical* DRAM traffic, MAC counts, and energy for the
//! same plan — those flow from the instruction blocks and the shared energy
//! model ([`crate::engine::energy_for_layer`]) — and cycle counts must
//! agree within the documented tolerance band. The cross-validation suite
//! (`tests/backend_cross_validation.rs`) enforces this on every zoo
//! network.

use bitfusion_compiler::PlannedLayer;
use bitfusion_core::arch::ArchConfig;
use bitfusion_energy::FusionEnergy;

use crate::engine::{evaluate_layer, SimOptions};
use crate::stats::LayerPerf;

/// The documented tolerance band between the backends' per-network cycle
/// totals (see `DESIGN.md`, "Simulation backends"): the two timing models
/// describe the same double-buffered machine at different granularity and
/// must agree within this relative bound on every zoo network. With the
/// analytic prologue no longer double-counting the first tile (a one-tile
/// layer costs plain `load + compute + store` in both models), the gap is
/// empirically under 2.6% at batch 16 on all eight networks; the band
/// leaves a small margin for store-serialization detail the closed form
/// folds into `max(compute, dma − prologue)`.
pub const BACKEND_CYCLE_TOLERANCE: f64 = 0.04;

/// A performance model that evaluates compiled layer groups.
pub trait SimBackend {
    /// Short backend name for reports and diagnostics.
    fn name(&self) -> &'static str;

    /// Evaluates one compiled layer group on an architecture.
    fn evaluate_layer(
        &self,
        layer: &PlannedLayer,
        arch: &ArchConfig,
        energy: &FusionEnergy,
        opts: &SimOptions,
    ) -> LayerPerf;
}

/// The closed-form performance model (the original engine): exact DMA
/// traffic from the block summary, systolic-step arithmetic from the
/// mapping facts, and `prologue + max(compute, dma − prologue)` timing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyticBackend;

impl SimBackend for AnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn evaluate_layer(
        &self,
        layer: &PlannedLayer,
        arch: &ArchConfig,
        energy: &FusionEnergy,
        opts: &SimOptions,
    ) -> LayerPerf {
        evaluate_layer(layer, arch, energy, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_compiler::compile;
    use bitfusion_dnn::zoo::Benchmark;

    #[test]
    fn analytic_backend_matches_direct_engine_call() {
        let arch = ArchConfig::isca_45nm();
        let plan = compile(&Benchmark::Svhn.model(), &arch, 4).unwrap();
        let e = FusionEnergy::isca_45nm();
        let o = SimOptions::default();
        let backend = AnalyticBackend;
        assert_eq!(backend.name(), "analytic");
        for l in &plan.layers {
            assert_eq!(
                backend.evaluate_layer(l, &arch, &e, &o),
                evaluate_layer(l, &arch, &e, &o),
                "{}",
                l.name
            );
        }
    }
}
