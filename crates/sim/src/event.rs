//! The trace-driven simulation backend.
//!
//! [`EventBackend`] consumes a compiled block as a segment stream — one
//! segment per iteration of the DMA-issuing tile loops, produced by
//! compiling the block once into a [`bitfusion_isa::SegmentProgram`] and
//! replaying it allocation-free (the layer-cache *miss* fast path) — and
//! advances explicit pipeline state across three engines of the §IV
//! decoupled-access machine:
//!
//! * a **DMA engine** shared by `ld-mem`/`st-mem`: one transfer at a time
//!   at the derated off-chip bandwidth, double-buffered per scratchpad — a
//!   segment's loads may start while the *previous* segment computes, but
//!   not before the segment-before-last released its buffer half;
//! * the **systolic array**: a segment's MAC steps run back to back at the
//!   block's temporal-cycle count, paying one fill/drain
//!   (`rows + cols` cycles) per started pass, derated by
//!   [`SimOptions::systolic_efficiency`];
//! * the **post-op pipe**: the per-column activation/pooling units of
//!   Figure 3, overlapping the array's next segment.
//!
//! Along the way it measures what the closed-form model can only estimate:
//! per-layer stall attribution (bandwidth-starved vs compute-starved
//! cycles) and double-buffered scratchpad occupancy highwater marks.
//!
//! DRAM traffic, MAC counts, and energy come from merging the very segments
//! that drive the timing, so they are *identical* to the analytic backend's
//! by construction — the cross-validation suite pins this, and pins cycle
//! agreement within the `DESIGN.md` tolerance band.

use bitfusion_compiler::PlannedLayer;
use bitfusion_core::arch::ArchConfig;
use bitfusion_energy::FusionEnergy;
use bitfusion_isa::program::SegmentProgram;
use bitfusion_isa::walker::{for_each_segment_reference, BlockSummary, Segment};
use bitfusion_isa::{ComputeFn, Scratchpad};

use crate::backend::SimBackend;
use crate::engine::{energy_for_layer, DeratedRate, SimOptions};
use crate::stats::{BufferOccupancy, LayerPerf, StallBreakdown};

/// The trace-driven (segment-timeline) performance model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventBackend;

/// Mutable pipeline state advanced one segment at a time.
struct Timeline {
    /// Cycle the DMA engine finishes its queued transfers.
    dma_free: u64,
    /// Cycle the array finished the previous segment's MACs.
    compute_done_prev: u64,
    /// Cycle the array finished the segment before last (when its double
    /// buffer half became free for overwriting).
    compute_done_prev2: u64,
    /// Cycle the post-op pipe drains.
    post_free: u64,
    /// When the most recent produced outputs became store-ready.
    data_ready: u64,
    /// A store waiting to drain: `(cycles, ready_at)`. Stores are issued
    /// one segment late so the next tile's load prefetch keeps priority on
    /// the shared DMA engine (no head-of-line blocking behind data that is
    /// still being computed).
    pending_store: Option<(u64, u64)>,
    /// Busy-cycle accumulators for the report.
    dma_busy: u64,
    compute_busy: u64,
    stalls: StallBreakdown,
    /// Per-scratchpad bits of the most recent DMA transfer (the other
    /// double-buffer half, resident until the next transfer replaces it).
    prev_resident: [u64; 3],
    occupancy: BufferOccupancy,
}

impl Timeline {
    fn new() -> Self {
        Timeline {
            dma_free: 0,
            compute_done_prev: 0,
            compute_done_prev2: 0,
            post_free: 0,
            data_ready: 0,
            pending_store: None,
            dma_busy: 0,
            compute_busy: 0,
            stalls: StallBreakdown::default(),
            prev_resident: [0; 3],
            occupancy: BufferOccupancy::default(),
        }
    }

    /// Drains a deferred store through the DMA engine.
    fn drain_pending_store(&mut self) {
        if let Some((cycles, ready_at)) = self.pending_store.take() {
            let start = self.dma_free.max(ready_at);
            self.stalls.compute_starved += start - self.dma_free;
            self.dma_busy += cycles;
            self.dma_free = start + cycles;
        }
    }

    /// End of the layer: all three pipes drained.
    fn finish(&mut self) -> u64 {
        self.drain_pending_store();
        self.dma_free.max(self.compute_done_prev).max(self.post_free)
    }
}

/// Static per-layer costs the timeline applies to every segment. Both
/// derates are exact rationals ([`DeratedRate`]): cycle division stays
/// integer-exact at any segment size instead of round-tripping through
/// f64 (which silently loses precision above 2^53 bits).
struct SegmentCosts {
    effective_bw: DeratedRate,
    temporal_cycles: u64,
    steps_per_pass: u64,
    fill_cost: u64,
    systolic: DeratedRate,
}

impl SegmentCosts {
    fn dma_cycles(&self, bits: u64) -> u64 {
        self.effective_bw.cycles_for(bits)
    }

    /// Array cycles for a segment's MAC steps: temporal cycles per step
    /// plus one fill/drain per started systolic pass, derated by the
    /// steady-state efficiency. Returns `(cycles, raw_fill_cycles)`.
    fn compute_cycles(&self, mac_steps: u64) -> (u64, u64) {
        if mac_steps == 0 {
            return (0, 0);
        }
        let passes = mac_steps.div_ceil(self.steps_per_pass);
        let fill = passes.saturating_mul(self.fill_cost);
        let raw = mac_steps
            .saturating_mul(self.temporal_cycles)
            .saturating_add(fill);
        (self.systolic.cycles_for(raw), fill)
    }

    /// Post-op pipe cycles: one vector operation per cycle per column unit,
    /// same steady-state derating as the array it is slaved to.
    fn post_cycles(&self, post_steps: u64) -> u64 {
        self.systolic.cycles_for(post_steps)
    }
}

/// The cycle costs of one segment, derived from its counts alone — no
/// [`Timeline`] state. For a fused tile loop every steady-state iteration
/// emits the same constant delta, so the fast path computes this once per
/// delta (hoisting the exact-rational [`DeratedRate`] divisions out of the
/// per-segment loop) and replays it by lookup.
#[derive(Debug, Clone, Copy)]
struct SegmentCycles {
    load_cycles: u64,
    store_cycles: u64,
    compute_cycles: u64,
    fill: u64,
    post_cycles: u64,
    has_compute: bool,
}

impl SegmentCycles {
    fn of(seg: &Segment, load_bits: u64, store_bits: u64, costs: &SegmentCosts) -> SegmentCycles {
        let mac_steps = seg.compute_count(ComputeFn::Mac);
        let post_steps = seg.compute_steps() - mac_steps;
        let (compute_cycles, fill) = costs.compute_cycles(mac_steps);
        SegmentCycles {
            load_cycles: costs.dma_cycles(load_bits),
            store_cycles: costs.dma_cycles(store_bits),
            compute_cycles,
            fill,
            post_cycles: costs.post_cycles(post_steps),
            has_compute: mac_steps > 0 || post_steps > 0,
        }
    }
}

fn advance(t: &mut Timeline, seg: &Segment, c: &SegmentCycles) {
    // --- DMA engine: this segment's tile loads. The double buffer half
    // being overwritten frees when the segment-before-last finished
    // computing, so loads overlap the previous segment's compute only.
    // Loads go ahead of the previous segment's deferred store: prefetch is
    // latency-critical, the store is not.
    let load_cycles = c.load_cycles;
    let load_done = if load_cycles > 0 {
        let start = t.dma_free.max(t.compute_done_prev2);
        t.stalls.compute_starved += start - t.dma_free;
        t.dma_busy += load_cycles;
        t.dma_free = start + load_cycles;
        t.dma_free
    } else {
        0
    };

    // --- DMA engine: drain the previous segment's store behind this
    // segment's prefetch (its data is ready by now).
    t.drain_pending_store();

    // --- Systolic array + post-op pipe.
    if c.has_compute {
        let start = load_done.max(t.compute_done_prev);
        t.stalls.bandwidth_starved += start - t.compute_done_prev;
        t.stalls.fill_drain += c.fill;
        let compute_done = start + c.compute_cycles;
        t.compute_busy += c.compute_cycles;
        // Post-ops stream the finished vectors; the pipe may still be
        // draining the previous segment.
        let post_done = t.post_free.max(compute_done) + c.post_cycles;
        t.post_free = post_done;
        t.compute_done_prev2 = t.compute_done_prev;
        t.compute_done_prev = compute_done;
        t.data_ready = compute_done.max(post_done);
    }

    // --- Queue this segment's stores; they drain once its data is ready,
    // behind the next segment's prefetch.
    if c.store_cycles > 0 {
        t.pending_store = Some((c.store_cycles, t.data_ready));
    }

    // --- Occupancy: under double buffering, a tile stays resident until
    // the *next* transfer into the same scratchpad replaces it — which may
    // be many segments later when the load sits at an outer tile depth —
    // so the peak pairs each transfer with the previous one into that
    // buffer, not merely the previous segment.
    for buffer in [Scratchpad::Ibuf, Scratchpad::Wbuf, Scratchpad::Obuf] {
        let i = buffer.code() as usize;
        let counts = seg.buffer(buffer);
        // Outputs accumulate in OBUF until their `st-mem` drains them.
        let resident = counts.dma_load_bits + counts.dma_store_bits;
        if resident > 0 {
            let peak = t.prev_resident[i] + resident;
            t.occupancy.highwater_bits[i] = t.occupancy.highwater_bits[i].max(peak);
            t.prev_resident[i] = resident;
        }
    }
}

fn segment_costs(layer: &PlannedLayer, arch: &ArchConfig, opts: &SimOptions) -> SegmentCosts {
    let m = &layer.mapping;
    let facts = layer.segment_facts();
    SegmentCosts {
        effective_bw: DeratedRate::new(arch.dram_bits_per_cycle as u64, opts.dram_efficiency),
        temporal_cycles: m.temporal_cycles,
        steps_per_pass: facts.steps_per_pass.max(1),
        fill_cost: arch.rows as u64 + arch.cols as u64,
        systolic: DeratedRate::new(1, opts.systolic_efficiency),
    }
}

fn perf_from_timeline(
    layer: &PlannedLayer,
    arch: &ArchConfig,
    energy: &FusionEnergy,
    opts: &SimOptions,
    mut timeline: Timeline,
    merged: &BlockSummary,
) -> LayerPerf {
    debug_assert_eq!(
        merged.compute_count(ComputeFn::Mac),
        layer.mapping.compute_steps,
        "segment MAC steps must cover the mapping"
    );
    LayerPerf {
        name: layer.name.clone(),
        cycles: timeline.finish(),
        compute_cycles: timeline.compute_busy,
        dma_cycles: timeline.dma_busy,
        dram_bits: merged.dram_bits(),
        macs: layer.mapping.macs,
        energy: energy_for_layer(layer, arch, energy, opts, merged),
        stalls: timeline.stalls,
        occupancy: timeline.occupancy,
    }
}

impl SimBackend for EventBackend {
    fn name(&self) -> &'static str {
        "event"
    }

    fn evaluate_layer(
        &self,
        layer: &PlannedLayer,
        arch: &ArchConfig,
        energy: &FusionEnergy,
        opts: &SimOptions,
    ) -> LayerPerf {
        let costs = segment_costs(layer, arch, opts);
        // The cache-miss fast path: compile the block's loop tree once into
        // a flat segment program, then replay it allocation-free. The
        // program also precomputes per-segment DMA bit totals and the
        // whole-block merge (== `summarize`), so nothing is re-summed or
        // re-merged per segment — and since steady-state tile iterations
        // emit a constant delta, their cycle costs (the DeratedRate
        // divisions) are derived once per delta here and replayed by
        // keyed lookup.
        let program = SegmentProgram::compile(&layer.block);
        let delta_cycles: Vec<SegmentCycles> = (0..program.delta_count())
            .map(|i| {
                let (seg, load_bits, store_bits) = program.delta(i);
                SegmentCycles::of(seg, load_bits, store_bits, &costs)
            })
            .collect();
        let mut timeline = Timeline::new();
        program.replay_keyed(&mut |seg, load_bits, store_bits, key| match key {
            Some(i) => advance(&mut timeline, seg, &delta_cycles[i as usize]),
            None => {
                let c = SegmentCycles::of(seg, load_bits, store_bits, &costs);
                advance(&mut timeline, seg, &c);
            }
        });
        perf_from_timeline(layer, arch, energy, opts, timeline, program.total())
    }
}

/// The pre-program evaluation path: drives the same [`Timeline`] from the
/// naive reference tree walk (per-iteration `subtree_has_dma`, per-segment
/// analytic re-folds, per-segment buffer re-summing and stream merging).
///
/// Produces bit-identical results to [`EventBackend::evaluate_layer`]; kept
/// solely as the baseline the bench trajectory's ≥2x cold-path speedup is
/// asserted against.
#[doc(hidden)]
pub fn evaluate_layer_naive(
    layer: &PlannedLayer,
    arch: &ArchConfig,
    energy: &FusionEnergy,
    opts: &SimOptions,
) -> LayerPerf {
    let costs = segment_costs(layer, arch, opts);
    let mut timeline = Timeline::new();
    let mut merged = BlockSummary::default();
    for_each_segment_reference(&layer.block, &mut |seg| {
        let c = SegmentCycles::of(seg, seg.dma_load_bits(), seg.dma_store_bits(), &costs);
        advance(&mut timeline, seg, &c);
        merged.merge(seg);
    });
    perf_from_timeline(layer, arch, energy, opts, timeline, &merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AnalyticBackend;
    use bitfusion_compiler::compile;
    use bitfusion_dnn::zoo::Benchmark;

    fn eval_both(b: Benchmark, batch: u64) -> Vec<(LayerPerf, LayerPerf)> {
        let arch = ArchConfig::isca_45nm();
        let plan = compile(&b.model(), &arch, batch).unwrap();
        let e = FusionEnergy::isca_45nm();
        let o = SimOptions::default();
        plan.layers
            .iter()
            .map(|l| {
                (
                    EventBackend.evaluate_layer(l, &arch, &e, &o),
                    AnalyticBackend.evaluate_layer(l, &arch, &e, &o),
                )
            })
            .collect()
    }

    #[test]
    fn traffic_macs_and_energy_match_analytic_exactly() {
        for (ev, an) in eval_both(Benchmark::Svhn, 4) {
            assert_eq!(ev.dram_bits, an.dram_bits, "{}", ev.name);
            assert_eq!(ev.macs, an.macs, "{}", ev.name);
            assert_eq!(ev.energy, an.energy, "{}", ev.name);
        }
    }

    #[test]
    fn stall_attribution_is_consistent() {
        for (ev, _) in eval_both(Benchmark::Lstm, 1) {
            // LSTM at batch 1 is bandwidth-bound: the array must wait on
            // DMA far longer than the DMA waits on compute.
            assert!(
                ev.stalls.bandwidth_starved > ev.stalls.compute_starved,
                "{}: {:?}",
                ev.name,
                ev.stalls
            );
            // Stall cycles never exceed the layer's total.
            assert!(ev.stalls.bandwidth_starved <= ev.cycles, "{}", ev.name);
        }
    }

    #[test]
    fn occupancy_fits_the_scratchpads() {
        let arch = ArchConfig::isca_45nm();
        for b in [Benchmark::Cifar10, Benchmark::Lstm] {
            let plan = compile(&b.model(), &arch, 16).unwrap();
            let e = FusionEnergy::isca_45nm();
            let o = SimOptions::default();
            for l in &plan.layers {
                let perf = EventBackend.evaluate_layer(l, &arch, &e, &o);
                let occ = perf.occupancy;
                assert!(occ.bits(Scratchpad::Ibuf) > 0, "{b}/{}", l.name);
                assert!(occ.bits(Scratchpad::Wbuf) > 0, "{b}/{}", l.name);
                assert!(
                    occ.bits(Scratchpad::Ibuf) <= 8 * arch.ibuf_bytes as u64,
                    "{b}/{}: {} bits in IBUF",
                    l.name,
                    occ.bits(Scratchpad::Ibuf)
                );
                assert!(
                    occ.bits(Scratchpad::Wbuf) <= 8 * arch.wbuf_bytes as u64,
                    "{b}/{}: {} bits in WBUF",
                    l.name,
                    occ.bits(Scratchpad::Wbuf)
                );
            }
        }
    }

    #[test]
    fn naive_walk_and_compiled_program_agree_exactly() {
        // The compiled-segment-program fast path must be a pure
        // optimization: every field of every layer's result identical to
        // the naive reference walk it replaced.
        let arch = ArchConfig::isca_45nm();
        let e = FusionEnergy::isca_45nm();
        let o = SimOptions::default();
        for b in [Benchmark::Svhn, Benchmark::Lstm, Benchmark::ResNet18] {
            let plan = compile(&b.model(), &arch, 4).unwrap();
            for l in &plan.layers {
                let fast = EventBackend.evaluate_layer(l, &arch, &e, &o);
                let naive = evaluate_layer_naive(l, &arch, &e, &o);
                assert_eq!(fast, naive, "{b}/{}", l.name);
            }
        }
    }

    #[test]
    fn event_cycles_track_analytic_within_band() {
        for b in [Benchmark::Svhn, Benchmark::Rnn] {
            let (ev_total, an_total) = eval_both(b, 16).iter().fold(
                (0u64, 0u64),
                |(e, a), (ev, an)| (e + ev.cycles, a + an.cycles),
            );
            let rel = (ev_total as f64 - an_total as f64).abs() / an_total as f64;
            assert!(rel < 0.25, "{b}: event {ev_total} vs analytic {an_total}");
        }
    }
}
