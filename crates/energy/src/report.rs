//! Per-component energy breakdowns (the Figure 14 categories: compute,
//! on-chip buffers, register file, DRAM).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Energy of one workload run, split into the Figure 14 components, in pJ.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Datapath (MAC units / BitBricks / SIPs).
    pub compute_pj: f64,
    /// On-chip SRAM/eDRAM buffers.
    pub buffer_pj: f64,
    /// Register files. For Bit Fusion this is the Fusion Units' output/
    /// pipeline registers (a small sliver — the systolic design has no
    /// per-PE register file; §V-B1). For Eyeriss it is the dominant
    /// component.
    pub rf_pj: f64,
    /// Off-chip DRAM.
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.buffer_pj + self.rf_pj + self.dram_pj
    }

    /// Total energy in µJ.
    pub fn total_uj(&self) -> f64 {
        self.total_pj() / 1e6
    }

    /// Component fractions `[compute, buffers, rf, dram]` summing to 1
    /// (all zeros for an empty breakdown).
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total_pj();
        if t == 0.0 {
            return [0.0; 4];
        }
        [
            self.compute_pj / t,
            self.buffer_pj / t,
            self.rf_pj / t,
            self.dram_pj / t,
        ]
    }

    /// Scales every component (used for technology scaling and batch
    /// averaging).
    pub fn scaled(&self, factor: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: self.compute_pj * factor,
            buffer_pj: self.buffer_pj * factor,
            rf_pj: self.rf_pj * factor,
            dram_pj: self.dram_pj * factor,
        }
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: self.compute_pj + rhs.compute_pj,
            buffer_pj: self.buffer_pj + rhs.buffer_pj,
            rf_pj: self.rf_pj + rhs.rf_pj,
            dram_pj: self.dram_pj + rhs.dram_pj,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

impl Sum for EnergyBreakdown {
    fn sum<I: Iterator<Item = EnergyBreakdown>>(iter: I) -> EnergyBreakdown {
        iter.fold(EnergyBreakdown::default(), |a, b| a + b)
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [c, b, r, d] = self.fractions();
        write!(
            f,
            "{:.2} uJ (compute {:.0}%, buffers {:.0}%, RF {:.0}%, DRAM {:.0}%)",
            self.total_uj(),
            c * 100.0,
            b * 100.0,
            r * 100.0,
            d * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: 10.0,
            buffer_pj: 20.0,
            rf_pj: 0.0,
            dram_pj: 70.0,
        }
    }

    #[test]
    fn totals_and_fractions() {
        let e = sample();
        assert_eq!(e.total_pj(), 100.0);
        let f = e.fractions();
        assert_eq!(f, [0.1, 0.2, 0.0, 0.7]);
        assert_eq!(EnergyBreakdown::default().fractions(), [0.0; 4]);
    }

    #[test]
    fn add_and_sum() {
        let two = sample() + sample();
        assert_eq!(two.total_pj(), 200.0);
        let many: EnergyBreakdown = (0..5).map(|_| sample()).sum();
        assert_eq!(many.dram_pj, 350.0);
    }

    #[test]
    fn scaling() {
        let half = sample().scaled(0.5);
        assert_eq!(half.total_pj(), 50.0);
    }

    #[test]
    fn display_shows_fractions() {
        let s = sample().to_string();
        assert!(s.contains("DRAM 70%"));
    }
}
