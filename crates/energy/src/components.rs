//! Per-component energy constants at 45 nm.
//!
//! Every constant is documented with its anchor. The Bit Fusion datapath
//! constants derive from the Figure 10 synthesis results (power at 500 MHz
//! converts to energy per cycle); the Eyeriss hierarchy uses the relative
//! access costs the Eyeriss paper reports (RF 1×, NoC 2×, GLB 6×,
//! DRAM 200× a 16-bit MAC); DRAM is the commonly used ~20 pJ/bit for
//! DDR3-class interfaces at 45 nm-era systems.

use bitfusion_core::bitwidth::PairPrecision;

/// Energy constants for the Bit Fusion datapath at 45 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionEnergy {
    /// Energy of one BitBrick operation (3-bit multiply + partials), pJ.
    pub bitbrick_op_pj: f64,
    /// Shift-add tree energy per Fusion Unit per active cycle, pJ.
    pub tree_pj_per_cycle: f64,
    /// Output register energy per Fusion Unit per active cycle, pJ.
    pub register_pj_per_cycle: f64,
}

impl FusionEnergy {
    /// Calibration: component proportions follow the Figure 10 power split
    /// (46 nW bricks : 424 nW shift-add : 69 nW register), and the absolute
    /// anchor is chosen so that a fused 8-bit × 8-bit MAC costs ≈ 0.34 pJ —
    /// the value that reproduces the paper's Figure 14 energy mix, where
    /// compute is ~10% of Bit Fusion's energy against the DRAM/buffer
    /// traffic of the evaluated benchmarks (a bare low-voltage 8-bit MAC
    /// datapath at 45 nm sits in the 0.2–0.5 pJ range in the literature).
    pub const fn isca_45nm() -> Self {
        FusionEnergy {
            bitbrick_op_pj: 0.002,
            tree_pj_per_cycle: 0.26,
            register_pj_per_cycle: 0.045,
        }
    }

    /// Energy of one Fusion Unit cycle at full occupancy (all 16 bricks),
    /// including the output register.
    pub fn unit_cycle_pj(&self) -> f64 {
        16.0 * self.bitbrick_op_pj + self.tree_pj_per_cycle + self.register_pj_per_cycle
    }

    /// Energy per multiply-accumulate at a precision pair: the unit cycle
    /// cost divided by the parallel MACs, times the temporal cycle count.
    /// Equals [`Self::compute_mac_pj`] + [`Self::rf_mac_pj`].
    pub fn mac_pj(&self, pair: PairPrecision) -> f64 {
        self.unit_cycle_pj() * pair.temporal_cycles() as f64 / pair.fused_pes_per_unit() as f64
    }

    /// Datapath share of one MAC (BitBricks + shift-add tree) — the
    /// Figure 14 "compute" category.
    pub fn compute_mac_pj(&self, pair: PairPrecision) -> f64 {
        (16.0 * self.bitbrick_op_pj + self.tree_pj_per_cycle) * pair.temporal_cycles() as f64
            / pair.fused_pes_per_unit() as f64
    }

    /// Register share of one MAC — the Figure 14 "RF" category. Bit Fusion
    /// has no per-PE register *file* (operands stream systolically), but
    /// each Fusion Unit's output/pipeline register is charged per MAC, which
    /// is the small RF sliver Figure 14 attributes to Bit Fusion.
    pub fn rf_mac_pj(&self, pair: PairPrecision) -> f64 {
        self.register_pj_per_cycle * pair.temporal_cycles() as f64
            / pair.fused_pes_per_unit() as f64
    }
}

/// Energy constants for the Eyeriss baseline at 45 nm.
///
/// Based on the Eyeriss papers' published hierarchy: data accesses cost,
/// relative to one 16-bit MAC, 1× (RF), 2× (inter-PE NoC), 6× (GLB) and
/// 200× (DRAM). Anchored at a 2.0 pJ 16-bit MAC (45 nm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EyerissEnergy {
    /// One 16-bit multiply-accumulate, pJ.
    pub mac16_pj: f64,
    /// One 16-bit register-file access, pJ.
    pub rf16_pj: f64,
    /// One 16-bit inter-PE (NoC) transfer, pJ.
    pub noc16_pj: f64,
    /// One 16-bit global-buffer access, pJ.
    pub glb16_pj: f64,
}

impl EyerissEnergy {
    /// The published relative hierarchy anchored at 2.0 pJ per MAC.
    pub const fn isca_45nm() -> Self {
        EyerissEnergy {
            mac16_pj: 2.0,
            rf16_pj: 2.0,
            noc16_pj: 4.0,
            glb16_pj: 12.0,
        }
    }
}

/// Energy constants for the Stripes baseline, already scaled 65 → 45 nm
/// (the paper: "their power estimation tools were in 65 nm node, which we
/// scaled to 45 nm").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StripesEnergy {
    /// One serial-inner-product (SIP) unit cycle: 16 one-bit AND terms,
    /// a 16-input adder tree slice and the serial accumulator, pJ.
    pub sip_cycle_pj: f64,
    /// eDRAM access energy per bit (2 MB per-tile macro), pJ.
    pub edram_pj_per_bit: f64,
    /// Central SRAM (16 KB per tile) energy per bit, pJ.
    pub sram_pj_per_bit: f64,
}

impl StripesEnergy {
    /// SIP-cycle energy anchored to the Stripes authors' 65 nm tools scaled
    /// to 45 nm (÷1.75): one weight-bit step across a 16-element window
    /// costs ≈ 0.9 pJ — the serial datapath re-latches its 16-bit partial
    /// every bit step, which is why bit-serial compute energy stays several
    /// times above a fused spatial MAC (Figure 18's energy gap). The 2 MB
    /// per-tile eDRAM runs ≈ 0.18 pJ/bit and the central SRAM ≈ 0.25 pJ/bit
    /// at its small access width.
    pub const fn isca_45nm() -> Self {
        StripesEnergy {
            sip_cycle_pj: 0.90,
            edram_pj_per_bit: 0.18,
            sram_pj_per_bit: 0.25,
        }
    }
}

/// Off-chip DRAM energy per bit at 45 nm-era interfaces (DDR3-class,
/// ≈ 20 pJ/bit including I/O and activation amortization).
pub const DRAM_PJ_PER_BIT: f64 = 20.0;

/// Energy of one fused post-processing operation (ReLU clamp, pooling
/// comparator, residual add) on the per-column activation/pooling units of
/// Figure 3, pJ at 45 nm. These are register-scale operations — a compare
/// or add on one output word — so they are charged like a register access
/// rather than a full MAC; the value keeps post-ops a sub-percent slice of
/// layer energy, consistent with Figure 14 not breaking them out.
pub const POSTOP_OP_PJ: f64 = 0.05;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_energy_scales_with_precision() {
        let e = FusionEnergy::isca_45nm();
        let at = |i, w| e.mac_pj(PairPrecision::from_bits(i, w).unwrap());
        // Cheaper at lower precision, 16x between 8/8 and 2/2.
        assert!((at(8, 8) / at(2, 2) - 16.0).abs() < 1e-9);
        assert!(at(4, 4) < at(8, 8));
        // 16/16 needs 4 temporal cycles at one MAC per unit: 4x the 8/8 cost.
        assert!((at(16, 16) / at(8, 8) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fused_8x8_mac_anchor() {
        let e = FusionEnergy::isca_45nm();
        let pj = e.mac_pj(PairPrecision::from_bits(8, 8).unwrap());
        assert!(pj > 0.25 && pj < 0.45, "{pj}");
    }

    #[test]
    fn mac_splits_into_compute_and_rf() {
        let e = FusionEnergy::isca_45nm();
        for (i, w) in [(8, 8), (4, 2), (16, 16), (1, 1)] {
            let pair = PairPrecision::from_bits(i, w).unwrap();
            let total = e.compute_mac_pj(pair) + e.rf_mac_pj(pair);
            assert!((total - e.mac_pj(pair)).abs() < 1e-12, "{i}/{w}");
            // The register is a small minority of the unit (69 nW of 539).
            assert!(e.rf_mac_pj(pair) < 0.2 * e.mac_pj(pair), "{i}/{w}");
        }
    }

    #[test]
    fn eyeriss_hierarchy_ordering() {
        let e = EyerissEnergy::isca_45nm();
        assert!(e.rf16_pj <= e.noc16_pj);
        assert!(e.noc16_pj < e.glb16_pj);
        assert!(e.glb16_pj < DRAM_PJ_PER_BIT * 16.0);
    }

    #[test]
    fn eyeriss_16bit_mac_costlier_than_fused_8bit() {
        let ey = EyerissEnergy::isca_45nm();
        let bf = FusionEnergy::isca_45nm();
        assert!(ey.mac16_pj > bf.mac_pj(PairPrecision::from_bits(8, 8).unwrap()));
    }

    #[test]
    fn stripes_serial_overhead() {
        // At 8-bit weights a Stripes MAC costs 8 SIP cycles / 16 lanes
        // = 0.175 pJ of compute per MAC... times the 16-bit input datapath.
        let st = StripesEnergy::isca_45nm();
        let bf = FusionEnergy::isca_45nm();
        let stripes_mac_8b = 8.0 * st.sip_cycle_pj / 16.0 * 16.0; // 8 bits x window
        let fused_8b = bf.mac_pj(PairPrecision::from_bits(8, 8).unwrap());
        assert!(stripes_mac_8b > fused_8b);
    }
}
