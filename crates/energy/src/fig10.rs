//! The Figure 10 area/power comparison: hybrid Fusion Unit vs the temporal
//! design, at 16 BitBricks each.
//!
//! The paper reports Synopsys Design Compiler results at 45 nm. Without a
//! synthesis flow, we *predict* both rows from the structural gate counts in
//! `bitfusion-core`, using per-category µm²/GE and nW/GE factors calibrated
//! once against the published Fusion Unit row (369/934/91 µm²,
//! 46/424/69 nW). The temporal row is then a genuine prediction of the
//! model; the paper's measured ratios are 3.5× (area) and 3.2× (power), and
//! the gate model predicts ≈ 3.2× and ≈ 3.2×.

use bitfusion_core::fusion::unit::FusionUnit;
use bitfusion_core::fusion::TemporalUnit;
use bitfusion_core::gates::GateCount;

/// Calibrated area factors, µm² per gate equivalent (45 nm).
const AREA_UM2_PER_GE: Split = Split {
    bit_bricks: 0.6150,
    shift_add: 0.3905,
    register: 0.7109,
};

/// Calibrated power factors, nW per gate equivalent (45 nm synthesis
/// operating point).
const POWER_NW_PER_GE: Split = Split {
    bit_bricks: 0.0767,
    shift_add: 0.1773,
    register: 0.5391,
};

/// Activity factor applied to the temporal design's shift-add network: its
/// barrel shifters form a large mux fabric of which only one path toggles
/// per cycle, so dynamic power grows far slower than area.
const TEMPORAL_SHIFT_ACTIVITY: f64 = 0.5;

/// A per-category scalar triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Split {
    /// The BitBrick multipliers.
    pub bit_bricks: f64,
    /// Shift units and adders.
    pub shift_add: f64,
    /// Registers.
    pub register: f64,
}

impl Split {
    /// Sum of the three categories.
    pub fn total(&self) -> f64 {
        self.bit_bricks + self.shift_add + self.register
    }
}

/// Area and power of one 16-BitBrick design, split per Figure 10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignCost {
    /// Design name ("Fusion Unit" / "Temporal").
    pub name: &'static str,
    /// Area in µm² at 45 nm.
    pub area_um2: Split,
    /// Power in nW at the synthesis operating point.
    pub power_nw: Split,
}

impl DesignCost {
    fn from_gates(
        name: &'static str,
        bricks: GateCount,
        shift_add: GateCount,
        register: GateCount,
        shift_activity: f64,
    ) -> Self {
        let ge = |g: GateCount| g.gate_equivalents();
        DesignCost {
            name,
            area_um2: Split {
                bit_bricks: ge(bricks) * AREA_UM2_PER_GE.bit_bricks,
                shift_add: ge(shift_add) * AREA_UM2_PER_GE.shift_add,
                register: ge(register) * AREA_UM2_PER_GE.register,
            },
            power_nw: Split {
                bit_bricks: ge(bricks) * POWER_NW_PER_GE.bit_bricks,
                shift_add: ge(shift_add) * POWER_NW_PER_GE.shift_add * shift_activity,
                register: ge(register) * POWER_NW_PER_GE.register,
            },
        }
    }

    /// The hybrid Fusion Unit row.
    pub fn fusion_unit() -> Self {
        let g = FusionUnit::gates();
        DesignCost::from_gates("Fusion Unit", g.bit_bricks, g.shift_add, g.register, 1.0)
    }

    /// The temporal-design row (16 independent lanes; Figure 8).
    pub fn temporal() -> Self {
        DesignCost::from_gates(
            "Temporal",
            bitfusion_core::gates::GateCount::multiplier_3x3() * 16,
            TemporalUnit::shift_add_gates(),
            TemporalUnit::register_gates(),
            TEMPORAL_SHIFT_ACTIVITY,
        )
    }
}

/// The complete Figure 10 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure10 {
    /// Temporal-design row.
    pub temporal: DesignCost,
    /// Fusion Unit row.
    pub fusion: DesignCost,
}

impl Figure10 {
    /// Computes both rows from the structural model.
    pub fn compute() -> Self {
        Figure10 {
            temporal: DesignCost::temporal(),
            fusion: DesignCost::fusion_unit(),
        }
    }

    /// Area advantage of the Fusion Unit (paper: 3.5×).
    pub fn area_reduction(&self) -> f64 {
        self.temporal.area_um2.total() / self.fusion.area_um2.total()
    }

    /// Power advantage of the Fusion Unit (paper: 3.2×).
    pub fn power_reduction(&self) -> f64 {
        self.temporal.power_nw.total() / self.fusion.power_nw.total()
    }

    /// Register reduction (paper: 16.0× — one shared accumulator vs 16).
    pub fn register_reduction(&self) -> f64 {
        self.temporal.area_um2.register / self.fusion.area_um2.register
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_row_matches_calibration() {
        // Calibration must reproduce the paper's Fusion Unit row exactly.
        let f = DesignCost::fusion_unit();
        assert!((f.area_um2.bit_bricks - 369.0).abs() < 1.0, "{:?}", f.area_um2);
        assert!((f.area_um2.shift_add - 934.0).abs() < 1.0);
        assert!((f.area_um2.register - 91.0).abs() < 1.0);
        assert!((f.power_nw.total() - 538.0).abs() < 5.0, "{}", f.power_nw.total());
    }

    #[test]
    fn temporal_prediction_tracks_paper() {
        let fig = Figure10::compute();
        // Paper: temporal total 4905 um^2; the model predicts within 15%.
        let t = fig.temporal.area_um2.total();
        assert!((t - 4905.0).abs() / 4905.0 < 0.15, "{t}");
        // Paper: 1712 nW; within 15%.
        let p = fig.temporal.power_nw.total();
        assert!((p - 1712.0).abs() / 1712.0 < 0.15, "{p}");
    }

    #[test]
    fn reductions_match_figure_10_shape() {
        let fig = Figure10::compute();
        let area = fig.area_reduction();
        let power = fig.power_reduction();
        // Paper: 3.5x area, 3.2x power.
        assert!(area > 2.8 && area < 4.0, "area {area}");
        assert!(power > 2.8 && power < 3.8, "power {power}");
        // Register ratio is exactly 16x by construction.
        assert!((fig.register_reduction() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn register_prediction_exact() {
        // The temporal register row (16 x 32-bit accumulators) lands on the
        // paper's 1454 um^2 almost exactly.
        let t = DesignCost::temporal();
        assert!((t.area_um2.register - 1454.0).abs() < 5.0, "{}", t.area_um2.register);
        assert!((t.power_nw.register - 1103.0).abs() < 10.0);
    }
}
