//! CACTI-style SRAM access-energy and area model.
//!
//! The paper models its on-chip buffers with CACTI-P \[48\]. We reproduce the
//! first-order behaviour CACTI exhibits for small scratchpads at 45 nm: a
//! fixed decode/sense cost plus a component that grows with the square root
//! of capacity (bitline/wordline length), linear in the access width.
//! Constants are calibrated to published CACTI-P outputs for the 8–256 KB
//! range (a 32 KB, 32-bit-wide access costs ≈ 4–5 pJ at 45 nm).

use crate::tech::TechNode;

/// An SRAM macro model at 45 nm.
///
/// # Examples
///
/// ```
/// use bitfusion_energy::sram::SramMacro;
///
/// let ibuf = SramMacro::new(32 * 1024, 32);
/// let small = SramMacro::new(4 * 1024, 32);
/// assert!(ibuf.access_pj() > small.access_pj()); // bigger arrays cost more
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramMacro {
    capacity_bytes: usize,
    access_bits: u32,
}

/// Fixed per-access decode/sense energy (pJ, 45 nm, per 32-bit access).
const E_FIXED_PJ: f64 = 0.30;
/// Capacity-dependent coefficient (pJ per sqrt(byte), 45 nm).
const E_SQRT_PJ: f64 = 0.045;
/// SRAM macro density at 45 nm, µm² per byte (6T cell plus array overhead).
const AREA_UM2_PER_BYTE: f64 = 4.2;

impl SramMacro {
    /// Creates a macro of the given capacity and physical access width.
    ///
    /// # Panics
    ///
    /// Panics when capacity or width is zero — configuration bugs.
    pub fn new(capacity_bytes: usize, access_bits: u32) -> Self {
        assert!(capacity_bytes > 0 && access_bits > 0, "degenerate SRAM");
        SramMacro {
            capacity_bytes,
            access_bits,
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Physical access width in bits.
    pub fn access_bits(&self) -> u32 {
        self.access_bits
    }

    /// Energy of one physical access at 45 nm, in pJ.
    pub fn access_pj(&self) -> f64 {
        let per_32 = E_FIXED_PJ + E_SQRT_PJ * (self.capacity_bytes as f64).sqrt();
        per_32 * self.access_bits as f64 / 32.0
    }

    /// Energy of one access at another node.
    pub fn access_pj_at(&self, node: TechNode) -> f64 {
        node.scale_energy_pj(self.access_pj())
    }

    /// Energy to move `bits` through the macro, charging whole physical
    /// accesses (the register + multiplexer staging of Figure 3 means one
    /// array access serves `access_bits` of payload).
    pub fn energy_for_bits_pj(&self, bits: u64) -> f64 {
        let accesses = bits.div_ceil(self.access_bits as u64);
        accesses as f64 * self.access_pj()
    }

    /// Macro area at 45 nm in µm².
    pub fn area_um2(&self) -> f64 {
        self.capacity_bytes as f64 * AREA_UM2_PER_BYTE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_anchor() {
        // 32 KB, 32-bit access: ~7-10 pJ at 45 nm (single-ported CACTI-P
        // range).
        let m = SramMacro::new(32 * 1024, 32);
        let pj = m.access_pj();
        assert!(pj > 7.0 && pj < 10.0, "{pj}");
    }

    #[test]
    fn wider_access_costs_proportionally() {
        let narrow = SramMacro::new(64 * 1024, 32);
        let wide = SramMacro::new(64 * 1024, 128);
        assert!((wide.access_pj() / narrow.access_pj() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn energy_for_bits_rounds_up_accesses() {
        let m = SramMacro::new(1024, 32);
        let one = m.access_pj();
        assert!((m.energy_for_bits_pj(1) - one).abs() < 1e-12);
        assert!((m.energy_for_bits_pj(33) - 2.0 * one).abs() < 1e-12);
        assert_eq!(m.energy_for_bits_pj(0), 0.0);
    }

    #[test]
    fn area_scales_with_capacity() {
        let a = SramMacro::new(16 * 1024, 32).area_um2();
        let b = SramMacro::new(32 * 1024, 32).area_um2();
        assert!((b / a - 2.0).abs() < 1e-9);
        // 112 KB of buffers lands well under 1 mm^2 (the chip is 5.87 mm^2).
        let total = SramMacro::new(112 * 1024, 32).area_um2();
        assert!(total < 1.0e6, "{total}");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_capacity_panics() {
        SramMacro::new(0, 32);
    }
}
