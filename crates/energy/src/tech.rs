//! Technology nodes and scaling.
//!
//! The paper synthesizes at 45 nm, scales the Stripes numbers from 65 nm to
//! 45 nm, and scales Bit Fusion to 16 nm for the GPU comparison "assuming a
//! 0.86× voltage scaling and 0.42× capacitance scaling according to the
//! methodology presented in [Esmaeilzadeh et al., ISCA 2011]" (§V-A).
//! Dynamic energy scales as C·V², area as the square of the feature size.

use std::fmt;

/// A CMOS technology node used somewhere in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechNode {
    /// 65 nm — the node the Stripes authors' tools reported.
    Nm65,
    /// 45 nm — the paper's synthesis node; all baseline constants live here.
    Nm45,
    /// 16 nm — the GPU comparison node.
    Nm16,
}

impl TechNode {
    /// Feature size in nanometres.
    pub const fn feature_nm(self) -> u32 {
        match self {
            TechNode::Nm65 => 65,
            TechNode::Nm45 => 45,
            TechNode::Nm16 => 16,
        }
    }

    /// Dynamic-energy multiplier relative to 45 nm (C·V² scaling).
    ///
    /// 45→16 nm uses the paper's quoted factors: 0.42 (capacitance) ×
    /// 0.86² (voltage) ≈ 0.31. 65→45 nm uses linear capacitance scaling
    /// (45/65) with a 1.1 V → 1.0 V supply step: (65/45) × 1.1² ≈ 1.75 in
    /// the 65 nm direction.
    pub fn energy_scale_from_45(self) -> f64 {
        match self {
            TechNode::Nm45 => 1.0,
            TechNode::Nm16 => 0.42 * 0.86 * 0.86,
            TechNode::Nm65 => (65.0 / 45.0) * 1.1 * 1.1,
        }
    }

    /// Area multiplier relative to 45 nm (feature-size squared).
    pub fn area_scale_from_45(self) -> f64 {
        let f = self.feature_nm() as f64 / 45.0;
        f * f
    }

    /// Converts an energy quantity expressed at 45 nm to this node.
    pub fn scale_energy_pj(self, pj_at_45: f64) -> f64 {
        pj_at_45 * self.energy_scale_from_45()
    }

    /// Converts an area expressed at 45 nm to this node.
    pub fn scale_area_um2(self, um2_at_45: f64) -> f64 {
        um2_at_45 * self.area_scale_from_45()
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} nm", self.feature_nm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_16nm_factor() {
        // 0.42 x 0.86^2 = 0.3106...
        let s = TechNode::Nm16.energy_scale_from_45();
        assert!((s - 0.3106).abs() < 0.001, "{s}");
    }

    #[test]
    fn scaling_is_monotone() {
        assert!(TechNode::Nm65.energy_scale_from_45() > 1.0);
        assert!(TechNode::Nm16.energy_scale_from_45() < 1.0);
        assert_eq!(TechNode::Nm45.energy_scale_from_45(), 1.0);
        assert!(TechNode::Nm16.area_scale_from_45() < 0.2);
    }

    #[test]
    fn stripes_65_to_45_round_trip() {
        // Scaling a 65 nm number to 45 nm is dividing by the 65 nm factor.
        let at_65 = 10.0;
        let at_45 = at_65 / TechNode::Nm65.energy_scale_from_45();
        assert!(at_45 < at_65);
        assert!((TechNode::Nm65.scale_energy_pj(at_45) - at_65).abs() < 1e-9);
    }
}
