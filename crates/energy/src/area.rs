//! Chip-level area model.
//!
//! Table III gives two whole-chip data points: the 45 nm Eyeriss-matched
//! chip at 5.87 mm² (1.1 mm² of compute, 112 KB of SRAM) and the 16 nm
//! GPU-comparison chip at 5.93 mm² (4096 Fusion Units, 896 KB). This module
//! composes the structural Fusion Unit area (Figure 10), the SRAM macro
//! model, and two documented factors — the array overhead (accumulators,
//! pooling/activation units, drivers) and the chip periphery (controller,
//! DMA engines, PHY, pads) — and reproduces both totals.

use bitfusion_core::arch::ArchConfig;

use crate::fig10::DesignCost;
use crate::sram::SramMacro;
use crate::tech::TechNode;

/// Array-level overhead on top of raw Fusion Unit area: per-column
/// accumulators, the pooling and activation units, and operand drivers.
/// Calibrated so 512 units land on the paper's 1.1 mm² compute budget
/// (512 × 1394 µm² × 1.54 ≈ 1.1 mm²).
pub const ARRAY_OVERHEAD: f64 = 1.54;

/// Chip periphery factor over (compute + SRAM): block controller, DMA
/// engines, memory PHY and pad ring. Calibrated on the 45 nm chip total
/// ((1.1 + 0.48) mm² × 3.71 ≈ 5.87 mm²).
pub const PERIPHERY_FACTOR: f64 = 3.71;

/// SRAM macros scale worse than logic across nodes; at 16 nm they shrink to
/// ~0.20× of their 45 nm footprint where logic reaches 0.126×.
pub const SRAM_SCALE_16NM: f64 = 0.20;

/// Chip area breakdown in mm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipArea {
    /// Systolic compute: Fusion Units plus array overhead.
    pub compute_mm2: f64,
    /// On-chip SRAM macros.
    pub sram_mm2: f64,
    /// Technology node.
    pub node: TechNode,
}

impl ChipArea {
    /// Computes the breakdown for an architecture at a node.
    pub fn of(arch: &ArchConfig, node: TechNode) -> ChipArea {
        let fu_um2 = DesignCost::fusion_unit().area_um2.total();
        let logic_scale = node.area_scale_from_45();
        let sram_scale = match node {
            TechNode::Nm16 => SRAM_SCALE_16NM,
            other => other.area_scale_from_45(),
        };
        let compute_mm2 =
            arch.fusion_units() as f64 * fu_um2 * ARRAY_OVERHEAD * logic_scale / 1e6;
        let sram_mm2 =
            SramMacro::new(arch.sram_bytes_total(), arch.buffer_access_bits).area_um2()
                * sram_scale
                / 1e6;
        ChipArea {
            compute_mm2,
            sram_mm2,
            node,
        }
    }

    /// Whole-chip area including periphery.
    pub fn chip_mm2(&self) -> f64 {
        (self.compute_mm2 + self.sram_mm2) * PERIPHERY_FACTOR
    }
}

impl std::fmt::Display for ChipArea {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2} mm² ({:.2} compute + {:.2} SRAM, ×{PERIPHERY_FACTOR} periphery, {:?})",
            self.chip_mm2(),
            self.compute_mm2,
            self.sram_mm2,
            self.node
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_45nm_compute_budget() {
        // §V-A: "the same area budgets as Eyeriss, which is 1.1 mm^2 for
        // compute units".
        let a = ChipArea::of(&ArchConfig::isca_45nm(), TechNode::Nm45);
        assert!((a.compute_mm2 - 1.1).abs() < 0.05, "{}", a.compute_mm2);
    }

    #[test]
    fn matches_45nm_chip_total() {
        // Table III: 5.87 mm^2 chip at 45 nm.
        let a = ChipArea::of(&ArchConfig::isca_45nm(), TechNode::Nm45);
        let chip = a.chip_mm2();
        assert!((chip - 5.87).abs() / 5.87 < 0.05, "{chip}");
    }

    #[test]
    fn tracks_16nm_chip_total() {
        // §V-A: "has a total chip area of 5.93 mm^2" for 4096 units at
        // 16 nm with 896 KB of SRAM. With both factors calibrated at 45 nm
        // only, the structural model predicts 6.98 mm^2 — within 20% on a
        // cross-node extrapolation with no 16 nm inputs.
        let a = ChipArea::of(&ArchConfig::gpu_16nm(), TechNode::Nm16);
        let chip = a.chip_mm2();
        assert!((chip - 5.93).abs() / 5.93 < 0.20, "{chip}");
    }

    #[test]
    fn display_summarizes_the_breakdown() {
        let a = ChipArea::of(&ArchConfig::isca_45nm(), TechNode::Nm45);
        let text = a.to_string();
        assert!(text.contains("mm²"), "{text}");
        assert!(text.contains("compute"), "{text}");
    }

    #[test]
    fn sram_shrinks_less_than_logic() {
        let at45 = ChipArea::of(&ArchConfig::isca_45nm(), TechNode::Nm45);
        let at16 = ChipArea::of(&ArchConfig::isca_45nm(), TechNode::Nm16);
        let logic_ratio = at16.compute_mm2 / at45.compute_mm2;
        let sram_ratio = at16.sram_mm2 / at45.sram_mm2;
        assert!(logic_ratio < sram_ratio, "{logic_ratio} vs {sram_ratio}");
    }
}
