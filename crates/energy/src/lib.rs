//! # bitfusion-energy
//!
//! Area, power and energy models for the Bit Fusion evaluation
//! (Sharma et al., ISCA 2018).
//!
//! The paper grounds its numbers in Synopsys synthesis at 45 nm plus
//! CACTI-P for the SRAM buffers; this crate substitutes a *structural*
//! model — gate counts from `bitfusion-core` with per-category factors
//! calibrated once against the published Figure 10 Fusion Unit row — plus a
//! CACTI-style SRAM curve and literature-anchored component constants (see
//! each module's docs and DESIGN.md's substitution table).
//!
//! * [`tech`] — technology nodes and the paper's 45→16 nm scaling factors;
//! * [`sram`] — CACTI-style access energy/area for scratchpad macros;
//! * [`components`] — per-op constants for Bit Fusion, Eyeriss, Stripes and
//!   DRAM;
//! * [`fig10`] — the Figure 10 Fusion-Unit-vs-temporal area/power table;
//! * [`report`] — the Figure 14 per-component energy breakdown type.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod area;
pub mod components;
pub mod fig10;
pub mod report;
pub mod sram;
pub mod tech;

pub use area::ChipArea;
pub use components::{
    EyerissEnergy, FusionEnergy, StripesEnergy, DRAM_PJ_PER_BIT, POSTOP_OP_PJ,
};
pub use fig10::{DesignCost, Figure10};
pub use report::EnergyBreakdown;
pub use sram::SramMacro;
pub use tech::TechNode;
