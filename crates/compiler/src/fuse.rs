//! Layer fusion (§IV-B): merging activation/pooling/elementwise layers into
//! the preceding multiply-add layer's instruction block.
//!
//! "When two or more consecutive layers use mutually exclusive on-chip
//! resources, the instructions for the two layers are combined such that the
//! data produced by the first layer is directly fed into the subsequent
//! layer, avoiding costly off-chip accesses." The systolic array produces
//! partial sums; the per-column activation and pooling units (Figure 3)
//! post-process them on the way to the output buffer.

use bitfusion_core::postproc::PoolOp;
use bitfusion_dnn::layer::Layer;
use bitfusion_dnn::model::Model;

/// A post-operation fused into a MAC layer's block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostOp {
    /// Rectified linear activation on every output element.
    Relu,
    /// Pooling: `window` elements reduce to one, shrinking the stored
    /// output by `shrink`.
    Pool {
        /// Elements per pooling window.
        window: u64,
        /// Output-count reduction factor (window elements per output).
        shrink: u64,
        /// Max or average.
        op: PoolOp,
    },
    /// Residual addition: one extra input stream of `elems` elements at
    /// `bits` each, added elementwise.
    Residual {
        /// Elements added.
        elems: u64,
        /// Bitwidth of the residual stream.
        bits: u32,
    },
    /// Recurrent-cell elementwise work (gate nonlinearities and state
    /// updates), `ops` scalar operations per batch element.
    RecurrentCell {
        /// Scalar operations.
        ops: u64,
    },
}

impl PostOp {
    /// Scalar operations this post-op performs per *stored* batch run,
    /// given the MAC layer's output element count.
    pub fn ops(&self, output_elems: u64) -> u64 {
        match self {
            PostOp::Relu => output_elems,
            PostOp::Pool { .. } => output_elems, // one compare/add per element
            PostOp::Residual { elems, .. } => *elems,
            PostOp::RecurrentCell { ops } => *ops,
        }
    }

    /// Factor by which the stored output shrinks (1 for non-pooling ops).
    pub fn shrink(&self) -> u64 {
        match self {
            PostOp::Pool { shrink, .. } => *shrink,
            _ => 1,
        }
    }

    /// Extra input bits loaded from DRAM (residual streams only).
    pub fn extra_input_bits(&self) -> u64 {
        match self {
            PostOp::Residual { elems, bits } => elems * *bits as u64,
            _ => 0,
        }
    }
}

/// A fused group: one MAC layer (by index into the model) plus the post-ops
/// absorbed from its successors.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedGroup {
    /// Group name (the MAC layer's name).
    pub name: String,
    /// Index of the MAC layer in `model.layers`.
    pub mac_index: usize,
    /// Indices of the fused successor layers.
    pub fused_indices: Vec<usize>,
    /// The post-ops, in order.
    pub postops: Vec<PostOp>,
}

/// Groups a model's layers for fusion: every MAC layer absorbs the maximal
/// run of immediately following activation/pooling/elementwise layers.
///
/// Non-MAC layers with no preceding MAC layer (none exist in the zoo) are
/// skipped with their costs charged nowhere; the compiler's plan asserts the
/// zoo never hits this.
pub fn fuse_layers(model: &Model, batch: u64) -> Vec<FusedGroup> {
    let mut groups: Vec<FusedGroup> = Vec::new();
    for (idx, named) in model.layers.iter().enumerate() {
        match &named.layer {
            Layer::Conv2d(_) | Layer::DepthwiseConv2d(_) | Layer::Dense(_) => {
                groups.push(FusedGroup {
                    name: named.name.clone(),
                    mac_index: idx,
                    fused_indices: Vec::new(),
                    postops: Vec::new(),
                });
            }
            Layer::Recurrent(r) => {
                groups.push(FusedGroup {
                    name: named.name.clone(),
                    mac_index: idx,
                    fused_indices: Vec::new(),
                    postops: vec![PostOp::RecurrentCell {
                        ops: r.elementwise_ops() * batch,
                    }],
                });
            }
            Layer::Pool2d(p) => {
                if let Some(g) = groups.last_mut() {
                    g.fused_indices.push(idx);
                    g.postops.push(PostOp::Pool {
                        window: (p.window.0 * p.window.1) as u64,
                        // Stored outputs shrink by the stride product.
                        shrink: (p.stride.0 * p.stride.1) as u64,
                        op: p.op,
                    });
                }
            }
            Layer::Activation(_) => {
                if let Some(g) = groups.last_mut() {
                    g.fused_indices.push(idx);
                    g.postops.push(PostOp::Relu);
                }
            }
            Layer::Eltwise(e) => {
                if let Some(g) = groups.last_mut() {
                    g.fused_indices.push(idx);
                    g.postops.push(PostOp::Residual {
                        elems: e.elements as u64 * batch,
                        bits: model.layers[g.mac_index]
                            .layer
                            .precision()
                            .map_or(8, |p| p.input.bits()),
                    });
                }
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_dnn::zoo;

    #[test]
    fn alexnet_groups_absorb_pools() {
        let model = zoo::alexnet();
        let groups = fuse_layers(&model, 1);
        // 8 MAC layers; pools fused into conv1/conv2/conv5.
        assert_eq!(groups.len(), 8);
        let conv1 = &groups[0];
        assert_eq!(conv1.name, "conv1");
        assert_eq!(conv1.postops.len(), 1);
        assert!(matches!(conv1.postops[0], PostOp::Pool { .. }));
        // conv3 and conv4 have no pooling successors.
        assert!(groups[2].postops.is_empty());
    }

    #[test]
    fn resnet_groups_absorb_residuals() {
        let model = zoo::resnet18();
        let groups = fuse_layers(&model, 1);
        let with_residual = groups
            .iter()
            .filter(|g| g.postops.iter().any(|p| matches!(p, PostOp::Residual { .. })))
            .count();
        assert_eq!(with_residual, 8); // two residual adds per stage
    }

    #[test]
    fn recurrent_gets_cell_postop() {
        let model = zoo::lstm();
        let groups = fuse_layers(&model, 4);
        assert_eq!(groups.len(), 2);
        assert!(matches!(
            groups[0].postops[0],
            PostOp::RecurrentCell { ops } if ops == 9 * 900 * 4
        ));
    }

    #[test]
    fn pool_shrink_factor() {
        let p = PostOp::Pool {
            window: 4,
            shrink: 1,
            op: PoolOp::Max,
        };
        assert_eq!(p.shrink(), 1);
        let p = PostOp::Pool {
            window: 9,
            shrink: 2,
            op: PoolOp::Max,
        };
        assert_eq!(p.ops(100), 100);
        assert_eq!(p.extra_input_bits(), 0);
    }

    #[test]
    fn residual_charges_extra_input() {
        let p = PostOp::Residual { elems: 50, bits: 2 };
        assert_eq!(p.extra_input_bits(), 100);
        assert_eq!(p.ops(999), 50);
    }
}
