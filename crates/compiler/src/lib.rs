//! # bitfusion-compiler
//!
//! The compiler from quantized DNN layers to Fusion-ISA instruction blocks
//! (§IV of Sharma et al., ISCA 2018), implementing the paper's three code
//! optimizations (§IV-B):
//!
//! * **loop tiling** — buffer-constrained tile-size search ([`tiling`])
//!   under an off-chip-traffic cost model ([`cost`]);
//! * **loop ordering** — input/output/weight-stationary dataflow selection
//!   per layer (the six tile-loop orders of [`tiling::LoopOrder`]);
//! * **layer fusion** — activation/pooling/elementwise layers absorbed into
//!   the producing MAC layer's block ([`fuse`]).
//!
//! [`plan::compile`] drives the pipeline: fuse → GEMM view ([`gemm`]) →
//! tile search → block emission ([`lower`]), producing an
//! [`ExecutionPlan`] whose blocks are valid, encodable Fusion-ISA and whose
//! [`Mapping`] facts (whole-layer and per-segment) feed the performance
//! simulator. Compiled plans are memoizable in the shared, thread-safe
//! [`cache::ArtifactCache`], keyed on exactly the inputs compilation reads
//! (model, batch, array geometry, buffer capacities — *not* bandwidth or
//! frequency). Below it sits the layer tier
//! ([`cache::LayerArtifactCache`]): per-layer evaluation results keyed on
//! a structural [`cache::layer_fingerprint`], so repeated layer shapes are
//! evaluated once per (arch, quant, batch) however often they recur. Both
//! tiers can be backed by a persistent [`store::DiskArtifactStore`] so a
//! restarted process warms from disk instead of recompiling.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod cost;
pub mod error;
pub mod fuse;
pub mod gemm;
pub mod lower;
pub mod plan;
pub mod store;
pub mod tiling;

pub use cache::{
    layer_fingerprint, ArtifactCache, ArtifactKey, CacheStats, CachedPlan, LayerArtifactCache,
    LayerKey,
};
pub use store::{DiskArtifactStore, StoreError, StoreStats};
pub use error::CompileError;
pub use fuse::{fuse_layers, FusedGroup, PostOp};
pub use gemm::{layer_to_gemm, GemmLayer, GemmShape};
pub use lower::{Mapping, SegmentFacts};
pub use plan::{compile, ExecutionPlan, PlannedLayer};
pub use tiling::{choose_tiling, LoopOrder, TilePlan, TileSizes};
