//! End-to-end compilation: model → fused groups → tiled GEMMs → instruction
//! blocks + mapping facts.

use bitfusion_core::arch::ArchConfig;
use bitfusion_dnn::model::Model;
use bitfusion_isa::{InstructionBlock, Program};

use crate::error::CompileError;
use crate::fuse::{fuse_layers, FusedGroup, PostOp};
use crate::gemm::{layer_to_gemm, GemmLayer};
use crate::lower::{lower_gemm, mapping_for, LowerInput, Mapping, SegmentFacts};
use crate::tiling::{choose_tiling, TilePlan};

/// One compiled (fused) layer group.
#[derive(Debug, Clone)]
pub struct PlannedLayer {
    /// Group name (the MAC layer's name).
    pub name: String,
    /// The emitted Fusion-ISA block.
    pub block: InstructionBlock,
    /// Analytic mapping facts for the performance model.
    pub mapping: Mapping,
    /// The GEMM view.
    pub gemm: GemmLayer,
    /// The chosen tiling.
    pub tile_plan: TilePlan,
    /// Fused post-ops.
    pub postops: Vec<PostOp>,
}

impl PlannedLayer {
    /// Per-tile-iteration mapping facts: the cost of one DMA segment of
    /// [`Self::block`] (see `bitfusion_isa::walker::segments`), consumed by
    /// the trace-driven simulation backend.
    pub fn segment_facts(&self) -> SegmentFacts {
        self.mapping.per_tile
    }
}

/// A compiled model: blocks in execution order plus per-layer mappings.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// Source model name.
    pub model_name: String,
    /// Batch size the plan was compiled for.
    pub batch: u64,
    /// Compiled layer groups in execution order.
    pub layers: Vec<PlannedLayer>,
}

impl ExecutionPlan {
    /// Total multiply-accumulates across the plan (for the whole batch).
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.mapping.macs).sum()
    }

    /// Total static instruction count.
    pub fn static_instructions(&self) -> usize {
        self.layers.iter().map(|l| l.block.len()).sum()
    }

    /// The plan as an ISA [`Program`].
    pub fn program(&self) -> Program {
        let mut p = Program::new();
        for l in &self.layers {
            p.push(l.block.clone());
        }
        p
    }
}

/// Compiles a model for an architecture at a batch size.
///
/// Applies layer fusion (§IV-B), picks a tiling and loop order per group
/// under the buffer constraints, and emits one instruction block per fused
/// group.
///
/// # Errors
///
/// Returns [`CompileError::ZeroBatch`] for `batch == 0`,
/// [`CompileError::EmptyModel`] when the model has no MAC layers, and
/// propagates tiling/emission failures.
pub fn compile(
    model: &Model,
    arch: &ArchConfig,
    batch: u64,
) -> Result<ExecutionPlan, CompileError> {
    if batch == 0 {
        return Err(CompileError::ZeroBatch);
    }
    let groups = fuse_layers(model, batch);
    if groups.is_empty() {
        return Err(CompileError::EmptyModel);
    }
    // Output storage width of each group: the next MAC layer's input width
    // (values are stored at the minimal bitwidth the consumer needs), 8 bits
    // for the final classifier output.
    let output_bits_of = |gi: usize| -> u32 {
        groups
            .get(gi + 1)
            .and_then(|g: &FusedGroup| model.layers[g.mac_index].layer.precision())
            .map_or(8, |p| p.input.bits())
    };

    let mut layers = Vec::with_capacity(groups.len());
    for (gi, group) in groups.iter().enumerate() {
        let mac = &model.layers[group.mac_index].layer;
        let gemm = layer_to_gemm(mac, batch, output_bits_of(gi))
            .expect("fused groups are headed by MAC layers");
        // Fused residual streams ride the input buffer: reserve IBUF
        // headroom for them when picking tiles (see `choose_tiling`).
        let residual_bits: u64 = group.postops.iter().map(PostOp::extra_input_bits).sum();
        let tile_plan: TilePlan = choose_tiling(&gemm, arch, residual_bits)?;
        let next = if gi + 1 == groups.len() { 0 } else { (gi + 1) as u16 };
        let input = LowerInput {
            name: &group.name,
            layer: &gemm,
            plan: &tile_plan,
            postops: &group.postops,
            next,
        };
        let block = lower_gemm(&input, arch)?;
        let mapping = mapping_for(&input, arch);
        layers.push(PlannedLayer {
            name: group.name.clone(),
            block,
            mapping,
            gemm,
            tile_plan,
            postops: group.postops.clone(),
        });
    }
    Ok(ExecutionPlan {
        model_name: model.name.clone(),
        batch,
        layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_dnn::zoo::Benchmark;

    #[test]
    fn compiles_every_benchmark() {
        let arch = ArchConfig::isca_45nm();
        for b in Benchmark::ALL {
            let model = b.model();
            let plan = compile(&model, &arch, 16).unwrap();
            assert_eq!(plan.layers.len(), model.mac_layers().count(), "{b}");
            assert_eq!(plan.total_macs(), model.total_macs() * 16, "{b}");
        }
    }

    #[test]
    fn block_sizes_match_paper_range() {
        // §IV-A: "blocks with 30-86 instructions are enough to cover LSTM,
        // CNN, pooling, and fully connected".
        let arch = ArchConfig::isca_45nm();
        for b in Benchmark::ALL {
            let plan = compile(&b.model(), &arch, 16).unwrap();
            for l in &plan.layers {
                assert!(
                    (15..=86).contains(&l.block.len()),
                    "{b}/{}: {} instructions",
                    l.name,
                    l.block.len()
                );
            }
        }
    }

    #[test]
    fn chained_block_indices() {
        let arch = ArchConfig::isca_45nm();
        let plan = compile(&Benchmark::Svhn.model(), &arch, 1).unwrap();
        for (i, l) in plan.layers.iter().enumerate() {
            let expect = if i + 1 == plan.layers.len() { 0 } else { (i + 1) as u16 };
            assert_eq!(l.block.next_block(), expect);
        }
        let program = plan.program();
        assert_eq!(program.blocks.len(), plan.layers.len());
        assert_eq!(program.static_instructions(), plan.static_instructions());
    }

    #[test]
    fn zero_batch_rejected() {
        let arch = ArchConfig::isca_45nm();
        assert!(matches!(
            compile(&Benchmark::Lstm.model(), &arch, 0),
            Err(CompileError::ZeroBatch)
        ));
    }

    #[test]
    fn setup_precision_matches_layer() {
        let arch = ArchConfig::isca_45nm();
        let plan = compile(&Benchmark::AlexNet.model(), &arch, 4).unwrap();
        // conv1 is 8/8; middle layers 4/1.
        assert_eq!(plan.layers[0].block.setup_pair().input.bits(), 8);
        assert_eq!(plan.layers[1].block.setup_pair().weight.bits(), 1);
        assert_eq!(plan.layers[1].block.setup_pair().input.bits(), 4);
    }

    #[test]
    fn every_block_encodes_and_decodes() {
        use bitfusion_isa::encode::{decode_block, encode_block};
        let arch = ArchConfig::isca_45nm();
        let plan = compile(&Benchmark::Vgg7.model(), &arch, 16).unwrap();
        for l in &plan.layers {
            let words = encode_block(&l.block).unwrap();
            let decoded = decode_block(&l.name, &words).unwrap();
            assert_eq!(
                decoded.canonicalize().instructions(),
                l.block.canonicalize().instructions(),
                "{}",
                l.name
            );
        }
    }
}
