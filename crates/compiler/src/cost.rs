//! DRAM-traffic cost model for tiled GEMMs.
//!
//! This is the model behind the paper's *loop ordering* and *loop tiling*
//! optimizations (§IV-B): given tile sizes and a tile-loop order, compute
//! the off-chip bits moved per tensor. The compiler searches tilings to
//! minimize this (Figure 12's `IC×` reduction in output traffic is exactly
//! the reload-factor arithmetic below).

use crate::gemm::GemmLayer;
use crate::tiling::{LoopOrder, TileDim, TileSizes};

/// Off-chip traffic of one tiled GEMM, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traffic {
    /// Weight bits loaded.
    pub weight_bits: u64,
    /// Input bits loaded.
    pub input_bits: u64,
    /// Output bits stored (at the requantized output width).
    pub output_bits: u64,
    /// Partial-sum spill traffic (32-bit reads + writes) incurred when the
    /// reduction loop is not innermost over an output tile.
    pub spill_bits: u64,
}

impl Traffic {
    /// Total bits moved.
    pub const fn total_bits(&self) -> u64 {
        self.weight_bits + self.input_bits + self.output_bits + self.spill_bits
    }

    /// Load-only bits (DMA reads).
    pub const fn load_bits(&self) -> u64 {
        self.weight_bits + self.input_bits + self.spill_bits / 2
    }

    /// Store-only bits (DMA writes).
    pub const fn store_bits(&self) -> u64 {
        self.output_bits + self.spill_bits / 2
    }
}

fn trips(dim: u64, tile: u64) -> u64 {
    dim.div_ceil(tile)
}

/// Reload factor of a tensor whose indices are `S`: the product of tile-loop
/// trip counts from the outermost loop down to (and including) the deepest
/// loop in `S`. Loops deeper than every `S` loop reuse the tile in place.
fn reload_factor(order: LoopOrder, indexed_by: &[TileDim], t: [u64; 3]) -> u64 {
    let seq = order.sequence();
    let deepest = seq
        .iter()
        .rposition(|d| indexed_by.contains(d))
        .expect("tensor depends on at least one dimension");
    seq[..=deepest]
        .iter()
        .map(|d| match d {
            TileDim::M => t[0],
            TileDim::K => t[1],
            TileDim::N => t[2],
        })
        .product()
}

/// Computes the off-chip traffic of a tiled GEMM.
pub fn traffic(layer: &GemmLayer, tiles: TileSizes, order: LoopOrder) -> Traffic {
    let s = layer.shape;
    let t = [
        trips(s.m, tiles.m),
        trips(s.k, tiles.k),
        trips(s.n, tiles.n),
    ];
    let (tm, tk, tn) = (t[0], t[1], t[2]);

    // DMAs move whole tiles, so dimensions that do not divide evenly pad to
    // the tile boundary — charging that padding here steers the search away
    // from wasteful tile sizes and keeps the model consistent with the
    // emitted `ld-mem` word counts.
    let pad = |dim: u64, trip: u64, tile: u64| (trip * tile) as f64 / dim as f64;
    let pad_m = pad(s.m, tm, tiles.m);
    let pad_k = pad(s.k, tk, tiles.k);
    let pad_n = pad(s.n, tn, tiles.n);

    // Weights [m, k]: each (m,k) tile holds m_t*k_t*w_bits; loaded
    // reload/(tm*tk) times over.
    let w_loads = reload_factor(order, &[TileDim::M, TileDim::K], t);
    let weight_bits = (layer.weight_elems as f64
        * layer.pair.weight.bits() as f64
        * (w_loads / (tm * tk)).max(1) as f64
        * pad_m
        * pad_k) as u64;

    // Inputs: charged on unique elements per full traversal (window reuse
    // is buffered on chip; see `GemmLayer::unique_input_elems`). An
    // ordinary GEMM shares one [k, n] input panel across all output rows;
    // a depthwise layer's rows each read their *own* channel's window, so
    // its input tensor is indexed by every tile dimension — each (m, k, n)
    // tile touches distinct inputs, loaded exactly once per traversal but
    // padded along m as well.
    let (i_indexed, i_trips, i_pad): (&[TileDim], u64, f64) = if layer.depthwise {
        (&[TileDim::M, TileDim::K, TileDim::N], tm * tk * tn, pad_m)
    } else {
        (&[TileDim::K, TileDim::N], tk * tn, 1.0)
    };
    let i_loads = reload_factor(order, i_indexed, t);
    let input_bits = (layer.unique_input_elems as f64
        * layer.pair.input.bits() as f64
        * (i_loads / i_trips).max(1) as f64
        * pad_k
        * pad_n
        * i_pad) as u64;

    // Outputs [m, n]: stored once at the requantized width; spilled as
    // 32-bit partials whenever the k loop is outside the deepest (m, n)
    // loop, i.e. the same output tile is revisited tk times non-adjacently.
    let output_bits =
        (layer.output_elems as f64 * layer.output_bits as f64 * pad_m * pad_n) as u64;
    let seq = order.sequence();
    let k_pos = seq.iter().position(|d| *d == TileDim::K).expect("k in order");
    let mn_deepest = seq
        .iter()
        .rposition(|d| matches!(d, TileDim::M | TileDim::N))
        .expect("m or n in order");
    let spill_bits = if k_pos < mn_deepest && tk > 1 {
        // One 32-bit load + store of the partial tile per k visit (the
        // emitted blocks reload/flush unconditionally; the final visit's
        // store doubles as the output store).
        2 * tk * layer.output_elems * 32
    } else {
        0
    };

    Traffic {
        weight_bits,
        input_bits,
        output_bits,
        spill_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::GemmShape;
    use bitfusion_core::bitwidth::PairPrecision;

    fn layer(m: u64, k: u64, n: u64, i_bits: u32, w_bits: u32) -> GemmLayer {
        GemmLayer {
            shape: GemmShape { m, k, n },
            pair: PairPrecision::from_bits(i_bits, w_bits).unwrap(),
            unique_input_elems: k * n,
            output_elems: m * n,
            weight_elems: m * k,
            output_bits: i_bits,
            depthwise: false,
        }
    }

    #[test]
    fn depthwise_inputs_load_once_regardless_of_order() {
        // Depthwise inputs are indexed by (m, k, n): every tile reads
        // distinct elements, so no loop order can force a re-read — unlike
        // the shared input panel of an ordinary GEMM, which reloads under
        // an outer m loop.
        let dw = GemmLayer {
            unique_input_elems: 64 * 56 * 56,
            depthwise: true,
            ..layer(64, 9, 56 * 56, 8, 4)
        };
        let tiles = TileSizes { m: 16, k: 9, n: 128 };
        for order in LoopOrder::ALL {
            let t = traffic(&dw, tiles, order);
            let once =
                (dw.unique_input_elems as f64 * 8.0 * (25.0 * 128.0 / 3136.0)) as u64;
            assert_eq!(t.input_bits, once, "{order:?}");
        }
        // The same shape as a dense GEMM reloads its shared input panel
        // once per m tile whenever the m loop sits outside the deepest
        // input loop (m trips = 64/16 = 4); an m-innermost order holds it.
        let dense = layer(64, 9, 56 * 56, 8, 4);
        let reloading = traffic(&dense, tiles, LoopOrder::Mkn);
        let stationary = traffic(&dense, tiles, LoopOrder::Knm);
        assert_eq!(reloading.input_bits, stationary.input_bits * 4);
    }

    #[test]
    fn untiled_traffic_is_minimal() {
        let l = layer(64, 128, 32, 8, 8);
        let t = traffic(
            &l,
            TileSizes { m: 64, k: 128, n: 32 },
            LoopOrder::Nmk,
        );
        assert_eq!(t.weight_bits, 64 * 128 * 8);
        assert_eq!(t.input_bits, 128 * 32 * 8);
        assert_eq!(t.output_bits, 64 * 32 * 8);
        assert_eq!(t.spill_bits, 0);
    }

    #[test]
    fn weight_reload_scales_with_outer_n_tiles() {
        let l = layer(64, 128, 32, 8, 8);
        // n outermost with 4 tiles: weights traverse 4 times.
        let t = traffic(
            &l,
            TileSizes { m: 64, k: 128, n: 8 },
            LoopOrder::Nmk,
        );
        assert_eq!(t.weight_bits, 64 * 128 * 8 * 4);
        // m,k innermost orders with n deepest: weights loaded once.
        let t = traffic(
            &l,
            TileSizes { m: 64, k: 128, n: 8 },
            LoopOrder::Mkn,
        );
        assert_eq!(t.weight_bits, 64 * 128 * 8);
    }

    #[test]
    fn spills_when_k_outside_outputs() {
        let l = layer(64, 128, 32, 8, 8);
        // Order K outermost with 4 k-tiles: every output tile revisited.
        let t = traffic(
            &l,
            TileSizes { m: 64, k: 32, n: 32 },
            LoopOrder::Kmn,
        );
        assert_eq!(t.spill_bits, 2 * 4 * 64 * 32 * 32);
        // Output-stationary order (k innermost): no spills.
        let t = traffic(
            &l,
            TileSizes { m: 64, k: 32, n: 32 },
            LoopOrder::Nmk,
        );
        assert_eq!(t.spill_bits, 0);
    }

    #[test]
    fn figure_12_output_reuse() {
        // Figure 12(b): making the output stationary over the ic (k) loop
        // removes the per-k output round trips — the "factor of IC" the
        // paper quotes. Compare k-outermost vs k-innermost.
        let l = layer(512, 4096, 16, 4, 1);
        let k_tiles = 8;
        let bad = traffic(
            &l,
            TileSizes { m: 512, k: 4096 / k_tiles, n: 16 },
            LoopOrder::Kmn,
        );
        let good = traffic(
            &l,
            TileSizes { m: 512, k: 4096 / k_tiles, n: 16 },
            LoopOrder::Mnk,
        );
        assert!(bad.total_bits() > good.total_bits());
        assert_eq!(good.spill_bits, 0);
    }

    #[test]
    fn load_store_split_consistent() {
        let l = layer(64, 128, 32, 8, 8);
        let t = traffic(
            &l,
            TileSizes { m: 16, k: 32, n: 8 },
            LoopOrder::Kmn,
        );
        assert_eq!(t.load_bits() + t.store_bits(), t.total_bits());
    }
}
