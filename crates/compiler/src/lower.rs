//! Lowering a tiled GEMM (plus fused post-ops) to a Fusion-ISA block.
//!
//! The emitted block follows the Figure 12(b) shape: three tile loops in the
//! chosen order, with each tensor's `ld-mem` placed in the body of the
//! deepest tile loop its indices depend on (so DMA counts match the
//! [`cost`](crate::cost) model), an inner `m/n/k` compute nest mapping onto
//! the systolic array, fused post-op `compute` instructions at the output
//! point, and `st-mem` in the post-body of the deepest output loop.

use bitfusion_core::arch::ArchConfig;
use bitfusion_isa::builder::BlockBuilder;
use bitfusion_isa::instruction::{AddressSpace, ComputeFn, LoopId, Scratchpad};
use bitfusion_isa::InstructionBlock;
use bitfusion_core::postproc::PoolOp;

use crate::error::CompileError;
use crate::fuse::PostOp;
use crate::gemm::GemmLayer;
use crate::tiling::{TileDim, TilePlan};

/// Everything the lowering needs for one fused layer group.
#[derive(Debug, Clone)]
pub struct LowerInput<'a> {
    /// Group name.
    pub name: &'a str,
    /// The GEMM view.
    pub layer: &'a GemmLayer,
    /// Chosen tiling.
    pub plan: &'a TilePlan,
    /// Fused post-ops.
    pub postops: &'a [PostOp],
    /// Successor block index.
    pub next: u16,
}

fn dim_size(layer: &GemmLayer, d: TileDim) -> u64 {
    match d {
        TileDim::M => layer.shape.m,
        TileDim::K => layer.shape.k,
        TileDim::N => layer.shape.n,
    }
}

fn tile_size(plan: &TilePlan, d: TileDim) -> u64 {
    match d {
        TileDim::M => plan.tiles.m,
        TileDim::K => plan.tiles.k,
        TileDim::N => plan.tiles.n,
    }
}

fn post_op_compute_fn(p: &PostOp) -> Vec<ComputeFn> {
    match p {
        PostOp::Relu => vec![ComputeFn::Relu],
        PostOp::Pool { op: PoolOp::Max, .. } => vec![ComputeFn::Max],
        PostOp::Pool { op: PoolOp::Average, .. } => vec![ComputeFn::Avg],
        PostOp::Residual { .. } => vec![ComputeFn::Add],
        // LSTM/RNN cell: gate nonlinearities plus state update.
        PostOp::RecurrentCell { .. } => {
            vec![ComputeFn::Sigmoid, ComputeFn::Tanh, ComputeFn::Mul, ComputeFn::Add]
        }
    }
}

/// Emits the instruction block for one fused GEMM group.
///
/// # Errors
///
/// Returns [`CompileError::Emit`] if the block violates ISA structure —
/// which would be a compiler bug; the error keeps the API total.
pub fn lower_gemm(input: &LowerInput<'_>, arch: &ArchConfig) -> Result<InstructionBlock, CompileError> {
    let layer = input.layer;
    let plan = input.plan;
    let seq = plan.order.sequence();
    let trips: Vec<u64> = seq
        .iter()
        .map(|&d| dim_size(layer, d).div_ceil(tile_size(plan, d)))
        .collect();

    // Depth (0-based position in `seq`) of the deepest loop each tensor
    // depends on: that is where its DMA lives.
    let depth_of = |dims: &[TileDim]| -> usize {
        seq.iter()
            .rposition(|d| dims.contains(d))
            .expect("tensor depends on some dim")
    };
    let w_depth = depth_of(&[TileDim::M, TileDim::K]);
    // A depthwise layer's inputs are indexed by every tile dimension (each
    // output channel reads its own window), so its input DMA always lives
    // in the innermost tile loop.
    let i_dims: &[TileDim] = if layer.depthwise {
        &[TileDim::M, TileDim::K, TileDim::N]
    } else {
        &[TileDim::K, TileDim::N]
    };
    let i_depth = depth_of(i_dims);
    let o_depth = depth_of(&[TileDim::M, TileDim::N]);
    let k_pos = seq
        .iter()
        .position(|d| *d == TileDim::K)
        .expect("k in sequence");
    let spilling = k_pos < o_depth && trips[k_pos] > 1;

    let pair = layer.pair;
    let lanes = (arch.rows as u64) * pair.fused_pes_per_unit() as u64;
    let cols = arch.cols as u64;

    // DMA word counts (average tile; edge tiles are padded by the cost
    // model, averaged here).
    let tm = trips[seq.iter().position(|d| *d == TileDim::M).expect("m")];
    let tk = trips[k_pos];
    let tn = trips[seq.iter().position(|d| *d == TileDim::N).expect("n")];
    let w_words = (plan.tiles.m * plan.tiles.k).max(1);
    let i_trips = if layer.depthwise { tm * tk * tn } else { tk * tn };
    let i_words = layer.unique_input_elems.div_ceil(i_trips).max(1);
    let shrink: u64 = input.postops.iter().map(PostOp::shrink).product::<u64>().max(1);
    let o_store_words = (layer.output_elems / shrink).div_ceil(tm * tn).max(1);
    let residual_bits: u64 = input.postops.iter().map(PostOp::extra_input_bits).sum();

    let mut b = BlockBuilder::new(input.name, pair);
    // Synthetic but distinct DRAM bases: weights after inputs, outputs last.
    b.set_base(Scratchpad::Ibuf, 0);
    b.set_base(
        Scratchpad::Wbuf,
        layer.unique_input_elems,
    );
    b.set_base(
        Scratchpad::Obuf,
        layer.unique_input_elems + layer.weight_elems,
    );

    // --- Tile loops, outermost first, with DMA at the right depths. ---
    let mut tile_loop_ids: Vec<LoopId> = Vec::with_capacity(3);
    for depth in 0..3 {
        let id = b.open_loop(trips[depth].min(u32::MAX as u64) as u32)?;
        tile_loop_ids.push(id);
        // Off-chip strides for this tile loop, per tensor layout
        // (row-major [m][k] weights, [k][n] inputs, [m][n] outputs).
        let d = seq[depth];
        let w_stride = match d {
            TileDim::M => plan.tiles.m * layer.shape.k,
            TileDim::K => plan.tiles.k,
            TileDim::N => 0,
        };
        if w_stride > 0 {
            b.gen_addr(id, AddressSpace::OffChip, Scratchpad::Wbuf, w_stride)?;
        }
        let i_stride = match d {
            TileDim::K => plan.tiles.k * layer.shape.n,
            TileDim::N => plan.tiles.n,
            // Depthwise inputs are laid out [m][k][n]: advancing the m tile
            // walks to the next channel group's windows.
            TileDim::M if layer.depthwise => {
                plan.tiles.m * layer.shape.k * layer.shape.n
            }
            TileDim::M => 0,
        };
        if i_stride > 0 {
            b.gen_addr(id, AddressSpace::OffChip, Scratchpad::Ibuf, i_stride)?;
        }
        let o_stride = match d {
            TileDim::M => plan.tiles.m * layer.shape.n / shrink,
            TileDim::N => plan.tiles.n,
            TileDim::K => 0,
        };
        if o_stride > 0 {
            b.gen_addr(id, AddressSpace::OffChip, Scratchpad::Obuf, o_stride)?;
        }
        // DMA loads owned by this depth.
        if depth == w_depth {
            b.ld_mem(Scratchpad::Wbuf, pair.weight.bits(), w_words)?;
        }
        if depth == i_depth {
            b.ld_mem(Scratchpad::Ibuf, pair.input.bits(), i_words)?;
            if residual_bits > 0 {
                // Residual stream rides the input buffer at the layer's
                // input precision.
                let words = residual_bits
                    .div_ceil(pair.input.bits() as u64)
                    .div_ceil(i_trips)
                    .max(1);
                b.ld_mem(Scratchpad::Ibuf, pair.input.bits(), words)?;
            }
        }
        if spilling && depth == o_depth {
            // Reload the 32-bit partial tile for accumulation.
            b.ld_mem(Scratchpad::Obuf, 32, (plan.tiles.m * plan.tiles.n).max(1))?;
        }
    }

    // --- Inner compute nest. ---
    let m_passes = plan.tiles.m.div_ceil(cols);
    let k_steps = plan.tiles.k.div_ceil(lanes);
    let mi = b.open_loop(m_passes.min(u32::MAX as u64) as u32)?;
    b.gen_addr(mi, AddressSpace::OnChip, Scratchpad::Wbuf, plan.tiles.k * cols)?;
    b.gen_addr(mi, AddressSpace::OnChip, Scratchpad::Obuf, cols)?;
    let ni = b.open_loop(plan.tiles.n.min(u32::MAX as u64) as u32)?;
    b.gen_addr(ni, AddressSpace::OnChip, Scratchpad::Ibuf, plan.tiles.k)?;
    b.gen_addr(ni, AddressSpace::OnChip, Scratchpad::Obuf, plan.tiles.m)?;
    let ki = b.open_loop(k_steps.min(u32::MAX as u64) as u32)?;
    b.gen_addr(ki, AddressSpace::OnChip, Scratchpad::Ibuf, lanes)?;
    b.gen_addr(ki, AddressSpace::OnChip, Scratchpad::Wbuf, lanes)?;
    b.rd_buf(Scratchpad::Ibuf);
    b.rd_buf(Scratchpad::Wbuf);
    b.compute(ComputeFn::Mac);
    b.close_loop(); // ki
    // Post-ops apply per output vector on the way to OBUF (Figure 3's
    // per-column activation/pooling units).
    for p in input.postops {
        for f in post_op_compute_fn(p) {
            b.compute(f);
        }
    }
    b.wr_buf(Scratchpad::Obuf);
    b.close_loop(); // ni
    b.close_loop(); // mi

    // --- Stores, walking back out of the tile loops. ---
    // Builder depth is now 3 (inside the innermost tile loop). Close down
    // to the store depth and emit.
    for depth in (0..3).rev() {
        // Currently at builder depth `depth + 1` (inside tile loop `depth`).
        if spilling && depth == o_depth {
            b.st_mem(Scratchpad::Obuf, 32, (plan.tiles.m * plan.tiles.n).max(1))?;
        } else if !spilling && depth == o_depth {
            b.st_mem(
                Scratchpad::Obuf,
                layer.output_bits,
                o_store_words,
            )?;
        }
        b.close_loop();
    }

    Ok(b.finish(input.next)?)
}

/// Per-segment mapping facts: what one iteration of the innermost tile loop
/// (one [`bitfusion_isa::walker::Segment`] of the emitted block) costs on
/// the array. The trace-driven simulation backend uses these to convert a
/// segment's compute-step count into systolic passes and fill/drain charges
/// without re-deriving the tiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentFacts {
    /// Tile iterations in the block (`tm × tk × tn`) — the expected number
    /// of DMA-carrying segments.
    pub tiles: u64,
    /// MAC compute steps per tile iteration.
    pub compute_steps: u64,
    /// Systolic passes (weight refills into the array) per tile iteration.
    pub fill_passes: u64,
    /// MAC compute steps in one systolic pass (`n_t × k_steps`): segments
    /// with fewer steps (edge tiles, drain segments) still pay fill/drain
    /// once per started pass.
    pub steps_per_pass: u64,
}

/// Analytic mapping facts the performance simulator consumes, derived from
/// the same quantities the lowering used.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mapping {
    /// Total dynamic MAC `compute` steps.
    pub compute_steps: u64,
    /// Cycles per compute step (1, or up to 4 for 16-bit operands).
    pub temporal_cycles: u64,
    /// Systolic passes (weight refills into the array): fill/drain is
    /// charged once each.
    pub fill_passes: u64,
    /// Reduction lanes (rows × Fused-PEs per unit).
    pub lanes: u64,
    /// Array columns.
    pub cols: u64,
    /// IBUF bits consumed per compute step (broadcast across columns).
    pub ibuf_bits_per_step: u64,
    /// WBUF bits consumed per compute step (distinct per column).
    pub wbuf_bits_per_step: u64,
    /// Total OBUF write bits.
    pub obuf_write_bits: u64,
    /// Total OBUF read bits (partial-sum revisits).
    pub obuf_read_bits: u64,
    /// Fused post-op scalar operations.
    pub postop_ops: u64,
    /// Total multiply-accumulates (unpadded).
    pub macs: u64,
    /// Per-tile-iteration facts for the segment-driven backend.
    pub per_tile: SegmentFacts,
}

/// Computes the mapping facts for a lowered group.
pub fn mapping_for(input: &LowerInput<'_>, arch: &ArchConfig) -> Mapping {
    let layer = input.layer;
    let plan = input.plan;
    let pair = layer.pair;
    let lanes = (arch.rows as u64) * pair.fused_pes_per_unit() as u64;
    let cols = arch.cols as u64;
    let s = layer.shape;
    let tm = s.m.div_ceil(plan.tiles.m);
    let tk = s.k.div_ceil(plan.tiles.k);
    let tn = s.n.div_ceil(plan.tiles.n);
    let m_passes = plan.tiles.m.div_ceil(cols);
    let k_steps = plan.tiles.k.div_ceil(lanes);
    let tiles = tm * tk * tn;
    let compute_steps = tiles * m_passes * plan.tiles.n * k_steps;
    let fill_passes = tiles * m_passes;
    let seq = plan.order.sequence();
    let k_pos = seq.iter().position(|d| *d == TileDim::K).expect("k");
    let o_depth = seq
        .iter()
        .rposition(|d| matches!(d, TileDim::M | TileDim::N))
        .expect("m or n");
    let spilling = k_pos < o_depth && tk > 1;
    // OBUF: one 32-bit vector write per (pass, n); reads on k revisits.
    let vector_writes = tiles * m_passes * plan.tiles.n;
    let obuf_write_bits = vector_writes * cols * 32;
    let obuf_read_bits = if spilling || tk > 1 {
        // Partials re-read once per extra k visit.
        (tk - 1) * s.m.div_ceil(cols) * cols * s.n * 32
    } else {
        0
    };
    let postop_ops = input
        .postops
        .iter()
        .map(|p| p.ops(layer.output_elems))
        .sum();
    Mapping {
        compute_steps,
        temporal_cycles: pair.temporal_cycles() as u64,
        fill_passes,
        lanes,
        cols,
        // A depthwise step cannot broadcast one input vector across the
        // columns: each column's channel reads its own window elements.
        ibuf_bits_per_step: if layer.depthwise {
            lanes * cols * pair.input.bits() as u64
        } else {
            lanes * pair.input.bits() as u64
        },
        wbuf_bits_per_step: lanes * cols * pair.weight.bits() as u64,
        obuf_write_bits,
        obuf_read_bits,
        postop_ops,
        macs: s.macs(),
        per_tile: SegmentFacts {
            tiles,
            compute_steps: m_passes * plan.tiles.n * k_steps,
            fill_passes: m_passes,
            steps_per_pass: plan.tiles.n * k_steps,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::GemmShape;
    use crate::tiling::choose_tiling;
    use bitfusion_core::bitwidth::PairPrecision;
    use bitfusion_isa::walker;

    fn layer(m: u64, k: u64, n: u64, i: u32, w: u32) -> GemmLayer {
        GemmLayer {
            shape: GemmShape { m, k, n },
            pair: PairPrecision::from_bits(i, w).unwrap(),
            unique_input_elems: k * n,
            output_elems: m * n,
            weight_elems: m * k,
            output_bits: i,
            depthwise: false,
        }
    }

    #[test]
    fn depthwise_block_stays_consistent_with_cost_model() {
        let arch = ArchConfig::isca_45nm();
        let dw = GemmLayer {
            unique_input_elems: 128 * 58 * 58 * 3,
            depthwise: true,
            ..layer(128, 9, 3136, 8, 8)
        };
        let plan = choose_tiling(&dw, &arch, 0).unwrap();
        let input = LowerInput {
            name: "dw",
            layer: &dw,
            plan: &plan,
            postops: &[],
            next: 0,
        };
        let block = lower_gemm(&input, &arch).unwrap();
        let summary = walker::summarize(&block);
        let modelled = plan.traffic.total_bits();
        let emitted = summary.dram_bits();
        let rel = (emitted as f64 - modelled as f64).abs() / modelled as f64;
        assert!(rel < 0.05, "emitted {emitted} vs modelled {modelled}");
        // Per-column input feed: each reduction lane of each column reads
        // its own window element every step.
        let mapping = mapping_for(&input, &arch);
        assert_eq!(
            mapping.ibuf_bits_per_step,
            mapping.lanes * mapping.cols * 8
        );
        assert_eq!(
            walker::segments(&block)
                .iter()
                .map(|s| s.compute_count(bitfusion_isa::ComputeFn::Mac))
                .sum::<u64>(),
            mapping.compute_steps
        );
    }

    fn lower(
        l: &GemmLayer,
        postops: &[PostOp],
    ) -> (InstructionBlock, Mapping, ArchConfig) {
        let arch = ArchConfig::isca_45nm();
        let plan = choose_tiling(l, &arch, 0).unwrap();
        let input = LowerInput {
            name: "test",
            layer: l,
            plan: &plan,
            postops,
            next: 0,
        };
        let block = lower_gemm(&input, &arch).unwrap();
        let mapping = mapping_for(&input, &arch);
        (block, mapping, arch)
    }

    #[test]
    fn block_size_in_paper_range() {
        // §IV-A: blocks of 30-86 instructions cover the evaluated layers.
        let l = layer(512, 2400, 729, 4, 1);
        let (block, _, _) = lower(&l, &[PostOp::Relu]);
        assert!(
            (20..=86).contains(&block.len()),
            "block has {} instructions",
            block.len()
        );
    }

    #[test]
    fn walker_compute_count_matches_mapping() {
        let l = layer(128, 1152, 1024, 1, 1);
        let (block, mapping, _) = lower(&l, &[]);
        let summary = walker::summarize(&block);
        assert_eq!(
            summary.compute_count(bitfusion_isa::ComputeFn::Mac),
            mapping.compute_steps
        );
    }

    #[test]
    fn walker_dram_bits_match_cost_model() {
        let arch = ArchConfig::isca_45nm();
        let l = layer(512, 4608, 2916, 2, 2);
        let plan = choose_tiling(&l, &arch, 0).unwrap();
        let input = LowerInput {
            name: "t",
            layer: &l,
            plan: &plan,
            postops: &[],
            next: 0,
        };
        let block = lower_gemm(&input, &arch).unwrap();
        let summary = walker::summarize(&block);
        let modelled = plan.traffic.total_bits();
        let emitted = summary.dram_bits();
        let rel = (emitted as f64 - modelled as f64).abs() / modelled as f64;
        assert!(rel < 0.05, "emitted {emitted} vs modelled {modelled}");
    }

    #[test]
    fn compute_steps_cover_all_macs() {
        // steps x lanes x cols >= macs, and utilization is reasonable for
        // a well-shaped layer.
        let l = layer(512, 2400, 11664, 4, 1);
        let (_, mapping, _) = lower(&l, &[]);
        let peak_macs = mapping.compute_steps * mapping.lanes * mapping.cols;
        assert!(peak_macs >= mapping.macs);
        let util = mapping.macs as f64 / peak_macs as f64;
        assert!(util > 0.5, "utilization {util}");
    }

    #[test]
    fn postops_emit_compute_instructions() {
        let l = layer(64, 512, 64, 8, 8);
        let (block, mapping, _) = lower(
            &l,
            &[PostOp::Relu, PostOp::Pool { window: 9, shrink: 4, op: PoolOp::Max }],
        );
        let text = block.to_string();
        assert!(text.contains("compute relu"));
        assert!(text.contains("compute max"));
        assert_eq!(mapping.postop_ops, 64 * 64 * 2);
    }

    #[test]
    fn binary_layers_use_16_lanes_per_unit() {
        let l = layer(128, 1152, 1024, 1, 1);
        let (_, mapping, arch) = lower(&l, &[]);
        assert_eq!(mapping.lanes, arch.rows as u64 * 16);
        assert_eq!(mapping.temporal_cycles, 1);
    }

    #[test]
    fn sixteen_bit_runs_temporally() {
        let l = layer(64, 256, 64, 16, 16);
        let (_, mapping, _) = lower(&l, &[]);
        assert_eq!(mapping.temporal_cycles, 4);
    }

    #[test]
    fn segment_facts_tile_the_whole_layer() {
        let l = layer(512, 2400, 729, 4, 1);
        let (block, mapping, _) = lower(&l, &[PostOp::Relu]);
        let t = mapping.per_tile;
        // Per-tile facts scale back up to the whole-layer aggregates.
        assert_eq!(t.tiles * t.compute_steps, mapping.compute_steps);
        assert_eq!(t.tiles * t.fill_passes, mapping.fill_passes);
        assert_eq!(t.steps_per_pass * t.fill_passes, t.compute_steps);
        // The emitted block's MAC-carrying segments are exactly the tiles,
        // each carrying the per-tile compute steps.
        let segs = walker::segments(&block);
        let mac_segs: Vec<_> = segs
            .iter()
            .filter(|s| s.compute_count(bitfusion_isa::ComputeFn::Mac) > 0)
            .collect();
        assert_eq!(mac_segs.len() as u64, t.tiles);
        for s in &mac_segs {
            assert_eq!(s.compute_count(bitfusion_isa::ComputeFn::Mac), t.compute_steps);
        }
    }
}
