//! The disk tier beneath both in-memory caches: a persistent, versioned,
//! checksummed store of compiled plans, layer evaluations, and DSE point
//! checkpoints.
//!
//! Every process start used to recompute every compiled plan and layer
//! evaluation from scratch — `serve` restarted cold under traffic and a
//! DSE sweep could never outlive one process. [`DiskArtifactStore`] makes
//! the artifact caches three-tier: **memory → disk → compute**. The
//! in-memory tiers ([`crate::ArtifactCache`], the layer tier) stay the
//! fast path; on a memory miss they consult the store, and on a compute
//! they write behind to it, so a restarted process warms from disk
//! instead of from the compiler.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/LOCK                      single-writer advisory lock (flock)
//! <dir>/plans/<keyhash>.json      one compiled ExecutionPlan per line
//! <dir>/layers/<keyhash>.json     one layer evaluation per line
//! <dir>/dse/<spec>-<point>.json   one DSE point checkpoint per line
//! ```
//!
//! Every entry is a single JSON line in the deterministic `core::json`
//! encoding:
//!
//! ```text
//! {"format":"bitfusion-store/1","kind":…,"key":{…},"check":"<fnv1a>","payload":{…}}
//! ```
//!
//! * `format` versions the schema — any other value is quarantined and
//!   treated as a miss, never an error, so a future format bump degrades
//!   to a cold start rather than a crash;
//! * `key` is the full cache key, re-compared on load so a filename-hash
//!   collision can never alias two artifacts (it reads as a plain miss);
//! * `check` is an FNV-1a hash of the encoded payload bytes — truncation
//!   or bit flips are detected, the file is **quarantined** (renamed
//!   aside as `*.corrupt-N`) and counted, and the caller recomputes.
//!
//! # Determinism contract
//!
//! The PR 4 byte-determinism contract must hold regardless of which tier
//! serves a hit. Two defenses layer here: payloads that do not round-trip
//! exactly (a `u64` beyond `i64::MAX`) are simply never persisted, and
//! plan payloads carry a fingerprint of the plan's full debug form that is
//! re-verified after decode — a codec bug degrades to a quarantined miss
//! and a byte-identical recompute, never to wrong bytes.
//!
//! Writes are atomic (unique temp file + `rename`) and the whole
//! directory is guarded by an advisory `flock`: a second opener gets a
//! [`StoreError::Locked`] naming the lock path instead of interleaved
//! writes. Compilation is deterministic, so the last writer winning a
//! rename race is harmless — both wrote the same bytes.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bitfusion_core::bitwidth::{BitWidth, PairPrecision, Precision, Signedness};
use bitfusion_core::json::{parse as parse_json, Json};
use bitfusion_core::postproc::PoolOp;
use bitfusion_isa::block::{DramBases, InstructionBlock};
use bitfusion_isa::instruction::{
    AddressSpace, ComputeFn, Instruction, LoopId, Scratchpad, TaggedInstruction,
};

use crate::cache::{ArtifactKey, LayerKey};
use crate::cost::Traffic;
use crate::fuse::PostOp;
use crate::gemm::{GemmLayer, GemmShape};
use crate::lower::{Mapping, SegmentFacts};
use crate::plan::{ExecutionPlan, PlannedLayer};
use crate::tiling::{LoopOrder, TilePlan, TileSizes};

/// The on-disk entry schema version. Entries with any other `format` are
/// quarantined and treated as misses.
pub const STORE_FORMAT: &str = "bitfusion-store/1";

/// FNV-1a over a byte slice — the store's checksum and fingerprint hash
/// (the same function the in-memory cache keys use).
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Canonical 16-hex-digit spelling of a hash, used for checksums, stored
/// fingerprints, and entry file names.
pub fn hash_hex(h: u64) -> String {
    format!("{h:016x}")
}

/// A `u64` as a JSON integer, or `None` when it cannot round-trip through
/// `i64` — the caller aborts persisting that entry rather than storing a
/// saturated value that would decode differently.
pub fn json_u64(v: u64) -> Option<Json> {
    i64::try_from(v).ok().map(Json::Int)
}

/// Fingerprint of a plan's full debug form, stored inside every plan
/// entry and re-verified after decode: the guarantee that a disk-served
/// plan is indistinguishable from a freshly compiled one.
pub fn plan_fingerprint(plan: &ExecutionPlan) -> u64 {
    content_hash(format!("{plan:?}").as_bytes())
}

/// Why a [`DiskArtifactStore`] could not open.
#[derive(Debug)]
pub enum StoreError {
    /// Another process (or another store in this one) holds the cache
    /// directory's lock.
    Locked {
        /// The lock file that is held.
        lock_path: PathBuf,
    },
    /// The directory could not be created or the lock file could not be
    /// opened.
    Io {
        /// The path the operation failed on.
        path: PathBuf,
        /// The OS error.
        message: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Locked { lock_path } => write!(
                f,
                "cache directory is already in use by another process \
                 (lock file held: {}); stop that process or use a \
                 different --cache-dir",
                lock_path.display()
            ),
            StoreError::Io { path, message } => {
                write!(f, "cannot open cache directory at {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Snapshot of a store's counters. Disk hits are *memory-tier misses*
/// that were answered without recomputing; `corrupt` counts entries
/// quarantined after failing validation (each also reads as a miss).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Plan lookups served from disk.
    pub plan_hits: u64,
    /// Plan lookups not on disk (or quarantined).
    pub plan_misses: u64,
    /// Layer-evaluation lookups served from disk.
    pub layer_hits: u64,
    /// Layer-evaluation lookups not on disk (or quarantined).
    pub layer_misses: u64,
    /// DSE point-checkpoint lookups served from disk.
    pub point_hits: u64,
    /// DSE point-checkpoint lookups not on disk (or quarantined).
    pub point_misses: u64,
    /// Entries written (atomic temp + rename completions).
    pub writes: u64,
    /// Entries quarantined: failed parse, version, checksum, or
    /// fingerprint verification.
    pub corrupt: u64,
}

#[cfg(unix)]
mod filelock {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const LOCK_EX: i32 = 2;
    const LOCK_NB: i32 = 4;

    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }

    /// Takes an exclusive, non-blocking advisory lock on `file`. The lock
    /// lives as long as the file description: dropping the `File` (or the
    /// process exiting, however abruptly) releases it, which is what makes
    /// resume-after-crash work without stale-lock cleanup.
    pub fn try_exclusive(file: &File) -> bool {
        // SAFETY: `file` owns a valid open descriptor for the duration of
        // the call; flock has no memory-safety preconditions beyond that.
        unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) == 0 }
    }
}

#[cfg(not(unix))]
mod filelock {
    /// Non-unix fallback: no advisory locking, every open succeeds. The
    /// store still behaves correctly (atomic renames of deterministic
    /// content), it just loses the two-writer diagnostic.
    pub fn try_exclusive(_file: &std::fs::File) -> bool {
        true
    }
}

#[derive(Default)]
struct Counters {
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    layer_hits: AtomicU64,
    layer_misses: AtomicU64,
    point_hits: AtomicU64,
    point_misses: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
}

/// The persistent disk tier. See the module docs for layout and
/// guarantees.
///
/// # Examples
///
/// ```
/// use bitfusion_compiler::store::DiskArtifactStore;
/// use bitfusion_compiler::{compile, ArtifactKey};
/// use bitfusion_core::arch::ArchConfig;
/// use bitfusion_dnn::zoo::Benchmark;
///
/// let dir = std::env::temp_dir().join(format!("bf-store-doc-{}", std::process::id()));
/// let store = DiskArtifactStore::open(&dir).unwrap();
/// let arch = ArchConfig::isca_45nm();
/// let model = Benchmark::Rnn.model();
/// let key = ArtifactKey::of(&model, &arch, 4);
/// let plan = compile(&model, &arch, 4).unwrap();
/// store.store_plan(&key, &plan);
/// let reloaded = store.load_plan(&key).unwrap();
/// assert_eq!(format!("{reloaded:?}"), format!("{plan:?}"));
/// # drop(store);
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub struct DiskArtifactStore {
    root: PathBuf,
    lock_path: PathBuf,
    // Held for the store's lifetime; dropping releases the flock.
    _lock: fs::File,
    unique: AtomicU64,
    counters: Counters,
}

impl std::fmt::Debug for DiskArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskArtifactStore")
            .field("root", &self.root)
            .field("stats", &self.stats())
            .finish()
    }
}

impl DiskArtifactStore {
    /// Opens (creating if necessary) the store at `dir` and takes its
    /// single-writer lock.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] when another opener holds the directory,
    /// [`StoreError::Io`] when it cannot be created or opened.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = dir.as_ref().to_path_buf();
        for sub in ["plans", "layers", "dse"] {
            let p = root.join(sub);
            fs::create_dir_all(&p).map_err(|e| StoreError::Io {
                path: p.clone(),
                message: e.to_string(),
            })?;
        }
        let lock_path = root.join("LOCK");
        let lock = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&lock_path)
            .map_err(|e| StoreError::Io {
                path: lock_path.clone(),
                message: e.to_string(),
            })?;
        if !filelock::try_exclusive(&lock) {
            return Err(StoreError::Locked { lock_path });
        }
        Ok(DiskArtifactStore {
            root,
            lock_path,
            _lock: lock,
            unique: AtomicU64::new(0),
            counters: Counters::default(),
        })
    }

    /// The directory this store persists into.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The lock file guarding the directory.
    pub fn lock_path(&self) -> &Path {
        &self.lock_path
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        let c = &self.counters;
        StoreStats {
            plan_hits: c.plan_hits.load(Ordering::Relaxed),
            plan_misses: c.plan_misses.load(Ordering::Relaxed),
            layer_hits: c.layer_hits.load(Ordering::Relaxed),
            layer_misses: c.layer_misses.load(Ordering::Relaxed),
            point_hits: c.point_hits.load(Ordering::Relaxed),
            point_misses: c.point_misses.load(Ordering::Relaxed),
            writes: c.writes.load(Ordering::Relaxed),
            corrupt: c.corrupt.load(Ordering::Relaxed),
        }
    }

    /// Loads a compiled plan, verifying checksum, key, and the stored
    /// plan fingerprint. Any validation failure quarantines the entry and
    /// reads as a miss.
    pub fn load_plan(&self, key: &ArtifactKey) -> Option<ExecutionPlan> {
        let key_json = artifact_key_json(key);
        let got = self.load_entry("plans", "plan", &key_json, |payload| {
            let plan = plan_from_json(payload.get("plan")?)?;
            let fp = payload.get("fp")?.as_str()?;
            // The exactness safety net: a decoded plan whose debug form
            // differs from the one compiled is never served.
            (fp == hash_hex(plan_fingerprint(&plan))).then_some(plan)
        });
        match got {
            Some(plan) => {
                self.counters.plan_hits.fetch_add(1, Ordering::Relaxed);
                Some(plan)
            }
            None => {
                self.counters.plan_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists a compiled plan (write-behind). Plans that cannot
    /// round-trip exactly are skipped; existing entries are not
    /// rewritten (content is deterministic per key).
    pub fn store_plan(&self, key: &ArtifactKey, plan: &ExecutionPlan) {
        let Some(encoded) = plan_to_json(plan) else {
            return;
        };
        let payload = Json::obj(vec![
            ("fp", Json::Str(hash_hex(plan_fingerprint(plan)))),
            ("plan", encoded),
        ]);
        self.write_entry("plans", "plan", &artifact_key_json(key), payload);
    }

    /// Loads a layer-tier entry, handing the verified payload to `decode`
    /// (which returns `None` to reject it — e.g. on a value-fingerprint
    /// mismatch — quarantining the entry).
    pub fn load_layer_with<V>(
        &self,
        key: &LayerKey,
        decode: impl FnOnce(&Json) -> Option<V>,
    ) -> Option<V> {
        let key_json = layer_key_json(key);
        match self.load_entry("layers", "layer", &key_json, decode) {
            Some(v) => {
                self.counters.layer_hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.counters.layer_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists a layer-tier payload (write-behind).
    pub fn store_layer(&self, key: &LayerKey, payload: Json) {
        self.write_entry("layers", "layer", &layer_key_json(key), payload);
    }

    /// Loads a DSE point checkpoint for `(spec, point)`, handing the
    /// verified payload to `decode` as in [`Self::load_layer_with`].
    pub fn load_point_with<V>(
        &self,
        spec: u64,
        point: u64,
        decode: impl FnOnce(&Json) -> Option<V>,
    ) -> Option<V> {
        let key_json = point_key_json(spec, point);
        match self.load_entry("dse", "point", &key_json, decode) {
            Some(v) => {
                self.counters.point_hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.counters.point_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists a DSE point checkpoint.
    pub fn store_point(&self, spec: u64, point: u64, payload: Json) {
        self.write_entry("dse", "point", &point_key_json(spec, point), payload);
    }

    fn entry_path(&self, dir: &str, key_json: &Json) -> PathBuf {
        let name = hash_hex(content_hash(key_json.encode().as_bytes()));
        self.root.join(dir).join(format!("{name}.json"))
    }

    /// Validates one entry file: parse, format, kind, checksum, key
    /// equality, then `decode`. Parse/format/checksum/decode failures
    /// quarantine the file; a key mismatch (filename-hash collision) is a
    /// plain miss.
    fn load_entry<V>(
        &self,
        dir: &str,
        kind: &str,
        key_json: &Json,
        decode: impl FnOnce(&Json) -> Option<V>,
    ) -> Option<V> {
        let path = self.entry_path(dir, key_json);
        let text = fs::read_to_string(&path).ok()?;
        let validated = (|| {
            let doc = parse_json(text.trim_end()).ok()?;
            if doc.get("format")?.as_str()? != STORE_FORMAT {
                return None;
            }
            if doc.get("kind")?.as_str()? != kind {
                return None;
            }
            let payload = doc.get("payload")?;
            let check = doc.get("check")?.as_str()?;
            if check != hash_hex(content_hash(payload.encode().as_bytes())) {
                return None;
            }
            Some((doc.get("key")?.clone(), payload.clone()))
        })();
        let Some((stored_key, payload)) = validated else {
            self.quarantine(&path);
            return None;
        };
        if stored_key != *key_json {
            // A different key hashed to this filename: not corruption,
            // just not our entry.
            return None;
        }
        match decode(&payload) {
            Some(v) => Some(v),
            None => {
                self.quarantine(&path);
                None
            }
        }
    }

    /// Writes one entry atomically: unique temp file in the same
    /// directory, then `rename` (atomic on POSIX). Best-effort — an IO
    /// failure silently skips the write-behind; nothing downstream
    /// depends on it succeeding.
    fn write_entry(&self, dir: &str, kind: &str, key_json: &Json, payload: Json) {
        let path = self.entry_path(dir, key_json);
        if path.exists() {
            return;
        }
        let check = hash_hex(content_hash(payload.encode().as_bytes()));
        let line = Json::obj(vec![
            ("format", Json::Str(STORE_FORMAT.to_string())),
            ("kind", Json::Str(kind.to_string())),
            ("key", key_json.clone()),
            ("check", Json::Str(check)),
            ("payload", payload),
        ])
        .encode()
            + "\n";
        let n = self.unique.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .root
            .join(dir)
            .join(format!(".tmp-{}-{n}", std::process::id()));
        if fs::write(&tmp, line).is_ok() && fs::rename(&tmp, &path).is_ok() {
            self.counters.writes.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Renames a failed entry aside (`*.corrupt-N`) so it stops shadowing
    /// the key, and counts it. Falls back to deletion if the rename
    /// fails.
    fn quarantine(&self, path: &Path) {
        self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
        let n = self.unique.fetch_add(1, Ordering::Relaxed);
        let aside = path.with_extension(format!("corrupt-{n}"));
        if fs::rename(path, &aside).is_err() {
            let _ = fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------------
// Cache-key documents (stored in full and re-compared on load).

fn artifact_key_json(key: &ArtifactKey) -> Json {
    Json::obj(vec![
        ("model", Json::Str(key.model.clone())),
        ("fingerprint", Json::Str(hash_hex(key.fingerprint))),
        ("batch", Json::uint(key.batch)),
        ("rows", Json::uint(key.rows as u64)),
        ("cols", Json::uint(key.cols as u64)),
        ("ibuf_bytes", Json::uint(key.ibuf_bytes as u64)),
        ("wbuf_bytes", Json::uint(key.wbuf_bytes as u64)),
        ("obuf_bytes", Json::uint(key.obuf_bytes as u64)),
        ("buffer_access_bits", Json::uint(key.buffer_access_bits as u64)),
    ])
}

fn layer_key_json(key: &LayerKey) -> Json {
    Json::obj(vec![
        ("fingerprint", Json::Str(hash_hex(key.fingerprint))),
        ("batch", Json::uint(key.batch)),
        ("rows", Json::uint(key.rows as u64)),
        ("cols", Json::uint(key.cols as u64)),
        ("ibuf_bytes", Json::uint(key.ibuf_bytes as u64)),
        ("wbuf_bytes", Json::uint(key.wbuf_bytes as u64)),
        ("obuf_bytes", Json::uint(key.obuf_bytes as u64)),
        ("buffer_access_bits", Json::uint(key.buffer_access_bits as u64)),
        (
            "dram_bits_per_cycle",
            Json::uint(key.dram_bits_per_cycle as u64),
        ),
        ("context", Json::Str(hash_hex(key.context))),
    ])
}

fn point_key_json(spec: u64, point: u64) -> Json {
    Json::obj(vec![
        ("spec", Json::Str(hash_hex(spec))),
        ("point", Json::uint(point)),
    ])
}

// ---------------------------------------------------------------------------
// The exact plan codec. Every field of every layer round-trips precisely;
// anything that cannot (a u64 beyond i64::MAX) aborts the encode, which
// skips persistence for that plan.

fn plan_to_json(plan: &ExecutionPlan) -> Option<Json> {
    let layers = plan
        .layers
        .iter()
        .map(layer_to_json)
        .collect::<Option<Vec<_>>>()?;
    Some(Json::obj(vec![
        ("model", Json::Str(plan.model_name.clone())),
        ("batch", json_u64(plan.batch)?),
        ("layers", Json::Arr(layers)),
    ]))
}

fn plan_from_json(doc: &Json) -> Option<ExecutionPlan> {
    Some(ExecutionPlan {
        model_name: doc.get("model")?.as_str()?.to_string(),
        batch: doc.get("batch")?.as_u64()?,
        layers: doc
            .get("layers")?
            .as_arr()?
            .iter()
            .map(layer_from_json)
            .collect::<Option<Vec<_>>>()?,
    })
}

fn layer_to_json(layer: &PlannedLayer) -> Option<Json> {
    Some(Json::obj(vec![
        ("name", Json::Str(layer.name.clone())),
        ("block", block_to_json(&layer.block)?),
        ("mapping", mapping_to_json(&layer.mapping)?),
        ("gemm", gemm_to_json(&layer.gemm)?),
        ("tiling", tile_plan_to_json(&layer.tile_plan)?),
        (
            "postops",
            Json::Arr(
                layer
                    .postops
                    .iter()
                    .map(postop_to_json)
                    .collect::<Option<Vec<_>>>()?,
            ),
        ),
    ]))
}

fn layer_from_json(doc: &Json) -> Option<PlannedLayer> {
    Some(PlannedLayer {
        name: doc.get("name")?.as_str()?.to_string(),
        block: block_from_json(doc.get("block")?)?,
        mapping: mapping_from_json(doc.get("mapping")?)?,
        gemm: gemm_from_json(doc.get("gemm")?)?,
        tile_plan: tile_plan_from_json(doc.get("tiling")?)?,
        postops: doc
            .get("postops")?
            .as_arr()?
            .iter()
            .map(postop_from_json)
            .collect::<Option<Vec<_>>>()?,
    })
}

fn precision_to_json(p: Precision) -> Json {
    Json::Arr(vec![
        Json::Int(p.bits() as i64),
        Json::Bool(p.signedness.is_signed()),
    ])
}

fn precision_from_json(doc: &Json) -> Option<Precision> {
    let a = doc.as_arr()?;
    if a.len() != 2 {
        return None;
    }
    let width = BitWidth::from_bits(u32::try_from(a[0].as_u64()?).ok()?).ok()?;
    let signedness = if a[1].as_bool()? {
        Signedness::Signed
    } else {
        Signedness::Unsigned
    };
    Some(Precision::new(width, signedness))
}

fn gemm_to_json(g: &GemmLayer) -> Option<Json> {
    Some(Json::obj(vec![
        ("m", json_u64(g.shape.m)?),
        ("k", json_u64(g.shape.k)?),
        ("n", json_u64(g.shape.n)?),
        ("input", precision_to_json(g.pair.input)),
        ("weight", precision_to_json(g.pair.weight)),
        ("unique_input_elems", json_u64(g.unique_input_elems)?),
        ("output_elems", json_u64(g.output_elems)?),
        ("weight_elems", json_u64(g.weight_elems)?),
        ("output_bits", Json::Int(g.output_bits as i64)),
        ("depthwise", Json::Bool(g.depthwise)),
    ]))
}

fn gemm_from_json(doc: &Json) -> Option<GemmLayer> {
    Some(GemmLayer {
        shape: GemmShape {
            m: doc.get("m")?.as_u64()?,
            k: doc.get("k")?.as_u64()?,
            n: doc.get("n")?.as_u64()?,
        },
        pair: PairPrecision::new(
            precision_from_json(doc.get("input")?)?,
            precision_from_json(doc.get("weight")?)?,
        ),
        unique_input_elems: doc.get("unique_input_elems")?.as_u64()?,
        output_elems: doc.get("output_elems")?.as_u64()?,
        weight_elems: doc.get("weight_elems")?.as_u64()?,
        output_bits: u32::try_from(doc.get("output_bits")?.as_u64()?).ok()?,
        depthwise: doc.get("depthwise")?.as_bool()?,
    })
}

fn order_str(order: LoopOrder) -> &'static str {
    match order {
        LoopOrder::Nmk => "nmk",
        LoopOrder::Nkm => "nkm",
        LoopOrder::Mnk => "mnk",
        LoopOrder::Mkn => "mkn",
        LoopOrder::Kmn => "kmn",
        LoopOrder::Knm => "knm",
    }
}

fn order_from_str(s: &str) -> Option<LoopOrder> {
    Some(match s {
        "nmk" => LoopOrder::Nmk,
        "nkm" => LoopOrder::Nkm,
        "mnk" => LoopOrder::Mnk,
        "mkn" => LoopOrder::Mkn,
        "kmn" => LoopOrder::Kmn,
        "knm" => LoopOrder::Knm,
        _ => return None,
    })
}

fn tile_plan_to_json(t: &TilePlan) -> Option<Json> {
    Some(Json::obj(vec![
        ("m", json_u64(t.tiles.m)?),
        ("k", json_u64(t.tiles.k)?),
        ("n", json_u64(t.tiles.n)?),
        ("order", Json::Str(order_str(t.order).to_string())),
        (
            "traffic",
            Json::Arr(vec![
                json_u64(t.traffic.weight_bits)?,
                json_u64(t.traffic.input_bits)?,
                json_u64(t.traffic.output_bits)?,
                json_u64(t.traffic.spill_bits)?,
            ]),
        ),
    ]))
}

fn tile_plan_from_json(doc: &Json) -> Option<TilePlan> {
    let traffic = doc.get("traffic")?.as_arr()?;
    if traffic.len() != 4 {
        return None;
    }
    Some(TilePlan {
        tiles: TileSizes {
            m: doc.get("m")?.as_u64()?,
            k: doc.get("k")?.as_u64()?,
            n: doc.get("n")?.as_u64()?,
        },
        order: order_from_str(doc.get("order")?.as_str()?)?,
        traffic: Traffic {
            weight_bits: traffic[0].as_u64()?,
            input_bits: traffic[1].as_u64()?,
            output_bits: traffic[2].as_u64()?,
            spill_bits: traffic[3].as_u64()?,
        },
    })
}

fn mapping_to_json(m: &Mapping) -> Option<Json> {
    // A flat array in declaration order — the mapping is eleven counters
    // plus the per-tile segment facts.
    Some(Json::Arr(vec![
        json_u64(m.compute_steps)?,
        json_u64(m.temporal_cycles)?,
        json_u64(m.fill_passes)?,
        json_u64(m.lanes)?,
        json_u64(m.cols)?,
        json_u64(m.ibuf_bits_per_step)?,
        json_u64(m.wbuf_bits_per_step)?,
        json_u64(m.obuf_write_bits)?,
        json_u64(m.obuf_read_bits)?,
        json_u64(m.postop_ops)?,
        json_u64(m.macs)?,
        json_u64(m.per_tile.tiles)?,
        json_u64(m.per_tile.compute_steps)?,
        json_u64(m.per_tile.fill_passes)?,
        json_u64(m.per_tile.steps_per_pass)?,
    ]))
}

fn mapping_from_json(doc: &Json) -> Option<Mapping> {
    let a = doc.as_arr()?;
    if a.len() != 15 {
        return None;
    }
    let mut it = a.iter().map(Json::as_u64);
    let mut next = || it.next().flatten();
    Some(Mapping {
        compute_steps: next()?,
        temporal_cycles: next()?,
        fill_passes: next()?,
        lanes: next()?,
        cols: next()?,
        ibuf_bits_per_step: next()?,
        wbuf_bits_per_step: next()?,
        obuf_write_bits: next()?,
        obuf_read_bits: next()?,
        postop_ops: next()?,
        macs: next()?,
        per_tile: SegmentFacts {
            tiles: next()?,
            compute_steps: next()?,
            fill_passes: next()?,
            steps_per_pass: next()?,
        },
    })
}

fn postop_to_json(p: &PostOp) -> Option<Json> {
    Some(Json::Arr(match *p {
        PostOp::Relu => vec![Json::Str("relu".to_string())],
        PostOp::Pool { window, shrink, op } => vec![
            Json::Str("pool".to_string()),
            json_u64(window)?,
            json_u64(shrink)?,
            Json::Str(
                match op {
                    PoolOp::Max => "max",
                    PoolOp::Average => "avg",
                }
                .to_string(),
            ),
        ],
        PostOp::Residual { elems, bits } => vec![
            Json::Str("residual".to_string()),
            json_u64(elems)?,
            Json::Int(bits as i64),
        ],
        PostOp::RecurrentCell { ops } => {
            vec![Json::Str("recurrent".to_string()), json_u64(ops)?]
        }
    }))
}

fn postop_from_json(doc: &Json) -> Option<PostOp> {
    let a = doc.as_arr()?;
    Some(match a.first()?.as_str()? {
        "relu" if a.len() == 1 => PostOp::Relu,
        "pool" if a.len() == 4 => PostOp::Pool {
            window: a[1].as_u64()?,
            shrink: a[2].as_u64()?,
            op: match a[3].as_str()? {
                "max" => PoolOp::Max,
                "avg" => PoolOp::Average,
                _ => return None,
            },
        },
        "residual" if a.len() == 3 => PostOp::Residual {
            elems: a[1].as_u64()?,
            bits: u32::try_from(a[2].as_u64()?).ok()?,
        },
        "recurrent" if a.len() == 2 => PostOp::RecurrentCell { ops: a[1].as_u64()? },
        _ => return None,
    })
}

fn block_to_json(block: &InstructionBlock) -> Option<Json> {
    Some(Json::obj(vec![
        ("name", Json::Str(block.name.clone())),
        (
            "bases",
            Json::Arr(vec![
                json_u64(block.bases.ibuf)?,
                json_u64(block.bases.wbuf)?,
                json_u64(block.bases.obuf)?,
            ]),
        ),
        (
            "ins",
            Json::Arr(
                block
                    .instructions()
                    .iter()
                    .map(instruction_to_json)
                    .collect::<Option<Vec<_>>>()?,
            ),
        ),
    ]))
}

fn block_from_json(doc: &Json) -> Option<InstructionBlock> {
    let bases = doc.get("bases")?.as_arr()?;
    if bases.len() != 3 {
        return None;
    }
    let instructions = doc
        .get("ins")?
        .as_arr()?
        .iter()
        .map(instruction_from_json)
        .collect::<Option<Vec<_>>>()?;
    // `InstructionBlock::new` re-runs the full structural validation
    // (setup first, block-end last, loop rules), so a tampered entry can
    // never materialize an invalid block.
    InstructionBlock::new(
        doc.get("name")?.as_str()?,
        DramBases {
            ibuf: bases[0].as_u64()?,
            wbuf: bases[1].as_u64()?,
            obuf: bases[2].as_u64()?,
        },
        instructions,
    )
    .ok()
}

fn instruction_to_json(t: &TaggedInstruction) -> Option<Json> {
    let level = Json::Int(t.level as i64);
    let code = |c: u8| Json::Int(c as i64);
    Some(Json::Arr(match t.instruction {
        Instruction::Setup { input, weight } => vec![
            Json::Int(0),
            level,
            precision_to_json(input),
            precision_to_json(weight),
        ],
        Instruction::Loop { id, iterations } => vec![
            Json::Int(1),
            level,
            code(id.0),
            Json::Int(iterations as i64),
        ],
        Instruction::GenAddr {
            loop_id,
            space,
            buffer,
            stride,
        } => vec![
            Json::Int(2),
            level,
            code(loop_id.0),
            code(space.code()),
            code(buffer.code()),
            json_u64(stride)?,
        ],
        Instruction::LdMem { buffer, bits, words } => vec![
            Json::Int(3),
            level,
            code(buffer.code()),
            Json::Int(bits as i64),
            json_u64(words)?,
        ],
        Instruction::StMem { buffer, bits, words } => vec![
            Json::Int(4),
            level,
            code(buffer.code()),
            Json::Int(bits as i64),
            json_u64(words)?,
        ],
        Instruction::RdBuf { buffer } => vec![Json::Int(5), level, code(buffer.code())],
        Instruction::WrBuf { buffer } => vec![Json::Int(6), level, code(buffer.code())],
        Instruction::Compute { op } => vec![Json::Int(7), level, code(op.code())],
        Instruction::BlockEnd { next } => vec![Json::Int(8), level, Json::Int(next as i64)],
    }))
}

fn instruction_from_json(doc: &Json) -> Option<TaggedInstruction> {
    let a = doc.as_arr()?;
    let opcode = a.first()?.as_u64()?;
    let level = u8::try_from(a.get(1)?.as_u64()?).ok()?;
    let byte = |j: &Json| u8::try_from(j.as_u64()?).ok();
    let instruction = match (opcode, a.len()) {
        (0, 4) => Instruction::Setup {
            input: precision_from_json(&a[2])?,
            weight: precision_from_json(&a[3])?,
        },
        (1, 4) => Instruction::Loop {
            id: LoopId(byte(&a[2])?),
            iterations: u32::try_from(a[3].as_u64()?).ok()?,
        },
        (2, 6) => Instruction::GenAddr {
            loop_id: LoopId(byte(&a[2])?),
            space: AddressSpace::from_code(byte(&a[3])?)?,
            buffer: Scratchpad::from_code(byte(&a[4])?)?,
            stride: a[5].as_u64()?,
        },
        (3, 5) => Instruction::LdMem {
            buffer: Scratchpad::from_code(byte(&a[2])?)?,
            bits: u32::try_from(a[3].as_u64()?).ok()?,
            words: a[4].as_u64()?,
        },
        (4, 5) => Instruction::StMem {
            buffer: Scratchpad::from_code(byte(&a[2])?)?,
            bits: u32::try_from(a[3].as_u64()?).ok()?,
            words: a[4].as_u64()?,
        },
        (5, 3) => Instruction::RdBuf {
            buffer: Scratchpad::from_code(byte(&a[2])?)?,
        },
        (6, 3) => Instruction::WrBuf {
            buffer: Scratchpad::from_code(byte(&a[2])?)?,
        },
        (7, 3) => Instruction::Compute {
            op: ComputeFn::from_code(byte(&a[2])?)?,
        },
        (8, 3) => Instruction::BlockEnd {
            next: u16::try_from(a[2].as_u64()?).ok()?,
        },
        _ => return None,
    };
    Some(TaggedInstruction::new(instruction, level))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::compile;
    use bitfusion_core::arch::ArchConfig;
    use bitfusion_dnn::zoo::Benchmark;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "bf-store-test-{tag}-{}",
                std::process::id()
            ));
            let _ = fs::remove_dir_all(&path);
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn compiled(benchmark: Benchmark, batch: u64) -> (ArtifactKey, ExecutionPlan) {
        let arch = ArchConfig::isca_45nm();
        let model = benchmark.model();
        let key = ArtifactKey::of(&model, &arch, batch);
        let plan = compile(&model, &arch, batch).unwrap();
        (key, plan)
    }

    fn plan_file(store: &DiskArtifactStore) -> PathBuf {
        let dir = store.root().join("plans");
        let mut files: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        assert_eq!(files.len(), 1, "{files:?}");
        files.pop().unwrap()
    }

    #[test]
    fn plans_round_trip_debug_identically() {
        // The whole-zoo exactness check: every layer kind, fused post-op,
        // and instruction shape in the zoo must survive the codec with a
        // byte-identical debug form (the same form the fingerprint and
        // the in-memory cache key hash).
        let dir = TempDir::new("roundtrip");
        let store = DiskArtifactStore::open(&dir.0).unwrap();
        for benchmark in Benchmark::ALL {
            let (key, plan) = compiled(benchmark, 16);
            store.store_plan(&key, &plan);
            let reloaded = store.load_plan(&key).expect("stored plan loads");
            assert_eq!(
                format!("{reloaded:?}"),
                format!("{plan:?}"),
                "{benchmark:?}"
            );
        }
        let stats = store.stats();
        assert_eq!(stats.plan_hits, Benchmark::ALL.len() as u64);
        assert_eq!(stats.corrupt, 0);
        assert_eq!(stats.writes, Benchmark::ALL.len() as u64);
    }

    #[test]
    fn entries_survive_a_reopen() {
        let dir = TempDir::new("reopen");
        let (key, plan) = compiled(Benchmark::Rnn, 4);
        {
            let store = DiskArtifactStore::open(&dir.0).unwrap();
            store.store_plan(&key, &plan);
        }
        // A fresh open (a "restarted process") serves the same plan.
        let store = DiskArtifactStore::open(&dir.0).unwrap();
        let reloaded = store.load_plan(&key).expect("persisted across reopen");
        assert_eq!(format!("{reloaded:?}"), format!("{plan:?}"));
        assert_eq!(store.stats().plan_hits, 1);
    }

    #[test]
    fn second_opener_is_refused_with_the_lock_path() {
        let dir = TempDir::new("lock");
        let first = DiskArtifactStore::open(&dir.0).unwrap();
        let second = DiskArtifactStore::open(&dir.0);
        let err = second.expect_err("second opener must be refused");
        let message = err.to_string();
        assert!(
            message.contains("LOCK") && message.contains("already in use"),
            "diagnostic must name the lock path: {message}"
        );
        drop(first);
        // Releasing the first opener frees the directory.
        assert!(DiskArtifactStore::open(&dir.0).is_ok());
    }

    #[test]
    fn truncation_is_quarantined_and_recomputed() {
        let dir = TempDir::new("truncate");
        let store = DiskArtifactStore::open(&dir.0).unwrap();
        let (key, plan) = compiled(Benchmark::Rnn, 4);
        store.store_plan(&key, &plan);
        let path = plan_file(&store);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(store.load_plan(&key).is_none(), "truncated entry is a miss");
        let stats = store.stats();
        assert_eq!(stats.corrupt, 1);
        assert_eq!(stats.plan_misses, 1);
        assert!(!path.exists(), "quarantine renames the entry aside");
        let quarantined: Vec<_> = fs::read_dir(store.root().join("plans"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| {
                p.extension()
                    .is_some_and(|e| e.to_string_lossy().starts_with("corrupt"))
            })
            .collect();
        assert_eq!(quarantined.len(), 1, "{quarantined:?}");
        // The store recovers: a rewrite serves byte-identically again.
        store.store_plan(&key, &plan);
        let reloaded = store.load_plan(&key).unwrap();
        assert_eq!(format!("{reloaded:?}"), format!("{plan:?}"));
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let dir = TempDir::new("bitflip");
        let store = DiskArtifactStore::open(&dir.0).unwrap();
        let (key, plan) = compiled(Benchmark::Rnn, 4);
        store.store_plan(&key, &plan);
        let path = plan_file(&store);
        let mut bytes = fs::read(&path).unwrap();
        // Flip one bit inside a payload digit (scan from the end, past
        // the trailing `}}\n`, to land inside the payload object).
        let target = bytes
            .iter()
            .rposition(|b| b.is_ascii_digit())
            .expect("payload contains a digit");
        bytes[target] ^= 0x01;
        fs::write(&path, bytes).unwrap();
        assert!(store.load_plan(&key).is_none(), "bit flip is a miss");
        assert_eq!(store.stats().corrupt, 1);
        assert!(!path.exists(), "flipped entry quarantined");
    }

    #[test]
    fn version_mismatch_is_quarantined_not_an_error() {
        let dir = TempDir::new("version");
        let store = DiskArtifactStore::open(&dir.0).unwrap();
        let (key, plan) = compiled(Benchmark::Rnn, 4);
        store.store_plan(&key, &plan);
        let path = plan_file(&store);
        let text = fs::read_to_string(&path)
            .unwrap()
            .replace("bitfusion-store/1", "bitfusion-store/0");
        fs::write(&path, text).unwrap();
        assert!(store.load_plan(&key).is_none());
        assert_eq!(store.stats().corrupt, 1);
    }

    #[test]
    fn key_collisions_read_as_plain_misses() {
        // Same filename, different stored key: not corruption — the entry
        // belongs to another key and must be left alone.
        let dir = TempDir::new("collision");
        let store = DiskArtifactStore::open(&dir.0).unwrap();
        let (key, plan) = compiled(Benchmark::Rnn, 4);
        store.store_plan(&key, &plan);
        let path = plan_file(&store);
        // The key object precedes the payload on the line, so replacing
        // only the first occurrence edits the stored key and leaves the
        // checksummed payload intact.
        let text = fs::read_to_string(&path)
            .unwrap()
            .replacen(&format!("\"batch\":{}", key.batch), "\"batch\":999", 1);
        fs::write(&path, &text).unwrap();
        assert!(store.load_plan(&key).is_none());
        let stats = store.stats();
        assert_eq!(stats.corrupt, 0, "a foreign key is not corruption");
        assert!(path.exists(), "foreign entries are not quarantined");
    }

    #[test]
    fn wrong_fingerprint_is_quarantined() {
        // The exactness safety net: an entry whose stored fingerprint
        // does not match the decoded plan's debug form is never served.
        let dir = TempDir::new("fingerprint");
        let store = DiskArtifactStore::open(&dir.0).unwrap();
        let (key, plan) = compiled(Benchmark::Rnn, 4);
        // Persist with a deliberately wrong fingerprint but a correct
        // checksum, simulating a codec bug rather than disk damage.
        let payload = Json::obj(vec![
            ("fp", Json::Str(hash_hex(0xdead_beef))),
            ("plan", plan_to_json(&plan).unwrap()),
        ]);
        store.write_entry("plans", "plan", &artifact_key_json(&key), payload);
        assert!(store.load_plan(&key).is_none());
        assert_eq!(store.stats().corrupt, 1);
    }

    #[test]
    fn layer_and_point_entries_round_trip_raw_payloads() {
        let dir = TempDir::new("layer-point");
        let store = DiskArtifactStore::open(&dir.0).unwrap();
        let arch = ArchConfig::isca_45nm();
        let key = LayerKey::of(7, &arch, 16, 42);
        let payload = Json::obj(vec![("cycles", Json::Int(123))]);
        assert!(store
            .load_layer_with(&key, |p| p.get("cycles")?.as_u64())
            .is_none());
        store.store_layer(&key, payload.clone());
        assert_eq!(
            store.load_layer_with(&key, |p| p.get("cycles")?.as_u64()),
            Some(123)
        );
        // A decode rejection quarantines (the value-fingerprint path).
        store.store_point(9, 0, payload.clone());
        assert_eq!(
            store.load_point_with(9, 0, |_| None::<u64>),
            None,
            "decoder rejection reads as a miss"
        );
        assert!(
            store.load_point_with(9, 0, |p| p.get("cycles")?.as_u64()).is_none(),
            "rejected entry was quarantined"
        );
        let stats = store.stats();
        assert_eq!(stats.layer_hits, 1);
        assert_eq!(stats.layer_misses, 1);
        assert_eq!(stats.point_misses, 2);
        assert_eq!(stats.corrupt, 1);
    }

    #[test]
    fn overflowing_values_are_never_persisted() {
        assert!(json_u64(u64::MAX).is_none());
        assert!(json_u64(i64::MAX as u64).is_some());
        let mut mapping = Mapping {
            compute_steps: 1,
            temporal_cycles: 1,
            fill_passes: 1,
            lanes: 1,
            cols: 1,
            ibuf_bits_per_step: 1,
            wbuf_bits_per_step: 1,
            obuf_write_bits: 1,
            obuf_read_bits: 1,
            postop_ops: 1,
            macs: 1,
            per_tile: SegmentFacts {
                tiles: 1,
                compute_steps: 1,
                fill_passes: 1,
                steps_per_pass: 1,
            },
        };
        assert!(mapping_to_json(&mapping).is_some());
        mapping.macs = u64::MAX;
        assert!(mapping_to_json(&mapping).is_none(), "encode aborts, not saturates");
    }
}
