//! The shared compiled-artifact cache: a thread-safe, capacity-bounded
//! memo of [`compile`] results keyed on exactly the fields compilation
//! depends on.
//!
//! Compilation — the buffer-constrained tile-size search plus block
//! emission — dominates the cost of every evaluation path (a single
//! `report` spends most of its time here, and a design-space sweep
//! re-visits the same geometry at every bandwidth point). The paper's
//! toolchain reflects the same split: the Fusion-ISA binary is produced
//! once per (network, accelerator organization) and then evaluated many
//! times (§IV–V of Sharma et al., ISCA 2018). This module makes that
//! compile-once artifact a first-class, shared object:
//!
//! * **key** — [`ArtifactKey`] captures `(model, batch, geometry,
//!   buffers)`: the model identity (name plus a structural fingerprint, so
//!   a mutated model under a reused name cannot alias a stale plan), the
//!   batch size, and the compile-relevant [`ArchConfig`] fields. Off-chip
//!   bandwidth and clock frequency are deliberately **excluded** — tiling
//!   never depends on them, which is what lets a whole bandwidth axis
//!   share one compilation;
//! * **storage** — [`ArtifactCache`] holds `Arc`-shared compile results
//!   (including failures, so an infeasible corner is not re-searched)
//!   behind a mutex, with least-recently-used eviction at a fixed
//!   capacity;
//! * **stats** — [`CacheStats`] exposes hits/misses/evictions so callers
//!   (the session facade, the DSE engine) can report cache effectiveness.
//!
//! Failed compilations are cached too, but an eviction pass prefers
//! evicting failures first: they are cheap to reproduce relative to a
//! successful plan's tile search.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use bitfusion_core::arch::ArchConfig;
use bitfusion_dnn::model::Model;

use crate::error::CompileError;
use crate::plan::{compile, ExecutionPlan};

/// A cached compile result: the plan, or the error the compiler produced.
pub type CachedPlan = Arc<Result<ExecutionPlan, CompileError>>;

/// The identity of one compiled artifact: every input [`compile`] actually
/// reads, and nothing else.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Model name.
    pub model: String,
    /// Structural fingerprint of the model (layer topology, shapes,
    /// precisions), guarding against two different models sharing a name.
    pub fingerprint: u64,
    /// Batch size compiled for.
    pub batch: u64,
    /// Array rows.
    pub rows: usize,
    /// Array columns.
    pub cols: usize,
    /// Input-buffer capacity in bytes.
    pub ibuf_bytes: usize,
    /// Weight-buffer capacity in bytes.
    pub wbuf_bytes: usize,
    /// Output-buffer capacity in bytes.
    pub obuf_bytes: usize,
    /// Bits per SRAM data-array access.
    pub buffer_access_bits: u32,
}

impl ArtifactKey {
    /// Builds the key for compiling `model` at `batch` onto `arch`.
    pub fn of(model: &Model, arch: &ArchConfig, batch: u64) -> Self {
        ArtifactKey::with_fingerprint(&model.name, fingerprint(model), arch, batch)
    }

    /// Builds the key from a precomputed [`fingerprint`] — for callers
    /// (like the DSE engine) that key many architectures against the same
    /// model and should hash it once, not once per geometry.
    pub fn with_fingerprint(
        model: &str,
        fingerprint: u64,
        arch: &ArchConfig,
        batch: u64,
    ) -> Self {
        ArtifactKey {
            model: model.to_string(),
            fingerprint,
            batch,
            rows: arch.rows,
            cols: arch.cols,
            ibuf_bytes: arch.ibuf_bytes,
            wbuf_bytes: arch.wbuf_bytes,
            obuf_bytes: arch.obuf_bytes,
            buffer_access_bits: arch.buffer_access_bits,
        }
    }
}

/// FNV-1a over the model's debug representation: layer names, shapes, and
/// precisions all land in the stream, so any structural edit changes the
/// fingerprint. Cheap relative to a tile search (microseconds vs
/// milliseconds) and deterministic across runs.
pub fn fingerprint(model: &Model) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{model:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Snapshot of a cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a fresh compilation.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit rate over all lookups so far (0 when the cache is untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    plan: CachedPlan,
    last_used: u64,
}

struct Inner {
    map: HashMap<ArtifactKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A thread-safe, capacity-bounded, least-recently-used cache of compiled
/// execution plans.
///
/// # Examples
///
/// ```
/// use bitfusion_compiler::cache::ArtifactCache;
/// use bitfusion_core::arch::ArchConfig;
/// use bitfusion_dnn::zoo::Benchmark;
///
/// let cache = ArtifactCache::new(8);
/// let arch = ArchConfig::isca_45nm();
/// let model = Benchmark::Rnn.model();
/// let cold = cache.get_or_compile(&model, &arch, 16);
/// let warm = cache.get_or_compile(&model, &arch, 16);
/// assert!(std::sync::Arc::ptr_eq(&cold, &warm));
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
pub struct ArtifactCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

/// Default capacity: comfortably holds the whole zoo at several batch
/// sizes and a modest geometry grid without unbounded growth.
pub const DEFAULT_CACHE_CAPACITY: usize = 128;

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ArtifactCache")
            .field("len", &s.len)
            .field("capacity", &s.capacity)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}

impl ArtifactCache {
    /// Creates a cache holding at most `capacity` compiled plans
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        ArtifactCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Looks `key` up, counting a hit or miss, and refreshing recency on a
    /// hit.
    pub fn lookup(&self, key: &ArtifactKey) -> Option<CachedPlan> {
        let mut inner = self.inner.lock().expect("artifact cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let plan = entry.plan.clone();
                inner.hits += 1;
                Some(plan)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is resident, without touching counters or recency.
    pub fn contains(&self, key: &ArtifactKey) -> bool {
        self.inner
            .lock()
            .expect("artifact cache poisoned")
            .map
            .contains_key(key)
    }

    /// Inserts a compile result, evicting the least-recently-used entry
    /// when full (failed plans are evicted before successful ones — they
    /// are cheap to reproduce).
    pub fn insert(&self, key: ArtifactKey, plan: CachedPlan) {
        let mut inner = self.inner.lock().expect("artifact cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| (e.plan.is_ok(), e.last_used))
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                inner.map.remove(&victim);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            Entry {
                plan,
                last_used: tick,
            },
        );
    }

    /// Returns the cached plan for `(model, arch, batch)`, compiling and
    /// inserting it on a miss.
    ///
    /// The compilation itself runs *outside* the cache lock, so concurrent
    /// misses on different keys compile in parallel. Two threads racing on
    /// the same cold key may both compile it; the plans are identical
    /// (compilation is deterministic), the last insert wins, and the
    /// duplicated work is bounded by one compilation.
    pub fn get_or_compile(&self, model: &Model, arch: &ArchConfig, batch: u64) -> CachedPlan {
        let key = ArtifactKey::of(model, arch, batch);
        if let Some(plan) = self.lookup(&key) {
            return plan;
        }
        let plan: CachedPlan = Arc::new(compile(model, arch, batch));
        self.insert(key, plan.clone());
        plan
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("artifact cache poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.map.len(),
            capacity: self.capacity,
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("artifact cache poisoned")
            .map
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_dnn::zoo::Benchmark;

    fn key(tag: u64) -> ArtifactKey {
        ArtifactKey {
            model: format!("m{tag}"),
            fingerprint: tag,
            batch: 1,
            rows: 32,
            cols: 16,
            ibuf_bytes: 1,
            wbuf_bytes: 1,
            obuf_bytes: 1,
            buffer_access_bits: 32,
        }
    }

    fn ok_plan() -> CachedPlan {
        let arch = ArchConfig::isca_45nm();
        Arc::new(compile(&Benchmark::Rnn.model(), &arch, 1))
    }

    #[test]
    fn capacity_bound_evicts_lru() {
        let cache = ArtifactCache::new(2);
        let plan = ok_plan();
        cache.insert(key(1), plan.clone());
        cache.insert(key(2), plan.clone());
        // Touch key 1 so key 2 is the least recently used.
        assert!(cache.lookup(&key(1)).is_some());
        cache.insert(key(3), plan.clone());
        let stats = cache.stats();
        assert_eq!(stats.len, 2);
        assert_eq!(stats.evictions, 1);
        assert!(cache.contains(&key(1)), "recently used survives");
        assert!(!cache.contains(&key(2)), "LRU entry evicted");
        assert!(cache.contains(&key(3)));
    }

    #[test]
    fn hit_rate_counts_lookups() {
        let cache = ArtifactCache::new(4);
        let arch = ArchConfig::isca_45nm();
        let model = Benchmark::Lstm.model();
        assert!(cache.get_or_compile(&model, &arch, 4).is_ok());
        for _ in 0..3 {
            assert!(cache.get_or_compile(&model, &arch, 4).is_ok());
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(stats.len, 1);
    }

    #[test]
    fn bandwidth_and_frequency_share_an_artifact() {
        let cache = ArtifactCache::default();
        let model = Benchmark::Rnn.model();
        let a = cache.get_or_compile(&model, &ArchConfig::isca_45nm(), 16);
        let b = cache.get_or_compile(
            &model,
            &ArchConfig::isca_45nm().with_bandwidth(512).with_frequency(980),
            16,
        );
        assert!(Arc::ptr_eq(&a, &b), "bandwidth/frequency are not key fields");
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn quantizations_of_one_model_never_alias() {
        // The cache-aliasing guard for precision as an axis: two different
        // QuantSpecs applied to the same-named network must produce
        // distinct keys (the fingerprint covers per-layer precisions), so
        // a mixed-precision what-if can never be answered with the paper
        // assignment's plan.
        use bitfusion_dnn::quantspec::QuantSpec;
        let base = Benchmark::Lstm.model();
        let u8m = QuantSpec::parse("uniform8").unwrap().apply(&base).unwrap();
        let u16m = QuantSpec::parse("uniform16").unwrap().apply(&base).unwrap();
        assert_eq!(base.name, u8m.name, "apply keeps the name");
        let arch = ArchConfig::isca_45nm();
        let keys = [
            ArtifactKey::of(&base, &arch, 4),
            ArtifactKey::of(&u8m, &arch, 4),
            ArtifactKey::of(&u16m, &arch, 4),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "quantizations alias one artifact");
            }
        }
        // And end-to-end: three compilations, three distinct plans.
        let cache = ArtifactCache::default();
        let p0 = cache.get_or_compile(&base, &arch, 4);
        let p1 = cache.get_or_compile(&u8m, &arch, 4);
        let p2 = cache.get_or_compile(&u16m, &arch, 4);
        assert!(!Arc::ptr_eq(&p0, &p1));
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().len, 3);
    }

    #[test]
    fn mutated_model_with_same_name_is_a_different_artifact() {
        let cache = ArtifactCache::default();
        let model = Benchmark::Rnn.model();
        let mut mutated = model.clone();
        mutated.layers.pop();
        let arch = ArchConfig::isca_45nm();
        let a = cache.get_or_compile(&model, &arch, 1);
        let b = cache.get_or_compile(&mutated, &arch, 1);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn failed_compiles_are_cached_and_evicted_first() {
        let cache = ArtifactCache::new(2);
        let mut tiny = ArchConfig::isca_45nm();
        tiny.obuf_bytes = 1;
        let model = Benchmark::Svhn.model();
        let failed = cache.get_or_compile(&model, &tiny, 4);
        assert!(failed.is_err());
        // Second lookup of the failure is a hit, not a fresh search.
        assert!(cache.get_or_compile(&model, &tiny, 4).is_err());
        assert_eq!(cache.stats().hits, 1);

        // Fill past capacity: the failure goes before the newest success
        // even though the success is older by recency.
        let plan = ok_plan();
        cache.insert(key(7), plan.clone());
        cache.insert(key(8), plan);
        assert!(!cache.contains(&ArtifactKey::of(&model, &tiny, 4)));
        assert!(cache.contains(&key(7)));
        assert!(cache.contains(&key(8)));
    }

    #[test]
    fn concurrent_get_or_compile_is_safe() {
        let cache = ArtifactCache::default();
        let arch = ArchConfig::isca_45nm();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for b in [Benchmark::Rnn, Benchmark::Lstm] {
                        let plan = cache.get_or_compile(&b.model(), &arch, 2);
                        assert!(plan.is_ok());
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.len, 2);
        assert_eq!(stats.hits + stats.misses, 8);
    }
}
