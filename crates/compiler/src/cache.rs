//! The shared compiled-artifact cache: a thread-safe, capacity-bounded
//! memo of [`compile`] results keyed on exactly the fields compilation
//! depends on — plus the *layer tier* beneath it, a sibling memo of
//! per-layer evaluation results ([`LayerArtifactCache`]).
//!
//! Compilation — the buffer-constrained tile-size search plus block
//! emission — dominates the cost of every evaluation path (a single
//! `report` spends most of its time here, and a design-space sweep
//! re-visits the same geometry at every bandwidth point). The paper's
//! toolchain reflects the same split: the Fusion-ISA binary is produced
//! once per (network, accelerator organization) and then evaluated many
//! times (§IV–V of Sharma et al., ISCA 2018). This module makes that
//! compile-once artifact a first-class, shared object:
//!
//! * **key** — [`ArtifactKey`] captures `(model, batch, geometry,
//!   buffers)`: the model identity (name plus a structural fingerprint, so
//!   a mutated model under a reused name cannot alias a stale plan), the
//!   batch size, and the compile-relevant [`ArchConfig`] fields. Off-chip
//!   bandwidth and clock frequency are deliberately **excluded** — tiling
//!   never depends on them, which is what lets a whole bandwidth axis
//!   share one compilation;
//! * **storage** — [`ArtifactCache`] holds `Arc`-shared compile results
//!   (including failures, so an infeasible corner is not re-searched)
//!   behind a mutex, with least-recently-used eviction at a fixed
//!   capacity;
//! * **stats** — [`CacheStats`] exposes hits/misses/evictions so callers
//!   (the session facade, the DSE engine) can report cache effectiveness.
//!
//! Failed compilations are cached too, but an eviction pass prefers
//! evicting failures first: they are cheap to reproduce relative to a
//! successful plan's tile search.
//!
//! The layer tier sits *below* the model tier: once a plan is resolved
//! (from the model tier or a fresh compilation), each of its layers can be
//! evaluated at most once per ([`layer_fingerprint`], batch, geometry,
//! bandwidth, evaluation context) — [`LayerKey`] — however many grid
//! points, quantizations, or models share that layer. Networks built from
//! repeated blocks (ResNet-18's basic blocks, VGG's conv stacks) collapse
//! dramatically under this key; see `DESIGN.md`, "Two-tier compile/sim
//! cache".

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use bitfusion_core::arch::ArchConfig;
use bitfusion_dnn::model::Model;

use crate::error::CompileError;
use crate::plan::{compile, ExecutionPlan, PlannedLayer};
use crate::store::DiskArtifactStore;

/// A cached compile result: the plan, or the error the compiler produced.
pub type CachedPlan = Arc<Result<ExecutionPlan, CompileError>>;

/// The identity of one compiled artifact: every input [`compile`] actually
/// reads, and nothing else.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Model name.
    pub model: String,
    /// Structural fingerprint of the model (layer topology, shapes,
    /// precisions), guarding against two different models sharing a name.
    pub fingerprint: u64,
    /// Batch size compiled for.
    pub batch: u64,
    /// Array rows.
    pub rows: usize,
    /// Array columns.
    pub cols: usize,
    /// Input-buffer capacity in bytes.
    pub ibuf_bytes: usize,
    /// Weight-buffer capacity in bytes.
    pub wbuf_bytes: usize,
    /// Output-buffer capacity in bytes.
    pub obuf_bytes: usize,
    /// Bits per SRAM data-array access.
    pub buffer_access_bits: u32,
}

impl ArtifactKey {
    /// Builds the key for compiling `model` at `batch` onto `arch`.
    pub fn of(model: &Model, arch: &ArchConfig, batch: u64) -> Self {
        ArtifactKey::with_fingerprint(&model.name, fingerprint(model), arch, batch)
    }

    /// Builds the key from a precomputed [`fingerprint`] — for callers
    /// (like the DSE engine) that key many architectures against the same
    /// model and should hash it once, not once per geometry.
    pub fn with_fingerprint(
        model: &str,
        fingerprint: u64,
        arch: &ArchConfig,
        batch: u64,
    ) -> Self {
        ArtifactKey {
            model: model.to_string(),
            fingerprint,
            batch,
            rows: arch.rows,
            cols: arch.cols,
            ibuf_bytes: arch.ibuf_bytes,
            wbuf_bytes: arch.wbuf_bytes,
            obuf_bytes: arch.obuf_bytes,
            buffer_access_bits: arch.buffer_access_bits,
        }
    }
}

fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// FNV-1a over the model's debug representation: layer names, shapes, and
/// precisions all land in the stream, so any structural edit changes the
/// fingerprint. Cheap relative to a tile search (microseconds vs
/// milliseconds) and deterministic across runs.
pub fn fingerprint(model: &Model) -> u64 {
    fnv1a(format!("{model:?}").bytes())
}

/// FNV-1a over one planned layer's evaluation-relevant structure: the GEMM
/// view (shape and `PairPrecision`), the chosen tiling, the fused post-ops
/// (a fused residual stream's extra input bits land here), and the mapping
/// facts.
///
/// The layer's *name* and its position in the plan are excluded on
/// purpose: two identically shaped groups at different depths share a
/// fingerprint, which is what lets the layer tier collapse ResNet-style
/// repeated blocks. The instruction block is excluded too — it is a
/// deterministic function of the covered fields plus the geometry already
/// present in [`LayerKey`] (its only position-dependent field, the
/// next-block link, never affects traffic or timing), and hashing its
/// debug form per layer would cost a good fraction of the evaluation being
/// memoized.
pub fn layer_fingerprint(layer: &PlannedLayer) -> u64 {
    fnv1a(
        format!(
            "{:?}|{:?}|{:?}|{:?}",
            layer.gemm, layer.tile_plan, layer.postops, layer.mapping
        )
        .bytes(),
    )
}

/// Snapshot of a cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a fresh compilation.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit rate over all lookups so far, or `None` for a cache that has
    /// never been looked up — so an untouched cache reads as "n/a", not as
    /// a suspicious 0%. The sum saturates: pathological counter values can
    /// never overflow the total.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits.saturating_add(self.misses);
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

struct Entry {
    plan: CachedPlan,
    last_used: u64,
}

struct Inner {
    map: HashMap<ArtifactKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A thread-safe, capacity-bounded, least-recently-used cache of compiled
/// execution plans.
///
/// # Examples
///
/// ```
/// use bitfusion_compiler::cache::ArtifactCache;
/// use bitfusion_core::arch::ArchConfig;
/// use bitfusion_dnn::zoo::Benchmark;
///
/// let cache = ArtifactCache::new(8);
/// let arch = ArchConfig::isca_45nm();
/// let model = Benchmark::Rnn.model();
/// let cold = cache.get_or_compile(&model, &arch, 16);
/// let warm = cache.get_or_compile(&model, &arch, 16);
/// assert!(std::sync::Arc::ptr_eq(&cold, &warm));
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
pub struct ArtifactCache {
    inner: Mutex<Inner>,
    capacity: usize,
    store: Mutex<Option<Arc<DiskArtifactStore>>>,
}

/// Default capacity: comfortably holds the whole zoo at several batch
/// sizes and a modest geometry grid without unbounded growth.
pub const DEFAULT_CACHE_CAPACITY: usize = 128;

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ArtifactCache")
            .field("len", &s.len)
            .field("capacity", &s.capacity)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}

impl ArtifactCache {
    /// Creates a cache holding at most `capacity` compiled plans
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        ArtifactCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
            store: Mutex::new(None),
        }
    }

    /// Attaches a persistent disk tier beneath this cache: [`Self::lookup`]
    /// falls through to it on a memory miss (read-through) and
    /// [`Self::insert`] persists successful plans to it (write-behind).
    /// Memory-tier [`CacheStats`] semantics are unchanged — a disk-served
    /// plan still counts as a memory miss; the disk traffic shows up in
    /// [`DiskArtifactStore::stats`].
    pub fn attach_store(&self, store: Arc<DiskArtifactStore>) {
        *self.store.lock().expect("artifact cache store poisoned") = Some(store);
    }

    fn disk(&self) -> Option<Arc<DiskArtifactStore>> {
        self.store
            .lock()
            .expect("artifact cache store poisoned")
            .clone()
    }

    /// Looks `key` up — memory tier first, then the attached disk tier (if
    /// any) — counting a memory hit or miss and refreshing recency on a
    /// hit. A disk-served plan is promoted into the memory tier.
    pub fn lookup(&self, key: &ArtifactKey) -> Option<CachedPlan> {
        if let Some(plan) = self.lookup_memory(key) {
            return Some(plan);
        }
        let store = self.disk()?;
        let plan: CachedPlan = Arc::new(Ok(store.load_plan(key)?));
        self.insert_memory(key.clone(), plan.clone());
        Some(plan)
    }

    fn lookup_memory(&self, key: &ArtifactKey) -> Option<CachedPlan> {
        let mut inner = self.inner.lock().expect("artifact cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let plan = entry.plan.clone();
                inner.hits += 1;
                Some(plan)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is resident, without touching counters or recency.
    pub fn contains(&self, key: &ArtifactKey) -> bool {
        self.inner
            .lock()
            .expect("artifact cache poisoned")
            .map
            .contains_key(key)
    }

    /// Inserts a compile result, evicting the least-recently-used entry
    /// when full (failed plans are evicted before successful ones — they
    /// are cheap to reproduce). Successful plans are also written behind
    /// to the attached disk tier, if any; failures stay memory-only (they
    /// are cheap to reproduce and a persisted failure could outlive the
    /// bug that caused it).
    pub fn insert(&self, key: ArtifactKey, plan: CachedPlan) {
        if let Ok(ok) = plan.as_ref() {
            if let Some(store) = self.disk() {
                store.store_plan(&key, ok);
            }
        }
        self.insert_memory(key, plan);
    }

    fn insert_memory(&self, key: ArtifactKey, plan: CachedPlan) {
        let mut inner = self.inner.lock().expect("artifact cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| (e.plan.is_ok(), e.last_used))
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                inner.map.remove(&victim);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            Entry {
                plan,
                last_used: tick,
            },
        );
    }

    /// Returns the cached plan for `(model, arch, batch)`, compiling and
    /// inserting it on a miss.
    ///
    /// The compilation itself runs *outside* the cache lock, so concurrent
    /// misses on different keys compile in parallel. Two threads racing on
    /// the same cold key may both compile it; the plans are identical
    /// (compilation is deterministic), the last insert wins, and the
    /// duplicated work is bounded by one compilation.
    pub fn get_or_compile(&self, model: &Model, arch: &ArchConfig, batch: u64) -> CachedPlan {
        let key = ArtifactKey::of(model, arch, batch);
        if let Some(plan) = self.lookup(&key) {
            return plan;
        }
        let plan: CachedPlan = Arc::new(compile(model, arch, batch));
        self.insert(key, plan.clone());
        plan
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("artifact cache poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.map.len(),
            capacity: self.capacity,
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("artifact cache poisoned")
            .map
            .clear();
    }
}

/// The identity of one memoized layer evaluation in the layer tier: the
/// layer's structural [`layer_fingerprint`] (covering shape,
/// `PairPrecision`, tiling, and fused post-ops), the batch it was planned
/// at, the compile-relevant [`ArchConfig`] geometry (the same field set as
/// [`ArtifactKey`]), plus the off-chip bandwidth — unlike *compilation*,
/// *evaluation* depends on it — and an opaque caller-supplied `context`
/// discriminant folding in whatever else the evaluation reads (backend
/// identity, calibration knobs). Clock frequency stays excluded: cached
/// results live in the cycle domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerKey {
    /// Structural layer fingerprint ([`layer_fingerprint`]).
    pub fingerprint: u64,
    /// Batch size the layer was planned at.
    pub batch: u64,
    /// Array rows.
    pub rows: usize,
    /// Array columns.
    pub cols: usize,
    /// Input-buffer capacity in bytes.
    pub ibuf_bytes: usize,
    /// Weight-buffer capacity in bytes.
    pub wbuf_bytes: usize,
    /// Output-buffer capacity in bytes.
    pub obuf_bytes: usize,
    /// Bits per SRAM data-array access.
    pub buffer_access_bits: u32,
    /// Off-chip bandwidth in bits/cycle (an evaluation input, though not a
    /// compilation input).
    pub dram_bits_per_cycle: u32,
    /// Discriminant for evaluation inputs the key cannot cover
    /// structurally (backend identity, calibration options).
    pub context: u64,
}

impl LayerKey {
    /// Builds the key for evaluating a layer with `fingerprint` at `batch`
    /// on `arch` under `context`.
    pub fn of(fingerprint: u64, arch: &ArchConfig, batch: u64, context: u64) -> Self {
        LayerKey {
            fingerprint,
            batch,
            rows: arch.rows,
            cols: arch.cols,
            ibuf_bytes: arch.ibuf_bytes,
            wbuf_bytes: arch.wbuf_bytes,
            obuf_bytes: arch.obuf_bytes,
            buffer_access_bits: arch.buffer_access_bits,
            dram_bits_per_cycle: arch.dram_bits_per_cycle,
            context,
        }
    }
}

/// Default layer-tier capacity. Deep networks on a broad grid produce two
/// orders of magnitude more unique layer keys than model keys, but each
/// entry is one small evaluation result rather than a compiled plan, so
/// the tier is sized accordingly above [`DEFAULT_CACHE_CAPACITY`].
pub const DEFAULT_LAYER_CACHE_CAPACITY: usize = 16_384;

struct LayerEntry<V> {
    value: V,
    last_used: u64,
}

struct LayerInner<V> {
    map: HashMap<LayerKey, LayerEntry<V>>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The layer tier of the two-tier cache: a thread-safe, capacity-bounded,
/// least-recently-used memo of per-layer evaluation results, sibling to
/// the model-level [`ArtifactCache`].
///
/// Generic over the cached value so this crate does not depend on the
/// simulator's result types — `bitfusion-sim` instantiates it with its
/// `LayerPerf` (as `LayerPerfCache`). Lookup and insert mirror
/// [`ArtifactCache`]: counters on every lookup, recency refreshed on hits,
/// LRU eviction at capacity (there is no cheap-to-reproduce failure class
/// here — evaluation is total — so eviction is recency only).
pub struct LayerArtifactCache<V> {
    inner: Mutex<LayerInner<V>>,
    capacity: usize,
    store: Mutex<Option<Arc<DiskArtifactStore>>>,
}

impl<V> Default for LayerArtifactCache<V> {
    fn default() -> Self {
        LayerArtifactCache::new(DEFAULT_LAYER_CACHE_CAPACITY)
    }
}

impl<V> std::fmt::Debug for LayerArtifactCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("LayerArtifactCache")
            .field("len", &s.len)
            .field("capacity", &s.capacity)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}

impl<V> LayerArtifactCache<V> {
    /// Creates a layer cache holding at most `capacity` evaluation results
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        LayerArtifactCache {
            inner: Mutex::new(LayerInner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
            store: Mutex::new(None),
        }
    }

    /// Attaches a persistent disk tier. The value codec lives with the
    /// instantiating crate (the simulator, for `LayerPerf`), so this tier
    /// is consulted by the caller via [`Self::disk`] rather than inside
    /// [`Self::lookup`]; memory-tier [`CacheStats`] semantics are
    /// unchanged.
    pub fn attach_store(&self, store: Arc<DiskArtifactStore>) {
        *self.store.lock().expect("layer cache store poisoned") = Some(store);
    }

    /// The attached disk tier, if any.
    pub fn disk(&self) -> Option<Arc<DiskArtifactStore>> {
        self.store
            .lock()
            .expect("layer cache store poisoned")
            .clone()
    }

    /// Whether `key` is resident, without touching counters or recency.
    pub fn contains(&self, key: &LayerKey) -> bool {
        self.inner
            .lock()
            .expect("layer cache poisoned")
            .map
            .contains_key(key)
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("layer cache poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.map.len(),
            capacity: self.capacity,
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("layer cache poisoned")
            .map
            .clear();
    }
}

impl<V: Clone> LayerArtifactCache<V> {
    /// Looks `key` up, counting a hit or miss, and refreshing recency on a
    /// hit.
    pub fn lookup(&self, key: &LayerKey) -> Option<V> {
        let mut inner = self.inner.lock().expect("layer cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let value = entry.value.clone();
                inner.hits += 1;
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts an evaluation result, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&self, key: LayerKey, value: V) {
        let mut inner = self.inner.lock().expect("layer cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            if let Some(victim) = victim {
                inner.map.remove(&victim);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            LayerEntry {
                value,
                last_used: tick,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_dnn::zoo::Benchmark;

    fn key(tag: u64) -> ArtifactKey {
        ArtifactKey {
            model: format!("m{tag}"),
            fingerprint: tag,
            batch: 1,
            rows: 32,
            cols: 16,
            ibuf_bytes: 1,
            wbuf_bytes: 1,
            obuf_bytes: 1,
            buffer_access_bits: 32,
        }
    }

    fn ok_plan() -> CachedPlan {
        let arch = ArchConfig::isca_45nm();
        Arc::new(compile(&Benchmark::Rnn.model(), &arch, 1))
    }

    #[test]
    fn capacity_bound_evicts_lru() {
        let cache = ArtifactCache::new(2);
        let plan = ok_plan();
        cache.insert(key(1), plan.clone());
        cache.insert(key(2), plan.clone());
        // Touch key 1 so key 2 is the least recently used.
        assert!(cache.lookup(&key(1)).is_some());
        cache.insert(key(3), plan.clone());
        let stats = cache.stats();
        assert_eq!(stats.len, 2);
        assert_eq!(stats.evictions, 1);
        assert!(cache.contains(&key(1)), "recently used survives");
        assert!(!cache.contains(&key(2)), "LRU entry evicted");
        assert!(cache.contains(&key(3)));
    }

    #[test]
    fn hit_rate_counts_lookups() {
        let cache = ArtifactCache::new(4);
        let arch = ArchConfig::isca_45nm();
        let model = Benchmark::Lstm.model();
        assert!(cache.get_or_compile(&model, &arch, 4).is_ok());
        for _ in 0..3 {
            assert!(cache.get_or_compile(&model, &arch, 4).is_ok());
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
        assert!((stats.hit_rate().unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(stats.len, 1);
    }

    #[test]
    fn hit_rate_is_none_until_first_lookup_and_never_overflows() {
        // An untouched cache has no rate — not a 0% one.
        assert_eq!(CacheStats::default().hit_rate(), None);
        assert_eq!(ArtifactCache::default().stats().hit_rate(), None);
        // Saturating sum: counters at the u64 ceiling still produce a
        // finite in-range rate instead of overflowing the total.
        let saturated = CacheStats {
            hits: u64::MAX,
            misses: u64::MAX,
            ..CacheStats::default()
        };
        let rate = saturated.hit_rate().unwrap();
        assert!(rate.is_finite() && rate > 0.0 && rate <= 1.0, "{rate}");
    }

    #[test]
    fn bandwidth_and_frequency_share_an_artifact() {
        let cache = ArtifactCache::default();
        let model = Benchmark::Rnn.model();
        let a = cache.get_or_compile(&model, &ArchConfig::isca_45nm(), 16);
        let b = cache.get_or_compile(
            &model,
            &ArchConfig::isca_45nm().with_bandwidth(512).with_frequency(980),
            16,
        );
        assert!(Arc::ptr_eq(&a, &b), "bandwidth/frequency are not key fields");
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn quantizations_of_one_model_never_alias() {
        // The cache-aliasing guard for precision as an axis: two different
        // QuantSpecs applied to the same-named network must produce
        // distinct keys (the fingerprint covers per-layer precisions), so
        // a mixed-precision what-if can never be answered with the paper
        // assignment's plan.
        use bitfusion_dnn::quantspec::QuantSpec;
        let base = Benchmark::Lstm.model();
        let u8m = QuantSpec::parse("uniform8").unwrap().apply(&base).unwrap();
        let u16m = QuantSpec::parse("uniform16").unwrap().apply(&base).unwrap();
        assert_eq!(base.name, u8m.name, "apply keeps the name");
        let arch = ArchConfig::isca_45nm();
        let keys = [
            ArtifactKey::of(&base, &arch, 4),
            ArtifactKey::of(&u8m, &arch, 4),
            ArtifactKey::of(&u16m, &arch, 4),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "quantizations alias one artifact");
            }
        }
        // And end-to-end: three compilations, three distinct plans.
        let cache = ArtifactCache::default();
        let p0 = cache.get_or_compile(&base, &arch, 4);
        let p1 = cache.get_or_compile(&u8m, &arch, 4);
        let p2 = cache.get_or_compile(&u16m, &arch, 4);
        assert!(!Arc::ptr_eq(&p0, &p1));
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().len, 3);
    }

    #[test]
    fn mutated_model_with_same_name_is_a_different_artifact() {
        let cache = ArtifactCache::default();
        let model = Benchmark::Rnn.model();
        let mut mutated = model.clone();
        mutated.layers.pop();
        let arch = ArchConfig::isca_45nm();
        let a = cache.get_or_compile(&model, &arch, 1);
        let b = cache.get_or_compile(&mutated, &arch, 1);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn failed_compiles_are_cached_and_evicted_first() {
        let cache = ArtifactCache::new(2);
        let mut tiny = ArchConfig::isca_45nm();
        tiny.obuf_bytes = 1;
        let model = Benchmark::Svhn.model();
        let failed = cache.get_or_compile(&model, &tiny, 4);
        assert!(failed.is_err());
        // Second lookup of the failure is a hit, not a fresh search.
        assert!(cache.get_or_compile(&model, &tiny, 4).is_err());
        assert_eq!(cache.stats().hits, 1);

        // Fill past capacity: the failure goes before the newest success
        // even though the success is older by recency.
        let plan = ok_plan();
        cache.insert(key(7), plan.clone());
        cache.insert(key(8), plan);
        assert!(!cache.contains(&ArtifactKey::of(&model, &tiny, 4)));
        assert!(cache.contains(&key(7)));
        assert!(cache.contains(&key(8)));
    }

    #[test]
    fn layer_fingerprints_collapse_repeated_blocks_but_not_names() {
        // ResNet-18-style repetition: identically shaped groups at
        // different depths (different names) share a fingerprint, which is
        // the whole point of the layer tier.
        let arch = ArchConfig::isca_45nm();
        let plan = compile(&Benchmark::ResNet18.model(), &arch, 16).unwrap();
        let mut unique = std::collections::HashSet::new();
        for l in &plan.layers {
            unique.insert(layer_fingerprint(l));
        }
        assert!(
            unique.len() < plan.layers.len(),
            "{} unique fingerprints across {} layers: repeated basic \
             blocks must share",
            unique.len(),
            plan.layers.len()
        );
        // But distinct shapes never collide in practice.
        assert!(unique.len() > 1);
    }

    #[test]
    fn layer_keys_separate_batch_arch_bandwidth_and_context() {
        let arch = ArchConfig::isca_45nm();
        let base = LayerKey::of(7, &arch, 16, 0);
        assert_eq!(base, LayerKey::of(7, &arch, 16, 0));
        assert_ne!(base, LayerKey::of(8, &arch, 16, 0), "fingerprint");
        assert_ne!(base, LayerKey::of(7, &arch, 8, 0), "batch");
        assert_ne!(base, LayerKey::of(7, &arch, 16, 1), "context");
        // Bandwidth is an evaluation input: unlike ArtifactKey, it splits
        // layer keys.
        let wide = arch.clone().with_bandwidth(512);
        assert_ne!(base, LayerKey::of(7, &wide, 16, 0), "bandwidth");
        // Frequency stays excluded: results are cycle-domain.
        let fast = arch.clone().with_frequency(980);
        assert_eq!(base, LayerKey::of(7, &fast, 16, 0), "frequency excluded");
    }

    #[test]
    fn layer_cache_counts_and_evicts_lru() {
        let arch = ArchConfig::isca_45nm();
        let key = |fp: u64| LayerKey::of(fp, &arch, 1, 0);
        let cache: LayerArtifactCache<u64> = LayerArtifactCache::new(2);
        assert_eq!(cache.lookup(&key(1)), None);
        cache.insert(key(1), 10);
        cache.insert(key(2), 20);
        assert_eq!(cache.lookup(&key(1)), Some(10));
        cache.insert(key(3), 30);
        let stats = cache.stats();
        assert_eq!(stats.len, 2);
        assert_eq!(stats.evictions, 1);
        assert!(cache.contains(&key(1)), "recently used survives");
        assert!(!cache.contains(&key(2)), "LRU entry evicted");
        assert!(cache.contains(&key(3)));
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn concurrent_get_or_compile_is_safe() {
        let cache = ArtifactCache::default();
        let arch = ArchConfig::isca_45nm();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for b in [Benchmark::Rnn, Benchmark::Lstm] {
                        let plan = cache.get_or_compile(&b.model(), &arch, 2);
                        assert!(plan.is_ok());
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.len, 2);
        assert_eq!(stats.hits + stats.misses, 8);
    }
}
