//! Error type for the compiler.

use std::error::Error;
use std::fmt;

use bitfusion_core::error::CoreError;
use bitfusion_isa::IsaError;

/// Errors produced while compiling a model to Fusion-ISA blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// No tile assignment fits the configured scratchpads.
    NoFeasibleTiling {
        /// GEMM rows.
        m: u64,
        /// GEMM reduction length.
        k: u64,
        /// GEMM columns.
        n: u64,
    },
    /// The model has no multiply-add layers.
    EmptyModel,
    /// Block emission failed (an ISA structural violation — a compiler bug
    /// surfaced as an error rather than a panic).
    Emit(IsaError),
    /// Batch size must be at least one.
    ZeroBatch,
    /// The target architecture fails [`bitfusion_core::arch::ArchConfig::validate`]
    /// (zero geometry, zero buffers, non-power-of-two access width).
    InvalidArch(CoreError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NoFeasibleTiling { m, k, n } => {
                write!(f, "no tiling of {m}x{k}x{n} fits the on-chip buffers")
            }
            CompileError::EmptyModel => write!(f, "model has no multiply-add layers"),
            CompileError::Emit(e) => write!(f, "block emission failed: {e}"),
            CompileError::ZeroBatch => write!(f, "batch size must be at least 1"),
            CompileError::InvalidArch(e) => write!(f, "invalid target architecture: {e}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Emit(e) => Some(e),
            CompileError::InvalidArch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for CompileError {
    fn from(e: IsaError) -> Self {
        CompileError::Emit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CompileError::NoFeasibleTiling { m: 1, k: 2, n: 3 };
        assert!(e.to_string().contains("1x2x3"));
        assert!(e.source().is_none());
        let e = CompileError::from(IsaError::ZeroTripLoop(4));
        assert!(e.source().is_some());
        let e = CompileError::InvalidArch(CoreError::EmptyArray);
        assert!(e.to_string().contains("invalid target architecture"));
        assert!(e.source().is_some());
    }
}
