//! The GEMM view of DNN layers.
//!
//! Every multiply-add layer the accelerator executes reduces to a (possibly
//! batched) matrix multiplication: output `[M × N] = weights [M × K] ×
//! inputs [K × N]`. Convolutions take the im2col view (`K` = filter volume,
//! `N` = output pixels × batch), dense layers are direct, and recurrent
//! cells stack their gate matrices into `M`.

use bitfusion_core::bitwidth::PairPrecision;
use bitfusion_dnn::layer::Layer;

/// The GEMM dimensions of one layer at a given batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Output rows (output channels / features).
    pub m: u64,
    /// Reduction length.
    pub k: u64,
    /// Output columns (output pixels × batch, or batch for dense layers).
    pub n: u64,
}

impl GemmShape {
    /// Total multiply-accumulates.
    pub const fn macs(&self) -> u64 {
        self.m * self.k * self.n
    }
}

/// A layer lowered to GEMM form plus the memory-relevant element counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmLayer {
    /// GEMM dimensions (batch folded into `n`).
    pub shape: GemmShape,
    /// Operand precisions.
    pub pair: PairPrecision,
    /// Unique input elements per batch (feature-map size × batch for convs;
    /// `k × n` for dense layers). Convolutions re-read each input element
    /// `R×S` times in the im2col view but buffer windows on chip, so DRAM
    /// input traffic is charged on unique elements per pass.
    pub unique_input_elems: u64,
    /// Output elements per batch.
    pub output_elems: u64,
    /// Weight elements (batch-independent).
    pub weight_elems: u64,
    /// Output storage bits per element after requantization (the next
    /// layer's input width, or 32 for raw partial sums).
    pub output_bits: u32,
    /// Whether the layer is a depthwise convolution: each output channel
    /// (GEMM row) reduces over its *own* input window, so inputs are
    /// indexed by all three GEMM dimensions and cannot be broadcast
    /// across the array columns the way the shared `[K × N]` input panel
    /// of an ordinary GEMM is. Tiling, the traffic model, and the lowered
    /// block all branch on this.
    pub depthwise: bool,
}

/// Lowers a MAC layer to its GEMM view; returns `None` for non-MAC layers
/// (pooling, activation, elementwise), which the compiler plans separately.
pub fn layer_to_gemm(layer: &Layer, batch: u64, output_bits: u32) -> Option<GemmLayer> {
    match layer {
        Layer::Conv2d(c) => {
            let (oh, ow) = c.output_hw();
            // Input traffic per full traversal: the IBUF line-buffers each
            // tile row, reusing pixels horizontally (factor S) but
            // re-fetching the R-row window as the output row advances by
            // the stride — `unique × R / stride_v`, capped by the raw
            // im2col volume. Perfect two-dimensional reuse would need the
            // whole feature map resident, which the 32 KB IBUF cannot hold
            // for the ImageNet-scale layers.
            let unique = c.input_elems() * batch;
            let im2col = c.reduction_len() * (oh * ow) as u64 * batch;
            let windowed = (unique * c.kernel.0 as u64).div_ceil(c.stride.0 as u64);
            Some(GemmLayer {
                shape: GemmShape {
                    m: c.out_channels as u64,
                    k: c.reduction_len(),
                    n: (oh * ow) as u64 * batch,
                },
                pair: c.precision,
                unique_input_elems: windowed.min(im2col).max(unique),
                output_elems: c.output_elems() * batch,
                weight_elems: c.params(),
                output_bits,
                depthwise: false,
            })
        }
        Layer::DepthwiseConv2d(c) => {
            let (oh, ow) = c.output_hw();
            // Same line-buffered window reuse as dense convolution, per
            // channel; the im2col volume here is tiny (`R·S` per output).
            let unique = c.input_elems() * batch;
            let im2col = c.reduction_len() * c.output_elems() * batch;
            let windowed = (unique * c.kernel.0 as u64).div_ceil(c.stride.0 as u64);
            Some(GemmLayer {
                shape: GemmShape {
                    m: c.channels as u64,
                    k: c.reduction_len(),
                    n: (oh * ow) as u64 * batch,
                },
                pair: c.precision,
                unique_input_elems: windowed.min(im2col).max(unique),
                output_elems: c.output_elems() * batch,
                weight_elems: c.params(),
                output_bits,
                depthwise: true,
            })
        }
        Layer::Dense(d) => Some(GemmLayer {
            shape: GemmShape {
                m: d.out_features as u64,
                k: d.in_features as u64,
                n: batch,
            },
            pair: d.precision,
            unique_input_elems: d.in_features as u64 * batch,
            output_elems: d.out_features as u64 * batch,
            weight_elems: d.params(),
            output_bits,
            depthwise: false,
        }),
        Layer::Recurrent(r) => {
            let k = (r.input_size + r.hidden_size) as u64;
            let m = r.cell.gates() * r.hidden_size as u64;
            Some(GemmLayer {
                shape: GemmShape { m, k, n: batch },
                pair: r.precision,
                unique_input_elems: k * batch,
                output_elems: m * batch,
                weight_elems: r.params(),
                output_bits,
                depthwise: false,
            })
        }
        Layer::Pool2d(_) | Layer::Eltwise(_) | Layer::Activation(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_dnn::layer::{CellKind, Conv2d, Dense, Recurrent};

    fn pp(i: u32, w: u32) -> PairPrecision {
        PairPrecision::from_bits(i, w).unwrap()
    }

    #[test]
    fn conv_gemm_macs_match_layer() {
        let c = Conv2d {
            in_channels: 96,
            out_channels: 256,
            kernel: (5, 5),
            stride: (1, 1),
            padding: (2, 2),
            input_hw: (27, 27),
            groups: 2,
            precision: pp(4, 1),
        };
        let layer = Layer::Conv2d(c.clone());
        let g = layer_to_gemm(&layer, 16, 4).unwrap();
        assert_eq!(g.shape.macs(), c.macs() * 16);
        assert_eq!(g.shape.k, c.reduction_len());
        assert_eq!(g.weight_elems, c.params());
    }

    #[test]
    fn dense_gemm() {
        let d = Dense {
            in_features: 9216,
            out_features: 4096,
            precision: pp(4, 1),
        };
        let g = layer_to_gemm(&Layer::Dense(d), 4, 4).unwrap();
        assert_eq!(g.shape, GemmShape { m: 4096, k: 9216, n: 4 });
        assert_eq!(g.shape.macs(), 4096 * 9216 * 4);
    }

    #[test]
    fn depthwise_gemm_has_per_channel_reduction() {
        use bitfusion_dnn::layer::DepthwiseConv2d;
        let c = DepthwiseConv2d {
            channels: 64,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
            input_hw: (56, 56),
            precision: pp(8, 4),
        };
        let layer = Layer::DepthwiseConv2d(c.clone());
        let g = layer_to_gemm(&layer, 4, 8).unwrap();
        assert!(g.depthwise);
        assert_eq!(
            g.shape,
            GemmShape {
                m: 64,
                k: 9,
                n: 56 * 56 * 4
            }
        );
        assert_eq!(g.shape.macs(), c.macs() * 4);
        assert_eq!(g.weight_elems, 64 * 9);
        // Line-buffered window reuse: 3 rows per stride-1 advance, well
        // below the full im2col volume.
        assert_eq!(g.unique_input_elems, 64 * 56 * 56 * 4 * 3);
        assert!(g.unique_input_elems < g.shape.k * g.shape.n * 64);
    }

    #[test]
    fn recurrent_stacks_gates() {
        let r = Recurrent {
            cell: CellKind::Lstm,
            input_size: 900,
            hidden_size: 900,
            precision: pp(4, 4),
        };
        let g = layer_to_gemm(&Layer::Recurrent(r), 1, 4).unwrap();
        assert_eq!(g.shape, GemmShape { m: 3600, k: 1800, n: 1 });
    }

    #[test]
    fn non_mac_layers_skip() {
        use bitfusion_core::postproc::PoolOp;
        use bitfusion_dnn::layer::Pool2d;
        let p = Layer::Pool2d(Pool2d {
            channels: 64,
            input_hw: (8, 8),
            window: (2, 2),
            stride: (2, 2),
            padding: (0, 0),
            op: PoolOp::Max,
        });
        assert!(layer_to_gemm(&p, 1, 8).is_none());
    }
}
