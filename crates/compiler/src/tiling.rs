//! Loop tiling and loop ordering: the buffer-constrained tile search.
//!
//! The compiler picks, per layer, tile sizes `(m_t, k_t, n_t)` and a
//! tile-loop order that (a) fit the on-chip scratchpads — with the input and
//! weight buffers halved for double buffering, since `ld-mem` is decoupled
//! from compute (§IV) — and (b) minimize off-chip traffic under the
//! [`cost`](crate::cost) model. This implements the paper's loop-tiling and
//! loop-ordering code optimizations (§IV-B), including the
//! input/output/weight-stationary choice.

use bitfusion_core::arch::ArchConfig;

use crate::cost::{traffic, Traffic};
use crate::error::CompileError;
use crate::gemm::GemmLayer;

/// A GEMM tile dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileDim {
    /// Output rows.
    M,
    /// Reduction.
    K,
    /// Output columns.
    N,
}

/// Order of the three tile loops, outermost first. The name lists dimensions
/// outer→inner: `Nmk` nests `n { m { k } }` — the output-stationary order of
/// Figure 12(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopOrder {
    /// n, m, k — output-stationary (k innermost).
    Nmk,
    /// n, k, m.
    Nkm,
    /// m, n, k — output-stationary, weights held across n.
    Mnk,
    /// m, k, n — weight-stationary (n innermost).
    Mkn,
    /// k, m, n — input/psum streaming.
    Kmn,
    /// k, n, m.
    Knm,
}

impl LoopOrder {
    /// All six orders.
    pub const ALL: [LoopOrder; 6] = [
        LoopOrder::Nmk,
        LoopOrder::Nkm,
        LoopOrder::Mnk,
        LoopOrder::Mkn,
        LoopOrder::Kmn,
        LoopOrder::Knm,
    ];

    /// The dimension sequence, outermost first.
    pub const fn sequence(self) -> [TileDim; 3] {
        match self {
            LoopOrder::Nmk => [TileDim::N, TileDim::M, TileDim::K],
            LoopOrder::Nkm => [TileDim::N, TileDim::K, TileDim::M],
            LoopOrder::Mnk => [TileDim::M, TileDim::N, TileDim::K],
            LoopOrder::Mkn => [TileDim::M, TileDim::K, TileDim::N],
            LoopOrder::Kmn => [TileDim::K, TileDim::M, TileDim::N],
            LoopOrder::Knm => [TileDim::K, TileDim::N, TileDim::M],
        }
    }

    /// The stationary tensor implied by the order (which operand's reuse the
    /// innermost loop maximizes), for reporting.
    pub const fn stationary(self) -> &'static str {
        match self {
            LoopOrder::Nmk | LoopOrder::Mnk => "output",
            LoopOrder::Mkn => "weight",
            LoopOrder::Knm | LoopOrder::Nkm | LoopOrder::Kmn => "input",
        }
    }
}

/// Tile sizes along (m, k, n).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileSizes {
    /// Output-row tile.
    pub m: u64,
    /// Reduction tile.
    pub k: u64,
    /// Output-column tile.
    pub n: u64,
}

/// A chosen tiling: sizes, order, and its modelled traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TilePlan {
    /// Tile sizes.
    pub tiles: TileSizes,
    /// Tile-loop order.
    pub order: LoopOrder,
    /// Modelled off-chip traffic.
    pub traffic: Traffic,
}

/// Bits a fused residual stream adds to each IBUF-carrying tile iteration.
///
/// Residual-add groups stream a second input tensor through IBUF alongside
/// the regular input tile: `residual_bits` total bits, loaded at the layer's
/// input precision, spread evenly over the `tk × tn` input-tile iterations
/// (the same split the lowering emits). Returns 0 when the group carries no
/// residual.
pub fn residual_tile_bits(layer: &GemmLayer, tiles: TileSizes, residual_bits: u64) -> u64 {
    if residual_bits == 0 {
        return 0;
    }
    let i_bits = layer.pair.input.bits() as u64;
    let tk = layer.shape.k.div_ceil(tiles.k);
    let tn = layer.shape.n.div_ceil(tiles.n);
    residual_bits.div_ceil(i_bits).div_ceil(tk * tn).max(1) * i_bits
}

/// Whether a tiling fits the scratchpads (inputs and weights double-buffered,
/// outputs held as 32-bit partials). `residual_bits` is the total size of any
/// fused residual stream, which rides the input buffer and must share its
/// double-buffered halves with the regular input tiles.
pub fn fits(layer: &GemmLayer, tiles: TileSizes, arch: &ArchConfig, residual_bits: u64) -> bool {
    let w_bits = tiles.m * tiles.k * layer.pair.weight.bits() as u64;
    // A depthwise tile carries one input panel *per output row* (each
    // channel reduces over its own window), so the resident input grows
    // with the m tile instead of being shared across it.
    let i_elems = if layer.depthwise {
        tiles.m * tiles.k * tiles.n
    } else {
        tiles.k * tiles.n
    };
    let i_bits =
        i_elems * layer.pair.input.bits() as u64 + residual_tile_bits(layer, tiles, residual_bits);
    let o_bits = tiles.m * tiles.n * 32;
    w_bits <= (arch.wbuf_bytes as u64) * 8 / 2
        && i_bits <= (arch.ibuf_bytes as u64) * 8 / 2
        && o_bits <= (arch.obuf_bytes as u64) * 8
}

fn candidates(dim: u64, quantum: u64) -> Vec<u64> {
    let mut c = Vec::new();
    let mut v = quantum.max(1);
    while v < dim {
        c.push(v);
        v *= 2;
    }
    c.push(dim);
    c
}

/// Searches tile sizes and loop orders for the minimum-traffic plan that
/// fits the buffers.
///
/// Tile candidates are powers of two scaled from the array's natural quanta
/// (columns for `m`, reduction lanes for `k`) plus the full dimensions.
/// `residual_bits` reserves IBUF headroom for a fused residual stream (the
/// second input tensor of residual-add groups) so the chosen tiles leave
/// room for both streams in the double-buffered input scratchpad; pass 0
/// for residual-free groups.
///
/// # Errors
///
/// Returns [`CompileError::NoFeasibleTiling`] when even the smallest tile
/// does not fit (pathologically small buffer configuration).
pub fn choose_tiling(
    layer: &GemmLayer,
    arch: &ArchConfig,
    residual_bits: u64,
) -> Result<TilePlan, CompileError> {
    let lanes = (arch.rows as u64) * layer.pair.fused_pes_per_unit() as u64;
    let cols = arch.cols as u64;
    let s = layer.shape;
    let mut best: Option<TilePlan> = None;
    for &m_t in &candidates(s.m, cols) {
        for &k_t in &candidates(s.k, lanes) {
            for &n_t in &candidates(s.n, 1) {
                let tiles = TileSizes { m: m_t, k: k_t, n: n_t };
                if !fits(layer, tiles, arch, residual_bits) {
                    continue;
                }
                for order in LoopOrder::ALL {
                    let t = traffic(layer, tiles, order);
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            t.total_bits() < b.traffic.total_bits()
                                || (t.total_bits() == b.traffic.total_bits()
                                    && (tiles.m * tiles.k * tiles.n)
                                        > (b.tiles.m * b.tiles.k * b.tiles.n))
                        }
                    };
                    if better {
                        best = Some(TilePlan {
                            tiles,
                            order,
                            traffic: t,
                        });
                    }
                }
            }
        }
    }
    best.ok_or(CompileError::NoFeasibleTiling {
        m: s.m,
        k: s.k,
        n: s.n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::GemmShape;
    use bitfusion_core::bitwidth::PairPrecision;

    fn layer(m: u64, k: u64, n: u64, i_bits: u32, w_bits: u32) -> GemmLayer {
        GemmLayer {
            shape: GemmShape { m, k, n },
            pair: PairPrecision::from_bits(i_bits, w_bits).unwrap(),
            unique_input_elems: k * n,
            output_elems: m * n,
            weight_elems: m * k,
            output_bits: i_bits,
            depthwise: false,
        }
    }

    #[test]
    fn depthwise_tiles_budget_inputs_per_row() {
        let arch = ArchConfig::isca_45nm();
        // A MobileNet-scale depthwise layer: m = 128 channels, k = 9-tap
        // window, n = 3136 output pixels.
        let dw = GemmLayer {
            unique_input_elems: 128 * 58 * 58,
            depthwise: true,
            ..layer(128, 9, 3136, 8, 8)
        };
        let p = choose_tiling(&dw, &arch, 0).unwrap();
        assert!(fits(&dw, p.tiles, &arch, 0));
        // The per-row input budget binds: a modest all-channels tile needs
        // m*k*n*8 = 288 Kb of resident inputs, over the 128 Kb IBUF half,
        // while the dense budget for the same tile is the shared k*n panel
        // (18 Kb) — well within it.
        let t = TileSizes { m: 128, k: 9, n: 32 };
        assert!(!fits(&dw, t, &arch, 0));
        assert!(fits(&layer(128, 9, 3136, 8, 8), t, &arch, 0));
    }

    #[test]
    fn small_gemm_untiled() {
        let arch = ArchConfig::isca_45nm();
        let l = layer(64, 512, 16, 8, 8);
        let p = choose_tiling(&l, &arch, 0).unwrap();
        // Fits entirely: single tile, minimal traffic.
        assert_eq!(p.tiles, TileSizes { m: 64, k: 512, n: 16 });
        assert_eq!(
            p.traffic.total_bits(),
            64 * 512 * 8 + 512 * 16 * 8 + 64 * 16 * 8
        );
    }

    #[test]
    fn oversized_weights_get_tiled() {
        let arch = ArchConfig::isca_45nm();
        // fc6-like: 8192 x 18432 1-bit weights = 18.9 MB >> 32 KB budget.
        let l = layer(8192, 18432, 16, 4, 1);
        let p = choose_tiling(&l, &arch, 0).unwrap();
        assert!(fits(&l, p.tiles, &arch, 0));
        assert!(p.tiles.m < 8192 || p.tiles.k < 18432);
        // Weights dominate: the chosen plan must not reload them.
        assert_eq!(p.traffic.weight_bits, 8192 * 18432);
    }

    #[test]
    fn spilling_avoided_when_possible() {
        let arch = ArchConfig::isca_45nm();
        let l = layer(512, 4608, 2916, 1, 1);
        let p = choose_tiling(&l, &arch, 0).unwrap();
        assert_eq!(p.traffic.spill_bits, 0, "plan {p:?}");
    }

    #[test]
    fn infeasible_when_buffers_absurdly_small() {
        let mut arch = ArchConfig::isca_45nm();
        arch.obuf_bytes = 1; // cannot hold even one 32-bit partial
        let l = layer(512, 512, 16, 8, 8);
        assert!(matches!(
            choose_tiling(&l, &arch, 0),
            Err(CompileError::NoFeasibleTiling { .. })
        ));
    }

    #[test]
    fn residual_headroom_reserved_in_ibuf_budget() {
        // A downsample-style residual group: the residual stream is as large
        // as the whole output and must share IBUF with the input tiles. The
        // residual-aware search must keep both streams within the
        // double-buffered capacity; the residual-blind search may not.
        let arch = ArchConfig::isca_45nm();
        let l = layer(128, 4608, 3136, 8, 8);
        let residual_bits = l.output_elems * 8;
        let p = choose_tiling(&l, &arch, residual_bits).unwrap();
        let i_budget = (arch.ibuf_bytes as u64) * 8 / 2;
        let i_tile = p.tiles.k * p.tiles.n * 8;
        let r_tile = residual_tile_bits(&l, p.tiles, residual_bits);
        assert!(r_tile > 0);
        assert!(
            i_tile + r_tile <= i_budget,
            "input {i_tile} + residual {r_tile} bits exceed the {i_budget}-bit half-buffer"
        );
        assert!(fits(&l, p.tiles, &arch, residual_bits));
    }

    #[test]
    fn residual_free_layers_unchanged_by_headroom_argument() {
        let arch = ArchConfig::isca_45nm();
        let l = layer(512, 4608, 2916, 1, 1);
        assert_eq!(
            choose_tiling(&l, &arch, 0).unwrap(),
            choose_tiling(&l, &arch, 0).unwrap()
        );
        assert_eq!(residual_tile_bits(&l, TileSizes { m: 16, k: 32, n: 1 }, 0), 0);
    }

    #[test]
    fn orders_have_sequences_and_names() {
        for o in LoopOrder::ALL {
            assert_eq!(o.sequence().len(), 3);
            assert!(!o.stationary().is_empty());
        }
        assert_eq!(LoopOrder::Nmk.stationary(), "output");
        assert_eq!(LoopOrder::Mkn.stationary(), "weight");
    }
}
