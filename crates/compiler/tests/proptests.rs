//! Property tests for the compiler: any reasonable GEMM shape tiles within
//! the buffers, traffic never beats the cold-miss lower bound, emitted
//! blocks are valid/encodable, and the walker agrees with the mapping.

use bitfusion_compiler::gemm::{GemmLayer, GemmShape};
use bitfusion_compiler::lower::{lower_gemm, mapping_for, LowerInput};
use bitfusion_compiler::tiling::{choose_tiling, fits};
use bitfusion_core::arch::ArchConfig;
use bitfusion_core::bitwidth::PairPrecision;
use bitfusion_isa::encode::{decode_block, encode_block};
use bitfusion_isa::walker::summarize;
use bitfusion_isa::ComputeFn;
use proptest::prelude::*;

fn arb_layer() -> impl Strategy<Value = GemmLayer> {
    (
        1u64..4096,
        1u64..20_000,
        1u64..4096,
        prop::sample::select(vec![1u32, 2, 4, 8, 16]),
        prop::sample::select(vec![1u32, 2, 4, 8, 16]),
    )
        .prop_map(|(m, k, n, i_bits, w_bits)| {
            let pair = PairPrecision::from_bits(i_bits, w_bits).expect("supported");
            GemmLayer {
                shape: GemmShape { m, k, n },
                pair,
                unique_input_elems: k * n,
                output_elems: m * n,
                weight_elems: m * k,
                output_bits: i_bits,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chosen_tiling_always_fits(layer in arb_layer()) {
        let arch = ArchConfig::isca_45nm();
        let plan = choose_tiling(&layer, &arch).expect("feasible for sane buffers");
        prop_assert!(fits(&layer, plan.tiles, &arch));
        // Tiles never exceed the dimensions.
        prop_assert!(plan.tiles.m <= layer.shape.m.max(plan.tiles.m.min(layer.shape.m)));
        prop_assert!(plan.tiles.m >= 1 && plan.tiles.k >= 1 && plan.tiles.n >= 1);
    }

    #[test]
    fn traffic_at_least_cold_misses(layer in arb_layer()) {
        // Every plan must move at least each tensor once (cold misses).
        let arch = ArchConfig::isca_45nm();
        let plan = choose_tiling(&layer, &arch).expect("feasible");
        let cold = layer.weight_elems * layer.pair.weight.bits() as u64
            + layer.unique_input_elems * layer.pair.input.bits() as u64
            + layer.output_elems * layer.output_bits as u64;
        prop_assert!(
            plan.traffic.total_bits() >= cold,
            "traffic {} below cold-miss bound {cold}",
            plan.traffic.total_bits()
        );
    }

    #[test]
    fn lowered_block_valid_encodable_and_consistent(layer in arb_layer()) {
        let arch = ArchConfig::isca_45nm();
        let plan = choose_tiling(&layer, &arch).expect("feasible");
        let input = LowerInput {
            name: "prop",
            layer: &layer,
            plan: &plan,
            postops: &[],
            next: 0,
        };
        let block = lower_gemm(&input, &arch).expect("emits");
        // Valid block structure is enforced by construction; round-trip it.
        let words = encode_block(&block).expect("encodes");
        let decoded = decode_block("prop", &words).expect("decodes");
        let decoded_canon = decoded.canonicalize();
        let block_canon = block.canonicalize();
        prop_assert_eq!(decoded_canon.instructions(), block_canon.instructions());
        // Walker vs mapping.
        let mapping = mapping_for(&input, &arch);
        let summary = summarize(&block);
        prop_assert_eq!(summary.compute_count(ComputeFn::Mac), mapping.compute_steps);
        // Compute coverage: steps x lanes x cols covers all MACs.
        prop_assert!(
            mapping.compute_steps * mapping.lanes * mapping.cols >= mapping.macs
        );
        // Block size stays in a sane static range.
        prop_assert!(block.len() >= 10 && block.len() <= 86, "{} instrs", block.len());
    }

    #[test]
    fn batching_never_increases_weight_traffic_per_input(
        m in 16u64..2048,
        k in 16u64..8192,
    ) {
        let arch = ArchConfig::isca_45nm();
        let mk = |n: u64| {
            let pair = PairPrecision::from_bits(4, 4).expect("supported");
            GemmLayer {
                shape: GemmShape { m, k, n },
                pair,
                unique_input_elems: k * n,
                output_elems: m * n,
                weight_elems: m * k,
                output_bits: 4,
            }
        };
        let t1 = choose_tiling(&mk(1), &arch).expect("feasible").traffic;
        let t16 = choose_tiling(&mk(16), &arch).expect("feasible").traffic;
        // Per-input weight traffic at batch 16 never exceeds batch 1's.
        prop_assert!(t16.weight_bits as f64 / 16.0 <= t1.weight_bits as f64 * 1.01);
    }
}
