//! Property tests for the compiler: any reasonable GEMM shape tiles within
//! the buffers, traffic never beats the cold-miss lower bound, emitted
//! blocks are valid/encodable, and the walker agrees with the mapping.

use bitfusion_compiler::cache::{layer_fingerprint, LayerKey};
use bitfusion_compiler::fuse::PostOp;
use bitfusion_compiler::gemm::{GemmLayer, GemmShape};
use bitfusion_compiler::lower::{lower_gemm, mapping_for, LowerInput};
use bitfusion_compiler::plan::PlannedLayer;
use bitfusion_compiler::tiling::{choose_tiling, fits};
use bitfusion_core::arch::ArchConfig;
use bitfusion_core::bitwidth::PairPrecision;
use bitfusion_isa::encode::{decode_block, encode_block};
use bitfusion_isa::walker::{segments, summarize};
use bitfusion_isa::{ComputeFn, Scratchpad};
use proptest::prelude::*;

fn arb_layer() -> impl Strategy<Value = GemmLayer> {
    (
        1u64..4096,
        1u64..20_000,
        1u64..4096,
        prop::sample::select(vec![1u32, 2, 4, 8, 16]),
        prop::sample::select(vec![1u32, 2, 4, 8, 16]),
    )
        .prop_map(|(m, k, n, i_bits, w_bits)| {
            let pair = PairPrecision::from_bits(i_bits, w_bits).expect("supported");
            GemmLayer {
                shape: GemmShape { m, k, n },
                pair,
                unique_input_elems: k * n,
                output_elems: m * n,
                weight_elems: m * k,
                output_bits: i_bits,
                depthwise: false,
            }
        })
}

/// Plans one GEMM the way [`bitfusion_compiler::plan::compile`] does for a
/// fused group, so layer-cache properties run against real planned layers.
fn plan_one(layer: &GemmLayer, postops: &[PostOp], arch: &ArchConfig) -> PlannedLayer {
    let residual_bits: u64 = postops.iter().map(PostOp::extra_input_bits).sum();
    let plan = choose_tiling(layer, arch, residual_bits).expect("feasible");
    let input = LowerInput {
        name: "prop-key",
        layer,
        plan: &plan,
        postops,
        next: 0,
    };
    PlannedLayer {
        name: "prop-key".into(),
        block: lower_gemm(&input, arch).expect("emits"),
        mapping: mapping_for(&input, arch),
        gemm: *layer,
        tile_plan: plan,
        postops: postops.to_vec(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chosen_tiling_always_fits(layer in arb_layer()) {
        let arch = ArchConfig::isca_45nm();
        let plan = choose_tiling(&layer, &arch, 0).expect("feasible for sane buffers");
        prop_assert!(fits(&layer, plan.tiles, &arch, 0));
        // Tiles never exceed the dimensions.
        prop_assert!(plan.tiles.m <= layer.shape.m.max(plan.tiles.m.min(layer.shape.m)));
        prop_assert!(plan.tiles.m >= 1 && plan.tiles.k >= 1 && plan.tiles.n >= 1);
    }

    #[test]
    fn residual_plans_fit_scratchpads_including_the_second_stream(layer in arb_layer()) {
        // Residual-add groups stream a second input tensor (the size of the
        // output) through IBUF. The residual-aware tile search must leave
        // headroom for it: replay the emitted block's DMA segments and
        // check the double-buffered occupancy peak — the largest sum of two
        // consecutive IBUF transfers (a tile stays resident until the next
        // transfer into the same scratchpad replaces it) — never exceeds
        // the physical capacity.
        let arch = ArchConfig::isca_45nm();
        let residual = PostOp::Residual {
            elems: layer.output_elems,
            bits: layer.pair.input.bits(),
        };
        let residual_bits = residual.extra_input_bits();
        let plan = choose_tiling(&layer, &arch, residual_bits).expect("feasible");
        prop_assert!(fits(&layer, plan.tiles, &arch, residual_bits));
        let input = LowerInput {
            name: "prop-residual",
            layer: &layer,
            plan: &plan,
            postops: &[residual],
            next: 0,
        };
        let block = lower_gemm(&input, &arch).expect("emits");
        let mut prev = 0u64;
        let mut peak = 0u64;
        for seg in segments(&block) {
            let bits = seg.buffer(Scratchpad::Ibuf).dma_load_bits;
            if bits > 0 {
                peak = peak.max(prev + bits);
                prev = bits;
            }
        }
        prop_assert!(
            peak <= 8 * arch.ibuf_bytes as u64,
            "IBUF occupancy peak {peak} bits exceeds capacity with a residual stream"
        );
    }

    #[test]
    fn traffic_at_least_cold_misses(layer in arb_layer()) {
        // Every plan must move at least each tensor once (cold misses).
        let arch = ArchConfig::isca_45nm();
        let plan = choose_tiling(&layer, &arch, 0).expect("feasible");
        let cold = layer.weight_elems * layer.pair.weight.bits() as u64
            + layer.unique_input_elems * layer.pair.input.bits() as u64
            + layer.output_elems * layer.output_bits as u64;
        prop_assert!(
            plan.traffic.total_bits() >= cold,
            "traffic {} below cold-miss bound {cold}",
            plan.traffic.total_bits()
        );
    }

    #[test]
    fn lowered_block_valid_encodable_and_consistent(layer in arb_layer()) {
        let arch = ArchConfig::isca_45nm();
        let plan = choose_tiling(&layer, &arch, 0).expect("feasible");
        let input = LowerInput {
            name: "prop",
            layer: &layer,
            plan: &plan,
            postops: &[],
            next: 0,
        };
        let block = lower_gemm(&input, &arch).expect("emits");
        // Valid block structure is enforced by construction; round-trip it.
        let words = encode_block(&block).expect("encodes");
        let decoded = decode_block("prop", &words).expect("decodes");
        let decoded_canon = decoded.canonicalize();
        let block_canon = block.canonicalize();
        prop_assert_eq!(decoded_canon.instructions(), block_canon.instructions());
        // Walker vs mapping.
        let mapping = mapping_for(&input, &arch);
        let summary = summarize(&block);
        prop_assert_eq!(summary.compute_count(ComputeFn::Mac), mapping.compute_steps);
        // Compute coverage: steps x lanes x cols covers all MACs.
        prop_assert!(
            mapping.compute_steps * mapping.lanes * mapping.cols >= mapping.macs
        );
        // Block size stays in a sane static range.
        prop_assert!(block.len() >= 10 && block.len() <= 86, "{} instrs", block.len());
    }

    #[test]
    fn tiles_cover_the_gemm_iteration_space_exactly(layer in arb_layer()) {
        // The tile grid must partition [0,m)×[0,k)×[0,n): edge tiles clamp to
        // the dimension, interior tiles are full-size, nothing overlaps and
        // nothing is missed. Checked per dimension (the grid is a cross
        // product) and cross-checked against the mapping's tile counts.
        let arch = ArchConfig::isca_45nm();
        let plan = choose_tiling(&layer, &arch, 0).expect("feasible");
        let t = plan.tiles;
        let dims = [
            (layer.shape.m, t.m),
            (layer.shape.k, t.k),
            (layer.shape.n, t.n),
        ];
        for (dim, tile) in dims {
            prop_assert!(tile >= 1, "degenerate tile");
            prop_assert!(tile <= dim, "tile {tile} exceeds dimension {dim}");
            let mut covered = 0u64;
            let mut tiles_seen = 0u64;
            let mut start = 0u64;
            while start < dim {
                let extent = tile.min(dim - start);
                // Tiles are contiguous ([start, start+extent)): no overlap by
                // construction, so coverage == sum of extents.
                covered += extent;
                tiles_seen += 1;
                start += extent;
            }
            prop_assert_eq!(covered, dim, "dimension not exactly covered");
            prop_assert_eq!(tiles_seen, dim.div_ceil(tile), "tile-count mismatch");
        }
        // The emitted mapping must schedule at least one compute step per
        // lane-covered slice of that space, and padding never exceeds one
        // tile quantum per dimension.
        let input = LowerInput {
            name: "prop",
            layer: &layer,
            plan: &plan,
            postops: &[],
            next: 0,
        };
        let mapping = mapping_for(&input, &arch);
        prop_assert_eq!(mapping.macs, layer.shape.m * layer.shape.k * layer.shape.n);
        prop_assert!(mapping.compute_steps * mapping.lanes * mapping.cols >= mapping.macs);
    }

    #[test]
    fn traffic_monotone_under_growing_buffers(layer in arb_layer()) {
        // Cost-model monotonicity: enlarging every scratchpad only grows the
        // feasible tiling set, so the chosen plan's modelled traffic can
        // never increase.
        let base = ArchConfig::isca_45nm();
        let mut prev = u64::MAX;
        for scale in [1usize, 2, 4, 8] {
            let arch = ArchConfig {
                ibuf_bytes: base.ibuf_bytes * scale,
                wbuf_bytes: base.wbuf_bytes * scale,
                obuf_bytes: base.obuf_bytes * scale,
                ..base
            };
            let plan = choose_tiling(&layer, &arch, 0).expect("feasible");
            prop_assert!(fits(&layer, plan.tiles, &arch, 0));
            prop_assert!(
                plan.traffic.total_bits() <= prev,
                "traffic rose from {prev} to {} at {scale}x buffers",
                plan.traffic.total_bits()
            );
            prev = plan.traffic.total_bits();
        }
    }

    #[test]
    fn quantization_and_residuals_never_share_a_layer_cache_key(
        (m, k, n) in (1u64..2048, 1u64..10_000, 1u64..2048),
        a in prop::sample::select(vec![(1u32, 1u32), (2, 2), (4, 4), (8, 8), (16, 16), (8, 4), (4, 2), (16, 8)]),
        b in prop::sample::select(vec![(1u32, 1u32), (2, 2), (4, 4), (8, 8), (16, 16), (8, 4), (4, 2), (16, 8)]),
    ) {
        // The layer tier memoizes simulation results by structural
        // fingerprint. Two layers with identical GEMM shapes but different
        // `PairPrecision` run at different throughputs (Bit Fusion's whole
        // premise), and a fused residual stream adds DRAM traffic — neither
        // may ever be served from the other's cache entry.
        // (The vendored proptest shim has no `prop_assume`; skip the
        // degenerate draw instead of discarding it.)
        if a == b {
            return Ok(());
        }
        let arch = ArchConfig::isca_45nm();
        let mk = |(i, w): (u32, u32)| {
            let pair = PairPrecision::from_bits(i, w).expect("supported");
            GemmLayer {
                shape: GemmShape { m, k, n },
                pair,
                unique_input_elems: k * n,
                output_elems: m * n,
                weight_elems: m * k,
                output_bits: i,
                depthwise: false,
            }
        };
        let ga = mk(a);
        let fp_a = layer_fingerprint(&plan_one(&ga, &[], &arch));
        let fp_b = layer_fingerprint(&plan_one(&mk(b), &[], &arch));
        prop_assert_ne!(fp_a, fp_b, "precisions {:?} vs {:?} collided", a, b);
        prop_assert_ne!(
            LayerKey::of(fp_a, &arch, 16, 0),
            LayerKey::of(fp_b, &arch, 16, 0)
        );
        // A fused residual input splits the key even at identical precision.
        let residual = PostOp::Residual {
            elems: ga.output_elems,
            bits: ga.pair.input.bits(),
        };
        let fp_res = layer_fingerprint(&plan_one(&ga, &[residual], &arch));
        prop_assert_ne!(fp_a, fp_res, "residual stream must split the key");
        // And the fingerprint is stable: replanning the same layer twice
        // lands on the same entry.
        prop_assert_eq!(fp_a, layer_fingerprint(&plan_one(&ga, &[], &arch)));
    }

    #[test]
    fn batching_never_increases_weight_traffic_per_input(
        m in 16u64..2048,
        k in 16u64..8192,
    ) {
        let arch = ArchConfig::isca_45nm();
        let mk = |n: u64| {
            let pair = PairPrecision::from_bits(4, 4).expect("supported");
            GemmLayer {
                shape: GemmShape { m, k, n },
                pair,
                unique_input_elems: k * n,
                output_elems: m * n,
                weight_elems: m * k,
                output_bits: 4,
                depthwise: false,
            }
        };
        let t1 = choose_tiling(&mk(1), &arch, 0).expect("feasible").traffic;
        let t16 = choose_tiling(&mk(16), &arch, 0).expect("feasible").traffic;
        // Per-input weight traffic at batch 16 never exceeds batch 1's.
        prop_assert!(t16.weight_bits as f64 / 16.0 <= t1.weight_bits as f64 * 1.01);
    }
}
