//! One-screen reproduction summary: every headline geomean of the paper's
//! evaluation next to this repository's measurements.
//!
//! Run with: `cargo run -p bitfusion-bench --bin summary --release`
//! (The per-figure detail lives in the bench targets; see EXPERIMENTS.md.)

use bitfusion::baselines::{EyerissSim, GpuMode, GpuModel, StripesSim};
use bitfusion::core::arch::ArchConfig;
use bitfusion::core::util::geomean;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::sim::BitFusionSim;

fn main() {
    let bf = BitFusionSim::new(ArchConfig::isca_45nm());
    let bf_stripes = BitFusionSim::new(ArchConfig::stripes_matched());
    let ey = EyerissSim::default();
    let st = StripesSim::default();
    let tx2 = GpuModel::tegra_x2();
    let txp = GpuModel::titan_xp();
    let bf16 = BitFusionSim::new(ArchConfig::gpu_16nm());
    let mut sp_ey = vec![];
    let mut en_ey = vec![];
    let mut sp_st = vec![];
    let mut en_st = vec![];
    let mut sp_txp = vec![];
    let mut sp_txp8 = vec![];
    let mut sp_bf16 = vec![];
    println!(
        "{:<10} {:>7} {:>7} | {:>7} {:>7} | {:>6} {:>6} {:>6}",
        "bench", "vEy", "vEyE", "vSt", "vStE", "TXp", "TXp8", "BF16"
    );
    for b in Benchmark::ALL {
        let r = bf.run(&b.model(), 16).expect("zoo model compiles");
        let rs = bf_stripes.run(&b.model(), 16).expect("zoo model compiles");
        let e = ey.run(&b.reference_model(), 16);
        let s = st.run(&b.model(), 16);
        let perf_ey = e.runtime_ms / r.runtime_ms();
        let energy_ey = e.energy.total_pj() / r.total_energy().total_pj();
        let perf_st = s.runtime_ms / rs.runtime_ms();
        let energy_st = s.energy.total_pj() / rs.total_energy().total_pj();
        let g_tx2 = tx2.run(&b.reference_model(), 16, GpuMode::Fp32);
        let g_txp = txp.run(&b.reference_model(), 16, GpuMode::Fp32);
        let g_txp8 = txp.run(&b.reference_model(), 16, GpuMode::Int8);
        let r16 = bf16.run(&b.model(), 16).expect("zoo model compiles");
        let v_txp = g_tx2.runtime_ms / g_txp.runtime_ms;
        let v_txp8 = g_tx2.runtime_ms / g_txp8.runtime_ms;
        let v_bf16 = g_tx2.runtime_ms / r16.runtime_ms();
        sp_ey.push(perf_ey);
        en_ey.push(energy_ey);
        sp_st.push(perf_st);
        en_st.push(energy_st);
        sp_txp.push(v_txp);
        sp_txp8.push(v_txp8);
        sp_bf16.push(v_bf16);
        println!(
            "{:<10} {:>7.2} {:>7.2} | {:>7.2} {:>7.2} | {:>6.1} {:>6.1} {:>6.1}",
            b.name(),
            perf_ey,
            energy_ey,
            perf_st,
            energy_st,
            v_txp,
            v_txp8,
            v_bf16
        );
    }
    println!(
        "{:<10} {:>7.2} {:>7.2} | {:>7.2} {:>7.2} | {:>6.1} {:>6.1} {:>6.1}",
        "geomean",
        geomean(&sp_ey),
        geomean(&en_ey),
        geomean(&sp_st),
        geomean(&en_st),
        geomean(&sp_txp),
        geomean(&sp_txp8),
        geomean(&sp_bf16)
    );
    println!("paper:     vEy 3.90 vEyE 5.10 | vSt 2.61 vStE 3.97 | TXp 12 TXp8 19 BF16 16");
}
