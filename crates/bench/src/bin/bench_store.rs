//! The PR 10 bench emitter: the disk-artifact-store restart trajectory.
//! It measures the whole-zoo quant × arch DSE sweep twice per series —
//! once in a cold process against an empty `--cache-dir` (every point
//! pays compilation, evaluation, and write-behind), once in a simulated
//! restarted process (fresh in-memory caches, same directory) — and
//! writes the committed trajectory file `BENCH_pr10.json`.
//!
//! Two series:
//!
//! * `sweep` — the plan and layer tiers only: the restarted sweep loads
//!   compiled plans and layer results from disk instead of recomputing.
//! * `resume` — the `dse --resume` path on top: completed design points
//!   checkpoint to disk, and the restarted sweep restores each point
//!   wholesale. This is the headline restart number.
//!
//! Both series assert the byte-determinism contract: the restarted run's
//! evaluated points, infeasible list, and Pareto frontier are exactly the
//! cold run's (`Debug` equality, which is injective on `f64`), so the
//! serving tier is unobservable in the results.
//!
//! Three modes:
//!
//! * `cargo run -p bitfusion-bench --bin bench_store` — full measurement;
//!   writes `BENCH_pr10.json` (override with `--out <path>`), asserts the
//!   resume-restart speedup is ≥3× the cold run.
//! * `-- --test` — shrunken grid for the CI smoke run; the structural and
//!   byte-identity assertions still run, the wall-clock floor is skipped.
//! * `-- --check <path>` — no measurement: parses an existing trajectory
//!   file and fails unless it is well-formed, corruption-free, fully
//!   restored, and (for full-mode files) the resume restart cleared the
//!   3× floor. This is the CI gate on the committed `BENCH_pr10.json`.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use bitfusion::compiler::{ArtifactCache, DiskArtifactStore};
use bitfusion::core::arch::ArchConfig;
use bitfusion::core::grid::ArchGrid;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::dnn::QuantSpec;
use bitfusion::service::json::{parse, Json};
use bitfusion::sim::pool::default_workers;
use bitfusion::sim::{explore_checkpointed, DseResult, DseSpec, EventBackend, SimOptions};
use bitfusion::sim::LayerPerfCache;

/// The whole-zoo quant × arch sweep (`--test` shrinks it for CI).
fn sweep_spec(test_mode: bool) -> DseSpec {
    let grid = if test_mode {
        ArchGrid {
            rows: vec![16, 32],
            dram_bits_per_cycle: vec![64, 128],
            ..ArchGrid::from_base(ArchConfig::isca_45nm())
        }
    } else {
        ArchGrid {
            rows: vec![16, 32],
            cols: vec![8, 16],
            dram_bits_per_cycle: vec![64, 128, 256],
            ..ArchGrid::from_base(ArchConfig::isca_45nm())
        }
    };
    let models = if test_mode {
        vec![Benchmark::Lstm, Benchmark::Rnn]
    } else {
        Benchmark::ALL.to_vec()
    };
    DseSpec {
        grid,
        models: models.iter().map(|b| b.model()).collect(),
        quant_specs: vec![
            QuantSpec::paper(),
            QuantSpec::uniform(8).expect("uniform8 is a supported spec"),
        ],
        batches: vec![16],
        options: SimOptions::default(),
    }
}

/// One cold-vs-restarted measurement of one series.
struct RestartSeries {
    cold_seconds: f64,
    warm_seconds: f64,
    feasible: u64,
    plan_hits: u64,
    layer_hits: u64,
    point_hits: u64,
    writes: u64,
    corrupt: u64,
}

/// The deterministic content of a DSE result — everything except the
/// run-level cache counters, which legitimately depend on warmth.
fn result_bytes(r: &DseResult) -> String {
    format!("{:?}|{:?}|{:?}", r.points, r.infeasible, r.pareto_frontier())
}

/// Runs one series: a cold process on an empty directory, then a
/// restarted process (fresh memory tiers, same directory), asserting the
/// restarted results are byte-identical to the cold ones.
fn restart_series(
    label: &str,
    spec: &DseSpec,
    workers: usize,
    dir: &std::path::Path,
    checkpoint: bool,
) -> RestartSeries {
    let _ = std::fs::remove_dir_all(dir);

    // Cold process: empty store, everything computes, write-behind fills
    // the directory. The store's lock releases when the caches drop their
    // handles at the end of the scope.
    let (t_cold, r_cold, cold_writes) = {
        let store = Arc::new(DiskArtifactStore::open(dir).expect("open a fresh store"));
        let cache = ArtifactCache::default();
        let layer_cache = LayerPerfCache::default();
        cache.attach_store(store.clone());
        layer_cache.attach_store(store.clone());
        let start = Instant::now();
        let result = explore_checkpointed(
            spec,
            &EventBackend,
            workers,
            &cache,
            &layer_cache,
            checkpoint.then_some(store.as_ref()),
        );
        let t = start.elapsed().as_secs_f64();
        let writes = store.stats().writes;
        assert!(writes > 0, "{label}: write-behind must persist");
        (t, result, writes)
    };

    // Restarted process: fresh memory tiers, the populated directory.
    let store = Arc::new(DiskArtifactStore::open(dir).expect("reopen the store"));
    let cache = ArtifactCache::default();
    let layer_cache = LayerPerfCache::default();
    cache.attach_store(store.clone());
    layer_cache.attach_store(store.clone());
    let start = Instant::now();
    let r_warm = explore_checkpointed(
        spec,
        &EventBackend,
        workers,
        &cache,
        &layer_cache,
        checkpoint.then_some(store.as_ref()),
    );
    let t_warm = start.elapsed().as_secs_f64();

    assert_eq!(
        result_bytes(&r_cold),
        result_bytes(&r_warm),
        "{label}: the serving tier must never change results"
    );
    let stats = store.stats();
    assert_eq!(stats.corrupt, 0, "{label}: clean store reads");
    assert!(stats.plan_hits > 0, "{label}: plans must load from disk");
    if checkpoint {
        assert_eq!(
            stats.point_hits,
            r_cold.points.len() as u64,
            "{label}: every completed point must restore from its checkpoint"
        );
    } else {
        assert!(stats.layer_hits > 0, "{label}: layers must load from disk");
    }

    println!(
        "  {label:<7} cold: {:8.1} ms; restarted: {:8.1} ms ({:5.2}x); \
         {} plan hits, {} layer hits, {} point hits",
        t_cold * 1e3,
        t_warm * 1e3,
        t_cold / t_warm,
        stats.plan_hits,
        stats.layer_hits,
        stats.point_hits
    );
    RestartSeries {
        cold_seconds: t_cold,
        warm_seconds: t_warm,
        feasible: r_cold.points.len() as u64,
        plan_hits: stats.plan_hits,
        layer_hits: stats.layer_hits,
        point_hits: stats.point_hits,
        // The cold process's write-behind count — the restarted store
        // writes nothing, everything already exists.
        writes: cold_writes,
        corrupt: stats.corrupt,
    }
}

/// Serializes one series.
fn series_json(spec: &DseSpec, s: &RestartSeries) -> Json {
    Json::obj(vec![
        ("points", Json::uint(spec.len() as u64)),
        ("feasible", Json::uint(s.feasible)),
        ("cold_seconds", Json::float(s.cold_seconds)),
        ("warm_seconds", Json::float(s.warm_seconds)),
        (
            "warm_speedup",
            Json::float(s.cold_seconds / s.warm_seconds),
        ),
        ("plan_hits", Json::uint(s.plan_hits)),
        ("layer_hits", Json::uint(s.layer_hits)),
        ("point_hits", Json::uint(s.point_hits)),
        ("writes", Json::uint(s.writes)),
        ("corrupt", Json::uint(s.corrupt)),
    ])
}

/// Validates one series object inside a trajectory file; returns its
/// recorded speedup.
fn check_series(doc: &Json, name: &str) -> Result<f64, String> {
    let series = doc
        .get(name)
        .ok_or(format!("missing field `{name}`"))?;
    for field in ["points", "feasible", "plan_hits", "point_hits", "writes"] {
        series
            .get(field)
            .and_then(Json::as_u64)
            .ok_or(format!("{name}.{field} missing or not an integer"))?;
    }
    let corrupt = series
        .get("corrupt")
        .and_then(Json::as_u64)
        .ok_or(format!("{name}.corrupt missing or not an integer"))?;
    if corrupt != 0 {
        return Err(format!("{name}.corrupt must be 0, got {corrupt}"));
    }
    for field in ["cold_seconds", "warm_seconds", "warm_speedup"] {
        let v = series
            .get(field)
            .and_then(Json::as_f64)
            .ok_or(format!("{name}.{field} missing or not a number"))?;
        if v <= 0.0 {
            return Err(format!("{name}.{field} must be positive, got {v}"));
        }
    }
    Ok(series.get("warm_speedup").and_then(Json::as_f64).unwrap())
}

/// `--check` mode: validate a committed trajectory file.
fn check(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: unreadable: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: malformed JSON: {e}"))?;
    check_series(&doc, "sweep")?;
    let resume_speedup = check_series(&doc, "resume")?;
    let resume = doc.get("resume").expect("checked above");
    let feasible = resume.get("feasible").and_then(Json::as_u64).unwrap();
    let point_hits = resume.get("point_hits").and_then(Json::as_u64).unwrap();
    if point_hits != feasible {
        return Err(format!(
            "resume.point_hits {point_hits} != resume.feasible {feasible}: \
             the restarted sweep must restore every completed point"
        ));
    }
    // Test-mode files come from shrunken smoke runs whose wall clock is
    // noise; only full measurements gate the 3x floor.
    let full = doc.get("mode").and_then(Json::as_str) != Some("test");
    if full && resume_speedup < 3.0 {
        return Err(format!(
            "resume.warm_speedup {resume_speedup:.2} below the 3x floor a \
             populated --cache-dir must clear on restart"
        ));
    }
    println!(
        "{path}: OK (both series clean, every point restored, resume restart \
         {resume_speedup:.2}x)"
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let path = args.get(pos + 1).map_or("BENCH_pr10.json", String::as_str);
        return match check(path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bench_store --check failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let test_mode = args.iter().any(|a| a == "--test");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|p| args.get(p + 1))
        .map_or("BENCH_pr10.json", String::as_str);
    let cores = default_workers();
    let spec = sweep_spec(test_mode);
    let dir = std::env::temp_dir().join(format!("bitfusion-bench-store-{}", std::process::id()));

    println!(
        "disk-store restart bench: {} archs x {} networks x {} quants = {} points on {cores} core(s)",
        spec.grid.len(),
        spec.models.len(),
        spec.quant_specs.len(),
        spec.len()
    );

    let sweep = restart_series("sweep", &spec, cores, &dir, false);
    let resume = restart_series("resume", &spec, cores, &dir, true);
    let _ = std::fs::remove_dir_all(&dir);

    let doc = Json::obj(vec![
        ("bench", Json::Str("pr10_disk_artifact_store".to_string())),
        (
            "mode",
            Json::Str(if test_mode { "test" } else { "full" }.to_string()),
        ),
        ("cores", Json::uint(cores as u64)),
        ("sweep", series_json(&spec, &sweep)),
        ("resume", series_json(&spec, &resume)),
    ]);
    std::fs::write(out_path, doc.encode() + "\n").expect("trajectory file writable");
    println!("\nwrote {out_path}");

    if test_mode {
        println!("(wall-clock assertions require a full run; skipped)");
        return ExitCode::SUCCESS;
    }
    let speedup = resume.cold_seconds / resume.warm_seconds;
    assert!(
        speedup >= 3.0,
        "a restarted whole-zoo sweep on a populated --cache-dir must be >=3x \
         the cold run, got {speedup:.2}x"
    );
    println!("PASS: resume restart >=3x the cold sweep");
    ExitCode::SUCCESS
}
