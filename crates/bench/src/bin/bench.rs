//! The PR 7 bench emitter: the two-backend perf trajectory. It measures
//! the whole-zoo quant × arch DSE sweep cold and warm under **both**
//! simulation backends (analytic and event), microbenchmarks the event
//! backend's cache-miss path — compiled [`SegmentProgram`] replay vs the
//! naive reference tree walk it replaced — and writes the committed
//! trajectory file `BENCH_pr7.json`.
//!
//! Three modes:
//!
//! * `cargo run -p bitfusion-bench --bin bench` — full measurement; writes
//!   `BENCH_pr7.json` (override with `--out <path>`), asserts the ≥5×
//!   warm-sweep speedup on runners with ≥4 cores and the ≥2× compiled-walk
//!   speedup over the naive walk.
//! * `-- --test` — shrunken grid for the CI smoke run; all structural
//!   assertions (byte-determinism across warmth and across backends' walk
//!   strategies, ≥50% per-network layer hit rates) still run, only the
//!   wall-clock assertions are skipped.
//! * `-- --check <path>` — no measurement: parses an existing trajectory
//!   file and fails unless it is well-formed, both backend series are
//!   present, the recorded compiled-vs-naive event-walk speedup is ≥2×,
//!   and the ResNet-18 / VGG-7 layer-cache hit rates are ≥50%. This is the
//!   CI gate on the committed `BENCH_pr7.json`.
//!
//! [`SegmentProgram`]: bitfusion::isa::SegmentProgram

use std::process::ExitCode;
use std::time::Instant;

use bitfusion::compiler::{compile, ArtifactCache};
use bitfusion::core::arch::ArchConfig;
use bitfusion::core::grid::ArchGrid;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::dnn::QuantSpec;
use bitfusion::energy::FusionEnergy;
use bitfusion::service::json::{parse, Json};
use bitfusion::sim::layer_cache::run_cached;
use bitfusion::sim::pool::default_workers;
use bitfusion::sim::{
    evaluate_layer_naive, explore_with_caches, AnalyticBackend, DseResult, DseSpec, EventBackend,
    LayerPerfCache, SimBackend, SimOptions,
};

/// The whole-zoo quant × arch sweep (`--test` shrinks it for CI).
fn sweep_spec(test_mode: bool) -> DseSpec {
    let grid = if test_mode {
        ArchGrid {
            rows: vec![16, 32],
            dram_bits_per_cycle: vec![64, 128],
            ..ArchGrid::from_base(ArchConfig::isca_45nm())
        }
    } else {
        ArchGrid {
            rows: vec![16, 32],
            cols: vec![8, 16],
            dram_bits_per_cycle: vec![64, 128, 256],
            ..ArchGrid::from_base(ArchConfig::isca_45nm())
        }
    };
    let models = if test_mode {
        vec![Benchmark::Lstm, Benchmark::Rnn, Benchmark::ResNet18]
    } else {
        Benchmark::ALL.to_vec()
    };
    DseSpec {
        grid,
        models: models.iter().map(|b| b.model()).collect(),
        quant_specs: vec![
            QuantSpec::paper(),
            QuantSpec::uniform(8).expect("uniform8 is a supported spec"),
        ],
        batches: vec![16],
        options: SimOptions::default(),
    }
}

/// Runs the sweep against the given caches and returns (seconds, result).
fn timed_sweep<B: SimBackend + Sync>(
    spec: &DseSpec,
    backend: &B,
    workers: usize,
    cache: &ArtifactCache,
    layer_cache: &LayerPerfCache,
) -> (f64, DseResult) {
    let start = Instant::now();
    let result = explore_with_caches(spec, backend, workers, cache, layer_cache);
    (start.elapsed().as_secs_f64(), result)
}

/// The cold/warm numbers of one backend's sweep series.
struct SweepSeries {
    cold_seconds: f64,
    warm_seconds: f64,
    layer_evals: u64,
    layer_unique: u64,
    layer_cache_hits: u64,
    layer_cache_misses: u64,
    layer_cache_hit_rate: f64,
}

/// Runs one backend's cold+warm sweep with fresh caches and checks the
/// determinism contract (warmth changes wall-clock, never bytes).
fn backend_series<B: SimBackend + Sync>(
    label: &str,
    spec: &DseSpec,
    backend: &B,
    workers: usize,
) -> SweepSeries {
    let cache = ArtifactCache::default();
    let layer_cache = LayerPerfCache::default();
    let (t_cold, r_cold) = timed_sweep(spec, backend, workers, &cache, &layer_cache);
    let (t_warm, r_warm) = timed_sweep(spec, backend, workers, &cache, &layer_cache);

    let f_cold = r_cold.pareto_frontier();
    let f_warm = r_warm.pareto_frontier();
    assert_eq!(f_cold.len(), f_warm.len(), "{label}: frontier size diverged");
    for (a, b) in f_cold.iter().zip(&f_warm) {
        assert_eq!(a.arch, b.arch, "{label}: frontier membership diverged");
        assert_eq!(
            a.total_cycles, b.total_cycles,
            "{label}: frontier cycles diverged"
        );
    }
    assert_eq!(r_cold.layer_evals, r_warm.layer_evals);
    assert_eq!(r_cold.layer_unique, r_warm.layer_unique);

    let stats = layer_cache.stats();
    let rate = stats
        .hit_rate()
        .expect("the sweep touched the layer cache");
    let points = spec.len() as f64;
    println!(
        "  {label:<8} cold: {:8.1} ms ({:7.1} points/s); {} unique layer evals of {}",
        t_cold * 1e3,
        points / t_cold,
        r_cold.layer_unique,
        r_cold.layer_evals
    );
    println!(
        "  {label:<8} warm: {:8.1} ms ({:7.1} points/s); {:.2}x, layer cache {:.1}% hits",
        t_warm * 1e3,
        points / t_warm,
        t_cold / t_warm,
        rate * 100.0
    );
    SweepSeries {
        cold_seconds: t_cold,
        warm_seconds: t_warm,
        layer_evals: r_cold.layer_evals,
        layer_unique: r_cold.layer_unique,
        layer_cache_hits: stats.hits,
        layer_cache_misses: stats.misses,
        layer_cache_hit_rate: rate,
    }
}

/// Serializes one backend series.
fn series_json(spec: &DseSpec, s: &SweepSeries) -> Json {
    let points = spec.len() as f64;
    Json::obj(vec![
        ("points", Json::uint(spec.len() as u64)),
        ("cold_seconds", Json::float(s.cold_seconds)),
        ("warm_seconds", Json::float(s.warm_seconds)),
        ("cold_points_per_sec", Json::float(points / s.cold_seconds)),
        ("warm_points_per_sec", Json::float(points / s.warm_seconds)),
        ("warm_speedup", Json::float(s.cold_seconds / s.warm_seconds)),
        ("layer_evals", Json::uint(s.layer_evals)),
        ("layer_unique", Json::uint(s.layer_unique)),
        ("layer_cache_hits", Json::uint(s.layer_cache_hits)),
        ("layer_cache_misses", Json::uint(s.layer_cache_misses)),
        ("layer_cache_hit_rate", Json::float(s.layer_cache_hit_rate)),
    ])
}

/// The event-walk microbench: cold per-layer evaluation over the whole zoo
/// (every benchmark, batch 16), compiled segment programs vs the retained
/// naive reference walk. This is exactly the work a layer-cache miss pays,
/// so it is the number the tentpole optimization moves.
///
/// Returns (layers, compiled seconds, naive seconds, checksum-verified).
fn event_walk_bench(test_mode: bool) -> (u64, f64, f64) {
    let arch = ArchConfig::isca_45nm();
    let energy = FusionEnergy::isca_45nm();
    let opts = SimOptions::default();
    let models = if test_mode {
        vec![Benchmark::Lstm, Benchmark::Svhn]
    } else {
        Benchmark::ALL.to_vec()
    };
    let batch = if test_mode { 4 } else { 16 };
    let plans: Vec<_> = models
        .iter()
        .map(|b| compile(&b.model(), &arch, batch).expect("zoo models compile"))
        .collect();
    let layers: Vec<_> = plans.iter().flat_map(|p| p.layers.iter()).collect();
    let reps = if test_mode { 1 } else { 5 };

    // Bit-identical first: the fast path must be a pure optimization.
    for l in &layers {
        assert_eq!(
            EventBackend.evaluate_layer(l, &arch, &energy, &opts),
            evaluate_layer_naive(l, &arch, &energy, &opts),
            "{}: compiled replay diverged from the reference walk",
            l.name
        );
    }

    let mut cycles_compiled = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        for l in &layers {
            cycles_compiled += EventBackend.evaluate_layer(l, &arch, &energy, &opts).cycles;
        }
    }
    let t_compiled = start.elapsed().as_secs_f64();

    let mut cycles_naive = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        for l in &layers {
            cycles_naive += evaluate_layer_naive(l, &arch, &energy, &opts).cycles;
        }
    }
    let t_naive = start.elapsed().as_secs_f64();
    assert_eq!(cycles_compiled, cycles_naive, "walk strategies diverged");

    ((layers.len() * reps) as u64, t_compiled, t_naive)
}

/// One network's layer-cache effectiveness on the session `report` path: a
/// cold pass fills the cache, a warm pass (the steady state of a serving
/// session) reuses it. With `U` unique shapes among `L` layers, the
/// two-pass hit rate is `1 - U/2L ≥ 50%` — strictly above for networks
/// that repeat shapes (ResNet-18's basic blocks).
fn network_hit_rate(benchmark: Benchmark) -> (u64, u64, f64) {
    let arch = ArchConfig::isca_45nm();
    let model = benchmark.model();
    let opts = SimOptions::default();
    let cache = LayerPerfCache::default();
    let cold = run_cached(&AnalyticBackend, &model, &arch, 16, &opts, &cache)
        .expect("zoo models compile");
    let warm = run_cached(&AnalyticBackend, &model, &arch, 16, &opts, &cache)
        .expect("zoo models compile");
    assert_eq!(cold, warm, "{benchmark}: warmth must never change results");
    let stats = cache.stats();
    let rate = stats
        .hit_rate()
        .expect("both passes touched the layer cache");
    (stats.hits, stats.misses, rate)
}

/// Validates one backend series object inside a trajectory file.
fn check_series(doc: &Json, backend: &str) -> Result<(), String> {
    let sweep = doc
        .get("sweeps")
        .and_then(|s| s.get(backend))
        .ok_or(format!("missing field `sweeps.{backend}`"))?;
    for field in ["points", "layer_evals", "layer_unique"] {
        sweep
            .get(field)
            .and_then(Json::as_u64)
            .ok_or(format!("sweeps.{backend}.{field} missing or not an integer"))?;
    }
    for field in ["cold_points_per_sec", "warm_points_per_sec", "warm_speedup"] {
        let v = sweep
            .get(field)
            .and_then(Json::as_f64)
            .ok_or(format!("sweeps.{backend}.{field} missing or not a number"))?;
        if v <= 0.0 {
            return Err(format!(
                "sweeps.{backend}.{field} must be positive, got {v}"
            ));
        }
    }
    Ok(())
}

/// `--check` mode: validate a committed trajectory file.
fn check(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: unreadable: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: malformed JSON: {e}"))?;
    check_series(&doc, "analytic")?;
    check_series(&doc, "event")?;
    let walk = doc.get("event_walk").ok_or("missing field `event_walk`")?;
    walk.get("layer_evals")
        .and_then(Json::as_u64)
        .ok_or("event_walk.layer_evals missing or not an integer")?;
    for field in ["compiled_seconds", "naive_seconds"] {
        let v = walk
            .get(field)
            .and_then(Json::as_f64)
            .ok_or(format!("event_walk.{field} missing or not a number"))?;
        if v <= 0.0 {
            return Err(format!("event_walk.{field} must be positive, got {v}"));
        }
    }
    let speedup = walk
        .get("speedup")
        .and_then(Json::as_f64)
        .ok_or("event_walk.speedup missing or not a number")?;
    // Test-mode files come from shrunken 1-rep smoke runs whose wall clock
    // is noise; only full measurements gate the 2x floor.
    let full = doc.get("mode").and_then(Json::as_str) != Some("test");
    if full && speedup < 2.0 {
        return Err(format!(
            "event_walk.speedup {speedup:.2} below the 2x floor the compiled \
             segment programs must clear"
        ));
    }
    let networks = doc
        .get("networks")
        .and_then(Json::as_arr)
        .ok_or("missing `networks` array")?;
    for required in ["ResNet-18", "VGG-7"] {
        let entry = networks
            .iter()
            .find(|n| n.get("name").and_then(Json::as_str) == Some(required))
            .ok_or(format!("network `{required}` missing"))?;
        let rate = entry
            .get("layer_cache_hit_rate")
            .and_then(Json::as_f64)
            .ok_or(format!("{required}: layer_cache_hit_rate missing"))?;
        if rate < 0.5 {
            return Err(format!(
                "{required}: layer-cache hit rate {rate:.3} below the 50% floor"
            ));
        }
    }
    println!(
        "{path}: OK (both backend series present, event walk {speedup:.2}x >= 2x, \
         per-network layer-cache hit rates >= 50%)"
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let path = args.get(pos + 1).map_or("BENCH_pr7.json", String::as_str);
        return match check(path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bench --check failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let test_mode = args.iter().any(|a| a == "--test");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|p| args.get(p + 1))
        .map_or("BENCH_pr7.json", String::as_str);
    let cores = default_workers();
    let spec = sweep_spec(test_mode);

    println!(
        "two-backend bench: {} archs x {} networks x {} quants = {} points on {cores} core(s)",
        spec.grid.len(),
        spec.models.len(),
        spec.quant_specs.len(),
        spec.len()
    );

    // Cold: empty caches — every point pays compilation and evaluation.
    // Warm: the same caches again — the steady state of a serving session.
    let analytic = backend_series("analytic", &spec, &AnalyticBackend, cores);
    let event = backend_series("event", &spec, &EventBackend, cores);

    println!("\nevent-backend cache-miss walk (whole zoo, per-layer cold eval):");
    let (walk_evals, t_compiled, t_naive) = event_walk_bench(test_mode);
    let walk_speedup = t_naive / t_compiled;
    println!(
        "  compiled programs: {:8.1} ms ({:7.0} layer evals/s)",
        t_compiled * 1e3,
        walk_evals as f64 / t_compiled
    );
    println!(
        "  naive tree walk:   {:8.1} ms ({:7.0} layer evals/s)",
        t_naive * 1e3,
        walk_evals as f64 / t_naive
    );
    println!("  compiled-walk speedup: {walk_speedup:.2}x");

    let mut networks = Vec::new();
    println!("\nper-network layer-cache hit rate (cold + warm report, batch 16):");
    for b in [Benchmark::ResNet18, Benchmark::Vgg7] {
        let (hits, misses, rate) = network_hit_rate(b);
        println!(
            "  {:<10} {:3} hits / {:3} unique: {:5.1}%",
            b.name(),
            hits,
            misses,
            rate * 100.0
        );
        assert!(
            rate >= 0.5,
            "{}: layer-cache hit rate {rate:.3} below the 50% floor",
            b.name()
        );
        networks.push(Json::obj(vec![
            ("name", Json::Str(b.name().to_string())),
            ("layer_cache_hits", Json::uint(hits)),
            ("layer_cache_misses", Json::uint(misses)),
            ("layer_cache_hit_rate", Json::float(rate)),
        ]));
    }

    let doc = Json::obj(vec![
        ("bench", Json::Str("pr7_compiled_segment_programs".to_string())),
        (
            "mode",
            Json::Str(if test_mode { "test" } else { "full" }.to_string()),
        ),
        ("cores", Json::uint(cores as u64)),
        (
            "sweeps",
            Json::obj(vec![
                ("analytic", series_json(&spec, &analytic)),
                ("event", series_json(&spec, &event)),
            ]),
        ),
        (
            "event_walk",
            Json::obj(vec![
                ("layer_evals", Json::uint(walk_evals)),
                ("compiled_seconds", Json::float(t_compiled)),
                ("naive_seconds", Json::float(t_naive)),
                (
                    "compiled_layer_evals_per_sec",
                    Json::float(walk_evals as f64 / t_compiled),
                ),
                (
                    "naive_layer_evals_per_sec",
                    Json::float(walk_evals as f64 / t_naive),
                ),
                ("speedup", Json::float(walk_speedup)),
            ]),
        ),
        ("networks", Json::Arr(networks)),
    ]);
    std::fs::write(out_path, doc.encode() + "\n").expect("trajectory file writable");
    println!("\nwrote {out_path}");

    if test_mode {
        println!("(wall-clock assertions require a full run; skipped)");
        return ExitCode::SUCCESS;
    }
    assert!(
        walk_speedup >= 2.0,
        "compiled segment programs must beat the naive walk by >=2x on the \
         cold whole-zoo eval, got {walk_speedup:.2}x"
    );
    println!("PASS: compiled event walk >=2x the naive walk");
    if cores >= 4 {
        let warm = analytic.cold_seconds / analytic.warm_seconds;
        assert!(
            warm >= 5.0,
            "warm analytic sweep must be >=5x the cold one on {cores} cores, got {warm:.2}x"
        );
        println!("PASS: warm analytic sweep >=5x on {cores} cores");
    } else {
        println!("(5x warm-speedup assertion requires >=4 cores; skipped)");
    }
    ExitCode::SUCCESS
}
