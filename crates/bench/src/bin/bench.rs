//! The PR 6 bench emitter: measures the two-tier cache (model-level
//! artifact cache + layer-level result cache) on a whole-zoo quant × arch
//! DSE sweep plus per-network report workloads, and writes the committed
//! trajectory file `BENCH_pr6.json`.
//!
//! Three modes:
//!
//! * `cargo run -p bitfusion-bench --bin bench` — full measurement; writes
//!   `BENCH_pr6.json` (override with `--out <path>`) and asserts the ≥5×
//!   warm-sweep speedup on runners with ≥4 cores.
//! * `-- --test` — shrunken grid for the CI smoke run; all structural
//!   assertions (byte-determinism, ≥50% per-network layer hit rates) still
//!   run, only the wall-clock assertion is skipped.
//! * `-- --check <path>` — no measurement: parses an existing trajectory
//!   file and fails unless it is well-formed and the ResNet-18 and VGG-7
//!   layer-cache hit rates are ≥50%. This is the CI gate on the committed
//!   `BENCH_pr6.json`.

use std::process::ExitCode;
use std::time::Instant;

use bitfusion::compiler::ArtifactCache;
use bitfusion::core::arch::ArchConfig;
use bitfusion::core::grid::ArchGrid;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::dnn::QuantSpec;
use bitfusion::service::json::{parse, Json};
use bitfusion::sim::layer_cache::run_cached;
use bitfusion::sim::pool::default_workers;
use bitfusion::sim::{
    explore_with_caches, AnalyticBackend, DseResult, DseSpec, LayerPerfCache, SimOptions,
};

/// The whole-zoo quant × arch sweep (`--test` shrinks it for CI).
fn sweep_spec(test_mode: bool) -> DseSpec {
    let grid = if test_mode {
        ArchGrid {
            rows: vec![16, 32],
            dram_bits_per_cycle: vec![64, 128],
            ..ArchGrid::from_base(ArchConfig::isca_45nm())
        }
    } else {
        ArchGrid {
            rows: vec![16, 32],
            cols: vec![8, 16],
            dram_bits_per_cycle: vec![64, 128, 256],
            ..ArchGrid::from_base(ArchConfig::isca_45nm())
        }
    };
    let models = if test_mode {
        vec![Benchmark::Lstm, Benchmark::Rnn, Benchmark::ResNet18]
    } else {
        Benchmark::ALL.to_vec()
    };
    DseSpec {
        grid,
        models: models.iter().map(|b| b.model()).collect(),
        quant_specs: vec![
            QuantSpec::paper(),
            QuantSpec::uniform(8).expect("uniform8 is a supported spec"),
        ],
        batches: vec![16],
        options: SimOptions::default(),
    }
}

/// Runs the sweep against the given caches and returns (seconds, result).
fn timed_sweep(
    spec: &DseSpec,
    workers: usize,
    cache: &ArtifactCache,
    layer_cache: &LayerPerfCache,
) -> (f64, DseResult) {
    let start = Instant::now();
    let result = explore_with_caches(spec, &AnalyticBackend, workers, cache, layer_cache);
    (start.elapsed().as_secs_f64(), result)
}

/// One network's layer-cache effectiveness on the session `report` path: a
/// cold pass fills the cache, a warm pass (the steady state of a serving
/// session) reuses it. With `U` unique shapes among `L` layers, the
/// two-pass hit rate is `1 - U/2L ≥ 50%` — strictly above for networks
/// that repeat shapes (ResNet-18's basic blocks).
fn network_hit_rate(benchmark: Benchmark) -> (u64, u64, f64) {
    let arch = ArchConfig::isca_45nm();
    let model = benchmark.model();
    let opts = SimOptions::default();
    let cache = LayerPerfCache::default();
    let cold = run_cached(&AnalyticBackend, &model, &arch, 16, &opts, &cache)
        .expect("zoo models compile");
    let warm = run_cached(&AnalyticBackend, &model, &arch, 16, &opts, &cache)
        .expect("zoo models compile");
    assert_eq!(cold, warm, "{benchmark}: warmth must never change results");
    let stats = cache.stats();
    let rate = stats
        .hit_rate()
        .expect("both passes touched the layer cache");
    (stats.hits, stats.misses, rate)
}

/// `--check` mode: validate a committed trajectory file.
fn check(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: unreadable: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: malformed JSON: {e}"))?;
    let sweep = doc.get("sweep").ok_or("missing field `sweep`")?;
    for field in ["points", "layer_evals", "layer_unique"] {
        sweep
            .get(field)
            .and_then(Json::as_u64)
            .ok_or(format!("sweep.{field} missing or not an integer"))?;
    }
    for field in ["cold_points_per_sec", "warm_points_per_sec", "warm_speedup"] {
        let v = sweep
            .get(field)
            .and_then(Json::as_f64)
            .ok_or(format!("sweep.{field} missing or not a number"))?;
        if v <= 0.0 {
            return Err(format!("sweep.{field} must be positive, got {v}"));
        }
    }
    let networks = doc
        .get("networks")
        .and_then(Json::as_arr)
        .ok_or("missing `networks` array")?;
    for required in ["ResNet-18", "VGG-7"] {
        let entry = networks
            .iter()
            .find(|n| n.get("name").and_then(Json::as_str) == Some(required))
            .ok_or(format!("network `{required}` missing"))?;
        let rate = entry
            .get("layer_cache_hit_rate")
            .and_then(Json::as_f64)
            .ok_or(format!("{required}: layer_cache_hit_rate missing"))?;
        if rate < 0.5 {
            return Err(format!(
                "{required}: layer-cache hit rate {rate:.3} below the 50% floor"
            ));
        }
    }
    println!("{path}: OK (per-network layer-cache hit rates >= 50%)");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let path = args.get(pos + 1).map_or("BENCH_pr6.json", String::as_str);
        return match check(path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bench --check failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let test_mode = args.iter().any(|a| a == "--test");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|p| args.get(p + 1))
        .map_or("BENCH_pr6.json", String::as_str);
    let cores = default_workers();
    let spec = sweep_spec(test_mode);

    println!(
        "two-tier cache bench: {} archs x {} networks x {} quants = {} points on {cores} core(s)",
        spec.grid.len(),
        spec.models.len(),
        spec.quant_specs.len(),
        spec.len()
    );

    // Cold: empty caches — every point pays compilation and evaluation.
    // Warm: the same caches again — the steady state of a serving session.
    let cache = ArtifactCache::default();
    let layer_cache = LayerPerfCache::default();
    let (t_cold, r_cold) = timed_sweep(&spec, cores, &cache, &layer_cache);
    let (t_warm, r_warm) = timed_sweep(&spec, cores, &cache, &layer_cache);

    // Determinism contract: warmth changes wall-clock, never bytes.
    let f_cold = r_cold.pareto_frontier();
    let f_warm = r_warm.pareto_frontier();
    assert_eq!(f_cold.len(), f_warm.len(), "frontier size diverged");
    for (a, b) in f_cold.iter().zip(&f_warm) {
        assert_eq!(a.arch, b.arch, "frontier membership diverged");
        assert_eq!(a.total_cycles, b.total_cycles, "frontier cycles diverged");
    }
    assert_eq!(r_cold.layer_evals, r_warm.layer_evals);
    assert_eq!(r_cold.layer_unique, r_warm.layer_unique);

    let points = spec.len() as f64;
    let layer_stats = layer_cache.stats();
    let layer_rate = layer_stats
        .hit_rate()
        .expect("the sweep touched the layer cache");
    let speedup = t_cold / t_warm;
    println!(
        "  cold: {:8.1} ms ({:7.1} points/s); {} unique layer evals of {} requested",
        t_cold * 1e3,
        points / t_cold,
        r_cold.layer_unique,
        r_cold.layer_evals
    );
    println!(
        "  warm: {:8.1} ms ({:7.1} points/s); layer cache {:.1}% hits over both passes",
        t_warm * 1e3,
        points / t_warm,
        layer_rate * 100.0
    );
    println!("  warm speedup: {speedup:.2}x");

    let mut networks = Vec::new();
    println!("\nper-network layer-cache hit rate (cold + warm report, batch 16):");
    for b in [Benchmark::ResNet18, Benchmark::Vgg7] {
        let (hits, misses, rate) = network_hit_rate(b);
        println!(
            "  {:<10} {:3} hits / {:3} unique: {:5.1}%",
            b.name(),
            hits,
            misses,
            rate * 100.0
        );
        assert!(
            rate >= 0.5,
            "{}: layer-cache hit rate {rate:.3} below the 50% floor",
            b.name()
        );
        networks.push(Json::obj(vec![
            ("name", Json::Str(b.name().to_string())),
            ("layer_cache_hits", Json::uint(hits)),
            ("layer_cache_misses", Json::uint(misses)),
            ("layer_cache_hit_rate", Json::float(rate)),
        ]));
    }

    let doc = Json::obj(vec![
        ("bench", Json::Str("pr6_two_tier_cache".to_string())),
        (
            "mode",
            Json::Str(if test_mode { "test" } else { "full" }.to_string()),
        ),
        ("cores", Json::uint(cores as u64)),
        (
            "sweep",
            Json::obj(vec![
                ("points", Json::uint(spec.len() as u64)),
                ("cold_seconds", Json::float(t_cold)),
                ("warm_seconds", Json::float(t_warm)),
                ("cold_points_per_sec", Json::float(points / t_cold)),
                ("warm_points_per_sec", Json::float(points / t_warm)),
                ("warm_speedup", Json::float(speedup)),
                ("layer_evals", Json::uint(r_cold.layer_evals)),
                ("layer_unique", Json::uint(r_cold.layer_unique)),
                ("layer_cache_hits", Json::uint(layer_stats.hits)),
                ("layer_cache_misses", Json::uint(layer_stats.misses)),
                ("layer_cache_hit_rate", Json::float(layer_rate)),
            ]),
        ),
        ("networks", Json::Arr(networks)),
    ]);
    std::fs::write(out_path, doc.encode() + "\n").expect("trajectory file writable");
    println!("\nwrote {out_path}");

    if !test_mode && cores >= 4 {
        assert!(
            speedup >= 5.0,
            "warm sweep must be >=5x the cold one on {cores} cores, got {speedup:.2}x"
        );
        println!("PASS: warm sweep >=5x on {cores} cores");
    } else {
        println!("(5x warm-speedup assertion requires >=4 cores and a full run; skipped)");
    }
    ExitCode::SUCCESS
}
