//! # bitfusion-bench
//!
//! Benchmark harnesses that regenerate every table and figure of the Bit
//! Fusion paper's evaluation (§V), printing `paper` vs `measured` columns
//! with a shape verdict, plus criterion micro-benchmarks of the library
//! itself. Run everything with `cargo bench --workspace`; each figure is
//! its own bench target (e.g. `cargo bench -p bitfusion-bench --bench
//! fig13_vs_eyeriss`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use bitfusion::core::util::geomean;
use bitfusion::dnn::zoo::Benchmark;

/// The paper's reference numbers for every figure this crate regenerates.
pub mod paper {
    use bitfusion::dnn::zoo::Benchmark;

    /// Figure 13: per-benchmark speedup over Eyeriss.
    pub fn fig13_speedup(b: Benchmark) -> f64 {
        match b {
            Benchmark::AlexNet => 1.9,
            Benchmark::Cifar10 => 13.0,
            Benchmark::Lstm => 2.4,
            Benchmark::LeNet5 => 2.7,
            Benchmark::ResNet18 => 1.9,
            Benchmark::Rnn => 2.7,
            Benchmark::Svhn => 8.6,
            Benchmark::Vgg7 => 7.7,
        }
    }

    /// Figure 13: per-benchmark energy reduction over Eyeriss.
    pub fn fig13_energy(b: Benchmark) -> f64 {
        match b {
            Benchmark::AlexNet => 1.5,
            Benchmark::Cifar10 => 14.0,
            Benchmark::Lstm => 4.8,
            Benchmark::LeNet5 => 4.3,
            Benchmark::ResNet18 => 1.9,
            Benchmark::Rnn => 5.1,
            Benchmark::Svhn => 10.0,
            Benchmark::Vgg7 => 9.9,
        }
    }

    /// Figure 13 geomeans: (speedup, energy reduction).
    pub const FIG13_GEOMEAN: (f64, f64) = (3.9, 5.1);

    /// §V-B1 AlexNet per-layer-class table:
    /// (class, performance ratio, energy ratio).
    pub const ALEXNET_PER_LAYER: [(&str, f64, f64); 4] = [
        ("conv 8/8 (105 MOps)", 1.669, 6.503),
        ("conv 4/1 (560 MOps)", 6.394, 16.837),
        ("fc 4/1 (54 MOps)", 3.310, 30.739),
        ("fc 8/8 (4 MOps)", 1.005, 10.287),
    ];

    /// Figure 14: Bit Fusion energy fractions (compute, buffers, rf, dram).
    pub fn fig14_bitfusion(b: Benchmark) -> [f64; 4] {
        match b {
            Benchmark::AlexNet => [0.111, 0.211, 0.0, 0.678],
            Benchmark::Cifar10 => [0.089, 0.172, 0.0, 0.738],
            Benchmark::Lstm => [0.093, 0.233, 0.0, 0.675],
            Benchmark::LeNet5 => [0.113, 0.134, 0.0, 0.754],
            Benchmark::ResNet18 => [0.079, 0.199, 0.0, 0.722],
            Benchmark::Rnn => [0.067, 0.191, 0.0, 0.742],
            Benchmark::Svhn => [0.097, 0.233, 0.0, 0.670],
            Benchmark::Vgg7 => [0.094, 0.248, 0.0, 0.658],
        }
    }

    /// Figure 14: Eyeriss energy fractions (compute, buffers, rf, dram).
    pub fn fig14_eyeriss(b: Benchmark) -> [f64; 4] {
        match b {
            Benchmark::AlexNet => [0.156, 0.011, 0.559, 0.274],
            Benchmark::Cifar10 => [0.163, 0.009, 0.577, 0.251],
            Benchmark::Lstm => [0.171, 0.007, 0.616, 0.206],
            Benchmark::LeNet5 => [0.136, 0.015, 0.461, 0.388],
            Benchmark::ResNet18 => [0.165, 0.010, 0.566, 0.259],
            Benchmark::Rnn => [0.156, 0.008, 0.576, 0.260],
            Benchmark::Svhn => [0.068, 0.021, 0.219, 0.692],
            Benchmark::Vgg7 => [0.069, 0.029, 0.218, 0.684],
        }
    }

    /// Figure 15: geomean speedup at each bandwidth (bits/cycle), relative
    /// to the 128 b/cyc default.
    pub const FIG15_GEOMEAN: [(u32, f64); 5] = [
        (32, 0.25),
        (64, 0.51),
        (128, 1.00),
        (256, 1.91),
        (512, 2.86),
    ];

    /// Figure 16: geomean speedup at each batch size, relative to batch 1.
    pub const FIG16_GEOMEAN: [(u64, f64); 5] =
        [(1, 1.0), (4, 1.66), (16, 2.43), (64, 2.68), (256, 2.68)];

    /// Figure 16: RNN/LSTM peak batching speedups (the standout series).
    pub const FIG16_RNN_PEAK: f64 = 21.4;

    /// Figure 17: geomean speedups over TX2-FP32 for (TitanX-FP32,
    /// TitanX-INT8, Bit Fusion 16 nm).
    pub const FIG17_GEOMEAN: (f64, f64, f64) = (12.0, 19.0, 16.0);

    /// Figure 18: per-benchmark (speedup, energy reduction) over Stripes.
    pub fn fig18(b: Benchmark) -> (f64, f64) {
        match b {
            Benchmark::AlexNet => (1.8, 2.7),
            Benchmark::Cifar10 => (4.0, 6.0),
            Benchmark::Lstm => (2.1, 3.1),
            Benchmark::LeNet5 => (5.2, 7.8),
            Benchmark::ResNet18 => (2.6, 4.4),
            Benchmark::Rnn => (2.0, 3.0),
            Benchmark::Svhn => (1.8, 2.7),
            Benchmark::Vgg7 => (2.9, 4.4),
        }
    }

    /// Figure 18 geomeans: (speedup, energy reduction).
    pub const FIG18_GEOMEAN: (f64, f64) = (2.61, 3.97);

    /// Figure 10 reference rows: (design, bitbricks, shift-add, register)
    /// area in µm² and power in nW.
    pub const FIG10_AREA: [(&str, f64, f64, f64); 2] = [
        ("Temporal", 463.0, 2989.0, 1454.0),
        ("Fusion Unit", 369.0, 934.0, 91.0),
    ];
    /// Figure 10 power rows.
    pub const FIG10_POWER: [(&str, f64, f64, f64); 2] = [
        ("Temporal", 60.0, 550.0, 1103.0),
        ("Fusion Unit", 46.0, 424.0, 69.0),
    ];
}

/// Prints a figure banner.
pub fn banner(title: &str, caption: &str) {
    println!();
    println!("=== {title} ===");
    println!("{caption}");
    println!();
}

/// Formats a ratio column as `x.xx`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Verdict line comparing a measured geomean against the paper's, with the
/// tolerance band used in EXPERIMENTS.md.
pub fn verdict(label: &str, measured: f64, paper: f64) {
    let ratio = measured / paper;
    let judgement = if (0.5..=2.0).contains(&ratio) {
        "MATCHES (within 2x)"
    } else if measured > 1.0 && paper > 1.0 {
        "SAME WINNER, factor differs"
    } else {
        "DIFFERS"
    };
    println!(
        "  {label}: measured {measured:.2} vs paper {paper:.2}  ->  {judgement}"
    );
}

/// Geomean over the benchmark suite of a per-benchmark metric.
pub fn suite_geomean(f: impl Fn(Benchmark) -> f64) -> f64 {
    let values: Vec<f64> = Benchmark::ALL.iter().map(|&b| f(b)).collect();
    geomean(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig13_geomeans_consistent() {
        // The stored per-benchmark numbers reproduce the stated geomeans.
        let sp = suite_geomean(paper::fig13_speedup);
        assert!((sp - paper::FIG13_GEOMEAN.0).abs() < 0.25, "{sp}");
        let en = suite_geomean(paper::fig13_energy);
        assert!((en - paper::FIG13_GEOMEAN.1).abs() < 0.35, "{en}");
    }

    #[test]
    fn paper_fig18_geomeans_consistent() {
        let sp = suite_geomean(|b| paper::fig18(b).0);
        assert!((sp - paper::FIG18_GEOMEAN.0).abs() < 0.15, "{sp}");
        let en = suite_geomean(|b| paper::fig18(b).1);
        assert!((en - paper::FIG18_GEOMEAN.1).abs() < 0.25, "{en}");
    }

    #[test]
    fn fig14_fractions_sum_to_one() {
        for b in Benchmark::ALL {
            let s: f64 = paper::fig14_bitfusion(b).iter().sum();
            assert!((s - 1.0).abs() < 0.01, "{b} bf {s}");
            let s: f64 = paper::fig14_eyeriss(b).iter().sum();
            assert!((s - 1.0).abs() < 0.01, "{b} ey {s}");
        }
    }

    #[test]
    fn verdict_classifies() {
        // Just exercise the printing paths.
        verdict("x", 1.0, 1.0);
        verdict("y", 10.0, 1.0);
        verdict("z", 0.5, 2.0);
    }
}
