//! Session artifact-cache effectiveness: warm requests vs cold requests.
//!
//! Issues the same `report` request twice — once against a fresh session
//! (cold: the compile-once artifact must be built) and once against a
//! session that has already served it (warm: the plan comes from the
//! shared [`ArtifactCache`], only evaluation runs) — across several
//! benchmarks, and reports the speedup. The warm path must be ≥2× faster:
//! compilation (the tile-size search) dominates a one-shot evaluation,
//! which is exactly why the cache is promoted to a first-class, shared
//! object in the service layer.
//!
//! `cargo bench -p bitfusion-bench --bench session_cache` (add `-- --test`
//! for the CI smoke run, which shrinks the workload and skips the
//! assertion).

use std::time::Instant;

use bitfusion::service::{Request, Response, Session};

fn report_request(benchmark: &str) -> Request {
    Request::parse(&format!(
        "{{\"cmd\":\"report\",\"benchmark\":\"{benchmark}\",\"batch\":16}}"
    ))
    .expect("valid request")
}

/// Best-of-N wall-clock for one `handle` call on `session`.
fn timed(session: &Session, request: &Request, iterations: u32) -> (f64, Response) {
    let mut best = f64::INFINITY;
    let mut response = None;
    for _ in 0..iterations {
        let start = Instant::now();
        let r = session.handle(request);
        best = best.min(start.elapsed().as_secs_f64());
        response = Some(r);
    }
    (best, response.expect("at least one iteration"))
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let benchmarks: &[&str] = if test_mode {
        &["rnn"]
    } else {
        &["alexnet", "vgg-7", "lstm", "rnn"]
    };

    println!("session artifact cache: cold (fresh session) vs warm (cached plan)\n");
    println!(
        "  {:<10} {:>12} {:>12} {:>9}",
        "benchmark", "cold (ms)", "warm (ms)", "speedup"
    );

    let mut worst = f64::INFINITY;
    for name in benchmarks {
        let request = report_request(name);
        // Cold: a fresh session per measurement, like a one-shot CLI call.
        let mut cold = f64::INFINITY;
        let mut cold_resp = None;
        for _ in 0..3 {
            let session = Session::new();
            let (t, r) = timed(&session, &request, 1);
            cold = cold.min(t);
            cold_resp = Some(r);
        }
        // Warm: one session, first call pays the compile, the rest reuse it.
        let session = Session::new();
        let (_, _) = timed(&session, &request, 1);
        let (warm, warm_resp) = timed(&session, &request, if test_mode { 2 } else { 5 });
        assert_eq!(
            cold_resp.unwrap().encode(),
            warm_resp.encode(),
            "{name}: cache warmth must never change response bytes"
        );
        assert!(
            session.cache_stats().hits > 0,
            "{name}: warm requests must hit the cache"
        );
        let speedup = cold / warm;
        worst = worst.min(speedup);
        println!(
            "  {:<10} {:>12.3} {:>12.3} {:>8.1}x",
            name,
            cold * 1e3,
            warm * 1e3,
            speedup
        );
    }

    if test_mode {
        println!("\n(test mode: speedup assertion skipped)");
        return;
    }
    println!("\nworst-case warm speedup: {worst:.1}x");
    assert!(
        worst >= 2.0,
        "shared artifact cache must make warm requests >=2x faster (got {worst:.2}x)"
    );
    println!("OK: warm requests are >=2x faster than cold ones");
}
