//! §IV-A block-size claim: "blocks with 30-86 instructions are enough to
//! cover LSTM, CNN, pooling, and fully connected" layers.
//!
//! Compiles every zoo benchmark and histograms the per-layer instruction
//! block sizes, plus the binary encoding footprint.

use bitfusion::compiler::compile;
use bitfusion::core::arch::ArchConfig;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::isa::encode::encode_block;
use bitfusion_bench::banner;

fn main() {
    banner(
        "Instruction-block statistics (§IV-A)",
        "Static Fusion-ISA block sizes per compiled layer. Paper: 30-86\n\
         instructions cover every evaluated layer type.",
    );
    let arch = ArchConfig::isca_45nm();
    let mut min = usize::MAX;
    let mut max = 0usize;
    println!(
        "  {:<10} {:>7} {:>12} {:>12} {:>14}",
        "benchmark", "blocks", "instr (min)", "instr (max)", "encoded bytes"
    );
    for b in Benchmark::ALL {
        let plan = compile(&b.model(), &arch, 16).expect("zoo model compiles");
        let sizes: Vec<usize> = plan.layers.iter().map(|l| l.block.len()).collect();
        let lo = *sizes.iter().min().expect("non-empty");
        let hi = *sizes.iter().max().expect("non-empty");
        min = min.min(lo);
        max = max.max(hi);
        let encoded: usize = plan
            .layers
            .iter()
            .map(|l| encode_block(&l.block).expect("compiled blocks encode").len() * 4)
            .sum();
        println!(
            "  {:<10} {:>7} {:>12} {:>12} {:>14}",
            b.name(),
            plan.layers.len(),
            lo,
            hi,
            encoded
        );
    }
    println!();
    println!(
        "  overall block-size range: {min}-{max} instructions (paper: 30-86) -> {}",
        if max <= 86 { "within the paper's envelope" } else { "EXCEEDS" }
    );
    println!(
        "  the von Neumann cost is amortized: each block is fetched once and\n\
         iterates over the whole layer (loop/gen-addr semantics)."
    );
}
