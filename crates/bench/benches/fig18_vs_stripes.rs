//! Figure 18: Bit Fusion performance and energy improvements over Stripes.
//!
//! Per §V-A, the comparison is area/frequency-matched per tile: one Stripes
//! tile of 4096 SIPs against a 512-Fusion-Unit array at Stripes' 980 MHz,
//! on the same memory interface.

use bitfusion::baselines::StripesSim;
use bitfusion::core::arch::ArchConfig;
use bitfusion::core::util::geomean;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::sim::BitFusionSim;
use bitfusion_bench::{banner, paper, verdict};

fn main() {
    banner(
        "Figure 18 — Improvement over Stripes (batch 16, 45 nm, 980 MHz)",
        "Paper geomeans: 2.6x speedup, 3.9x energy. Stripes serializes weight bits\n\
         only and moves 16-bit inputs; Bit Fusion fuses both operands. LeNet-5\n\
         (low bits on both operands) peaks; AlexNet (8-bit edges) is the floor.",
    );
    let bf = BitFusionSim::new(ArchConfig::stripes_matched());
    let st = StripesSim::default();

    let mut speedups = Vec::new();
    let mut energies = Vec::new();
    println!(
        "  {:<10} {:>10} {:>10} | {:>10} {:>10}",
        "benchmark", "perf", "paper", "energy", "paper"
    );
    for b in Benchmark::ALL {
        let r = bf.run(&b.model(), 16).expect("zoo model compiles");
        let s = st.run(&b.model(), 16);
        let speedup = s.runtime_ms / r.runtime_ms();
        let energy = s.energy.total_pj() / r.total_energy().total_pj();
        speedups.push(speedup);
        energies.push(energy);
        let (p_perf, p_energy) = paper::fig18(b);
        println!(
            "  {:<10} {:>9.2}x {:>9.2}x | {:>9.2}x {:>9.2}x",
            b.name(),
            speedup,
            p_perf,
            energy,
            p_energy
        );
    }
    println!();
    verdict("geomean speedup", geomean(&speedups), paper::FIG18_GEOMEAN.0);
    verdict("geomean energy reduction", geomean(&energies), paper::FIG18_GEOMEAN.1);

    println!();
    println!("  shape checks:");
    let by = |b: Benchmark| {
        speedups[Benchmark::ALL.iter().position(|&x| x == b).expect("suite")]
    };
    println!(
        "    Bit Fusion wins on every benchmark: {}",
        if speedups.iter().all(|&s| s > 1.0) { "yes" } else { "NO" }
    );
    println!(
        "    AlexNet (8-bit edge layers) is at the low end: {}",
        if by(Benchmark::AlexNet) <= geomean(&speedups) { "yes" } else { "NO" }
    );
    println!(
        "    dual-low-bitwidth nets (LeNet-5/VGG-7/ResNet-18) sit above the \
         geomean: {}",
        if by(Benchmark::LeNet5) >= geomean(&speedups)
            && by(Benchmark::Vgg7) >= geomean(&speedups)
        {
            "yes"
        } else {
            "NO"
        }
    );
}
