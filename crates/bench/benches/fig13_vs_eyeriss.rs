//! Figure 13: Bit Fusion performance and energy improvements over Eyeriss,
//! plus the §V-B1 AlexNet per-layer-class table.
//!
//! Setup per §V-A: same 1.1 mm² compute budget and SRAM capacity, same
//! 500 MHz, 45 nm; batch 16; Eyeriss runs the regular-width models at
//! 16-bit, Bit Fusion the quantized (2×-wide where applicable) models.

use bitfusion::baselines::EyerissSim;
use bitfusion::core::arch::ArchConfig;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::sim::BitFusionSim;
use bitfusion_bench::{banner, paper, verdict};

fn main() {
    banner(
        "Figure 13 — Improvement over Eyeriss (batch 16, 45 nm, 500 MHz)",
        "Paper geomeans: 3.9x speedup, 5.1x energy reduction; AlexNet/ResNet-18\n\
         lowest (wide quantized models do ~2-4x the ops), Cifar-10 highest (binary).",
    );
    let bf = BitFusionSim::new(ArchConfig::isca_45nm());
    let ey = EyerissSim::default();

    let mut speedups = Vec::new();
    let mut energies = Vec::new();
    println!(
        "  {:<10} {:>10} {:>10} | {:>10} {:>10}",
        "benchmark", "perf", "paper", "energy", "paper"
    );
    for b in Benchmark::ALL {
        let r = bf.run(&b.model(), 16).expect("zoo model compiles");
        let e = ey.run(&b.reference_model(), 16);
        let speedup = e.runtime_ms / r.runtime_ms();
        let energy = e.energy.total_pj() / r.total_energy().total_pj();
        speedups.push(speedup);
        energies.push(energy);
        println!(
            "  {:<10} {:>9.2}x {:>9.2}x | {:>9.2}x {:>9.2}x",
            b.name(),
            speedup,
            paper::fig13_speedup(b),
            energy,
            paper::fig13_energy(b)
        );
    }
    let sp = bitfusion::core::util::geomean(&speedups);
    let en = bitfusion::core::util::geomean(&energies);
    println!();
    verdict("geomean speedup", sp, paper::FIG13_GEOMEAN.0);
    verdict("geomean energy reduction", en, paper::FIG13_GEOMEAN.1);

    // Shape checks the paper calls out in the text.
    let by = |b: Benchmark| {
        let i = Benchmark::ALL.iter().position(|&x| x == b).expect("in suite");
        speedups[i]
    };
    println!();
    println!("  shape checks:");
    println!(
        "    AlexNet is the slowest-improving CNN: {}",
        if by(Benchmark::AlexNet) <= by(Benchmark::Cifar10)
            && by(Benchmark::AlexNet) <= by(Benchmark::Svhn)
            && by(Benchmark::AlexNet) <= by(Benchmark::Vgg7)
        {
            "yes (matches paper)"
        } else {
            "NO"
        }
    );
    println!(
        "    Cifar-10 sees the largest speedup: {}",
        if Benchmark::ALL.iter().all(|&b| by(Benchmark::Cifar10) >= by(b)) {
            "yes (matches paper)"
        } else {
            "NO"
        }
    );

    // --- AlexNet per-layer-class table (§V-B1). ---
    println!();
    println!("AlexNet per-layer-class improvement over Eyeriss (equal-width models):");
    let plan_bf = bf.run(&Benchmark::AlexNet.reference_model(), 16);
    let ey_ref = ey.run(&Benchmark::AlexNet.reference_model(), 16);
    if let Ok(bf_ref) = plan_bf {
        // Classes: conv1 (8/8), conv2-5 (4/1), fc6-7 (4/1), fc8 (8/8) — but
        // the reference model is 16-bit end to end; re-run the quantized
        // regular-width model per class using the wide model's layer names.
        let quant = bf.run(&Benchmark::AlexNet.model(), 16).expect("compiles");
        let class_of = |name: &str| -> Option<usize> {
            match name {
                "conv1" => Some(0),
                "conv2" | "conv3" | "conv4" | "conv5" => Some(1),
                "fc6" | "fc7" => Some(2),
                "fc8" => Some(3),
                _ => None,
            }
        };
        let mut bf_cycles = [0u64; 4];
        let mut ey_cycles = [0u64; 4];
        let mut bf_pj = [0f64; 4];
        let mut ey_pj = [0f64; 4];
        for l in &quant.layers {
            if let Some(c) = class_of(&l.name) {
                bf_cycles[c] += l.cycles;
                bf_pj[c] += l.energy.total_pj();
            }
        }
        // Eyeriss per-layer numbers come from a layer-wise rerun.
        let ey_model = Benchmark::AlexNet.reference_model();
        for named in &ey_model.layers {
            if let Some(c) = class_of(&named.name) {
                let single = bitfusion::dnn::model::Model::new(
                    "layer",
                    vec![(named.name.as_str(), named.layer.clone())],
                );
                let r = ey.run(&single, 16);
                ey_cycles[c] += r.cycles;
                ey_pj[c] += r.energy.total_pj();
            }
        }
        // Normalize per equal work: Bit Fusion runs the 2x-wide model
        // (~3.7x the MACs); scale its per-class cycles to the regular
        // model's op counts, as the paper's per-layer table does.
        let wide = Benchmark::AlexNet.model();
        let regular = Benchmark::AlexNet.reference_model();
        let mut wide_macs = [0u64; 4];
        let mut reg_macs = [0u64; 4];
        for l in &wide.layers {
            if let Some(c) = class_of(&l.name) {
                wide_macs[c] += l.layer.macs();
            }
        }
        for l in &regular.layers {
            if let Some(c) = class_of(&l.name) {
                reg_macs[c] += l.layer.macs();
            }
        }
        for (c, (label, p_perf, p_energy)) in paper::ALEXNET_PER_LAYER.iter().enumerate() {
            let work_scale = wide_macs[c] as f64 / reg_macs[c] as f64;
            let perf = ey_cycles[c] as f64 / (bf_cycles[c] as f64 / work_scale);
            let energy = ey_pj[c] / (bf_pj[c] / work_scale);
            println!(
                "  {label:<22} perf {perf:>6.2}x (paper {p_perf:.2}x)   energy {energy:>6.2}x (paper {p_energy:.2}x)"
            );
        }
        let _ = (bf_ref, ey_ref);
    }
}
