//! Figure 15: Bit Fusion performance as off-chip bandwidth scales from
//! 32 to 512 bits/cycle (speedup relative to the 128 b/cyc default).

use bitfusion::core::arch::ArchConfig;
use bitfusion::core::util::geomean;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::sim::BitFusionSim;
use bitfusion_bench::{banner, paper, verdict};

const BANDWIDTHS: [u32; 5] = [32, 64, 128, 256, 512];

fn main() {
    banner(
        "Figure 15 — Sensitivity to off-chip bandwidth (batch 16)",
        "Speedup per benchmark relative to the default 128 bits/cycle. Paper\n\
         geomeans: 0.25/0.51/1.00/1.91/2.86; RNN and LSTM scale almost linearly\n\
         (bandwidth-bound), CNNs saturate.",
    );
    // Cycles per benchmark per bandwidth.
    let mut table: Vec<Vec<f64>> = Vec::new();
    for b in Benchmark::ALL {
        let mut row = Vec::new();
        for bw in BANDWIDTHS {
            let sim = BitFusionSim::new(ArchConfig::isca_45nm().with_bandwidth(bw));
            let r = sim.run(&b.model(), 16).expect("zoo model compiles");
            row.push(r.total_cycles() as f64);
        }
        table.push(row);
    }
    print!("  {:<10}", "benchmark");
    for bw in BANDWIDTHS {
        print!(" {bw:>7}b");
    }
    println!("   (relative to 128 b/cyc)");
    let baseline_idx = 2;
    for (bi, b) in Benchmark::ALL.iter().enumerate() {
        print!("  {:<10}", b.name());
        for wi in 0..BANDWIDTHS.len() {
            print!(" {:>7.2}x", table[bi][baseline_idx] / table[bi][wi]);
        }
        println!();
    }
    println!();
    for (wi, (bw, paper_geo)) in paper::FIG15_GEOMEAN.iter().enumerate() {
        let speedups: Vec<f64> = (0..Benchmark::ALL.len())
            .map(|bi| table[bi][baseline_idx] / table[bi][wi])
            .collect();
        verdict(&format!("geomean at {bw:>3} b/cyc"), geomean(&speedups), *paper_geo);
    }
    // The paper's standout series: the recurrent nets scale linearly.
    let lstm = Benchmark::ALL.iter().position(|&b| b == Benchmark::Lstm).expect("lstm");
    let lin = table[lstm][baseline_idx] / table[lstm][4];
    println!();
    println!(
        "  LSTM speedup at 512 b/cyc: {lin:.2}x (paper: 4.0x, near-linear) -> {}",
        if lin > 2.5 { "bandwidth-bound, matches" } else { "NO" }
    );
}
