//! The §III-C qualitative Loom comparison, made quantitative: a
//! fully-temporal design (both operands bit-serial) against Bit Fusion's
//! spatio-temporal Fusion Units, area-matched per tile.
//!
//! The paper's claims: "for the same throughput, a fully-temporal design
//! ... would consume significantly larger area and power", and it requires
//! "more accesses to the SRAM" (the nested bit loop re-reads operands).

use bitfusion::baselines::LoomSim;
use bitfusion::core::arch::ArchConfig;
use bitfusion::core::util::geomean;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::sim::BitFusionSim;
use bitfusion_bench::banner;

fn main() {
    banner(
        "Loom comparison (§III-C) — fully-temporal vs spatio-temporal fusion",
        "Area-matched tiles at 980 MHz. The paper argues the fully-temporal\n\
         design loses on throughput-per-area and on SRAM energy; both effects\n\
         are quantified here.",
    );
    let bf = BitFusionSim::new(ArchConfig::stripes_matched());
    let loom = LoomSim::default();
    let mut speedups = Vec::new();
    let mut energies = Vec::new();
    let mut buffer_ratios = Vec::new();
    println!(
        "  {:<10} {:>10} {:>10} {:>14}",
        "benchmark", "perf", "energy", "SRAM energy"
    );
    for b in Benchmark::ALL {
        let r = bf.run(&b.model(), 16).expect("zoo model compiles");
        let l = loom.run(&b.model(), 16);
        let speedup = l.runtime_ms / r.runtime_ms();
        let energy = l.energy.total_pj() / r.total_energy().total_pj();
        let buffers = l.energy.buffer_pj / r.total_energy().buffer_pj;
        speedups.push(speedup);
        energies.push(energy);
        buffer_ratios.push(buffers);
        println!(
            "  {:<10} {:>9.2}x {:>9.2}x {:>13.2}x",
            b.name(),
            speedup,
            energy,
            buffers
        );
    }
    println!();
    println!(
        "  geomean: Bit Fusion is {:.2}x faster and {:.2}x lower energy than the\n\
         fully-temporal design; the nested bit loop costs {:.1}x more SRAM energy.",
        geomean(&speedups),
        geomean(&energies),
        geomean(&buffer_ratios)
    );
    println!(
        "  (consistent with Figure 10's static view: 3.2x area at equal\n\
         per-group throughput means ~3x fewer lanes per mm^2 for Loom.)"
    );
}
