//! Figure 14: per-component energy breakdown (compute / buffers / register
//! file / DRAM) for Bit Fusion and Eyeriss on every benchmark.

use bitfusion::baselines::EyerissSim;
use bitfusion::core::arch::ArchConfig;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::sim::BitFusionSim;
use bitfusion_bench::banner;
use bitfusion_bench::paper;

fn print_row(label: &str, measured: [f64; 4], reference: [f64; 4]) {
    println!(
        "  {label:<22} compute {:4.0}% ({:4.0}%)  buffers {:4.0}% ({:4.0}%)  RF {:4.0}% ({:4.0}%)  DRAM {:4.0}% ({:4.0}%)",
        measured[0] * 100.0, reference[0] * 100.0,
        measured[1] * 100.0, reference[1] * 100.0,
        measured[2] * 100.0, reference[2] * 100.0,
        measured[3] * 100.0, reference[3] * 100.0,
    );
}

fn main() {
    banner(
        "Figure 14 — Energy breakdown of Bit Fusion and Eyeriss (paper values in parentheses)",
        "Paper shape: both spend >80% on memory; Bit Fusion has only a sliver of\n\
         register energy (systolic sharing) and is DRAM-dominated; Eyeriss is\n\
         RF-dominated.",
    );
    let bf = BitFusionSim::new(ArchConfig::isca_45nm());
    let ey = EyerissSim::default();
    for b in Benchmark::ALL {
        let r = bf.run(&b.model(), 16).expect("zoo model compiles");
        let e = ey.run(&b.reference_model(), 16);
        print_row(
            &format!("{} BitFusion", b.name()),
            r.total_energy().fractions(),
            paper::fig14_bitfusion(b),
        );
        print_row(
            &format!("{} Eyeriss", b.name()),
            e.energy.fractions(),
            paper::fig14_eyeriss(b),
        );
    }
    println!();
    println!("  shape checks:");
    let mut ok_bf = true;
    let mut ok_ey_rf = true;
    for b in Benchmark::ALL {
        let r = bf.run(&b.model(), 16).expect("compiles");
        let [_, bufs, rf, dram] = r.total_energy().fractions();
        // The Fusion Units' output registers are a small RF sliver; the
        // per-PE register *files* of Eyeriss do not exist here.
        ok_bf &= rf < 0.05 && bufs + dram > 0.6;
        let e = ey.run(&b.reference_model(), 16);
        let [ey_compute, ey_bufs, ey_rf, _] = e.energy.fractions();
        // RF must be Eyeriss's largest on-chip component everywhere (the
        // paper's own RF shares dip to ~22% on the DRAM-bound benchmarks).
        ok_ey_rf &= ey_rf > ey_compute && ey_rf > ey_bufs && ey_rf > 0.2;
    }
    println!(
        "    Bit Fusion RF energy is a sliver and it is memory-dominated: {}",
        if ok_bf { "yes" } else { "NO" }
    );
    println!(
        "    Eyeriss is register-file-heavy: {}",
        if ok_ey_rf { "yes" } else { "NO" }
    );
}
