//! Figure 10: area and power of the hybrid Fusion Unit vs the temporal
//! design (16 BitBricks each), from the structural gate model.

use bitfusion::energy::{DesignCost, Figure10};
use bitfusion_bench::{banner, paper, verdict};

fn row(label: &str, d: &DesignCost, reference: (&str, f64, f64, f64), power: bool) {
    let split = if power { d.power_nw } else { d.area_um2 };
    let unit = if power { "nW" } else { "um^2" };
    println!(
        "  {label:<12} bitbricks {:7.0} (paper {:5.0})  shift-add {:7.0} (paper {:5.0})  register {:7.0} (paper {:5.0})  total {:7.0} {unit}",
        split.bit_bricks, reference.1, split.shift_add, reference.2, split.register, reference.3,
        split.total(),
    );
}

fn main() {
    banner(
        "Figure 10 — Fusion Unit vs temporal design (area & power, 45 nm)",
        "Structural gate-count model calibrated on the published Fusion Unit row;\n\
         the temporal row is a prediction. Paper: 3.5x area and 3.2x power advantage,\n\
         16.0x register reduction.",
    );
    let fig = Figure10::compute();

    println!("Area (um^2):");
    row("Temporal", &fig.temporal, paper::FIG10_AREA[0], false);
    row("Fusion Unit", &fig.fusion, paper::FIG10_AREA[1], false);
    println!();
    println!("Power (nW):");
    row("Temporal", &fig.temporal, paper::FIG10_POWER[0], true);
    row("Fusion Unit", &fig.fusion, paper::FIG10_POWER[1], true);

    println!();
    verdict("area reduction", fig.area_reduction(), 3.5);
    verdict("power reduction", fig.power_reduction(), 3.2);
    verdict("register reduction", fig.register_reduction(), 16.0);
}
