//! Figure 17: performance comparison to GPUs — Tegra X2 (baseline),
//! Titan Xp FP32/INT8, and Bit Fusion scaled to 16 nm (4096 Fusion Units,
//! 896 KB SRAM, 500 MHz, 895 mW).

use bitfusion::baselines::{GpuMode, GpuModel};
use bitfusion::core::arch::ArchConfig;
use bitfusion::core::util::geomean;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::energy::TechNode;
use bitfusion::sim::{BitFusionSim, SimOptions};
use bitfusion_bench::{banner, paper, verdict};

fn main() {
    banner(
        "Figure 17 — Speedup over Tegra X2 (batch 16, 16 nm)",
        "Paper geomeans: Titan Xp FP32 12x, Titan Xp INT8 19x, Bit Fusion 16x —\n\
         a 895 mW part nearly matching a 250 W GPU's 8-bit mode.",
    );
    let tx2 = GpuModel::tegra_x2();
    let txp = GpuModel::titan_xp();
    let opts = SimOptions {
        node: TechNode::Nm16,
        ..SimOptions::default()
    };
    let bf16 = BitFusionSim::new(ArchConfig::gpu_16nm()).with_options(opts);

    let mut v_fp32 = Vec::new();
    let mut v_int8 = Vec::new();
    let mut v_bf = Vec::new();
    println!(
        "  {:<10} {:>12} {:>12} {:>12}",
        "benchmark", "TitanXp-FP32", "TitanXp-INT8", "BitFusion"
    );
    for b in Benchmark::ALL {
        let gpu_model = b.reference_model();
        let base = tx2.run(&gpu_model, 16, GpuMode::Fp32);
        let fp32 = base.runtime_ms / txp.run(&gpu_model, 16, GpuMode::Fp32).runtime_ms;
        let int8 = base.runtime_ms / txp.run(&gpu_model, 16, GpuMode::Int8).runtime_ms;
        let bf = base.runtime_ms
            / bf16
                .run(&b.model(), 16)
                .expect("zoo model compiles")
                .runtime_ms();
        v_fp32.push(fp32);
        v_int8.push(int8);
        v_bf.push(bf);
        println!(
            "  {:<10} {:>11.1}x {:>11.1}x {:>11.1}x",
            b.name(),
            fp32,
            int8,
            bf
        );
    }
    println!();
    verdict("TitanXp FP32 geomean", geomean(&v_fp32), paper::FIG17_GEOMEAN.0);
    verdict("TitanXp INT8 geomean", geomean(&v_int8), paper::FIG17_GEOMEAN.1);
    verdict("BitFusion-16nm geomean", geomean(&v_bf), paper::FIG17_GEOMEAN.2);

    // The 895 mW claim: average power of the 16 nm part while running the
    // suite (energy / runtime, with the paper's 0.31x node scaling).
    println!();
    let mut watts = Vec::new();
    for b in Benchmark::ALL {
        let r = bf16.run(&b.model(), 16).expect("compiles");
        watts.push(r.total_energy().total_pj() / 1e12 / (r.runtime_ms() / 1e3));
    }
    let lo = watts.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = watts.iter().copied().fold(0.0f64, f64::max);
    println!(
        "  measured average power of the 16 nm part: {lo:.2}-{hi:.2} W across the\n\
         suite (paper: 0.895 W) vs Titan Xp's 250 W TDP — a ~280x power gap at\n\
         comparable quantized-inference throughput."
    );
}
