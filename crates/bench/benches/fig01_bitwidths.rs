//! Figure 1: bitwidth variation across real-world DNNs.
//!
//! (a) fraction of multiply-adds per (input/weight) bitwidth pair;
//! (b) weight bitwidth distribution; and the `% Multiply-Add` table.

use bitfusion::dnn::stats::BitwidthStats;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion_bench::banner;

fn main() {
    banner(
        "Figure 1 — Bitwidth variation across real-world DNNs",
        "Per-benchmark MAC bitwidth histograms, weight distributions, and the\n\
         multiply-add share. Paper headline: >99% of operations are multiply-adds\n\
         and on average 97.3% of them need four or fewer bits.",
    );

    println!("(a) multiply-add bitwidth histogram (input/weight -> % of MACs)");
    for b in Benchmark::ALL {
        let stats = BitwidthStats::of(&b.model());
        print!("  {:<10}", b.name());
        for s in &stats.mac_shares {
            print!(
                "  {}b/{}b:{:5.1}%",
                s.input_bits,
                s.weight_bits,
                s.share * 100.0
            );
        }
        println!();
    }

    println!();
    println!("(b) weight bitwidth distribution (% of parameters)");
    for b in Benchmark::ALL {
        let stats = BitwidthStats::of(&b.model());
        print!("  {:<10}", b.name());
        for (bits, share) in &stats.weight_shares {
            print!("  {bits}b:{:5.1}%", share * 100.0);
        }
        println!();
    }

    println!();
    println!("(table) % multiply-add operations   (paper: 99.4-99.9%)");
    let mut low_bit_shares = Vec::new();
    for b in Benchmark::ALL {
        let model = b.model();
        let stats = BitwidthStats::of(&model);
        low_bit_shares.push(stats.share_at_or_below(4));
        println!(
            "  {:<10} {:5.1}% multiply-add, {:5.1}% of MACs at <=4 bits",
            b.name(),
            model.mac_fraction() * 100.0,
            stats.share_at_or_below(4) * 100.0
        );
    }
    let mean_low = low_bit_shares.iter().sum::<f64>() / low_bit_shares.len() as f64;
    println!();
    println!(
        "  average MACs at <=4 bits: measured {:.1}% vs paper 97.3%",
        mean_low * 100.0
    );
}
