//! Criterion micro-benchmarks of the library's own hot paths: the BitBrick
//! arithmetic, decomposition, Fusion Unit dot products, functional systolic
//! GEMM, compilation, and whole-model simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bitfusion::compiler::compile;
use bitfusion::core::arch::ArchConfig;
use bitfusion::core::bitbrick::{BitBrick, BrickOperand, Crumb};
use bitfusion::core::bitwidth::PairPrecision;
use bitfusion::core::decompose::decomposed_multiply;
use bitfusion::core::fusion::FusionUnit;
use bitfusion::core::systolic::{IntMatrix, SystolicArray};
use bitfusion::core::util::SplitMix64;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::sim::BitFusionSim;

fn bench_bitbrick(c: &mut Criterion) {
    let x = BrickOperand::new(Crumb::truncate(0b10), true);
    let y = BrickOperand::new(Crumb::truncate(0b11), false);
    c.bench_function("bitbrick/arithmetic", |b| {
        b.iter(|| BitBrick::multiply(black_box(x), black_box(y)))
    });
    c.bench_function("bitbrick/gate_level", |b| {
        b.iter(|| BitBrick::multiply_gates(black_box(x), black_box(y)))
    });
}

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    for (i, w) in [(4u32, 4u32), (8, 8), (16, 16)] {
        let pair = PairPrecision::from_bits(i, w).expect("supported");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{i}x{w}")),
            &pair,
            |b, &pair| {
                b.iter(|| {
                    decomposed_multiply(
                        black_box(pair.input.max_value()),
                        black_box(pair.weight.min_value()),
                        pair,
                    )
                    .expect("in range")
                })
            },
        );
    }
    group.finish();
}

fn bench_fusion_unit(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion_unit_dot_256");
    for (i, w) in [(2u32, 2u32), (4, 1), (8, 8)] {
        let pair = PairPrecision::from_bits(i, w).expect("supported");
        let unit = FusionUnit::new(pair);
        let mut rng = SplitMix64::new(1);
        let pairs: Vec<(i32, i32)> = (0..256)
            .map(|_| {
                (
                    rng.range_i32(pair.input.min_value(), pair.input.max_value()),
                    rng.range_i32(pair.weight.min_value(), pair.weight.max_value()),
                )
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{i}x{w}")),
            &pairs,
            |b, pairs| b.iter(|| unit.dot(black_box(pairs), 0).expect("in range")),
        );
    }
    group.finish();
}

fn bench_systolic(c: &mut Criterion) {
    let pair = PairPrecision::from_bits(2, 2).expect("supported");
    let array = SystolicArray::new(8, 8, pair).expect("non-empty");
    let mut rng = SplitMix64::new(2);
    let weights = IntMatrix::from_fn(32, 64, |_, _| rng.range_i32(-2, 1));
    let input: Vec<i32> = (0..64).map(|_| rng.range_i32(0, 3)).collect();
    c.bench_function("systolic/matvec_32x64_ternary", |b| {
        b.iter(|| array.matvec(black_box(&weights), black_box(&input)).expect("shapes"))
    });
}

fn bench_compile(c: &mut Criterion) {
    let arch = ArchConfig::isca_45nm();
    let model = Benchmark::Cifar10.model();
    c.bench_function("compiler/cifar10_batch16", |b| {
        b.iter(|| compile(black_box(&model), &arch, 16).expect("compiles"))
    });
}

fn bench_simulate(c: &mut Criterion) {
    let sim = BitFusionSim::new(ArchConfig::isca_45nm());
    let model = Benchmark::AlexNet.model();
    let plan = compile(&model, sim.arch(), 16).expect("compiles");
    c.bench_function("sim/alexnet_batch16_from_plan", |b| {
        b.iter(|| sim.run_plan(black_box(&plan)))
    });
    c.bench_function("sim/alexnet_batch16_end_to_end", |b| {
        b.iter(|| sim.run(black_box(&model), 16).expect("compiles"))
    });
    // The trace-driven backend walks every tile segment: this pins its cost
    // multiplier over the closed form (the reason AnalyticBackend stays the
    // sweep default).
    let event = BitFusionSim::event(ArchConfig::isca_45nm());
    c.bench_function("sim/alexnet_batch16_event_backend", |b| {
        b.iter(|| event.run_plan(black_box(&plan)))
    });
}

criterion_group!(
    benches,
    bench_bitbrick,
    bench_decompose,
    bench_fusion_unit,
    bench_systolic,
    bench_compile,
    bench_simulate
);
criterion_main!(benches);
