//! DSE engine scaling: the sharded explorer vs its own sequential path.
//!
//! Runs the same design-space exploration twice — `workers = 1` (the
//! sequential baseline: no threads, no queue) and `workers = all cores` —
//! over a geometry × bandwidth grid crossed with four zoo networks, and
//! reports the wall-clock speedup. On a ≥4-core runner the sharded engine
//! must beat the sequential path by ≥2×; the run also cross-checks that
//! both worker counts produce the identical Pareto frontier (the engine's
//! determinism contract).
//!
//! `cargo bench -p bitfusion-bench --bench dse_scaling` (add `-- --test`
//! for the CI smoke run, which shrinks the grid and skips the assertion).

use std::time::Instant;

use bitfusion::core::arch::ArchConfig;
use bitfusion::core::grid::ArchGrid;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::dnn::QuantSpec;
use bitfusion::sim::pool::default_workers;
use bitfusion::sim::{explore, AnalyticBackend, DseResult, DseSpec, SimOptions};

fn spec(test_mode: bool) -> DseSpec {
    let grid = if test_mode {
        ArchGrid {
            rows: vec![16, 32],
            dram_bits_per_cycle: vec![64, 128],
            ..ArchGrid::from_base(ArchConfig::isca_45nm())
        }
    } else {
        ArchGrid {
            rows: vec![16, 32],
            cols: vec![8, 16],
            dram_bits_per_cycle: vec![64, 128, 256, 512],
            ..ArchGrid::from_base(ArchConfig::isca_45nm())
        }
    };
    let networks = if test_mode {
        vec![Benchmark::Lstm, Benchmark::Rnn]
    } else {
        vec![
            Benchmark::Svhn,
            Benchmark::Cifar10,
            Benchmark::Lstm,
            Benchmark::Rnn,
        ]
    };
    DseSpec {
        grid,
        models: networks.iter().map(|b| b.model()).collect(),
        quant_specs: vec![QuantSpec::paper()],
        batches: vec![16],
        options: SimOptions::default(),
    }
}

fn timed(spec: &DseSpec, workers: usize, iterations: u32) -> (f64, DseResult) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..iterations {
        let start = Instant::now();
        let r = explore(spec, &AnalyticBackend, workers);
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    (best, result.expect("at least one iteration"))
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let cores = default_workers();
    let spec = spec(test_mode);
    let iterations = if test_mode { 1 } else { 2 };

    println!(
        "DSE scaling: {} archs x {} networks = {} points on {cores} core(s)",
        spec.grid.len(),
        spec.models.len(),
        spec.len()
    );

    let (t_seq, r_seq) = timed(&spec, 1, iterations);
    let (t_par, r_par) = timed(&spec, cores, iterations);

    // Determinism contract: any worker count, identical frontier.
    let f_seq = r_seq.pareto_frontier();
    let f_par = r_par.pareto_frontier();
    assert_eq!(f_seq.len(), f_par.len(), "frontier size diverged");
    for (a, b) in f_seq.iter().zip(&f_par) {
        assert_eq!(a.arch, b.arch, "frontier membership diverged");
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    let speedup = t_seq / t_par;
    println!(
        "  sequential (1 worker):   {:8.1} ms  ({} compiles, {} cached points)",
        t_seq * 1e3,
        r_seq.compile_misses,
        r_seq.compile_hits
    );
    println!("  sharded ({cores:>2} workers):   {:8.1} ms", t_par * 1e3);
    println!("  speedup: {speedup:.2}x (frontier: {} architectures, identical)", f_seq.len());

    if !test_mode && cores >= 4 {
        assert!(
            speedup >= 2.0,
            "sharded DSE must be >=2x the sequential path on {cores} cores, got {speedup:.2}x"
        );
        println!("  PASS: >=2x on {cores} cores");
    } else {
        println!("  (2x assertion requires >=4 cores and a full run; skipped)");
    }
}
