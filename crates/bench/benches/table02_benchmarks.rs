//! Table II: the benchmark suite — multiply-add counts and model weight
//! sizes, recomputed from the zoo's explicit layer shapes.

use bitfusion::dnn::zoo::Benchmark;
use bitfusion_bench::banner;

fn main() {
    banner(
        "Table II — Evaluated CNN/RNN benchmarks",
        "Multiply-add operations and packed model-weight sizes derived from the\n\
         reconstructed layer shapes, against the paper's reported values.",
    );
    println!(
        "  {:<10} {:>14} {:>14} {:>8} | {:>14} {:>14} {:>8}",
        "benchmark", "MOps (meas)", "MOps (paper)", "delta", "MB (meas)", "MB (paper)", "delta"
    );
    for b in Benchmark::ALL {
        let m = b.model();
        let mops = m.total_macs() as f64 / 1e6;
        let p_mops = b.paper_mops() as f64;
        let mb = m.weight_bytes() as f64 / 1e6;
        let p_mb = b.paper_weight_mb();
        println!(
            "  {:<10} {:>14.0} {:>14.0} {:>7.1}% | {:>14.2} {:>14.2} {:>7.1}%",
            b.name(),
            mops,
            p_mops,
            (mops - p_mops) / p_mops * 100.0,
            mb,
            p_mb,
            (mb - p_mb) / p_mb * 100.0
        );
    }
    println!();
    println!(
        "  Weight-size deltas for AlexNet/Cifar-10/LeNet-5/ResNet-18 reflect the\n\
         paper's under-specified storage bitwidths; MACs are the load-bearing\n\
         quantity for the performance experiments (see EXPERIMENTS.md)."
    );
}
