//! Ablation: what does *dynamic* bit-level fusion buy over fixed-bitwidth
//! datapaths of the same area?
//!
//! The paper motivates Bit Fusion against exactly this alternative (§I: "a
//! fixed-bitwidth accelerator design would either yield limited benefits to
//! accommodate the worst-case bitwidth requirements, or inevitably lead to a
//! degradation in final accuracy"). We run every benchmark on the same
//! 512-unit array three ways: fused at each layer's native precision, and
//! with the datapath *locked* to 8-bit and 16-bit operands (accuracy-safe
//! fixed designs). The fixed designs waste exactly the parallelism the
//! quantization left on the table.

use bitfusion::core::arch::ArchConfig;
use bitfusion::core::bitwidth::PairPrecision;
use bitfusion::core::util::geomean;
use bitfusion::dnn::layer::Layer;
use bitfusion::dnn::model::Model;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::sim::BitFusionSim;
use bitfusion_bench::banner;

fn forced(model: &Model, bits: u32) -> Model {
    let mut m = model.clone();
    m.name = format!("{}-{}b", m.name, bits);
    let p = PairPrecision::from_bits(bits, bits).expect("supported");
    for l in &mut m.layers {
        match &mut l.layer {
            Layer::Conv2d(c) => c.precision = p,
            Layer::Dense(d) => d.precision = p,
            Layer::Recurrent(r) => r.precision = p,
            _ => {}
        }
    }
    m
}

fn main() {
    banner(
        "Ablation — dynamic fusion vs fixed-bitwidth datapaths (same area)",
        "Cycles per input on the 45 nm array: native fused precision vs the\n\
         same array locked to 8-bit and 16-bit operands.",
    );
    let sim = BitFusionSim::new(ArchConfig::isca_45nm());
    let mut gain8 = Vec::new();
    let mut gain16 = Vec::new();
    let mut egain8 = Vec::new();
    println!(
        "  {:<10} {:>12} {:>12} {:>12} {:>9} {:>9} {:>11}",
        "benchmark", "fused cyc", "8-bit cyc", "16-bit cyc", "vs 8b", "vs 16b", "energy vs8b"
    );
    for b in Benchmark::ALL {
        let native = sim.run(&b.model(), 16).expect("compiles");
        let at8 = sim.run(&forced(&b.model(), 8), 16).expect("compiles");
        let at16 = sim.run(&forced(&b.model(), 16), 16).expect("compiles");
        let g8 = at8.total_cycles() as f64 / native.total_cycles() as f64;
        let g16 = at16.total_cycles() as f64 / native.total_cycles() as f64;
        let e8 = at8.total_energy().total_pj() / native.total_energy().total_pj();
        gain8.push(g8);
        gain16.push(g16);
        egain8.push(e8);
        println!(
            "  {:<10} {:>12} {:>12} {:>12} {:>8.2}x {:>8.2}x {:>10.2}x",
            b.name(),
            native.total_cycles() / 16,
            at8.total_cycles() / 16,
            at16.total_cycles() / 16,
            g8,
            g16,
            e8
        );
    }
    println!();
    println!(
        "  geomean: fusion is {:.2}x faster than a fixed 8-bit datapath and {:.2}x\n\
         faster than a fixed 16-bit datapath of the same area ({:.2}x energy vs 8-bit).",
        geomean(&gain8),
        geomean(&gain16),
        geomean(&egain8)
    );
    println!(
        "  (the fixed designs pay the worst-case bitwidth everywhere; the binary\n\
         benchmarks lose the most — this is the dimension Figure 2 opens.)"
    );
}
