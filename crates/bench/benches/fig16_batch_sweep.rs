//! Figure 16: Bit Fusion performance as the batch size grows from 1 to 256
//! (per-input speedup relative to batch 1).

use bitfusion::core::arch::ArchConfig;
use bitfusion::core::util::geomean;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::sim::BitFusionSim;
use bitfusion_bench::{banner, paper, verdict};

const BATCHES: [u64; 5] = [1, 4, 16, 64, 256];

fn main() {
    banner(
        "Figure 16 — Sensitivity to batch size",
        "Per-input speedup relative to batch 1. Paper geomeans:\n\
         1.00/1.66/2.43/2.68/2.68; RNN/LSTM reach ~21x (weight reads amortize),\n\
         CNNs gain modestly; gains flatten past batch 64.",
    );
    let sim = BitFusionSim::new(ArchConfig::isca_45nm());
    let mut per_input: Vec<Vec<f64>> = Vec::new();
    for b in Benchmark::ALL {
        let mut row = Vec::new();
        for batch in BATCHES {
            let r = sim.run(&b.model(), batch).expect("zoo model compiles");
            row.push(r.total_cycles() as f64 / batch as f64);
        }
        per_input.push(row);
    }
    print!("  {:<10}", "benchmark");
    for batch in BATCHES {
        print!(" {batch:>8}");
    }
    println!("   (speedup vs batch 1)");
    for (bi, b) in Benchmark::ALL.iter().enumerate() {
        print!("  {:<10}", b.name());
        for wi in 0..BATCHES.len() {
            print!(" {:>7.2}x", per_input[bi][0] / per_input[bi][wi]);
        }
        println!();
    }
    println!();
    for (wi, (batch, paper_geo)) in paper::FIG16_GEOMEAN.iter().enumerate() {
        let speedups: Vec<f64> = (0..Benchmark::ALL.len())
            .map(|bi| per_input[bi][0] / per_input[bi][wi])
            .collect();
        verdict(&format!("geomean at batch {batch:>3}"), geomean(&speedups), *paper_geo);
    }
    let rnn = Benchmark::ALL.iter().position(|&b| b == Benchmark::Rnn).expect("rnn");
    let peak = per_input[rnn][0] / per_input[rnn][4];
    println!();
    verdict("RNN peak batching speedup", peak, paper::FIG16_RNN_PEAK);
    // Saturation check: batch 256 barely improves on batch 64.
    let geo = |wi: usize| {
        geomean(
            &(0..Benchmark::ALL.len())
                .map(|bi| per_input[bi][0] / per_input[bi][wi])
                .collect::<Vec<_>>(),
        )
    };
    let saturation = geo(4) / geo(3);
    println!(
        "  saturation beyond batch 64: {:.2}x marginal gain (paper: 1.00x) -> {}",
        saturation,
        if saturation < 1.15 { "saturates, matches" } else { "NO" }
    );
}
