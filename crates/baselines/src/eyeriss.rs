//! The Eyeriss baseline: a row-stationary dataflow accelerator model
//! (Chen et al., ISCA 2016), configured per Table III of the Bit Fusion
//! paper: 168 PEs, 16-bit operands, 181.5 KB of on-chip storage, 500 MHz,
//! 45 nm.
//!
//! The row-stationary mapping assigns filter rows to PE-array rows and
//! output rows to PE columns; PE *sets* replicate across the 12×14 array.
//! Utilization and the register-file-dominated energy profile follow the
//! published Eyeriss analysis (per-MAC data movement of roughly four RF
//! accesses, NoC transfers folded into the buffer category, and a global
//! buffer in front of DRAM).

use bitfusion_dnn::layer::Layer;
use bitfusion_dnn::model::Model;
use bitfusion_energy::{EnergyBreakdown, EyerissEnergy, DRAM_PJ_PER_BIT};

use crate::report::BaselineReport;

/// Eyeriss configuration (Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EyerissConfig {
    /// PE array rows.
    pub pe_rows: usize,
    /// PE array columns.
    pub pe_cols: usize,
    /// Clock frequency, MHz.
    pub freq_mhz: u32,
    /// Global buffer capacity, bytes.
    pub glb_bytes: usize,
    /// Off-chip bandwidth in bits per cycle (shared with the Bit Fusion
    /// configuration for a like-for-like memory system).
    pub dram_bits_per_cycle: u32,
    /// Effective fraction of peak DRAM bandwidth.
    pub dram_efficiency: f64,
    /// Operand width in bits (Eyeriss computes on 16-bit operands).
    pub operand_bits: u32,
}

impl EyerissConfig {
    /// The paper's configuration: 168 PEs at 500 MHz with 181.5 KB of
    /// on-chip storage (108 KB of it the global buffer), on the same
    /// 128 bits/cycle memory interface as Bit Fusion.
    pub fn isca_45nm() -> Self {
        EyerissConfig {
            pe_rows: 12,
            pe_cols: 14,
            freq_mhz: 500,
            glb_bytes: 108 * 1024,
            dram_bits_per_cycle: 128,
            dram_efficiency: 0.70,
            operand_bits: 16,
        }
    }

    /// Total processing elements.
    pub const fn pes(&self) -> usize {
        self.pe_rows * self.pe_cols
    }
}

/// RF accesses per MAC in the row-stationary dataflow (input read, weight
/// read, partial-sum read and write, plus spill slack) — RF dominates the
/// published Eyeriss energy profile at >50%.
const RF_ACCESSES_PER_MAC: f64 = 5.0;
/// Inter-PE NoC transfers per MAC (diagonal input reuse plus psum hops).
const NOC_TRANSFERS_PER_MAC: f64 = 0.15;
/// Global-buffer 16-bit accesses per MAC; the RS dataflow filters almost
/// all traffic through the RF hierarchy, leaving the GLB near 1% of energy
/// in the published breakdown.
const GLB_ACCESSES_PER_MAC: f64 = 0.02;

/// The Eyeriss simulator.
#[derive(Debug, Clone, Copy)]
pub struct EyerissSim {
    config: EyerissConfig,
    energy: EyerissEnergy,
}

impl Default for EyerissSim {
    fn default() -> Self {
        EyerissSim::new(EyerissConfig::isca_45nm())
    }
}

impl EyerissSim {
    /// Creates a simulator with the 45 nm energy constants.
    pub fn new(config: EyerissConfig) -> Self {
        EyerissSim {
            config,
            energy: EyerissEnergy::isca_45nm(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EyerissConfig {
        &self.config
    }

    /// Row-stationary PE utilization for a layer.
    ///
    /// Convolutions map filter rows × output rows as a PE set and replicate
    /// it; fully-connected and recurrent layers interleave independent
    /// output neurons across the array at a fixed published efficiency.
    pub fn utilization(&self, layer: &Layer) -> f64 {
        match layer {
            Layer::Conv2d(c) => {
                let set_rows = c.kernel.0.min(self.config.pe_rows);
                let set_cols = c.output_hw().0.min(self.config.pe_cols);
                let set = set_rows * set_cols;
                let replicas = (self.config.pes() / set).max(1);
                ((set * replicas) as f64 / self.config.pes() as f64).min(1.0)
            }
            // Depthwise maps like a grouped convolution: the same filter-row
            // × output-row PE sets, replicated per channel.
            Layer::DepthwiseConv2d(c) => {
                let set_rows = c.kernel.0.min(self.config.pe_rows);
                let set_cols = c.output_hw().0.min(self.config.pe_cols);
                let set = set_rows * set_cols;
                let replicas = (self.config.pes() / set).max(1);
                ((set * replicas) as f64 / self.config.pes() as f64).min(1.0)
            }
            Layer::Dense(_) | Layer::Recurrent(_) => 0.75,
            _ => 1.0,
        }
    }

    /// Off-chip traffic for a MAC layer (bits, whole batch): 16-bit inputs,
    /// weights and outputs, with reload factors when the working set
    /// overflows the global buffer.
    fn layer_dram_bits(&self, layer: &Layer, batch: u64) -> u64 {
        let ob = self.config.operand_bits as u64;
        let half_glb_bits = (self.config.glb_bytes as u64) * 8 / 2;
        match layer {
            Layer::Conv2d(c) => {
                let inputs = c.input_elems() * batch * ob;
                let outputs = c.output_elems() * batch * ob;
                let weights = c.params() * ob;
                // Oversized filter sets force ifmap re-reads per filter
                // chunk.
                let reload_i = (weights.div_ceil(half_glb_bits)).max(1);
                inputs * reload_i + outputs + weights
            }
            Layer::DepthwiseConv2d(c) => {
                // Per-channel filters are tiny (R·S weights each), so the
                // working set never forces ifmap re-reads.
                let inputs = c.input_elems() * batch * ob;
                let outputs = c.output_elems() * batch * ob;
                let weights = c.params() * ob;
                inputs + outputs + weights
            }
            Layer::Dense(d) => {
                let inputs = d.in_features as u64 * batch * ob;
                let outputs = d.out_features as u64 * batch * ob;
                let weights = d.params() * ob;
                // Batched output-stationary schedule: an input slice of all
                // batch images plus an output-tile of partials stay in the
                // GLB while the weights stream exactly once per batch. The
                // input slice is re-read per output tile.
                let out_tile = (half_glb_bits / (batch * 32)).max(1);
                let reload_i = (d.out_features as u64).div_ceil(out_tile).clamp(1, 16);
                inputs * reload_i + outputs + weights
            }
            Layer::Recurrent(r) => {
                let k = (r.input_size + r.hidden_size) as u64;
                let m = r.cell.gates() * r.hidden_size as u64;
                let inputs = k * batch * ob;
                let outputs = m * batch * ob;
                let weights = r.params() * ob;
                let out_tile = (half_glb_bits / (batch * 32)).max(1);
                let reload_i = m.div_ceil(out_tile).clamp(1, 16);
                inputs * reload_i + outputs + weights
            }
            Layer::Pool2d(p) => (p.output_elems() + p.ops()) * batch * ob / 4,
            Layer::Eltwise(e) => 3 * e.elements as u64 * batch * ob,
            Layer::Activation(a) => 2 * a.elements as u64 * batch * ob,
        }
    }

    /// Runs a model at a batch size.
    pub fn run(&self, model: &Model, batch: u64) -> BaselineReport {
        let mut cycles: u64 = 0;
        let mut energy = EnergyBreakdown::default();
        let bw = self.config.dram_bits_per_cycle as f64 * self.config.dram_efficiency;
        for named in &model.layers {
            let layer = &named.layer;
            let macs = layer.macs() * batch;
            let dram_bits = self.layer_dram_bits(layer, batch);
            let compute_cycles = if macs > 0 {
                (macs as f64 / (self.config.pes() as f64 * self.utilization(layer))).ceil() as u64
            } else {
                // Pooling/eltwise run on the fly; charge one op per PE pass.
                layer.other_ops() * batch / self.config.pes() as u64
            };
            let dma_cycles = (dram_bits as f64 / bw).ceil() as u64;
            cycles += compute_cycles.max(dma_cycles);

            let e = &self.energy;
            energy += EnergyBreakdown {
                compute_pj: macs as f64 * e.mac16_pj
                    + layer.other_ops() as f64 * batch as f64 * e.mac16_pj * 0.25,
                buffer_pj: macs as f64
                    * (NOC_TRANSFERS_PER_MAC * e.noc16_pj + GLB_ACCESSES_PER_MAC * e.glb16_pj),
                rf_pj: macs as f64 * RF_ACCESSES_PER_MAC * e.rf16_pj,
                dram_pj: dram_bits as f64 * DRAM_PJ_PER_BIT,
            };
        }
        BaselineReport {
            platform: "eyeriss".into(),
            model_name: model.name.clone(),
            batch,
            cycles,
            freq_mhz: self.config.freq_mhz,
            runtime_ms: cycles as f64 / (self.config.freq_mhz as f64 * 1e3),
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_dnn::zoo::Benchmark;

    #[test]
    fn config_matches_table_3() {
        let c = EyerissConfig::isca_45nm();
        assert_eq!(c.pes(), 168);
        assert_eq!(c.freq_mhz, 500);
    }

    #[test]
    fn conv_utilization_matches_published_range() {
        // AlexNet conv layers on Eyeriss utilize 76-93% of PEs.
        let sim = EyerissSim::default();
        let model = Benchmark::AlexNet.reference_model();
        for l in model.layers.iter().filter(|l| matches!(l.layer, Layer::Conv2d(_))) {
            let u = sim.utilization(&l.layer);
            assert!(u > 0.6 && u <= 1.0, "{}: {u}", l.name);
        }
    }

    #[test]
    fn runs_all_reference_models() {
        let sim = EyerissSim::default();
        for b in Benchmark::ALL {
            let r = sim.run(&b.reference_model(), 16);
            assert!(r.cycles > 0, "{b}");
            assert!(r.energy.total_pj() > 0.0, "{b}");
        }
    }

    #[test]
    fn rf_dominates_energy_on_convnets() {
        // Figure 14: Eyeriss spends ~half its energy in the register files.
        let sim = EyerissSim::default();
        let r = sim.run(&Benchmark::Cifar10.reference_model(), 16);
        let [_, _, rf, _] = r.energy.fractions();
        assert!(rf > 0.35, "rf fraction {rf}");
    }

    #[test]
    fn compute_bound_on_big_convs() {
        // At 168 16-bit PEs, AlexNet is compute-bound: > 4M cycles/image.
        let sim = EyerissSim::default();
        let r = sim.run(&Benchmark::AlexNet.reference_model(), 16);
        let per_image = r.cycles as f64 / 16.0;
        assert!(per_image > 4.0e6, "{per_image}");
    }

    #[test]
    fn fc_heavy_models_memory_bound_at_batch_1() {
        let sim = EyerissSim::default();
        let r1 = sim.run(&Benchmark::Lstm.reference_model(), 1);
        let r16 = sim.run(&Benchmark::Lstm.reference_model(), 16);
        // Per-input cycles shrink with batch (weights amortized).
        assert!(r1.cycles as f64 > r16.cycles as f64 / 16.0 * 2.0);
    }
}
