//! Common result type for the baseline accelerator models.

use std::fmt;

use bitfusion_energy::EnergyBreakdown;

/// Performance/energy result of one baseline running one model at one batch
/// size.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// Baseline name ("eyeriss", "stripes", "titan-xp", ...).
    pub platform: String,
    /// Model name.
    pub model_name: String,
    /// Batch size.
    pub batch: u64,
    /// Total cycles for the batch (0 for the GPU models, which report time
    /// directly).
    pub cycles: u64,
    /// Clock in MHz.
    pub freq_mhz: u32,
    /// Wall-clock milliseconds for the batch.
    pub runtime_ms: f64,
    /// Energy for the batch.
    pub energy: EnergyBreakdown,
}

impl BaselineReport {
    /// Latency per input in milliseconds.
    pub fn latency_ms_per_input(&self) -> f64 {
        self.runtime_ms / self.batch as f64
    }

    /// Energy per input.
    pub fn energy_per_input(&self) -> EnergyBreakdown {
        self.energy.scaled(1.0 / self.batch as f64)
    }
}

impl fmt::Display for BaselineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} (batch {}): {:.3} ms/input, {}",
            self.model_name,
            self.platform,
            self.batch,
            self.latency_ms_per_input(),
            self.energy_per_input()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_input_scaling() {
        let r = BaselineReport {
            platform: "x".into(),
            model_name: "m".into(),
            batch: 4,
            cycles: 4000,
            freq_mhz: 500,
            runtime_ms: 8.0,
            energy: EnergyBreakdown {
                compute_pj: 4.0,
                buffer_pj: 0.0,
                rf_pj: 0.0,
                dram_pj: 4.0,
            },
        };
        assert_eq!(r.latency_ms_per_input(), 2.0);
        assert_eq!(r.energy_per_input().total_pj(), 2.0);
        assert!(r.to_string().contains("on x"));
    }
}
