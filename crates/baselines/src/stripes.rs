//! The Stripes baseline: a bit-serial DNN accelerator model (Judd et al.,
//! MICRO 2016), configured per Table III and §V-A of the Bit Fusion paper:
//! 16 tiles of 4096 Serial Inner-Product units (SIPs), 980 MHz, 2 MB eDRAM
//! plus 16 KB SRAM per tile, 65 nm numbers scaled to 45 nm.
//!
//! Stripes fixes inputs at 16 bits and streams *weight* bits serially: a
//! multiply-accumulate over a `p`-bit weight takes `p` SIP cycles, so
//! throughput and (compute) energy scale with the weight bitwidth only —
//! the contrast Bit Fusion exploits on both operands (Figure 18).
//!
//! The head-to-head uses the paper's per-tile framing ("we replace the 4096
//! SIPs in each tile of Stripes with our proposed Bit Fusion systolic array
//! with 512 Fusion Units ... and use the same total on-chip memory"): one
//! Stripes tile against one 512-unit Bit Fusion array on the same memory
//! interface.

use bitfusion_dnn::model::Model;
use bitfusion_energy::{EnergyBreakdown, StripesEnergy, DRAM_PJ_PER_BIT};

use crate::report::BaselineReport;

/// Stripes configuration (per tile).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StripesConfig {
    /// Serial inner-product units per tile.
    pub sips_per_tile: usize,
    /// Clock frequency, MHz.
    pub freq_mhz: u32,
    /// Per-tile eDRAM capacity in bytes (holds feature maps).
    pub edram_bytes: usize,
    /// Off-chip bandwidth in bits per cycle for the tile.
    pub dram_bits_per_cycle: u32,
    /// Effective fraction of peak DRAM bandwidth.
    pub dram_efficiency: f64,
    /// Input operand width (fixed at 16 bits in Stripes).
    pub input_bits: u32,
    /// Achieved fraction of the `sips / weight_bits` peak. The Stripes
    /// paper's own per-layer results sit at 30–55% of the naïve peak
    /// (window alignment at feature-map edges, per-precision group
    /// synchronization, and serial ramp-up); 0.45 reproduces its published
    /// throughputs.
    pub sip_efficiency: f64,
}

impl StripesConfig {
    /// The Table III per-tile configuration.
    pub fn isca_45nm() -> Self {
        StripesConfig {
            sips_per_tile: 4096,
            freq_mhz: 980,
            edram_bytes: 2 * 1024 * 1024,
            dram_bits_per_cycle: 128,
            dram_efficiency: 0.70,
            input_bits: 16,
            sip_efficiency: 0.45,
        }
    }
}

/// The Stripes simulator (one tile).
#[derive(Debug, Clone, Copy)]
pub struct StripesSim {
    config: StripesConfig,
    energy: StripesEnergy,
}

impl Default for StripesSim {
    fn default() -> Self {
        StripesSim::new(StripesConfig::isca_45nm())
    }
}

impl StripesSim {
    /// Creates a simulator with the 45 nm-scaled energy constants.
    pub fn new(config: StripesConfig) -> Self {
        StripesSim {
            config,
            energy: StripesEnergy::isca_45nm(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &StripesConfig {
        &self.config
    }

    /// Achieved tile throughput in MACs per cycle at a weight bitwidth.
    pub fn macs_per_cycle(&self, weight_bits: u32) -> f64 {
        self.config.sips_per_tile as f64 / weight_bits.max(1) as f64
            * self.config.sip_efficiency
    }

    /// Runs a model at a batch size.
    ///
    /// Per MAC layer: compute takes `weight_bits` serial cycles per MAC
    /// across the SIP array; traffic moves 16-bit inputs/outputs and
    /// `weight_bits`-wide weights.
    pub fn run(&self, model: &Model, batch: u64) -> BaselineReport {
        let mut cycles = 0u64;
        let mut energy = EnergyBreakdown::default();
        let bw = self.config.dram_bits_per_cycle as f64 * self.config.dram_efficiency;
        let ib = self.config.input_bits as u64;
        for named in &model.layers {
            let layer = &named.layer;
            let macs = layer.macs() * batch;
            if macs == 0 {
                continue;
            }
            let p = layer
                .precision()
                .map_or(16, |pr| pr.weight.bits())
                .max(1);
            let compute_cycles = (macs as f64 / self.macs_per_cycle(p)).ceil() as u64;

            // Traffic: inputs/outputs at 16 bits through the eDRAM, weights
            // at their serial width, amortized over the batch.
            let (in_elems, out_elems, w_elems) = match layer {
                bitfusion_dnn::layer::Layer::Conv2d(c) => {
                    (c.input_elems() * batch, c.output_elems() * batch, c.params())
                }
                bitfusion_dnn::layer::Layer::DepthwiseConv2d(c) => {
                    (c.input_elems() * batch, c.output_elems() * batch, c.params())
                }
                bitfusion_dnn::layer::Layer::Dense(d) => (
                    d.in_features as u64 * batch,
                    d.out_features as u64 * batch,
                    d.params(),
                ),
                bitfusion_dnn::layer::Layer::Recurrent(r) => (
                    (r.input_size + r.hidden_size) as u64 * batch,
                    r.cell.gates() * r.hidden_size as u64 * batch,
                    r.params(),
                ),
                _ => (0, 0, 0),
            };
            // Stripes consumes weight *bits* serially in compute, but its
            // memory system is byte-oriented — bit-level packed storage
            // with variable-width access logic is precisely Bit Fusion's
            // memory-side contribution (§I). Weights therefore move at
            // byte-aligned widths.
            let w_mem_bits = p.max(8) as u64;
            let dram_bits = in_elems * ib + out_elems * ib + w_elems * w_mem_bits;
            let dma_cycles = (dram_bits as f64 / bw).ceil() as u64;
            cycles += compute_cycles.max(dma_cycles);

            // Energy: serial compute scales with weight bits; buffers move
            // 16-bit data through eDRAM and serial weights through SRAM.
            let e = &self.energy;
            energy += EnergyBreakdown {
                compute_pj: macs as f64 * p as f64 * e.sip_cycle_pj / 16.0,
                buffer_pj: ((in_elems + out_elems) * ib * 2) as f64 * e.edram_pj_per_bit
                    + (macs * p as u64) as f64 / 16.0 * e.sram_pj_per_bit,
                rf_pj: 0.0,
                dram_pj: dram_bits as f64 * DRAM_PJ_PER_BIT,
            };
        }
        BaselineReport {
            platform: "stripes".into(),
            model_name: model.name.clone(),
            batch,
            cycles,
            freq_mhz: self.config.freq_mhz,
            runtime_ms: cycles as f64 / (self.config.freq_mhz as f64 * 1e3),
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_dnn::zoo::Benchmark;

    #[test]
    fn throughput_scales_inversely_with_weight_bits() {
        let sim = StripesSim::default();
        let eff = sim.config().sip_efficiency;
        assert_eq!(sim.macs_per_cycle(1), 4096.0 * eff);
        assert_eq!(sim.macs_per_cycle(2), 2048.0 * eff);
        assert_eq!(sim.macs_per_cycle(16), 256.0 * eff);
    }

    #[test]
    fn runs_all_benchmarks() {
        let sim = StripesSim::default();
        for b in Benchmark::ALL {
            let r = sim.run(&b.model(), 16);
            assert!(r.cycles > 0, "{b}");
            assert!(r.energy.total_pj() > 0.0, "{b}");
        }
    }

    #[test]
    fn binary_weights_run_fastest() {
        let sim = StripesSim::default();
        // Same-topology comparison: Cifar-10 (1-bit weights) sustains more
        // MACs per cycle than LSTM (4-bit weights).
        let cifar = sim.run(&Benchmark::Cifar10.model(), 16);
        let lstm = sim.run(&Benchmark::Lstm.model(), 16);
        let cifar_rate = Benchmark::Cifar10.model().total_macs() as f64 * 16.0 / cifar.cycles as f64;
        let lstm_rate = Benchmark::Lstm.model().total_macs() as f64 * 16.0 / lstm.cycles as f64;
        assert!(cifar_rate > lstm_rate);
    }

    #[test]
    fn sixteen_bit_input_traffic_hurts() {
        // Stripes moves 16-bit activations regardless of the model's real
        // input precision — one of the two effects Figure 18 captures.
        let sim = StripesSim::default();
        let r = sim.run(&Benchmark::Svhn.model(), 1);
        // SVHN inputs/outputs are ~180k elements; at 16 bits that's ~3 Mb
        // of fmap traffic where Bit Fusion moves ~0.2 Mb.
        assert!(r.energy.dram_pj > 0.0);
    }
}
