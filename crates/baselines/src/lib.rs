//! # bitfusion-baselines
//!
//! The comparison platforms of the Bit Fusion evaluation (Sharma et al.,
//! ISCA 2018, §V):
//!
//! * [`eyeriss`] — the row-stationary dataflow accelerator (Figures 13/14):
//!   168 16-bit PEs with an RF/NoC/GLB/DRAM hierarchy;
//! * [`stripes`] — the bit-serial accelerator (Figure 18): SIP tiles whose
//!   throughput scales with the *weight* bitwidth only, against 16-bit
//!   input traffic;
//! * [`gpu`] — analytic rooflines for the Tegra X2 and Titan Xp
//!   (Figure 17), substituting for TensorRT measurements per DESIGN.md;
//! * [`loom`] — the fully-temporal (both-operands-serial) design of the
//!   §III-C qualitative comparison, made quantitative.
//!
//! All baselines share the DRAM energy constant and bandwidth-efficiency
//! conventions of `bitfusion-energy`/`bitfusion-sim`, so cross-platform
//! ratios compare like against like. The Bit Fusion side of every
//! comparison runs the analytic `SimBackend` (cross-validated against the
//! trace-driven one — see DESIGN.md's backend contract), so baseline ratios
//! inherit the same fidelity guarantees.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod eyeriss;
pub mod gpu;
pub mod loom;
pub mod report;
pub mod stripes;

pub use eyeriss::{EyerissConfig, EyerissSim};
pub use gpu::{GpuMode, GpuModel};
pub use loom::{LoomConfig, LoomSim};
pub use report::BaselineReport;
pub use stripes::{StripesConfig, StripesSim};
