//! The Loom baseline: a *fully-temporal* bit-serial accelerator
//! (Sharify et al.), which serializes **both** operands.
//!
//! §III-C of the Bit Fusion paper compares against Loom qualitatively: "a
//! fully-temporal design ... would consume significantly larger area and
//! power compared to our spatially composable Fusion Unit. Furthermore, a
//! fully-temporal design iterates in the form of a nested loop over the
//! bits of the two operands; hence requiring more accesses to the SRAM."
//! This model makes that comparison quantitative: per multiply, Loom spends
//! `input_bits × weight_bits` serial cycles per lane (against Bit Fusion's
//! single fused cycle at ≤8-bit operands) and re-reads its operand SRAM on
//! every bit step.

use bitfusion_dnn::model::Model;
use bitfusion_energy::{EnergyBreakdown, StripesEnergy, DRAM_PJ_PER_BIT};

use crate::report::BaselineReport;

/// Loom configuration (area-matched to the Stripes/Bit Fusion tile).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoomConfig {
    /// Serial lanes per tile. The temporal design packs fewer lanes per
    /// area than Fusion Units (Figure 10: 3.5× area per 16-lane group), so
    /// an area-matched tile carries proportionally fewer lanes than
    /// Stripes' 4096 SIPs.
    pub lanes: usize,
    /// Clock frequency, MHz.
    pub freq_mhz: u32,
    /// Off-chip bandwidth in bits per cycle.
    pub dram_bits_per_cycle: u32,
    /// Effective fraction of peak DRAM bandwidth.
    pub dram_efficiency: f64,
    /// Achieved fraction of the serial peak (same derating family as
    /// Stripes).
    pub lane_efficiency: f64,
}

impl LoomConfig {
    /// Area-matched tile: the 1.1 mm² budget divided by the temporal
    /// design's per-16-lane area (Figure 10: 4424 µm² predicted) gives
    /// ~3980 two-bit lanes; each lane processes one 2-bit × 2-bit step per
    /// cycle.
    pub fn area_matched_45nm() -> Self {
        LoomConfig {
            lanes: 3980,
            freq_mhz: 980,
            dram_bits_per_cycle: 128,
            dram_efficiency: 0.70,
            lane_efficiency: 0.45,
        }
    }
}

/// The Loom simulator (one tile).
#[derive(Debug, Clone, Copy)]
pub struct LoomSim {
    config: LoomConfig,
    energy: StripesEnergy,
}

impl Default for LoomSim {
    fn default() -> Self {
        LoomSim::new(LoomConfig::area_matched_45nm())
    }
}

impl LoomSim {
    /// Creates a simulator.
    pub fn new(config: LoomConfig) -> Self {
        LoomSim {
            config,
            energy: StripesEnergy::isca_45nm(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LoomConfig {
        &self.config
    }

    /// Achieved MACs per cycle at an (input, weight) bit pair: each lane
    /// iterates the nested bit loop over 2-bit digit pairs.
    pub fn macs_per_cycle(&self, input_bits: u32, weight_bits: u32) -> f64 {
        let steps = (input_bits.div_ceil(2) * weight_bits.div_ceil(2)).max(1) as f64;
        self.config.lanes as f64 / steps * self.config.lane_efficiency
    }

    /// Runs a model at a batch size. Both operands move at their native
    /// widths (Loom, unlike Stripes, packs both), but the nested serial
    /// loop re-reads the operand SRAM every bit step.
    pub fn run(&self, model: &Model, batch: u64) -> BaselineReport {
        let mut cycles = 0u64;
        let mut energy = EnergyBreakdown::default();
        let bw = self.config.dram_bits_per_cycle as f64 * self.config.dram_efficiency;
        for named in &model.layers {
            let layer = &named.layer;
            let macs = layer.macs() * batch;
            if macs == 0 {
                continue;
            }
            let p = layer.precision().expect("mac layers carry precision");
            let (ib, wb) = (p.input.bits(), p.weight.bits());
            let compute_cycles = (macs as f64 / self.macs_per_cycle(ib, wb)).ceil() as u64;
            let (in_elems, out_elems, w_elems) = match layer {
                bitfusion_dnn::layer::Layer::Conv2d(c) => {
                    (c.input_elems() * batch, c.output_elems() * batch, c.params())
                }
                bitfusion_dnn::layer::Layer::DepthwiseConv2d(c) => {
                    (c.input_elems() * batch, c.output_elems() * batch, c.params())
                }
                bitfusion_dnn::layer::Layer::Dense(d) => (
                    d.in_features as u64 * batch,
                    d.out_features as u64 * batch,
                    d.params(),
                ),
                bitfusion_dnn::layer::Layer::Recurrent(r) => (
                    (r.input_size + r.hidden_size) as u64 * batch,
                    r.cell.gates() * r.hidden_size as u64 * batch,
                    r.params(),
                ),
                _ => (0, 0, 0),
            };
            let dram_bits =
                in_elems * ib as u64 + out_elems * 8.max(ib) as u64 + w_elems * wb as u64;
            let dma_cycles = (dram_bits as f64 / bw).ceil() as u64;
            cycles += compute_cycles.max(dma_cycles);

            // The nested bit loop's SRAM cost: one operand-buffer access per
            // serial step (the paper's "more accesses to the SRAM").
            let steps = (ib.div_ceil(2) * wb.div_ceil(2)).max(1) as u64;
            let e = &self.energy;
            energy += EnergyBreakdown {
                compute_pj: (macs * steps) as f64 * e.sip_cycle_pj / 16.0,
                buffer_pj: (macs * steps) as f64 * 4.0 * e.sram_pj_per_bit,
                rf_pj: 0.0,
                dram_pj: dram_bits as f64 * DRAM_PJ_PER_BIT,
            };
        }
        BaselineReport {
            platform: "loom".into(),
            model_name: model.name.clone(),
            batch,
            cycles,
            freq_mhz: self.config.freq_mhz,
            runtime_ms: cycles as f64 / (self.config.freq_mhz as f64 * 1e3),
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_dnn::zoo::Benchmark;

    #[test]
    fn serial_steps_scale_with_both_operands() {
        let sim = LoomSim::default();
        // 2/2: one step per lane; 4/4: four; 8/8: sixteen.
        let r22 = sim.macs_per_cycle(2, 2);
        let r44 = sim.macs_per_cycle(4, 4);
        let r88 = sim.macs_per_cycle(8, 8);
        assert!((r22 / r44 - 4.0).abs() < 1e-9);
        assert!((r44 / r88 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn runs_the_suite() {
        let sim = LoomSim::default();
        for b in Benchmark::ALL {
            let r = sim.run(&b.model(), 16);
            assert!(r.cycles > 0, "{b}");
            assert!(r.energy.total_pj() > 0.0, "{b}");
        }
    }

    #[test]
    fn loom_buffer_energy_exceeds_stripes() {
        // The paper's qualitative claim: the fully-temporal nested bit loop
        // costs more SRAM energy than Stripes' single-serial design.
        use crate::stripes::StripesSim;
        let loom = LoomSim::default();
        let stripes = StripesSim::default();
        let b = Benchmark::Lstm; // 4/4: Loom pays 4 steps vs Stripes' 4 weight bits
        let l = loom.run(&b.model(), 16);
        let s = stripes.run(&b.model(), 16);
        assert!(
            l.energy.buffer_pj > s.energy.buffer_pj,
            "loom {} vs stripes {}",
            l.energy.buffer_pj,
            s.energy.buffer_pj
        );
    }
}
