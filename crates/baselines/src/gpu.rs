//! GPU baselines: analytic roofline models of the Tegra X2 and Titan Xp
//! (Table III), substituting for the paper's TensorRT measurements (see
//! DESIGN.md's substitution table).
//!
//! Per layer, the model charges `2·MACs / (peak FLOP/s × efficiency)` plus a
//! fixed kernel-launch overhead. Efficiency depends on layer kind and on how
//! much parallel work the layer offers relative to the GPU's width — big
//! devices lose efficiency on small layers, which is exactly the TX2-vs-
//! Titan-Xp contrast Figure 17 shows. INT8 mode (TensorRT `dp4a`) quadruples
//! per-core throughput on convolutions and fully-connected layers but not
//! the achievable efficiency.

use bitfusion_dnn::layer::Layer;
use bitfusion_dnn::model::Model;
use bitfusion_energy::EnergyBreakdown;

use crate::report::BaselineReport;

/// Numeric mode the GPU runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuMode {
    /// Single-precision floating point.
    Fp32,
    /// 8-bit integer via `dp4a` (4-way dot product per lane per cycle).
    Int8,
}

/// An analytic GPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Platform name.
    pub name: &'static str,
    /// CUDA cores.
    pub cores: u32,
    /// Boost clock, MHz.
    pub freq_mhz: u32,
    /// Board power, watts (used for the energy report).
    pub tdp_w: f64,
    /// Kernel launch + framework overhead per layer, microseconds.
    pub launch_overhead_us: f64,
    /// Work (in MACs) at which a layer reaches half the peak efficiency —
    /// proportional to device width: big GPUs need big layers.
    pub half_efficiency_macs: f64,
    /// Peak fraction achievable on dense convolutions.
    pub conv_peak_fraction: f64,
    /// Peak fraction achievable on matrix-vector (FC/recurrent) layers,
    /// which are bandwidth-bound on GPUs.
    pub fc_peak_fraction: f64,
}

impl GpuModel {
    /// Tegra X2 (Table III: 256 cores, 875 MHz, 7.5 W). No native INT8.
    pub fn tegra_x2() -> Self {
        GpuModel {
            name: "tegra-x2",
            cores: 256,
            freq_mhz: 875,
            tdp_w: 7.5,
            launch_overhead_us: 15.0,
            half_efficiency_macs: 2.0e6,
            conv_peak_fraction: 0.60,
            fc_peak_fraction: 0.15,
        }
    }

    /// Titan Xp (Table III: 3584 cores, 1531 MHz, 250 W).
    pub fn titan_xp() -> Self {
        GpuModel {
            name: "titan-xp",
            cores: 3584,
            freq_mhz: 1531,
            tdp_w: 250.0,
            launch_overhead_us: 8.0,
            half_efficiency_macs: 60.0e6,
            conv_peak_fraction: 0.50,
            fc_peak_fraction: 0.08,
        }
    }

    /// Peak multiply-accumulates per second (one FMA per core per cycle in
    /// FP32). The INT8 path's `dp4a` quadruples raw throughput, but
    /// TensorRT's measured end-to-end gain on these networks is ~1.6×
    /// (Figure 17: 19× vs 12× over TX2) because the INT8 kernels are
    /// memory- and layout-bound; we model the achieved factor.
    pub fn peak_macs_per_s(&self, mode: GpuMode) -> f64 {
        let fp32 = self.cores as f64 * self.freq_mhz as f64 * 1e6;
        match mode {
            GpuMode::Fp32 => fp32,
            GpuMode::Int8 => fp32 * 1.7,
        }
    }

    fn layer_efficiency(&self, layer: &Layer, batch: u64) -> f64 {
        let base = match layer {
            Layer::Conv2d(_) | Layer::DepthwiseConv2d(_) => self.conv_peak_fraction,
            Layer::Dense(_) | Layer::Recurrent(_) => self.fc_peak_fraction,
            _ => return 1.0,
        };
        // Work-starvation roll-off: eff = base * work / (work + half_point).
        let work = (layer.macs() * batch) as f64;
        base * work / (work + self.half_efficiency_macs)
    }

    /// Runs a model in a mode at a batch size.
    pub fn run(&self, model: &Model, batch: u64, mode: GpuMode) -> BaselineReport {
        let mut seconds = 0.0f64;
        for named in &model.layers {
            let layer = &named.layer;
            let macs = (layer.macs() * batch) as f64;
            if macs > 0.0 {
                let eff = self.layer_efficiency(layer, batch);
                seconds += macs / (self.peak_macs_per_s(mode) * eff);
            }
            seconds += self.launch_overhead_us * 1e-6;
        }
        let runtime_ms = seconds * 1e3;
        // Energy: board power times runtime, reported as compute (the GPU
        // models exist for the Figure 17 performance comparison; their
        // internal breakdown is out of scope).
        let energy_pj = self.tdp_w * seconds * 1e12;
        BaselineReport {
            platform: self.name.into(),
            model_name: model.name.clone(),
            batch,
            cycles: 0,
            freq_mhz: self.freq_mhz,
            runtime_ms,
            energy: EnergyBreakdown {
                compute_pj: energy_pj,
                buffer_pj: 0.0,
                rf_pj: 0.0,
                dram_pj: 0.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_dnn::zoo::Benchmark;

    #[test]
    fn peak_ratio_matches_spec_sheets() {
        let tx2 = GpuModel::tegra_x2();
        let txp = GpuModel::titan_xp();
        let ratio = txp.peak_macs_per_s(GpuMode::Fp32) / tx2.peak_macs_per_s(GpuMode::Fp32);
        // 3584*1531 / (256*875) = 24.5x raw.
        assert!((ratio - 24.5).abs() < 0.5, "{ratio}");
        assert_eq!(
            txp.peak_macs_per_s(GpuMode::Int8),
            1.7 * txp.peak_macs_per_s(GpuMode::Fp32)
        );
    }

    #[test]
    fn titan_beats_tx2_but_below_peak_ratio() {
        // Figure 17: Titan Xp FP32 is ~12x TX2 — half its 24.5x peak ratio,
        // because it starves on these small networks.
        let tx2 = GpuModel::tegra_x2();
        let txp = GpuModel::titan_xp();
        let model = Benchmark::AlexNet.reference_model();
        let a = tx2.run(&model, 16, GpuMode::Fp32);
        let b = txp.run(&model, 16, GpuMode::Fp32);
        let speedup = a.runtime_ms / b.runtime_ms;
        assert!(speedup > 4.0 && speedup < 24.0, "{speedup}");
    }

    #[test]
    fn int8_speeds_up_but_sublinearly() {
        let txp = GpuModel::titan_xp();
        let model = Benchmark::AlexNet.reference_model();
        let fp = txp.run(&model, 16, GpuMode::Fp32);
        let i8 = txp.run(&model, 16, GpuMode::Int8);
        let gain = fp.runtime_ms / i8.runtime_ms;
        assert!(gain > 1.2 && gain < 4.0, "{gain}");
    }

    #[test]
    fn energy_uses_board_power() {
        let tx2 = GpuModel::tegra_x2();
        let r = tx2.run(&Benchmark::Lstm.model(), 1, GpuMode::Fp32);
        let watts = r.energy.total_pj() / 1e12 / (r.runtime_ms / 1e3);
        assert!((watts - 7.5).abs() < 1e-6, "{watts}");
    }

    #[test]
    fn launch_overhead_dominates_tiny_recurrent_nets() {
        // Per-token LSTM inference on a GPU is overhead-bound — the regime
        // where Bit Fusion's 38x (Figure 17, LSTM) comes from.
        let txp = GpuModel::titan_xp();
        let r = txp.run(&Benchmark::Lstm.model(), 1, GpuMode::Fp32);
        assert!(r.runtime_ms * 1e3 > 10.0, "{} us", r.runtime_ms * 1e3);
    }
}
