//! Property-based tests for the bit-level arithmetic invariants.
//!
//! The load-bearing invariant of the whole reproduction: for every supported
//! precision pair and every in-range operand pair, the BitBrick decomposition
//! (Equations 1-3 of the paper) produces exactly the same value as direct
//! integer multiplication.

use bitfusion_core::bitwidth::{BitWidth, PairPrecision, Precision, Signedness};
use bitfusion_core::decompose::{decomposed_multiply, from_crumbs, to_crumbs};
use bitfusion_core::fusion::{FusionUnit, SpatialStructure, TemporalUnit};
use bitfusion_core::systolic::{IntMatrix, SystolicArray};
use proptest::prelude::*;

fn arb_width() -> impl Strategy<Value = BitWidth> {
    prop::sample::select(BitWidth::ALL.to_vec())
}

/// The multi-bit widths of the paper's evaluation (Table 2 uses 2–16 bits;
/// 1-bit is covered separately by [`arb_width`]-based tests).
fn arb_multi_bit_width() -> impl Strategy<Value = BitWidth> {
    prop::sample::select(vec![BitWidth::B2, BitWidth::B4, BitWidth::B8, BitWidth::B16])
}

fn arb_signedness() -> impl Strategy<Value = Signedness> {
    prop_oneof![Just(Signedness::Signed), Just(Signedness::Unsigned)]
}

fn arb_precision() -> impl Strategy<Value = Precision> {
    (arb_width(), arb_signedness()).prop_map(|(w, s)| Precision::new(w, s))
}

fn arb_pair() -> impl Strategy<Value = PairPrecision> {
    (arb_precision(), arb_precision()).prop_map(|(i, w)| PairPrecision::new(i, w))
}

/// A pair precision together with in-range operand values.
fn arb_pair_and_operands() -> impl Strategy<Value = (PairPrecision, i32, i32)> {
    arb_pair().prop_flat_map(|pair| {
        let a = pair.input.min_value()..=pair.input.max_value();
        let b = pair.weight.min_value()..=pair.weight.max_value();
        (Just(pair), a, b)
    })
}

proptest! {
    #[test]
    fn decomposition_equals_direct_multiply((pair, a, b) in arb_pair_and_operands()) {
        let got = decomposed_multiply(a, b, pair).unwrap();
        prop_assert_eq!(got, a as i64 * b as i64);
    }

    #[test]
    fn crumb_round_trip(p in arb_precision(), seed in any::<i32>()) {
        let v = p.clamp(seed);
        let crumbs = to_crumbs(v, p).unwrap();
        prop_assert_eq!(from_crumbs(&crumbs, p), v);
        prop_assert_eq!(crumbs.len() as u32, p.brick_side());
    }

    #[test]
    fn fusion_unit_dot_equals_reference(
        pair in arb_pair(),
        seeds in prop::collection::vec((any::<i32>(), any::<i32>()), 1..64)
    ) {
        let pairs: Vec<(i32, i32)> = seeds
            .into_iter()
            .map(|(a, b)| (pair.input.clamp(a), pair.weight.clamp(b)))
            .collect();
        let expected: i64 = pairs.iter().map(|&(a, b)| a as i64 * b as i64).sum();
        let unit = FusionUnit::new(pair);
        let r = unit.dot(&pairs, 0).unwrap();
        prop_assert_eq!(r.psum_out, expected);
        // Cycle accounting: a dot of n elements over `lanes` lanes takes
        // ceil(n / lanes) steps of `temporal_cycles` each.
        let steps = pairs.len().div_ceil(unit.lanes() as usize) as u64;
        prop_assert_eq!(r.cycles, steps * pair.temporal_cycles() as u64);
    }

    #[test]
    fn temporal_and_fusion_unit_agree(
        pair in arb_pair(),
        seeds in prop::collection::vec((any::<i32>(), any::<i32>()), 1..48)
    ) {
        let pairs: Vec<(i32, i32)> = seeds
            .into_iter()
            .map(|(a, b)| (pair.input.clamp(a), pair.weight.clamp(b)))
            .collect();
        let t = TemporalUnit::new(pair).execute(&pairs).unwrap();
        let f = FusionUnit::new(pair).dot(&pairs, 0).unwrap();
        prop_assert_eq!(t.total, f.psum_out);
        prop_assert_eq!(t.brick_ops, f.brick_ops);
    }

    #[test]
    fn systolic_matvec_equals_reference(
        pair in arb_pair(),
        m in 1usize..8,
        k in 1usize..24,
        rows in 1usize..5,
        cols in 1usize..5,
        seed in any::<u64>()
    ) {
        let mut rng = bitfusion_core::util::SplitMix64::new(seed);
        let weights = IntMatrix::from_fn(m, k, |_, _| {
            rng.range_i32(pair.weight.min_value(), pair.weight.max_value())
        });
        let input: Vec<i32> = (0..k)
            .map(|_| rng.range_i32(pair.input.min_value(), pair.input.max_value()))
            .collect();
        let array = SystolicArray::new(rows, cols, pair).unwrap();
        let out = array.matvec(&weights, &input).unwrap();
        for (mi, &v) in out.values.iter().enumerate() {
            let expected: i64 = (0..k)
                .map(|ki| weights.get(mi, ki) as i64 * input[ki] as i64)
                .sum();
            prop_assert_eq!(v, expected);
        }
    }

    #[test]
    fn brick_ops_match_structural_cost((pair, a, b) in arb_pair_and_operands()) {
        let unit = FusionUnit::new(pair);
        let r = unit.mac(&[(a, b)], 0).unwrap();
        prop_assert_eq!(r.brick_ops, pair.bricks_per_product() as u64);
    }

    #[test]
    fn all_fusion_organizations_are_bit_exact(
        iw in arb_multi_bit_width(),
        ww in arb_multi_bit_width(),
        is in arb_signedness(),
        ws in arb_signedness(),
        seeds in prop::collection::vec((any::<i32>(), any::<i32>()), 64usize)
    ) {
        // §III: the spatial design (Figure 9), the temporal reference design
        // (Figure 8), and the production spatio-temporal Fusion Unit must all
        // produce the exact i64 reference result for every supported
        // (2, 4, 8, 16)-bit signed/unsigned precision pair.
        let pair = PairPrecision::new(Precision::new(iw, is), Precision::new(ww, ws));
        let pairs: Vec<(i32, i32)> = seeds
            .into_iter()
            .map(|(a, b)| (pair.input.clamp(a), pair.weight.clamp(b)))
            .collect();
        let expected: i64 = pairs.iter().map(|&(a, b)| a as i64 * b as i64).sum();

        // Spatio-temporal (the shipping Fusion Unit).
        let unit = FusionUnit::new(pair);
        let f = unit.dot(&pairs, 0).unwrap();
        prop_assert_eq!(f.psum_out, expected);

        // Temporal (bit-serial reference).
        let t = TemporalUnit::new(pair).execute(&pairs).unwrap();
        prop_assert_eq!(t.total, expected);

        // Spatial (stops at 8 bits: §III-C). One step of exactly the
        // structure's Fused-PE count.
        if iw != BitWidth::B16 && ww != BitWidth::B16 {
            let s = SpatialStructure::for_pair(pair).unwrap();
            let lanes = s.fused_pes().len();
            let step: Vec<(i32, i32)> = pairs.iter().copied().take(lanes).collect();
            let step_expected: i64 = step.iter().map(|&(a, b)| a as i64 * b as i64).sum();
            prop_assert_eq!(s.evaluate(&step).unwrap(), step_expected);
        } else {
            // 16-bit operands must be rejected by the spatial-only design.
            prop_assert!(SpatialStructure::for_pair(pair).is_err());
        }
    }

    #[test]
    fn throughput_monotone_in_width(iw in arb_width(), ww in arb_width()) {
        // Widening either operand never increases throughput.
        let pair = PairPrecision::new(Precision::unsigned(iw), Precision::signed(ww));
        if let Some(wider) = iw.widen() {
            let wider_pair = PairPrecision::new(Precision::unsigned(wider), Precision::signed(ww));
            prop_assert!(wider_pair.products_per_kilocycle() <= pair.products_per_kilocycle());
        }
        if let Some(wider) = ww.widen() {
            let wider_pair = PairPrecision::new(Precision::unsigned(iw), Precision::signed(wider));
            prop_assert!(wider_pair.products_per_kilocycle() <= pair.products_per_kilocycle());
        }
    }
}
