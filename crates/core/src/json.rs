//! A hand-rolled JSON document model with a deterministic encoder and a
//! strict parser.
//!
//! The workspace builds offline — no serde — so it carries its own
//! minimal JSON layer, shared by every layer that speaks JSON: the
//! service protocol's wire form and the external model format
//! (`bitfusion-dnn`'s `bitfusion-model/1` schema):
//!
//! * [`Json`] — the document tree. Objects preserve **insertion order**
//!   (a `Vec` of pairs, not a map), which is what makes encoding
//!   deterministic: the same value always serializes to the same bytes;
//! * [`Json::encode`] — compact single-line output (no whitespace), the
//!   shape both the one-shot `--json` flag and the `serve` loop emit, so
//!   the two paths are byte-identical by construction;
//! * [`parse`] — a recursive-descent parser accepting standard JSON
//!   (insignificant whitespace, string escapes including `\uXXXX` and
//!   surrogate pairs, integer and float numbers).
//!
//! Numbers keep their integer-ness: a literal without `.`/`e` parses to
//! [`Json::Int`], everything else to [`Json::Float`]. Floats encode via
//! Rust's shortest-round-trip `Display`, so `encode ∘ parse` is a fixed
//! point on encoder output (the protocol's round-trip property tests pin
//! this).

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without a fraction or exponent.
    Int(i64),
    /// A number written with a fraction or exponent (also the fallback for
    /// integer literals outside the `i64` range).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order and duplicate keys are not
    /// merged (the encoder never produces duplicates).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs (insertion order preserved).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Wraps a `u64` (values beyond `i64::MAX` — never produced by the
    /// simulator — saturate).
    pub fn uint(v: u64) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }

    /// Wraps an `f64`; non-finite values (never produced by the simulator)
    /// encode as `null`, matching JSON's number domain.
    pub fn float(v: f64) -> Json {
        if v.is_finite() {
            Json::Float(v)
        } else {
            Json::Null
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64` (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert exactly).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encodes compactly onto one line: no whitespace anywhere, object keys
    /// in insertion order — the canonical wire form of the service
    /// protocol.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // Rust's Display prints the shortest digits that
                    // round-trip, in positional notation — valid JSON.
                    out.push_str(&f.to_string())
                } else {
                    out.push_str("null")
                }
            }
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a [`JsonError`] naming the first offending byte.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code =
                                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 advanced past the digits; compensate for
                            // the `pos += 1` below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim; the
                    // input is a &str so they are valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "123456789", "1.5", "-0.25"] {
            let v = parse(text).unwrap();
            assert_eq!(v.encode(), text, "{text}");
        }
    }

    #[test]
    fn integers_and_floats_keep_their_kind() {
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("42.0").unwrap(), Json::Float(42.0));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        // Beyond i64: falls back to float rather than failing.
        assert!(matches!(
            parse("99999999999999999999").unwrap(),
            Json::Float(_)
        ));
    }

    #[test]
    fn shortest_float_display_is_a_fixed_point() {
        for v in [0.1, 1.0 / 3.0, 2.5e-8, 1e300, f64::MIN_POSITIVE] {
            let encoded = Json::Float(v).encode();
            let reparsed = parse(&encoded).unwrap();
            assert_eq!(reparsed.as_f64().unwrap(), v, "{encoded}");
            assert_eq!(reparsed.encode(), encoded);
        }
        // An integral float encodes as an integer literal; the *string*
        // fixed point still holds on the second pass.
        let once = Json::Float(2.0).encode();
        assert_eq!(once, "2");
        assert_eq!(parse(&once).unwrap().encode(), once);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "he said \"hi\"\n\ttab\\slash ünïcödé \u{1}";
        let encoded = Json::Str(s.to_string()).encode();
        assert_eq!(parse(&encoded).unwrap(), Json::Str(s.to_string()));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            parse(r#""Aé😀""#).unwrap(),
            Json::Str("Aé😀".to_string())
        );
        assert!(parse(r#""\ud800""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"cmd":"report","batch":16,"knobs":{"eff":0.85},"list":[1,2,[true,null]],"s":"x"}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.encode(), text);
        assert_eq!(v.get("cmd").unwrap().as_str(), Some("report"));
        assert_eq!(v.get("batch").unwrap().as_u64(), Some(16));
        assert_eq!(v.get("knobs").unwrap().get("eff").unwrap().as_f64(), Some(0.85));
    }

    #[test]
    fn whitespace_is_insignificant() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.encode(), r#"{"a":[1,2],"b":null}"#);
    }

    #[test]
    fn errors_name_the_offset() {
        let e = parse("{\"a\":}").unwrap_err();
        assert_eq!(e.offset, 5);
        assert!(parse("[1,2").is_err());
        assert!(parse("12 34").unwrap_err().message.contains("trailing"));
        assert!(parse("").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj(vec![
            ("z", Json::Int(1)),
            ("a", Json::Int(2)),
            ("m", Json::Int(3)),
        ]);
        assert_eq!(v.encode(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn nonfinite_floats_encode_as_null() {
        assert_eq!(Json::float(f64::NAN).encode(), "null");
        assert_eq!(Json::float(f64::INFINITY).encode(), "null");
        assert_eq!(Json::Float(f64::NAN).encode(), "null");
    }
}
