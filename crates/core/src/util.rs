//! Small utilities shared across the workspace: a deterministic PRNG for
//! synthetic workloads and integer helpers.

/// A SplitMix64 pseudo-random generator.
///
/// The simulators and workload generators need *deterministic* randomness so
/// experiments are exactly reproducible across runs and machines; SplitMix64
/// is tiny, fast, and has no external dependencies.
///
/// # Examples
///
/// ```
/// use bitfusion_core::util::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `lo..=hi` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i64 - lo as i64 + 1) as u64;
        lo.wrapping_add((self.next_u64() % span) as i32)
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer ceiling division for `u64`.
#[inline]
pub const fn div_ceil_u64(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Geometric mean of a slice of positive values; returns 0.0 for an empty
/// slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequence() {
        let mut rng = SplitMix64::new(123);
        let seq: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut rng2 = SplitMix64::new(123);
        let seq2: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
        assert_eq!(seq, seq2);
        // Different seeds diverge.
        let mut rng3 = SplitMix64::new(124);
        assert_ne!(rng3.next_u64(), SplitMix64::new(123).next_u64());
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut rng = SplitMix64::new(5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.range_i32(-2, 1);
            assert!((-2..=1).contains(&v));
            seen_lo |= v == -2;
            seen_hi |= v == 1;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn geomean_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_panics_when_inverted() {
        SplitMix64::new(1).range_i32(2, 1);
    }
}
