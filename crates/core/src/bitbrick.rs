//! The BitBrick: the 2-bit multiply unit at the base of the Bit Fusion
//! architecture (Figure 5 of the paper).
//!
//! A BitBrick takes two 2-bit operands (`x2b`, `y2b`) plus two sign bits
//! (`sx`, `sy`). According to the sign bits it sign-extends each operand to
//! 3 bits and multiplies them with a 3-bit signed multiplier, producing a
//! 6-bit signed product. Signed operands range over -2..=1 and unsigned
//! operands over 0..=3, so the product ranges over -6..=9 — representable in
//! 6 bits with headroom.
//!
//! Two implementations are provided: [`BitBrick::multiply`], a fast
//! arithmetic path used by the simulators, and [`BitBrick::multiply_gates`],
//! a faithful gate-level evaluation of the half-adder/full-adder array shown
//! in Figure 5, used to cross-validate the arithmetic path and to ground the
//! area/power model.

use std::fmt;

use crate::error::CoreError;
use crate::gates::{full_adder, half_adder};

/// A 2-bit raw operand value (a "crumb"), stored in the low two bits.
///
/// # Examples
///
/// ```
/// use bitfusion_core::bitbrick::Crumb;
///
/// let c = Crumb::new(0b11).unwrap();
/// assert_eq!(c.interpret(false), 3); // unsigned
/// assert_eq!(c.interpret(true), -1); // signed (two's complement)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Crumb(u8);

impl Crumb {
    /// The zero crumb.
    pub const ZERO: Crumb = Crumb(0);

    /// Creates a crumb from the low two bits of `raw`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ValueOutOfRange`] if `raw > 3`.
    pub fn new(raw: u8) -> Result<Self, CoreError> {
        if raw <= 3 {
            Ok(Crumb(raw))
        } else {
            Err(CoreError::ValueOutOfRange {
                value: raw as i32,
                precision: crate::bitwidth::Precision::unsigned(crate::bitwidth::BitWidth::B2),
            })
        }
    }

    /// Creates a crumb by truncating `raw` to its low two bits.
    #[inline]
    pub const fn truncate(raw: u8) -> Self {
        Crumb(raw & 0b11)
    }

    /// Raw two-bit pattern (0..=3).
    #[inline]
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Bit `i` (0 or 1) of the crumb.
    #[inline]
    pub const fn bit(self, i: u32) -> bool {
        (self.0 >> i) & 1 == 1
    }

    /// Interprets the crumb as signed (-2..=1) or unsigned (0..=3).
    #[inline]
    pub const fn interpret(self, signed: bool) -> i8 {
        if signed && self.0 >= 2 {
            self.0 as i8 - 4
        } else {
            self.0 as i8
        }
    }

    /// Encodes a small integer into a crumb. Signed values must lie in
    /// -2..=1, unsigned in 0..=3.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ValueOutOfRange`] when the value does not fit.
    pub fn encode(value: i8, signed: bool) -> Result<Self, CoreError> {
        let ok = if signed {
            (-2..=1).contains(&value)
        } else {
            (0..=3).contains(&value)
        };
        if !ok {
            let precision = if signed {
                crate::bitwidth::Precision::signed(crate::bitwidth::BitWidth::B2)
            } else {
                crate::bitwidth::Precision::unsigned(crate::bitwidth::BitWidth::B2)
            };
            return Err(CoreError::ValueOutOfRange {
                value: value as i32,
                precision,
            });
        }
        Ok(Crumb((value as u8) & 0b11))
    }
}

impl fmt::Display for Crumb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02b}", self.0)
    }
}

/// One operand of a BitBrick: a crumb plus its sign-mode bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BrickOperand {
    /// The 2-bit value.
    pub crumb: Crumb,
    /// When `true` the crumb is interpreted as a two's-complement signed
    /// value in -2..=1 (the `sx`/`sy` inputs of Figure 5).
    pub signed: bool,
}

impl BrickOperand {
    /// Creates an operand from a crumb and a sign-mode bit.
    pub const fn new(crumb: Crumb, signed: bool) -> Self {
        BrickOperand { crumb, signed }
    }

    /// Numeric value of the operand.
    #[inline]
    pub const fn value(self) -> i8 {
        self.crumb.interpret(self.signed)
    }

    /// Sign-extends the operand to three bits (the `x'3b`/`y'3b` values of
    /// Figure 5), returned as bits `[b0, b1, b2]`.
    pub const fn extend_to_3_bits(self) -> [bool; 3] {
        let b0 = self.crumb.bit(0);
        let b1 = self.crumb.bit(1);
        let b2 = self.signed && b1;
        [b0, b1, b2]
    }
}

/// The 6-bit signed product of a BitBrick, wrapped to preserve provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BrickProduct(i8);

impl BrickProduct {
    /// Numeric value of the product (-6..=9).
    #[inline]
    pub const fn value(self) -> i8 {
        self.0
    }

    /// The product as the raw 6-bit two's-complement pattern `p6b`.
    #[inline]
    pub const fn raw_p6b(self) -> u8 {
        (self.0 as u8) & 0b11_1111
    }
}

/// The BitBrick compute unit.
///
/// BitBricks are stateless combinational logic; the type exists to namespace
/// the two evaluation paths and the unit's structural constants.
///
/// # Examples
///
/// ```
/// use bitfusion_core::bitbrick::{BitBrick, BrickOperand, Crumb};
///
/// // Signed -2 times unsigned 3 = -6 (the widest-magnitude product).
/// let x = BrickOperand::new(Crumb::truncate(0b10), true);
/// let y = BrickOperand::new(Crumb::truncate(0b11), false);
/// assert_eq!(BitBrick::multiply(x, y).value(), -6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BitBrick;

impl BitBrick {
    /// Fast arithmetic evaluation of the brick product.
    #[inline]
    pub fn multiply(x: BrickOperand, y: BrickOperand) -> BrickProduct {
        BrickProduct(x.value() * y.value())
    }

    /// Gate-level evaluation of the brick product, following the Figure 5
    /// microarchitecture: 3-bit sign extension followed by a 3-bit × 3-bit
    /// signed multiply implemented as a partial-product array reduced with
    /// half and full adders.
    ///
    /// The result is numerically identical to [`BitBrick::multiply`]; the
    /// gate path exists for microarchitectural fidelity tests and to anchor
    /// the gate-count area model.
    pub fn multiply_gates(x: BrickOperand, y: BrickOperand) -> BrickProduct {
        let xb = x.extend_to_3_bits();
        let yb = y.extend_to_3_bits();

        // 3-bit two's-complement multiply via sign extension to 6 bits and a
        // shift-add partial-product reduction; all arithmetic below is pure
        // boolean gate logic on 6-bit rows.
        let row = |yi: bool, shift: usize| -> [bool; 6] {
            let mut r = [false; 6];
            if yi {
                for (i, &xi) in xb.iter().enumerate() {
                    if i + shift < 6 {
                        r[i + shift] = xi;
                    }
                }
                // Sign-extend the 3-bit x operand within the 6-bit row.
                let sign = xb[2];
                for slot in r.iter_mut().take(6).skip(3 + shift) {
                    *slot = sign;
                }
            }
            r
        };

        let p0 = row(yb[0], 0);
        let p1 = row(yb[1], 1);
        // The y sign row enters negated (two's complement: -x << 2 is
        // (!x + 1) << 2); implemented with an inverted row plus a carry-in.
        let mut p2 = row(yb[2], 2);
        let y_negative = yb[2];
        if y_negative {
            for bit in p2.iter_mut() {
                *bit = !*bit;
            }
        }

        let (s01, _) = ripple_add_6(p0, p1, false);
        // Feed the +1 of the two's-complement negation as carry-in; the
        // inverted row's low bits below the shift are all ones already, so a
        // single carry-in at bit 0 completes the negation.
        let (sum, _) = ripple_add_6(s01, p2, y_negative);

        // Interpret the 6-bit result as two's complement.
        let mut v: i8 = 0;
        for (i, &b) in sum.iter().enumerate() {
            if b {
                v |= 1 << i;
            }
        }
        if sum[5] {
            v |= !0b11_1111u8 as i8; // sign-extend bit 5
        }
        BrickProduct(v)
    }

    /// Width in bits of the product port.
    pub const PRODUCT_BITS: u32 = 6;
    /// Width in bits of each operand port (excluding the sign-mode bit).
    pub const OPERAND_BITS: u32 = 2;
}

/// 6-bit ripple-carry addition built from half/full adders; returns the sum
/// bits and the carry-out.
fn ripple_add_6(a: [bool; 6], b: [bool; 6], carry_in: bool) -> ([bool; 6], bool) {
    let mut sum = [false; 6];
    let mut carry = carry_in;
    for i in 0..6 {
        let (s, c) = if i == 0 && !carry_in {
            half_adder(a[i], b[i])
        } else {
            full_adder(a[i], b[i], carry)
        };
        sum[i] = s;
        carry = c;
    }
    (sum, carry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_operands() -> Vec<BrickOperand> {
        let mut v = Vec::new();
        for raw in 0..4u8 {
            for signed in [false, true] {
                v.push(BrickOperand::new(Crumb::truncate(raw), signed));
            }
        }
        v
    }

    #[test]
    fn crumb_new_validates() {
        assert!(Crumb::new(3).is_ok());
        assert!(Crumb::new(4).is_err());
    }

    #[test]
    fn crumb_encode_round_trips() {
        for v in -2..=1i8 {
            let c = Crumb::encode(v, true).unwrap();
            assert_eq!(c.interpret(true), v);
        }
        for v in 0..=3i8 {
            let c = Crumb::encode(v, false).unwrap();
            assert_eq!(c.interpret(false), v);
        }
        assert!(Crumb::encode(2, true).is_err());
        assert!(Crumb::encode(-1, false).is_err());
        assert!(Crumb::encode(4, false).is_err());
    }

    #[test]
    fn sign_extension_matches_value() {
        for op in all_operands() {
            let bits = op.extend_to_3_bits();
            let mut v: i8 = 0;
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    v |= 1 << i;
                }
            }
            if bits[2] {
                v |= !0b111u8 as i8;
            }
            assert_eq!(v, op.value(), "operand {op:?}");
        }
    }

    #[test]
    fn multiply_covers_full_range() {
        // Exhaustive: 8 operand states per side.
        let mut min = i8::MAX;
        let mut max = i8::MIN;
        for x in all_operands() {
            for y in all_operands() {
                let p = BitBrick::multiply(x, y).value();
                assert_eq!(p, x.value() * y.value());
                min = min.min(p);
                max = max.max(p);
            }
        }
        assert_eq!(min, -6);
        assert_eq!(max, 9);
    }

    #[test]
    fn gate_multiply_matches_arithmetic_exhaustively() {
        for x in all_operands() {
            for y in all_operands() {
                let fast = BitBrick::multiply(x, y);
                let gates = BitBrick::multiply_gates(x, y);
                assert_eq!(fast, gates, "x={x:?} y={y:?}");
            }
        }
    }

    #[test]
    fn product_raw_p6b_is_6_bits() {
        for x in all_operands() {
            for y in all_operands() {
                let p = BitBrick::multiply(x, y);
                assert!(p.raw_p6b() <= 0b11_1111);
                // Reconstruct value from the raw pattern.
                let mut v = p.raw_p6b() as i8;
                if v & 0b10_0000 != 0 {
                    v |= !0b11_1111u8 as i8;
                }
                assert_eq!(v, p.value());
            }
        }
    }

    #[test]
    fn binary_and_ternary_fit_one_brick() {
        // Binary (0, +1): unsigned crumbs 0/1. Ternary (-1, 0, +1): signed.
        for a in [0i8, 1] {
            for b in [-1i8, 0, 1] {
                let x = BrickOperand::new(Crumb::encode(a, false).unwrap(), false);
                let y = BrickOperand::new(Crumb::encode(b, true).unwrap(), true);
                assert_eq!(BitBrick::multiply(x, y).value(), a * b);
            }
        }
    }
}
