//! Functional quantized LSTM cell on the fused datapath.
//!
//! The recurrent benchmarks run their gate matrices on the systolic array
//! and their nonlinearities on the per-column activation units
//! (`compute sigmoid` / `compute tanh` / `compute mul` / `compute add`).
//! This module assembles those pieces into a complete quantized LSTM cell
//! step, used by the functional tests and the recurrent examples. The
//! arithmetic contract: the fused path (BitBrick-decomposed GEMM + LUT
//! nonlinearities + integer state update) is *bit-exact* against a plain
//! integer reference of the same quantized recipe.

use crate::bitwidth::{BitWidth, PairPrecision, Precision};
use crate::error::CoreError;
use crate::lut::{ActivationLut, LutFn};
use crate::systolic::{IntMatrix, SystolicArray};

/// Quantized LSTM cell state: hidden values at the input precision, cell
/// values in a wider fixed-point register (as hardware keeps them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LstmState {
    /// Hidden state, one value per hidden unit, at the cell's input
    /// precision.
    pub h: Vec<i32>,
    /// Cell state in Q(`frac_bits`) fixed point, 16-bit range.
    pub c: Vec<i32>,
}

impl LstmState {
    /// The all-zero state.
    pub fn zeros(hidden: usize) -> Self {
        LstmState {
            h: vec![0; hidden],
            c: vec![0; hidden],
        }
    }
}

/// A quantized LSTM cell: gate weights `[4H × (X+H)]` in gate order
/// (input, forget, candidate, output).
#[derive(Debug, Clone)]
pub struct QuantLstmCell {
    input_size: usize,
    hidden_size: usize,
    pair: PairPrecision,
    weights: IntMatrix,
    /// Fractional bits of the gate accumulator's fixed-point interpretation.
    acc_frac_bits: u32,
    sigmoid: ActivationLut,
    tanh: ActivationLut,
    /// Fractional bits of the cell state.
    cell_frac_bits: u32,
}

impl QuantLstmCell {
    /// Creates a cell.
    ///
    /// `weights` must be `4*hidden_size` rows by `input_size + hidden_size`
    /// columns of values within `pair.weight`'s range; gate accumulators
    /// are interpreted as Q(`acc_frac_bits`) fixed point.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] when the weight matrix has the
    /// wrong shape, or [`CoreError::ValueOutOfRange`] when a weight does
    /// not fit the precision.
    pub fn new(
        input_size: usize,
        hidden_size: usize,
        pair: PairPrecision,
        weights: IntMatrix,
        acc_frac_bits: u32,
    ) -> Result<Self, CoreError> {
        if weights.rows() != 4 * hidden_size || weights.cols() != input_size + hidden_size {
            return Err(CoreError::ShapeMismatch {
                expected: 4 * hidden_size * (input_size + hidden_size),
                actual: weights.rows() * weights.cols(),
            });
        }
        for r in 0..weights.rows() {
            for &v in weights.row(r) {
                pair.weight.check(v)?;
            }
        }
        // Nonlinearity outputs: sigmoid gates in unsigned 8-bit Q8 (0..=255
        // represents 0..1); tanh in signed 8-bit Q7.
        let sigmoid = ActivationLut::new(
            LutFn::Sigmoid,
            acc_frac_bits,
            Precision::unsigned(BitWidth::B8),
            2048,
        );
        let tanh = ActivationLut::new(
            LutFn::Tanh,
            acc_frac_bits,
            Precision::signed(BitWidth::B8),
            2048,
        );
        Ok(QuantLstmCell {
            input_size,
            hidden_size,
            pair,
            weights,
            acc_frac_bits,
            sigmoid,
            tanh,
            cell_frac_bits: 7,
        })
    }

    /// Hidden size.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// The gate pre-activations for `[x; h]`, computed by `gemm`:
    /// a closure so the fused and reference paths share everything else.
    fn gates_with(
        &self,
        x: &[i32],
        h: &[i32],
        matvec: impl FnOnce(&IntMatrix, &[i32]) -> Result<Vec<i64>, CoreError>,
    ) -> Result<Vec<i64>, CoreError> {
        let mut xh = Vec::with_capacity(self.input_size + self.hidden_size);
        xh.extend_from_slice(x);
        xh.extend_from_slice(h);
        for &v in &xh {
            self.pair.input.check(v)?;
        }
        matvec(&self.weights, &xh)
    }

    fn update(&self, gates: &[i64], state: &LstmState) -> LstmState {
        let hs = self.hidden_size;
        let mut next = LstmState::zeros(hs);
        for u in 0..hs {
            // LUT-activated gates: i/f/o in Q8 unsigned, g in Q7 signed.
            let i_g = self.sigmoid.apply(gates[u]) as i64;
            let f_g = self.sigmoid.apply(gates[hs + u]) as i64;
            let g_g = self.tanh.apply(gates[2 * hs + u]) as i64;
            let o_g = self.sigmoid.apply(gates[3 * hs + u]) as i64;
            // c' = f*c + i*g, all in Q7 (sigmoid Q8 halves to Q7 via >>8
            // after the product; the elementwise datapath truncates).
            let c_prev = state.c[u] as i64;
            let c_new = ((f_g * c_prev) >> 8) + ((i_g * g_g) >> 8);
            let c_new = c_new.clamp(i16::MIN as i64, i16::MAX as i64);
            // h' = o * tanh(c'), requantized into the input precision. The
            // cell state (Q7) re-enters the tanh LUT at its Q(acc) input
            // format; the shift direction depends on which has more
            // fractional bits.
            let q_shift = self.acc_frac_bits as i32 - self.cell_frac_bits as i32;
            let c_acc = if q_shift >= 0 {
                c_new << q_shift
            } else {
                c_new >> (-q_shift)
            };
            let tanh_c = self.tanh.apply(c_acc);
            let h_q7 = (o_g * tanh_c as i64) >> 8;
            let shift = 7u32.saturating_sub(self.pair.input.bits() - 1);
            let h_new = self.pair.input.clamp((h_q7 >> shift) as i32);
            next.c[u] = c_new as i32;
            next.h[u] = h_new;
        }
        next
    }

    /// One timestep through the *fused* datapath (systolic BitBrick GEMM).
    ///
    /// # Errors
    ///
    /// Propagates shape/range errors from the arithmetic layer.
    pub fn step_fused(
        &self,
        array: &SystolicArray,
        x: &[i32],
        state: &LstmState,
    ) -> Result<LstmState, CoreError> {
        let gates = self.gates_with(x, &state.h, |w, xh| Ok(array.matvec(w, xh)?.values))?;
        Ok(self.update(&gates, state))
    }

    /// One timestep through plain integer reference arithmetic.
    ///
    /// # Errors
    ///
    /// Propagates range errors.
    pub fn step_reference(&self, x: &[i32], state: &LstmState) -> Result<LstmState, CoreError> {
        let gates = self.gates_with(x, &state.h, |w, xh| {
            Ok((0..w.rows())
                .map(|r| {
                    w.row(r)
                        .iter()
                        .zip(xh)
                        .map(|(&a, &b)| a as i64 * b as i64)
                        .sum()
                })
                .collect())
        })?;
        Ok(self.update(&gates, state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::SplitMix64;

    fn cell(seed: u64) -> (QuantLstmCell, SystolicArray) {
        let pair = PairPrecision::from_bits(4, 4).expect("supported");
        let (x, h) = (12usize, 10usize);
        let mut rng = SplitMix64::new(seed);
        let weights = IntMatrix::from_fn(4 * h, x + h, |_, _| rng.range_i32(-8, 7));
        let cell = QuantLstmCell::new(x, h, pair, weights, 8).expect("valid");
        let array = SystolicArray::new(4, 4, pair).expect("non-empty");
        (cell, array)
    }

    #[test]
    fn low_q_format_does_not_underflow() {
        // Regression: acc_frac_bits below the cell's Q7 used to wrap the
        // shift amount; the fused and reference paths must still agree and
        // produce sane state.
        let pair = PairPrecision::from_bits(4, 4).expect("supported");
        let mut rng = SplitMix64::new(11);
        let weights = IntMatrix::from_fn(8, 6, |_, _| rng.range_i32(-8, 7));
        let cell = QuantLstmCell::new(4, 2, pair, weights, 4).expect("valid");
        let array = SystolicArray::new(2, 2, pair).expect("non-empty");
        let mut s = LstmState::zeros(2);
        for _ in 0..8 {
            let x: Vec<i32> = (0..4).map(|_| rng.range_i32(0, 15)).collect();
            let f = cell.step_fused(&array, &x, &s).expect("steps");
            let r = cell.step_reference(&x, &s).expect("steps");
            assert_eq!(f, r);
            s = f;
            for &c in &s.c {
                assert!((i16::MIN as i32..=i16::MAX as i32).contains(&c));
            }
        }
    }

    #[test]
    fn fused_equals_reference_over_a_sequence() {
        let (cell, array) = cell(0xACE);
        let mut rng = SplitMix64::new(7);
        let mut fused = LstmState::zeros(cell.hidden_size());
        let mut reference = LstmState::zeros(cell.hidden_size());
        for _ in 0..12 {
            let x: Vec<i32> = (0..12).map(|_| rng.range_i32(0, 15)).collect();
            fused = cell.step_fused(&array, &x, &fused).expect("steps");
            reference = cell.step_reference(&x, &reference).expect("steps");
            assert_eq!(fused, reference);
        }
        // The state must be non-trivial for the equivalence to mean much.
        assert!(fused.h.iter().any(|&v| v != 0));
        assert!(fused.c.iter().any(|&v| v != 0));
    }

    #[test]
    fn zero_input_zero_state_stays_calm() {
        let (cell, array) = cell(3);
        let s = cell
            .step_fused(&array, &[0; 12], &LstmState::zeros(10))
            .expect("steps");
        // With zero pre-activations, gates sit at sigmoid(0)=0.5 and the
        // candidate at tanh(0)=0: the cell stays near zero.
        assert!(s.c.iter().all(|&c| c.abs() <= 1), "{:?}", s.c);
    }

    #[test]
    fn wrong_weight_shape_rejected() {
        let pair = PairPrecision::from_bits(4, 4).expect("supported");
        let weights = IntMatrix::zeros(3, 5);
        assert!(matches!(
            QuantLstmCell::new(2, 2, pair, weights, 8),
            Err(CoreError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn out_of_range_weight_rejected() {
        let pair = PairPrecision::from_bits(4, 2).expect("supported");
        let weights = IntMatrix::from_fn(8, 4, |_, _| 5); // 5 > s2 max
        assert!(QuantLstmCell::new(2, 2, pair, weights, 8).is_err());
    }

    #[test]
    fn hidden_outputs_respect_input_precision() {
        let (cell, array) = cell(99);
        let mut rng = SplitMix64::new(5);
        let mut s = LstmState::zeros(cell.hidden_size());
        for _ in 0..6 {
            let x: Vec<i32> = (0..12).map(|_| rng.range_i32(0, 15)).collect();
            s = cell.step_fused(&array, &x, &s).expect("steps");
            for &h in &s.h {
                assert!((0..=15).contains(&h), "h {h} outside u4");
            }
        }
    }
}
