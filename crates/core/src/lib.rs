//! # bitfusion-core
//!
//! Bit-level composable arithmetic for the Bit Fusion accelerator
//! (Sharma et al., *Bit Fusion: Bit-Level Dynamically Composable Architecture
//! for Accelerating Deep Neural Networks*, ISCA 2018).
//!
//! This crate implements the paper's compute substrate from the gates up:
//!
//! * [`bitbrick`] — the 2-bit multiply unit of Figure 5, with both a fast
//!   arithmetic path and a faithful gate-level evaluation;
//! * [`decompose`] — the recursive decomposition of wide multiplies into
//!   2-bit products (Equations 1–3, Figures 6/7);
//! * [`fusion`] — spatial fusion (Figure 9), the temporal reference design
//!   (Figure 8), and the production spatio-temporal Fusion Unit (§III-C);
//! * [`systolic`] — the functional systolic array of Figures 3/4;
//! * [`postproc`] — per-column activation and pooling units;
//! * [`arch`] — accelerator configurations (array geometry, buffers,
//!   bandwidth, frequency) including the paper's 45 nm and 16 nm designs;
//! * [`grid`] — cartesian grids over those configurations, the
//!   architecture axis of design-space exploration;
//! * [`json`] — the deterministic JSON document layer (the workspace is
//!   offline — no serde) shared by the external model format in
//!   `bitfusion-dnn` and the service protocol's wire form.
//!
//! Everything here is *functional and structural*: numerical results are
//! bit-exact with respect to the decomposition the hardware performs, and
//! structural gate counts ground the area/power model in `bitfusion-energy`.
//! Performance simulation lives in `bitfusion-sim`.
//!
//! ## Quick example
//!
//! ```
//! use bitfusion_core::bitwidth::PairPrecision;
//! use bitfusion_core::fusion::FusionUnit;
//!
//! // Configure a Fusion Unit for 4-bit inputs and binary weights
//! // (AlexNet's middle layers): 8 parallel multiplies per cycle.
//! let unit = FusionUnit::new(PairPrecision::from_bits(4, 1).unwrap());
//! assert_eq!(unit.lanes(), 8);
//! let r = unit.mac(&[(7, 1), (3, 0), (15, 1), (1, 1)], 0).unwrap();
//! assert_eq!(r.psum_out, 7 + 15 + 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arch;
pub mod bitbrick;
pub mod bitwidth;
pub mod decompose;
pub mod error;
pub mod fusion;
pub mod gates;
pub mod grid;
pub mod json;
pub mod lut;
pub mod postproc;
pub mod recurrent;
pub mod systolic;
pub mod util;

pub use arch::ArchConfig;
pub use bitbrick::{BitBrick, BrickOperand, BrickProduct, Crumb};
pub use bitwidth::{BitWidth, PairPrecision, Precision, Signedness, BRICKS_PER_FUSION_UNIT};
pub use error::CoreError;
pub use grid::ArchGrid;
pub use json::Json;
pub use fusion::{FusionUnit, MacResult, SpatialStructure, TemporalUnit};
pub use systolic::{IntMatrix, SystolicArray, SystolicOutput};
