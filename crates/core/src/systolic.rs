//! Functional model of the Bit Fusion systolic array (Figures 3 and 4).
//!
//! The array is a grid of [`FusionUnit`]s: input values stream in from the
//! row edges (shared across each row's units), partial sums accumulate down
//! the columns into 32-bit accumulators, and each column ends in a pooling
//! and an activation unit before its output buffer. This module computes the
//! *numerical* result of matrix-vector and matrix-matrix products through the
//! full BitBrick decomposition path, plus a first-order cycle count; the
//! detailed performance model (DMA overlap, buffer modelling) lives in
//! `bitfusion-sim`.

use crate::bitwidth::PairPrecision;
use crate::error::CoreError;
use crate::fusion::FusionUnit;

/// A dense row-major integer matrix used by the functional models.
///
/// # Examples
///
/// ```
/// use bitfusion_core::systolic::IntMatrix;
///
/// let m = IntMatrix::from_fn(2, 3, |r, c| (r * 3 + c) as i32);
/// assert_eq!(m.get(1, 2), 5);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i32>,
}

impl IntMatrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        IntMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates a matrix from a generator function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> i32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        IntMatrix { rows, cols, data }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<i32>) -> Result<Self, CoreError> {
        if data.len() != rows * cols {
            return Err(CoreError::ShapeMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(IntMatrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> i32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut i32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        &mut self.data[row * self.cols + col]
    }

    /// A row as a slice.
    pub fn row(&self, row: usize) -> &[i32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }
}

/// Outcome of a systolic operation: numerical outputs plus model counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystolicOutput {
    /// The output values, one per weight-matrix row.
    pub values: Vec<i64>,
    /// First-order cycle count (fill + streaming; see
    /// [`SystolicArray::matvec_cycles`]).
    pub cycles: u64,
    /// BitBrick operations issued.
    pub brick_ops: u64,
    /// Multiply-accumulate operations performed.
    pub macs: u64,
}

/// The functional systolic array: `rows × cols` Fusion Units configured to a
/// single precision pair (one `setup` instruction configures the whole array;
/// §II-B).
#[derive(Debug, Clone, Copy)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
    unit: FusionUnit,
}

impl SystolicArray {
    /// Creates an array of `rows × cols` Fusion Units at precision `pair`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyArray`] when either dimension is zero.
    pub fn new(rows: usize, cols: usize, pair: PairPrecision) -> Result<Self, CoreError> {
        if rows == 0 || cols == 0 {
            return Err(CoreError::EmptyArray);
        }
        Ok(SystolicArray {
            rows,
            cols,
            unit: FusionUnit::new(pair),
        })
    }

    /// Array rows (Fusion Units per column).
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns (Fusion Units per row).
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// The configured precision pair.
    pub const fn pair(&self) -> PairPrecision {
        self.unit.pair()
    }

    /// Reduction lanes per column: array rows × Fused-PEs per unit. This is
    /// how many input elements the array consumes per cycle per column
    /// (Figure 4: the Fused-PEs within a unit extend the reduction
    /// dimension).
    pub const fn reduction_lanes(&self) -> usize {
        self.rows * self.unit.lanes() as usize
    }

    /// Multiplies `weights` (`M × K`) by `input` (length `K`), producing `M`
    /// 32-bit-accumulated outputs, through the full BitBrick decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] when `input.len()` differs from
    /// the weight matrix's column count, and propagates range errors from
    /// the arithmetic layer.
    pub fn matvec(&self, weights: &IntMatrix, input: &[i32]) -> Result<SystolicOutput, CoreError> {
        if input.len() != weights.cols() {
            return Err(CoreError::ShapeMismatch {
                expected: weights.cols(),
                actual: input.len(),
            });
        }
        let m = weights.rows();
        let k = weights.cols();
        let mut values = Vec::with_capacity(m);
        let mut brick_ops = 0u64;
        for out in 0..m {
            let pairs: Vec<(i32, i32)> = (0..k).map(|i| (input[i], weights.get(out, i))).collect();
            let r = self.unit.dot(&pairs, 0)?;
            values.push(r.psum_out);
            brick_ops += r.brick_ops;
        }
        Ok(SystolicOutput {
            values,
            cycles: self.matvec_cycles(m, k),
            brick_ops,
            macs: (m * k) as u64,
        })
    }

    /// Multiplies `weights` (`M × K`) by each column of `inputs` (`K × N`),
    /// producing an `M × N` output matrix of 64-bit accumulations.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`SystolicArray::matvec`].
    pub fn gemm(
        &self,
        weights: &IntMatrix,
        inputs: &IntMatrix,
    ) -> Result<(Vec<Vec<i64>>, SystolicOutput), CoreError> {
        if inputs.rows() != weights.cols() {
            return Err(CoreError::ShapeMismatch {
                expected: weights.cols(),
                actual: inputs.rows(),
            });
        }
        let n = inputs.cols();
        let mut out_cols = Vec::with_capacity(n);
        let mut cycles = self.fill_cycles();
        let mut brick_ops = 0u64;
        let mut macs = 0u64;
        for j in 0..n {
            let col: Vec<i32> = (0..inputs.rows()).map(|i| inputs.get(i, j)).collect();
            let r = self.matvec(weights, &col)?;
            // Back-to-back vectors pipeline through the array: only the
            // streaming cycles repeat, not the fill.
            cycles += r.cycles - self.fill_cycles();
            brick_ops += r.brick_ops;
            macs += r.macs;
            out_cols.push(r.values);
        }
        let summary = SystolicOutput {
            values: Vec::new(),
            cycles,
            brick_ops,
            macs,
        };
        Ok((out_cols, summary))
    }

    /// Pipeline fill/drain latency: one hop per array row plus one per
    /// column.
    pub const fn fill_cycles(&self) -> u64 {
        (self.rows + self.cols) as u64
    }

    /// First-order cycle count of an `M × K` mat-vec: the reduction walks
    /// `ceil(K / reduction_lanes)` steps (each `temporal_cycles` long) per
    /// output pass, and outputs map onto columns in `ceil(M / cols)` passes;
    /// fill/drain is added once.
    pub fn matvec_cycles(&self, m: usize, k: usize) -> u64 {
        let steps = k.div_ceil(self.reduction_lanes()) as u64;
        let passes = m.div_ceil(self.cols) as u64;
        let temporal = self.pair().temporal_cycles() as u64;
        self.fill_cycles() + steps * passes * temporal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::SplitMix64;

    fn reference_matvec(weights: &IntMatrix, input: &[i32]) -> Vec<i64> {
        (0..weights.rows())
            .map(|m| {
                (0..weights.cols())
                    .map(|k| weights.get(m, k) as i64 * input[k] as i64)
                    .sum()
            })
            .collect()
    }

    #[test]
    fn matrix_from_vec_validates() {
        assert!(IntMatrix::from_vec(2, 2, vec![1, 2, 3]).is_err());
        let m = IntMatrix::from_vec(2, 2, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(m.get(1, 1), 4);
        assert_eq!(m.row(0), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn matrix_get_panics_out_of_bounds() {
        let m = IntMatrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn empty_array_rejected() {
        let pair = PairPrecision::from_bits(8, 8).unwrap();
        assert!(SystolicArray::new(0, 4, pair).is_err());
        assert!(SystolicArray::new(4, 0, pair).is_err());
    }

    #[test]
    fn matvec_matches_reference_all_pairs() {
        let mut rng = SplitMix64::new(0xb17f);
        for (i, w) in [(1, 1), (2, 2), (4, 1), (4, 4), (8, 2), (8, 8), (16, 16)] {
            let pair = PairPrecision::from_bits(i, w).unwrap();
            let array = SystolicArray::new(4, 4, pair).unwrap();
            let m = 9;
            let k = 23;
            let weights = IntMatrix::from_fn(m, k, |_, _| {
                rng.range_i32(pair.weight.min_value(), pair.weight.max_value())
            });
            let input: Vec<i32> = (0..k)
                .map(|_| rng.range_i32(pair.input.min_value(), pair.input.max_value()))
                .collect();
            let out = array.matvec(&weights, &input).unwrap();
            assert_eq!(out.values, reference_matvec(&weights, &input), "{i}/{w}");
            assert_eq!(out.macs, (m * k) as u64);
        }
    }

    #[test]
    fn matvec_shape_mismatch() {
        let pair = PairPrecision::from_bits(4, 4).unwrap();
        let array = SystolicArray::new(2, 2, pair).unwrap();
        let weights = IntMatrix::zeros(3, 5);
        assert!(array.matvec(&weights, &[0; 4]).is_err());
    }

    #[test]
    fn gemm_matches_reference() {
        let mut rng = SplitMix64::new(42);
        let pair = PairPrecision::from_bits(4, 2).unwrap();
        let array = SystolicArray::new(3, 5, pair).unwrap();
        let weights = IntMatrix::from_fn(7, 11, |_, _| rng.range_i32(-2, 1));
        let inputs = IntMatrix::from_fn(11, 4, |_, _| rng.range_i32(0, 15));
        let (cols, summary) = array.gemm(&weights, &inputs).unwrap();
        assert_eq!(cols.len(), 4);
        for (j, col) in cols.iter().enumerate() {
            let input: Vec<i32> = (0..11).map(|i| inputs.get(i, j)).collect();
            assert_eq!(*col, reference_matvec(&weights, &input));
        }
        assert_eq!(summary.macs, 7 * 11 * 4);
    }

    #[test]
    fn lower_bitwidth_is_faster() {
        // Identical shape; 2/2 must take fewer cycles than 8/8, which must
        // beat 16/16 — the architectural point of the paper.
        let cycles = |i: u32, w: u32| {
            let pair = PairPrecision::from_bits(i, w).unwrap();
            SystolicArray::new(8, 8, pair).unwrap().matvec_cycles(64, 512)
        };
        assert!(cycles(2, 2) < cycles(4, 4));
        assert!(cycles(4, 4) < cycles(8, 8));
        assert!(cycles(8, 8) < cycles(16, 16));
    }

    #[test]
    fn reduction_lanes_scale_with_fusion() {
        let lanes = |i: u32, w: u32| {
            let pair = PairPrecision::from_bits(i, w).unwrap();
            SystolicArray::new(8, 8, pair).unwrap().reduction_lanes()
        };
        assert_eq!(lanes(8, 8), 8);
        assert_eq!(lanes(4, 4), 32);
        assert_eq!(lanes(2, 2), 128);
        assert_eq!(lanes(8, 2), 32);
    }
}
