//! Fixed-point lookup-table nonlinearities for the activation units.
//!
//! The recurrent benchmarks (LSTM/RNN) need sigmoid and tanh between their
//! gate matrix multiplies; hardware activation units implement these as
//! piecewise lookup tables over the accumulated fixed-point value. This
//! module provides the LUT generator and evaluator that back the
//! `compute sigmoid` / `compute tanh` instructions, with an exactness
//! contract tested against the `f64` reference functions.

use crate::bitwidth::Precision;

/// The nonlinearity a table implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LutFn {
    /// Logistic sigmoid `1 / (1 + e^-x)`, output in `[0, 1]`.
    Sigmoid,
    /// Hyperbolic tangent, output in `[-1, 1]`.
    Tanh,
}

impl LutFn {
    /// The `f64` reference implementation.
    pub fn reference(self, x: f64) -> f64 {
        match self {
            LutFn::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            LutFn::Tanh => x.tanh(),
        }
    }
}

/// A fixed-point lookup table: maps a Q(`in_frac`) fixed-point input to an
/// output quantized into `output` precision (the full output range of the
/// function scaled to the precision's range).
///
/// # Examples
///
/// ```
/// use bitfusion_core::bitwidth::{BitWidth, Precision};
/// use bitfusion_core::lut::{ActivationLut, LutFn};
///
/// // tanh into signed 8-bit: output +-127 at saturation.
/// let lut = ActivationLut::new(LutFn::Tanh, 4, Precision::signed(BitWidth::B8), 4096);
/// assert!(lut.apply(0).abs() <= 1); // bucket-midpoint quantization
/// assert_eq!(lut.apply(1000), 127); // deep saturation
/// assert_eq!(lut.apply(-1000), -127);
/// ```
#[derive(Debug, Clone)]
pub struct ActivationLut {
    function: LutFn,
    in_frac_bits: u32,
    output: Precision,
    /// Table over the non-saturated input range, sampled uniformly.
    table: Vec<i32>,
    /// Input magnitude (fixed-point units) beyond which output saturates.
    saturation: i64,
}

impl ActivationLut {
    /// Builds a table with `entries` samples across the function's active
    /// region (|x| ≤ 8 real units — both functions are flat beyond that at
    /// any practical output precision).
    ///
    /// # Panics
    ///
    /// Panics when `entries < 2` — a configuration bug.
    pub fn new(function: LutFn, in_frac_bits: u32, output: Precision, entries: usize) -> Self {
        assert!(entries >= 2, "LUT needs at least two entries");
        let saturation = 8i64 << in_frac_bits;
        let out_scale = output.max_value() as f64;
        let mut table = Vec::with_capacity(entries);
        for i in 0..entries {
            // Sample the midpoint of each bucket over [-sat, +sat).
            let frac = (i as f64 + 0.5) / entries as f64;
            let x_fixed = -(saturation as f64) + frac * 2.0 * saturation as f64;
            let x_real = x_fixed / (1i64 << in_frac_bits) as f64;
            let y = function.reference(x_real);
            let q = (y * out_scale).round() as i32;
            table.push(output.clamp(q));
        }
        ActivationLut {
            function,
            in_frac_bits,
            output,
            table,
            saturation,
        }
    }

    /// The function this table implements.
    pub fn function(&self) -> LutFn {
        self.function
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Input fractional bits (Q-format).
    pub fn in_frac_bits(&self) -> u32 {
        self.in_frac_bits
    }

    /// Evaluates the table at a fixed-point input.
    pub fn apply(&self, x_fixed: i64) -> i32 {
        if x_fixed >= self.saturation {
            return self.output.clamp(match self.function {
                LutFn::Sigmoid => self.output.max_value(),
                LutFn::Tanh => self.output.max_value(),
            });
        }
        if x_fixed < -self.saturation {
            return self.output.clamp(match self.function {
                LutFn::Sigmoid => 0,
                LutFn::Tanh => -self.output.max_value(),
            });
        }
        let span = 2 * self.saturation;
        let offset = (x_fixed + self.saturation) as u128;
        let idx = (offset * self.table.len() as u128 / span as u128) as usize;
        self.table[idx.min(self.table.len() - 1)]
    }

    /// Maximum absolute quantization error against the `f64` reference over
    /// a uniform probe of the active region, in output LSBs.
    pub fn max_error_lsb(&self, probes: usize) -> f64 {
        let out_scale = self.output.max_value() as f64;
        let mut worst = 0.0f64;
        for i in 0..probes {
            let x_fixed = -self.saturation
                + (i as i64 * 2 * self.saturation) / probes as i64;
            let x_real = x_fixed as f64 / (1i64 << self.in_frac_bits) as f64;
            let exact = self.function.reference(x_real) * out_scale;
            let got = self.apply(x_fixed) as f64;
            worst = worst.max((exact - got).abs());
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitwidth::BitWidth;

    fn s8() -> Precision {
        Precision::signed(BitWidth::B8)
    }

    fn u8p() -> Precision {
        Precision::unsigned(BitWidth::B8)
    }

    #[test]
    fn sigmoid_fixed_points() {
        let lut = ActivationLut::new(LutFn::Sigmoid, 8, u8p(), 1024);
        // sigmoid(0) = 0.5 -> ~128 of 255.
        let mid = lut.apply(0);
        assert!((mid - 128).abs() <= 1, "{mid}");
        // Saturations.
        assert_eq!(lut.apply(100_000), 255);
        assert_eq!(lut.apply(-100_000), 0);
    }

    #[test]
    fn tanh_is_odd() {
        let lut = ActivationLut::new(LutFn::Tanh, 8, s8(), 2048);
        for x in [-2000i64, -700, -64, -1, 0, 1, 64, 700, 2000] {
            let pos = lut.apply(x);
            let neg = lut.apply(-x);
            assert!((pos + neg).abs() <= 1, "tanh not odd at {x}: {pos} vs {neg}");
        }
    }

    #[test]
    fn monotone_nondecreasing() {
        for f in [LutFn::Sigmoid, LutFn::Tanh] {
            let out = if f == LutFn::Sigmoid { u8p() } else { s8() };
            let lut = ActivationLut::new(f, 6, out, 512);
            let mut prev = i32::MIN;
            for x in (-1000..1000).step_by(7) {
                let y = lut.apply(x);
                assert!(y >= prev, "{f:?} decreases at {x}");
                prev = y;
            }
        }
    }

    #[test]
    fn error_within_one_lsb_at_1k_entries() {
        // A 1024-entry table over |x|<=8 keeps quantization within ~1 LSB
        // of an 8-bit output — the hardware-grade accuracy contract.
        for f in [LutFn::Sigmoid, LutFn::Tanh] {
            let out = if f == LutFn::Sigmoid { u8p() } else { s8() };
            let lut = ActivationLut::new(f, 8, out, 1024);
            let err = lut.max_error_lsb(10_000);
            assert!(err <= 1.5, "{f:?} error {err} LSB");
        }
    }

    #[test]
    fn four_bit_output_for_quantized_lstm() {
        // The 4-bit PTB LSTM routes gate outputs into u4/s4 activations.
        let sig = ActivationLut::new(LutFn::Sigmoid, 6, Precision::unsigned(BitWidth::B4), 256);
        assert_eq!(sig.apply(100_000), 15);
        assert_eq!(sig.apply(-100_000), 0);
        let th = ActivationLut::new(LutFn::Tanh, 6, Precision::signed(BitWidth::B4), 256);
        assert_eq!(th.apply(100_000), 7);
        assert_eq!(th.apply(-100_000), -7);
    }

    #[test]
    #[should_panic(expected = "at least two entries")]
    fn tiny_table_panics() {
        ActivationLut::new(LutFn::Sigmoid, 4, u8p(), 1);
    }
}
