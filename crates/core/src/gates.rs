//! Boolean gate primitives and structural gate counting.
//!
//! The paper reports synthesis results (Figure 10) for the Fusion Unit and a
//! reference temporal design. We do not have a synthesis flow, so the area
//! and power model in `bitfusion-energy` is grounded on *gate counts*
//! produced by the structural constructors here, calibrated against the
//! published totals. The boolean evaluators double as a fidelity check for
//! the arithmetic fast paths (see [`crate::bitbrick::BitBrick::multiply_gates`]).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// Half adder: returns `(sum, carry)`.
#[inline]
pub fn half_adder(a: bool, b: bool) -> (bool, bool) {
    (a ^ b, a & b)
}

/// Full adder: returns `(sum, carry)`.
#[inline]
pub fn full_adder(a: bool, b: bool, c: bool) -> (bool, bool) {
    let s1 = a ^ b;
    (s1 ^ c, (a & b) | (s1 & c))
}

/// Structural gate/register counts of a hardware block.
///
/// Counts use half/full adders, 2:1 muxes, generic 2-input logic gates, and
/// flip-flops as the unit primitives — the same granularity the paper uses
/// when it attributes Fusion Unit area to "BitBricks", "Shift-Add" and
/// "Register" (Figure 10).
///
/// # Examples
///
/// ```
/// use bitfusion_core::gates::GateCount;
///
/// let adder6 = GateCount::ripple_adder(6);
/// assert_eq!(adder6.full_adders, 6);
/// let two = adder6 + adder6;
/// assert_eq!(two.full_adders, 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct GateCount {
    /// Half adders.
    pub half_adders: u64,
    /// Full adders.
    pub full_adders: u64,
    /// 2:1 multiplexers (a k:1 mux counts as k-1 of these).
    pub muxes: u64,
    /// Generic 2-input combinational gates (AND/OR/XOR/INV average).
    pub logic: u64,
    /// Flip-flops (register bits).
    pub flops: u64,
}

impl GateCount {
    /// The empty count.
    pub const ZERO: GateCount = GateCount {
        half_adders: 0,
        full_adders: 0,
        muxes: 0,
        logic: 0,
        flops: 0,
    };

    /// An `n`-bit ripple-carry adder (modelled as `n` full adders).
    pub const fn ripple_adder(n: u64) -> GateCount {
        GateCount {
            half_adders: 0,
            full_adders: n,
            muxes: 0,
            logic: 0,
            flops: 0,
        }
    }

    /// An `n`-bit register.
    pub const fn register(n: u64) -> GateCount {
        GateCount {
            half_adders: 0,
            full_adders: 0,
            muxes: 0,
            logic: 0,
            flops: n,
        }
    }

    /// An `n`-bit wide `k`:1 multiplexer bank (a k:1 mux per output bit,
    /// decomposed into k-1 two-input muxes).
    pub const fn mux_bank(width: u64, k: u64) -> GateCount {
        GateCount {
            half_adders: 0,
            full_adders: 0,
            muxes: width * (k - 1),
            logic: 0,
            flops: 0,
        }
    }

    /// A barrel shifter over `width` bits selecting among `positions` shift
    /// amounts: `log2(positions)` stages of `width` 2:1 muxes each. This is
    /// how the shift units of the Fusion Unit and the temporal design are
    /// modelled (§III-C).
    pub const fn barrel_shifter(width: u64, positions: u64) -> GateCount {
        let stages = positions.ilog2() as u64;
        GateCount {
            half_adders: 0,
            full_adders: 0,
            muxes: width * stages,
            logic: 0,
            flops: 0,
        }
    }

    /// A 3-bit × 3-bit signed multiplier as drawn in Figure 5: nine AND-gate
    /// partial products reduced by three half adders and three full adders,
    /// plus sign-handling logic.
    pub const fn multiplier_3x3() -> GateCount {
        GateCount {
            half_adders: 3,
            full_adders: 3,
            muxes: 0,
            // 9 partial-product ANDs + ~6 gates of sign extension/negation.
            logic: 15,
            flops: 0,
        }
    }

    /// Weighted total in generic gate equivalents (GE). A full adder is
    /// counted as 5 GE, a half adder as 2.5 GE (×2 to stay integral we use
    /// tenths), a 2:1 mux as 2 GE, a flop as 4 GE, a logic gate as 1 GE.
    /// Returned in tenths of a gate equivalent to avoid floating point.
    pub const fn gate_equivalents_tenths(self) -> u64 {
        self.half_adders * 25
            + self.full_adders * 50
            + self.muxes * 20
            + self.logic * 10
            + self.flops * 40
    }

    /// Weighted total in gate equivalents as a float.
    pub fn gate_equivalents(self) -> f64 {
        self.gate_equivalents_tenths() as f64 / 10.0
    }
}

impl Add for GateCount {
    type Output = GateCount;

    fn add(self, rhs: GateCount) -> GateCount {
        GateCount {
            half_adders: self.half_adders + rhs.half_adders,
            full_adders: self.full_adders + rhs.full_adders,
            muxes: self.muxes + rhs.muxes,
            logic: self.logic + rhs.logic,
            flops: self.flops + rhs.flops,
        }
    }
}

impl AddAssign for GateCount {
    fn add_assign(&mut self, rhs: GateCount) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for GateCount {
    type Output = GateCount;

    fn mul(self, k: u64) -> GateCount {
        GateCount {
            half_adders: self.half_adders * k,
            full_adders: self.full_adders * k,
            muxes: self.muxes * k,
            logic: self.logic * k,
            flops: self.flops * k,
        }
    }
}

impl Sum for GateCount {
    fn sum<I: Iterator<Item = GateCount>>(iter: I) -> GateCount {
        iter.fold(GateCount::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for GateCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{ha: {}, fa: {}, mux: {}, logic: {}, ff: {}}}",
            self.half_adders, self.full_adders, self.muxes, self.logic, self.flops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_adder_truth_table() {
        assert_eq!(half_adder(false, false), (false, false));
        assert_eq!(half_adder(true, false), (true, false));
        assert_eq!(half_adder(false, true), (true, false));
        assert_eq!(half_adder(true, true), (false, true));
    }

    #[test]
    fn full_adder_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let (s, carry) = full_adder(a, b, c);
                    let total = a as u8 + b as u8 + c as u8;
                    assert_eq!(s, total & 1 == 1);
                    assert_eq!(carry, total >= 2);
                }
            }
        }
    }

    #[test]
    fn counts_add_and_scale() {
        let a = GateCount::ripple_adder(8);
        let r = GateCount::register(32);
        let sum = a + r;
        assert_eq!(sum.full_adders, 8);
        assert_eq!(sum.flops, 32);
        let four = sum * 4;
        assert_eq!(four.full_adders, 32);
        assert_eq!(four.flops, 128);
    }

    #[test]
    fn gate_equivalents_monotone() {
        let small = GateCount::ripple_adder(4);
        let big = GateCount::ripple_adder(16);
        assert!(big.gate_equivalents() > small.gate_equivalents());
        assert!(GateCount::ZERO.gate_equivalents() == 0.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: GateCount = (0..4).map(|_| GateCount::register(8)).sum();
        assert_eq!(total.flops, 32);
    }
}
