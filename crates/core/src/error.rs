//! Error type for the core arithmetic crate.

use std::error::Error;
use std::fmt;

use crate::bitwidth::Precision;

/// Errors produced by the bit-level arithmetic layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A bitwidth other than 1, 2, 4, 8, or 16 was requested.
    UnsupportedBitWidth(u32),
    /// A value does not fit in the requested precision.
    ValueOutOfRange {
        /// The offending value.
        value: i32,
        /// The precision it was checked against.
        precision: Precision,
    },
    /// A systolic array was configured with a zero dimension.
    EmptyArray,
    /// An operand vector's length does not match the array geometry.
    ShapeMismatch {
        /// What the operation expected.
        expected: usize,
        /// What the caller provided.
        actual: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsupportedBitWidth(bits) => {
                write!(f, "unsupported bitwidth: {bits} (expected 1, 2, 4, 8, or 16)")
            }
            CoreError::ValueOutOfRange { value, precision } => {
                write!(
                    f,
                    "value {value} out of range for {precision} (range {}..={})",
                    precision.min_value(),
                    precision.max_value()
                )
            }
            CoreError::EmptyArray => write!(f, "systolic array dimensions must be non-zero"),
            CoreError::ShapeMismatch { expected, actual } => {
                write!(f, "operand shape mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitwidth::BitWidth;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors: Vec<CoreError> = vec![
            CoreError::UnsupportedBitWidth(3),
            CoreError::ValueOutOfRange {
                value: 9,
                precision: Precision::signed(BitWidth::B4),
            },
            CoreError::EmptyArray,
            CoreError::ShapeMismatch {
                expected: 4,
                actual: 2,
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
