//! The production Fusion Unit: spatial fusion up to 8-bit operands combined
//! with temporal iteration for 16-bit operands (§III-C of the paper).

use crate::bitwidth::{BitWidth, PairPrecision, Precision, BRICKS_PER_FUSION_UNIT};
use crate::decompose::{decompose_multiply, DecomposedOp};
use crate::error::CoreError;
use crate::fusion::spatial::SpatialStructure;
use crate::gates::GateCount;

/// Result of one logical multiply-accumulate step on a Fusion Unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacResult {
    /// The outgoing partial sum: incoming partial sum plus the sum of all
    /// products computed this step (`psum forward` in Figure 2(a)).
    pub psum_out: i64,
    /// Cycles consumed: 1 for spatially supported precisions, up to 4 for
    /// 16-bit operands (temporal iteration).
    pub cycles: u64,
    /// BitBrick operations issued.
    pub brick_ops: u64,
}

/// A Fusion Unit: 16 BitBricks plus shift-add logic, dynamically configured
/// to a precision pair.
///
/// The unit is stateless between steps (partial sums flow systolically, not
/// through local storage — §II-B: "the systolic organization also eliminates
/// the need for local buffers ... within Fusion Units").
///
/// # Examples
///
/// ```
/// use bitfusion_core::bitwidth::PairPrecision;
/// use bitfusion_core::fusion::FusionUnit;
///
/// // Ternary weights: 16 parallel multiplies in a single cycle.
/// let unit = FusionUnit::new(PairPrecision::from_bits(2, 2).unwrap());
/// let pairs: Vec<(i32, i32)> = (0..16).map(|i| (i % 4, (i % 3) - 1)).collect();
/// let r = unit.mac(&pairs, 100).unwrap();
/// assert_eq!(r.cycles, 1);
/// let expected: i64 = 100 + pairs.iter().map(|&(a, b)| (a * b) as i64).sum::<i64>();
/// assert_eq!(r.psum_out, expected);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FusionUnit {
    pair: PairPrecision,
}

impl FusionUnit {
    /// Creates a unit configured for `pair`. All widths from 1 to 16 bits
    /// are supported; 16-bit operands engage the temporal path.
    pub const fn new(pair: PairPrecision) -> Self {
        FusionUnit { pair }
    }

    /// The configured precision pair.
    pub const fn pair(&self) -> PairPrecision {
        self.pair
    }

    /// Number of multiplies the unit accepts per step (its Fused-PE count).
    pub const fn lanes(&self) -> u32 {
        self.pair.fused_pes_per_unit()
    }

    /// Executes one step: up to [`FusionUnit::lanes`] `(input, weight)`
    /// multiplies, summed together with the incoming partial sum.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] when more pairs than lanes are
    /// supplied, or [`CoreError::ValueOutOfRange`] when an operand does not
    /// fit the configured precision.
    pub fn mac(&self, pairs: &[(i32, i32)], psum_in: i64) -> Result<MacResult, CoreError> {
        if pairs.len() > self.lanes() as usize {
            return Err(CoreError::ShapeMismatch {
                expected: self.lanes() as usize,
                actual: pairs.len(),
            });
        }
        let mut acc = psum_in;
        let mut brick_ops = 0u64;
        for &(a, b) in pairs {
            let ops = decompose_multiply(a, b, self.pair)?;
            brick_ops += ops.len() as u64;
            acc += ops.into_iter().map(DecomposedOp::evaluate).sum::<i64>();
        }
        Ok(MacResult {
            psum_out: acc,
            cycles: self.pair.temporal_cycles() as u64,
            brick_ops,
        })
    }

    /// Convenience: runs a full dot product through the unit, stepping
    /// [`FusionUnit::lanes`] elements at a time, and returns the aggregate
    /// result with total cycles and brick operations.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`FusionUnit::mac`].
    pub fn dot(&self, pairs: &[(i32, i32)], psum_in: i64) -> Result<MacResult, CoreError> {
        let mut acc = psum_in;
        let mut cycles = 0u64;
        let mut brick_ops = 0u64;
        for chunk in pairs.chunks(self.lanes().max(1) as usize) {
            let r = self.mac(chunk, acc)?;
            acc = r.psum_out;
            cycles += r.cycles;
            brick_ops += r.brick_ops;
        }
        Ok(MacResult {
            psum_out: acc,
            cycles,
            brick_ops,
        })
    }

    /// Whether the configured precision engages the temporal (multi-cycle)
    /// path.
    pub const fn is_spatio_temporal(&self) -> bool {
        self.pair.temporal_cycles() > 1
    }

    /// Gate counts of the unit, split the way Figure 10 reports them.
    pub fn gates() -> FusionUnitGates {
        FusionUnitGates {
            bit_bricks: GateCount::multiplier_3x3() * BRICKS_PER_FUSION_UNIT as u64,
            shift_add: SpatialStructure::shift_add_gates()
                // Temporal extension for 16-bit: one extra shift stage and
                // accumulate feedback at the root of the tree.
                + GateCount::barrel_shifter(32, 4)
                + GateCount::ripple_adder(32),
            register: SpatialStructure::register_gates(),
        }
    }

    /// The widest precision the unit fuses purely spatially.
    pub const fn max_spatial_width() -> BitWidth {
        BitWidth::B8
    }

    /// Enumerates every precision pair the unit supports (all combinations
    /// of 1/2/4/8/16-bit inputs and weights), in increasing brick-cost order.
    pub fn supported_pairs() -> Vec<PairPrecision> {
        let mut pairs = Vec::new();
        for iw in BitWidth::ALL {
            for ww in BitWidth::ALL {
                pairs.push(PairPrecision::new(
                    Precision::unsigned(iw),
                    Precision::signed(ww),
                ));
            }
        }
        pairs.sort_by_key(|p| p.bricks_per_product());
        pairs
    }
}

/// Gate counts of one Fusion Unit, split into the Figure 10 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionUnitGates {
    /// The 16 BitBrick multipliers.
    pub bit_bricks: GateCount,
    /// Shift units and adder trees.
    pub shift_add: GateCount,
    /// Output registers.
    pub register: GateCount,
}

impl FusionUnitGates {
    /// Sum of all three categories.
    pub fn total(&self) -> GateCount {
        self.bit_bricks + self.shift_add + self.register
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_configs_single_cycle() {
        for (i, w) in [(1, 1), (2, 2), (4, 4), (8, 8), (8, 2)] {
            let unit = FusionUnit::new(PairPrecision::from_bits(i, w).unwrap());
            assert!(!unit.is_spatio_temporal(), "{i}/{w}");
            let pairs = vec![(0, 0); unit.lanes() as usize];
            assert_eq!(unit.mac(&pairs, 0).unwrap().cycles, 1);
        }
    }

    #[test]
    fn sixteen_bit_temporal_cycles() {
        let unit = FusionUnit::new(PairPrecision::from_bits(16, 16).unwrap());
        assert!(unit.is_spatio_temporal());
        // Inputs are unsigned, weights signed (the from_bits convention).
        let r = unit.mac(&[(60000, -29999)], 0).unwrap();
        assert_eq!(r.cycles, 4);
        assert_eq!(r.psum_out, 60000i64 * -29999);
        assert_eq!(r.brick_ops, 64);
    }

    #[test]
    fn mixed_16x8_two_cycles() {
        let unit = FusionUnit::new(PairPrecision::from_bits(16, 8).unwrap());
        let r = unit.mac(&[(40000, -100)], 0).unwrap();
        assert_eq!(r.cycles, 2);
        assert_eq!(r.psum_out, 40000i64 * -100);
    }

    #[test]
    fn dot_matches_reference_for_every_supported_pair() {
        for pair in FusionUnit::supported_pairs() {
            let unit = FusionUnit::new(pair);
            let n = 37usize; // deliberately not a multiple of the lane count
            let pairs: Vec<(i32, i32)> = (0..n)
                .map(|k| {
                    let a = pair.input.min_value()
                        + (k as i32 * 7) % (pair.input.max_value() - pair.input.min_value() + 1);
                    let b = pair.weight.min_value()
                        + (k as i32 * 13) % (pair.weight.max_value() - pair.weight.min_value() + 1);
                    (a, b)
                })
                .collect();
            let expected: i64 = pairs.iter().map(|&(a, b)| a as i64 * b as i64).sum();
            let r = unit.dot(&pairs, 0).unwrap();
            assert_eq!(r.psum_out, expected, "pair {pair}");
        }
    }

    #[test]
    fn mac_rejects_overfull_step() {
        let unit = FusionUnit::new(PairPrecision::from_bits(8, 8).unwrap());
        assert!(unit.mac(&[(1, 1), (2, 2)], 0).is_err());
    }

    #[test]
    fn partial_sums_thread_through() {
        let unit = FusionUnit::new(PairPrecision::from_bits(4, 4).unwrap());
        let r1 = unit.mac(&[(3, 3)], 0).unwrap();
        let r2 = unit.mac(&[(2, 2)], r1.psum_out).unwrap();
        assert_eq!(r2.psum_out, 13);
    }

    #[test]
    fn gate_totals_follow_figure_10_shape() {
        let fu = FusionUnit::gates();
        let total = fu.total().gate_equivalents();
        assert!(total > 0.0);
        // Figure 10: in the Fusion Unit, shift-add is the dominant component
        // and the register is by far the smallest.
        assert!(fu.shift_add.gate_equivalents() > fu.bit_bricks.gate_equivalents());
        assert!(fu.register.gate_equivalents() < fu.bit_bricks.gate_equivalents());
    }

    #[test]
    fn supported_pairs_covers_25_combinations() {
        let pairs = FusionUnit::supported_pairs();
        assert_eq!(pairs.len(), 25);
        // Sorted by brick cost: first entries single-brick, last 16x16.
        assert_eq!(pairs.first().unwrap().bricks_per_product(), 1);
        assert_eq!(pairs.last().unwrap().bricks_per_product(), 64);
    }
}
