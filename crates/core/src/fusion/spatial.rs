//! Spatial fusion: the single-cycle shift-add composition of BitBricks
//! (Figure 9 of the paper).

use crate::bitwidth::{PairPrecision, BRICKS_PER_FUSION_UNIT};
use crate::decompose::{decompose_multiply, DecomposedOp};
use crate::error::CoreError;
use crate::gates::GateCount;

/// One Fused Processing Engine: the set of BitBricks (with their shift
/// amounts) that jointly compute a single variable-bitwidth multiply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedPe {
    /// Indices of the BitBricks composing this Fused-PE within the unit
    /// (0..16).
    pub brick_indices: Vec<u32>,
    /// Left-shift applied to each brick's product, aligned with
    /// `brick_indices`.
    pub shifts: Vec<u32>,
}

impl FusedPe {
    /// Number of BitBricks fused into this engine.
    pub fn brick_count(&self) -> u32 {
        self.brick_indices.len() as u32
    }
}

/// The static structure of a spatially fused multiplier for a given
/// precision pair: which bricks belong to which Fused-PE and the shift-add
/// tree that combines them.
///
/// # Examples
///
/// ```
/// use bitfusion_core::bitwidth::PairPrecision;
/// use bitfusion_core::fusion::SpatialStructure;
///
/// // Figure 2(c): 8-bit inputs x 2-bit weights -> 4 Fused-PEs of 4 bricks.
/// let s = SpatialStructure::for_pair(PairPrecision::from_bits(8, 2).unwrap()).unwrap();
/// assert_eq!(s.fused_pes().len(), 4);
/// assert!(s.fused_pes().iter().all(|pe| pe.brick_count() == 4));
/// ```
#[derive(Debug, Clone)]
pub struct SpatialStructure {
    pair: PairPrecision,
    fused_pes: Vec<FusedPe>,
}

impl SpatialStructure {
    /// Builds the fusion structure for `pair`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnsupportedBitWidth`] for 16-bit operands:
    /// spatial fusion stops at 8 bits (§III-C — wider spatial fusion would
    /// require 128-bit SRAM ports); 16-bit operands require the
    /// spatio-temporal [`FusionUnit`](crate::fusion::FusionUnit) instead.
    pub fn for_pair(pair: PairPrecision) -> Result<Self, CoreError> {
        let per_product = pair.bricks_per_product();
        if per_product > BRICKS_PER_FUSION_UNIT
            || pair.input.width == crate::bitwidth::BitWidth::B16
            || pair.weight.width == crate::bitwidth::BitWidth::B16
        {
            return Err(CoreError::UnsupportedBitWidth(
                pair.input.bits().max(pair.weight.bits()),
            ));
        }
        // Shifts are the same for every product at this precision; derive
        // them once from the decomposition of an arbitrary in-range value.
        let template: Vec<u32> = decompose_multiply(0, 0, pair)
            .expect("zero fits all precisions")
            .into_iter()
            .map(|op| op.shift)
            .collect();
        let fpe_count = pair.fused_pes_per_unit();
        let mut fused_pes = Vec::with_capacity(fpe_count as usize);
        let mut next_brick = 0u32;
        for _ in 0..fpe_count {
            let brick_indices: Vec<u32> =
                (next_brick..next_brick + per_product).collect();
            next_brick += per_product;
            fused_pes.push(FusedPe {
                brick_indices,
                shifts: template.clone(),
            });
        }
        Ok(SpatialStructure { pair, fused_pes })
    }

    /// The precision pair this structure was built for.
    pub fn pair(&self) -> PairPrecision {
        self.pair
    }

    /// The Fused-PEs of the unit.
    pub fn fused_pes(&self) -> &[FusedPe] {
        &self.fused_pes
    }

    /// Evaluates one cycle of the spatially fused unit: each `(input,
    /// weight)` pair feeds one Fused-PE; the return value is the sum of all
    /// products (the unit's contribution to the column partial sum,
    /// Figure 2(a)).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] when `pairs.len()` differs from
    /// the Fused-PE count, or [`CoreError::ValueOutOfRange`] when an operand
    /// does not fit the configured precision.
    pub fn evaluate(&self, pairs: &[(i32, i32)]) -> Result<i64, CoreError> {
        if pairs.len() != self.fused_pes.len() {
            return Err(CoreError::ShapeMismatch {
                expected: self.fused_pes.len(),
                actual: pairs.len(),
            });
        }
        let mut acc: i64 = 0;
        for &(a, b) in pairs {
            let ops = decompose_multiply(a, b, self.pair)?;
            acc += ops.into_iter().map(DecomposedOp::evaluate).sum::<i64>();
        }
        Ok(acc)
    }

    /// Number of shift-add tree levels needed to reduce 16 brick products
    /// (log4 of the brick count: quads reduce at each level, Figure 9).
    pub fn shift_add_levels() -> u32 {
        // 16 bricks -> 4 quad nodes -> 1 root: two levels of 4-input adders.
        2
    }

    /// Structural gate counts of the spatial fusion logic (shift units plus
    /// the adder tree), excluding the BitBricks themselves.
    ///
    /// Each tree level has three shift units and one four-input adder per
    /// node (§III-C); widths grow toward the root. A single shared 32-bit
    /// accumulator register terminates the tree.
    pub fn shift_add_gates() -> GateCount {
        let mut g = GateCount::ZERO;
        // Level 1: four nodes, each fusing four 6-bit brick products into a
        // 12-bit partial value: 3 shift units (4-position barrel shifters
        // over 12 bits) and a 4-input adder (three 12-bit ripple adders).
        let level1_node =
            GateCount::barrel_shifter(12, 4) * 3 + GateCount::ripple_adder(12) * 3;
        g += level1_node * 4;
        // Level 2: one node fusing four 12-bit values into a 24-bit product:
        // 3 shift units (4-position over 24 bits) and three 24-bit adders.
        g += GateCount::barrel_shifter(24, 4) * 3 + GateCount::ripple_adder(24) * 3;
        // Output accumulate into the 32-bit partial-sum register.
        g += GateCount::ripple_adder(32);
        g
    }

    /// The single shared output register (32-bit partial sums, §II-C).
    pub fn register_gates() -> GateCount {
        GateCount::register(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitwidth::{BitWidth, Precision};

    #[test]
    fn structure_counts_match_figure_2() {
        let cases = [
            ((2, 2), 16, 1),
            ((1, 1), 16, 1),
            ((8, 2), 4, 4),
            ((2, 8), 4, 4),
            ((4, 4), 4, 4),
            ((4, 1), 8, 2),
            ((8, 8), 1, 16),
        ];
        for ((i, w), fpes, bricks) in cases {
            let s = SpatialStructure::for_pair(PairPrecision::from_bits(i, w).unwrap()).unwrap();
            assert_eq!(s.fused_pes().len(), fpes, "{i}/{w} fpes");
            assert!(
                s.fused_pes().iter().all(|pe| pe.brick_count() == bricks),
                "{i}/{w} bricks"
            );
        }
    }

    #[test]
    fn bricks_never_shared_between_fused_pes() {
        for (i, w) in [(2, 2), (4, 2), (4, 4), (8, 2), (8, 4), (8, 8)] {
            let s = SpatialStructure::for_pair(PairPrecision::from_bits(i, w).unwrap()).unwrap();
            let mut seen = std::collections::HashSet::new();
            for pe in s.fused_pes() {
                for &b in &pe.brick_indices {
                    assert!(b < 16);
                    assert!(seen.insert(b), "brick {b} reused at {i}/{w}");
                }
            }
        }
    }

    #[test]
    fn sixteen_bit_rejected_spatially() {
        assert!(SpatialStructure::for_pair(PairPrecision::from_bits(16, 4).unwrap()).is_err());
        assert!(SpatialStructure::for_pair(PairPrecision::from_bits(16, 16).unwrap()).is_err());
    }

    #[test]
    fn evaluate_sums_all_fused_pes() {
        // Figure 7: two 4-bit x 2-bit products summed: 15*1 + 10*2 = 35,
        // padded with zero pairs to fill the 8 Fused-PEs of the 4/2 config.
        let pair = PairPrecision::new(
            Precision::unsigned(BitWidth::B4),
            Precision::unsigned(BitWidth::B2),
        );
        let s = SpatialStructure::for_pair(pair).unwrap();
        let mut pairs = vec![(15, 1), (10, 2)];
        pairs.resize(s.fused_pes().len(), (0, 0));
        assert_eq!(s.evaluate(&pairs).unwrap(), 35);
    }

    #[test]
    fn evaluate_rejects_wrong_arity() {
        let s = SpatialStructure::for_pair(PairPrecision::from_bits(8, 8).unwrap()).unwrap();
        assert!(matches!(
            s.evaluate(&[(1, 1), (2, 2)]),
            Err(CoreError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn evaluate_matches_reference_dot_product() {
        let pair = PairPrecision::from_bits(4, 4).unwrap();
        let s = SpatialStructure::for_pair(pair).unwrap();
        let pairs = [(7, -8), (3, 5), (0, 7), (15, -1)];
        let expected: i64 = pairs.iter().map(|&(a, b)| a as i64 * b as i64).sum();
        assert_eq!(s.evaluate(&pairs).unwrap(), expected);
    }

    #[test]
    fn gates_are_nonzero_and_register_small() {
        let tree = SpatialStructure::shift_add_gates();
        assert!(tree.gate_equivalents() > 0.0);
        let reg = SpatialStructure::register_gates();
        assert_eq!(reg.flops, 32);
        // The single shared register must be far smaller than the tree — the
        // design point Figure 10 highlights (16x register reduction vs the
        // temporal design).
        assert!(reg.gate_equivalents() < tree.gate_equivalents());
    }
}
