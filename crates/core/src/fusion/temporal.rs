//! The temporal reference design (Figure 8 of the paper): 16 independent
//! BitBrick lanes, each iterating over the decomposed products of its
//! multiply across cycles with a private shifter and accumulator register.
//!
//! The paper implements this design only to *compare against* spatial fusion
//! (Figure 10: the hybrid Fusion Unit is 3.5× smaller and 3.2× lower power at
//! the same throughput); we reproduce it for the same purpose.

use crate::bitwidth::{PairPrecision, BRICKS_PER_FUSION_UNIT};
use crate::decompose::{decompose_multiply, DecomposedOp};
use crate::error::CoreError;
use crate::gates::GateCount;

/// Result of running a batch of multiplies on the temporal design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalRun {
    /// Sum of all products (after each lane's accumulation completes).
    pub total: i64,
    /// Cycles consumed: the maximum lane occupancy, since lanes run in
    /// lockstep off a shared sequencer.
    pub cycles: u64,
    /// Total BitBrick operations issued.
    pub brick_ops: u64,
}

/// The temporal design: [`BRICKS_PER_FUSION_UNIT`] independent single-brick
/// lanes.
///
/// # Examples
///
/// ```
/// use bitfusion_core::bitwidth::PairPrecision;
/// use bitfusion_core::fusion::TemporalUnit;
///
/// let unit = TemporalUnit::new(PairPrecision::from_bits(4, 4).unwrap());
/// // 16 multiplies at 4-bit need 4 decomposed products each -> 4 cycles.
/// let pairs: Vec<(i32, i32)> = (0..16).map(|i| (i % 8, 7 - (i % 8))).collect();
/// let run = unit.execute(&pairs).unwrap();
/// assert_eq!(run.cycles, 4);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TemporalUnit {
    pair: PairPrecision,
}

impl TemporalUnit {
    /// Creates a temporal unit configured for `pair`.
    pub const fn new(pair: PairPrecision) -> Self {
        TemporalUnit { pair }
    }

    /// The configured precision pair.
    pub const fn pair(&self) -> PairPrecision {
        self.pair
    }

    /// Executes `pairs` across the 16 lanes: multiplies are dealt round-robin
    /// to lanes; each lane serially evaluates the decomposed 2-bit products
    /// of its multiplies, shifting and accumulating one product per cycle.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ValueOutOfRange`] when an operand does not fit
    /// the configured precision.
    pub fn execute(&self, pairs: &[(i32, i32)]) -> Result<TemporalRun, CoreError> {
        let lanes = BRICKS_PER_FUSION_UNIT as usize;
        let mut lane_cycles = vec![0u64; lanes];
        let mut total: i64 = 0;
        let mut brick_ops = 0u64;
        for (idx, &(a, b)) in pairs.iter().enumerate() {
            let ops = decompose_multiply(a, b, self.pair)?;
            lane_cycles[idx % lanes] += ops.len() as u64;
            brick_ops += ops.len() as u64;
            total += ops.into_iter().map(DecomposedOp::evaluate).sum::<i64>();
        }
        Ok(TemporalRun {
            total,
            cycles: lane_cycles.into_iter().max().unwrap_or(0),
            brick_ops,
        })
    }

    /// Steady-state multiplies per cycle at the configured precision: lanes
    /// divided by the decomposed-product count per multiply.
    pub fn throughput_per_kilocycle(&self) -> u64 {
        BRICKS_PER_FUSION_UNIT as u64 * 1000 / self.pair.bricks_per_product() as u64
    }

    /// Per-lane shift/accumulate gates. Supporting operands up to 16 bits
    /// means each lane shifts its 6-bit product by one of 16 even amounts
    /// (a 16-position barrel shifter over the 32-bit shifted value) and
    /// accumulates into a private 32-bit register — this is why the temporal
    /// design spends ~90% of its area on shift-add and registers (§III-C).
    pub fn lane_shift_add_gates() -> GateCount {
        GateCount::barrel_shifter(32, 16) + GateCount::ripple_adder(32)
    }

    /// Total gates of the shift-add logic across all 16 lanes.
    pub fn shift_add_gates() -> GateCount {
        Self::lane_shift_add_gates() * BRICKS_PER_FUSION_UNIT as u64
    }

    /// Total register gates: one 32-bit accumulator per lane.
    pub fn register_gates() -> GateCount {
        GateCount::register(32) * BRICKS_PER_FUSION_UNIT as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::unit::FusionUnit;

    #[test]
    fn result_matches_reference() {
        let unit = TemporalUnit::new(PairPrecision::from_bits(8, 8).unwrap());
        let pairs: Vec<(i32, i32)> = (0..32).map(|i| (i * 3 % 256, (i * 7 % 256) - 128)).collect();
        let expected: i64 = pairs.iter().map(|&(a, b)| a as i64 * b as i64).sum();
        assert_eq!(unit.execute(&pairs).unwrap().total, expected);
    }

    #[test]
    fn four_bit_multiply_takes_four_cycles() {
        // Figure 8: the temporal design requires 4 cycles for one 4x4
        // multiply on a single lane.
        let unit = TemporalUnit::new(PairPrecision::from_bits(4, 4).unwrap());
        let run = unit.execute(&[(7, -8)]).unwrap();
        assert_eq!(run.cycles, 4);
        assert_eq!(run.total, -56);
    }

    #[test]
    fn throughput_equals_spatial_fusion() {
        // §III-C compares the designs *at the same throughput*; verify the
        // steady-state rates match for every spatially supported pair.
        for (i, w) in [(2, 2), (4, 2), (4, 4), (8, 2), (8, 4), (8, 8)] {
            let pair = PairPrecision::from_bits(i, w).unwrap();
            let temporal = TemporalUnit::new(pair).throughput_per_kilocycle();
            let spatial = pair.products_per_kilocycle();
            assert_eq!(temporal, spatial, "{i}/{w}");
        }
    }

    #[test]
    fn agrees_with_fusion_unit_on_random_batches() {
        let pair = PairPrecision::from_bits(4, 2).unwrap();
        let unit = TemporalUnit::new(pair);
        let fusion = FusionUnit::new(pair);
        let pairs: Vec<(i32, i32)> = (0..64)
            .map(|i| ((i * 5) % 16, ((i * 11) % 4) - 2))
            .collect();
        let t = unit.execute(&pairs).unwrap();
        let f = fusion.dot(&pairs, 0).unwrap();
        assert_eq!(t.total, f.psum_out);
        assert_eq!(t.brick_ops, f.brick_ops);
    }

    #[test]
    fn register_area_dominates_vs_spatial() {
        use crate::fusion::spatial::SpatialStructure;
        // The temporal design carries 16 private accumulators vs one shared
        // register: a 16x flop-count gap (the "16.0x" row of Figure 10).
        let temporal = TemporalUnit::register_gates();
        let spatial = SpatialStructure::register_gates();
        assert_eq!(temporal.flops, 16 * spatial.flops);
    }

    #[test]
    fn rejects_out_of_range() {
        let unit = TemporalUnit::new(PairPrecision::from_bits(2, 2).unwrap());
        assert!(unit.execute(&[(4, 0)]).is_err());
    }

    #[test]
    fn empty_batch_is_zero_cycles() {
        let unit = TemporalUnit::new(PairPrecision::from_bits(8, 8).unwrap());
        let run = unit.execute(&[]).unwrap();
        assert_eq!(run.cycles, 0);
        assert_eq!(run.total, 0);
    }
}
