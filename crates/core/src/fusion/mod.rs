//! Fusion Units: dynamically composable groups of 16 BitBricks.
//!
//! This module implements the three designs discussed in §III of the paper:
//!
//! * [`spatial`] — *spatial fusion* (Figure 9): all decomposed products of a
//!   multiply are computed by distinct BitBricks in the same cycle and summed
//!   by a shift-add tree.
//! * [`temporal`] — the *temporal design* (Figure 8): each BitBrick iterates
//!   over the decomposed products across cycles, with a private shifter and
//!   accumulator register. Implemented as the reference point for the
//!   Figure 10 area/power comparison.
//! * [`mod@unit`] — the production *Fusion Unit*: spatial fusion up to 8-bit
//!   operands combined with temporal iteration for 16-bit operands
//!   (the spatio-temporal hybrid of §III-C).

pub mod spatial;
pub mod temporal;
pub mod unit;

pub use spatial::{FusedPe, SpatialStructure};
pub use temporal::{TemporalRun, TemporalUnit};
pub use unit::{FusionUnit, MacResult};
