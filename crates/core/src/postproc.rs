//! Per-column post-processing units: activation and pooling (Figure 3 shows
//! one of each ahead of every output buffer).
//!
//! The functional behaviour is straightforward; the value of modelling these
//! units explicitly is (a) layer fusion — the compiler can route a layer's
//! output through activation/pooling without a round trip to memory
//! (§IV-B) — and (b) charging their (small) energy in the cost model.

use crate::bitwidth::Precision;

/// Activation function applied by the per-column activation unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Pass values through unchanged.
    #[default]
    Identity,
    /// Rectified linear unit: `max(0, x)`.
    Relu,
    /// Clipped ReLU (`min(max(0, x), cap)`), used by the quantized networks
    /// to bound activations to their storage range.
    ReluClipped {
        /// Upper bound applied after rectification.
        cap: i32,
    },
}

impl Activation {
    /// Applies the activation to a 32-bit accumulated value.
    #[inline]
    pub fn apply(self, x: i64) -> i64 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0),
            Activation::ReluClipped { cap } => x.clamp(0, cap as i64),
        }
    }
}

/// The per-column activation unit: applies the activation and requantizes
/// the 32-bit partial sum to the next layer's input precision with a
/// rounding right-shift.
#[derive(Debug, Clone, Copy)]
pub struct ActivationUnit {
    /// Activation function.
    pub activation: Activation,
    /// Right-shift applied during requantization (a power-of-two scale, the
    /// common choice in the fixed-point quantization schemes the paper's
    /// benchmarks use).
    pub requant_shift: u32,
    /// Output precision values are clamped into.
    pub output: Precision,
}

impl ActivationUnit {
    /// Creates a unit with the given activation, requantization shift, and
    /// output precision.
    pub const fn new(activation: Activation, requant_shift: u32, output: Precision) -> Self {
        ActivationUnit {
            activation,
            requant_shift,
            output,
        }
    }

    /// Processes one accumulated value into an output-precision value.
    pub fn process(&self, x: i64) -> i32 {
        let activated = self.activation.apply(x);
        let shifted = if self.requant_shift == 0 {
            activated
        } else {
            // Round-to-nearest on the discarded bits.
            let half = 1i64 << (self.requant_shift - 1);
            (activated + half) >> self.requant_shift
        };
        self.output
            .clamp(shifted.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }
}

/// Pooling operator of the per-column pooling unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PoolOp {
    /// Maximum over the window.
    #[default]
    Max,
    /// Arithmetic mean over the window (truncating division, as a hardware
    /// average unit would implement for power-of-two windows).
    Average,
}

/// The per-column pooling unit: reduces a streamed window of values.
#[derive(Debug, Clone, Copy)]
pub struct PoolingUnit {
    /// The pooling operator.
    pub op: PoolOp,
}

impl PoolingUnit {
    /// Creates a pooling unit.
    pub const fn new(op: PoolOp) -> Self {
        PoolingUnit { op }
    }

    /// Reduces one window of values.
    ///
    /// # Panics
    ///
    /// Panics when `window` is empty — the compiler never emits empty
    /// pooling windows.
    pub fn reduce(&self, window: &[i32]) -> i32 {
        assert!(!window.is_empty(), "pooling window must be non-empty");
        match self.op {
            PoolOp::Max => *window.iter().max().expect("non-empty window"),
            PoolOp::Average => {
                let sum: i64 = window.iter().map(|&v| v as i64).sum();
                (sum / window.len() as i64) as i32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitwidth::BitWidth;

    #[test]
    fn relu_behaviour() {
        assert_eq!(Activation::Relu.apply(-5), 0);
        assert_eq!(Activation::Relu.apply(5), 5);
        assert_eq!(Activation::Identity.apply(-5), -5);
        assert_eq!(Activation::ReluClipped { cap: 3 }.apply(7), 3);
        assert_eq!(Activation::ReluClipped { cap: 3 }.apply(-7), 0);
    }

    #[test]
    fn requantization_rounds_and_clamps() {
        let unit = ActivationUnit::new(
            Activation::Relu,
            4,
            Precision::unsigned(BitWidth::B4),
        );
        // 100 >> 4 with rounding = round(6.25) = 6.
        assert_eq!(unit.process(100), 6);
        // 1000 >> 4 = 62.5 -> 63, clamped to u4 max 15.
        assert_eq!(unit.process(1000), 15);
        // Negative rectified away.
        assert_eq!(unit.process(-1000), 0);
    }

    #[test]
    fn zero_shift_passthrough() {
        let unit = ActivationUnit::new(
            Activation::Identity,
            0,
            Precision::signed(BitWidth::B8),
        );
        assert_eq!(unit.process(-42), -42);
        assert_eq!(unit.process(4200), 127);
    }

    #[test]
    fn max_pool() {
        let unit = PoolingUnit::new(PoolOp::Max);
        assert_eq!(unit.reduce(&[3, -1, 7, 2]), 7);
        assert_eq!(unit.reduce(&[-3, -1, -7]), -1);
    }

    #[test]
    fn average_pool() {
        let unit = PoolingUnit::new(PoolOp::Average);
        assert_eq!(unit.reduce(&[2, 4, 6, 8]), 5);
        assert_eq!(unit.reduce(&[1]), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_panics() {
        PoolingUnit::new(PoolOp::Max).reduce(&[]);
    }
}
