//! Accelerator-level configuration: array geometry, buffer sizes, bandwidth,
//! and frequency (§II-B and Table III of the paper).

use std::fmt;

use crate::bitwidth::{PairPrecision, BRICKS_PER_FUSION_UNIT};
use crate::error::CoreError;

/// Static configuration of a Bit Fusion accelerator instance.
///
/// # Examples
///
/// ```
/// use bitfusion_core::arch::ArchConfig;
///
/// let arch = ArchConfig::isca_45nm();
/// assert_eq!(arch.fusion_units(), 512);
/// assert_eq!(arch.sram_bytes_total(), 112 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchConfig {
    /// Human-readable configuration name.
    pub name: &'static str,
    /// Fusion Units per column (inputs stream across rows).
    pub rows: usize,
    /// Fusion Units per row (outputs accumulate down columns).
    pub cols: usize,
    /// Input buffer capacity in bytes (IBUF, shared across rows).
    pub ibuf_bytes: usize,
    /// Weight buffer capacity in bytes (WBUF, distributed per Fusion Unit).
    pub wbuf_bytes: usize,
    /// Output buffer capacity in bytes (OBUF, per-column collectors).
    pub obuf_bytes: usize,
    /// Bits delivered per SRAM data-array access (the register + multiplexer
    /// data-infusion logic of Figure 3 splits each access into operand-sized
    /// pieces).
    pub buffer_access_bits: u32,
    /// Off-chip bandwidth in bits per cycle (default 128; swept in
    /// Figure 15).
    pub dram_bits_per_cycle: u32,
    /// Clock frequency in MHz.
    pub freq_mhz: u32,
}

impl ArchConfig {
    /// The paper's default 45 nm configuration used in the Eyeriss
    /// comparison: 512 Fusion Units (1.1 mm² of compute), 112 KB of on-chip
    /// SRAM, 128 bits/cycle of off-chip bandwidth, 500 MHz (§V-A).
    ///
    /// The 112 KB is split 32/64/16 KB across IBUF/WBUF/OBUF: weights get
    /// half the capacity because the WBUF is distributed across all 512
    /// units (128 B each), and outputs need the least standing storage since
    /// partial sums stream.
    pub fn isca_45nm() -> Self {
        ArchConfig {
            name: "bitfusion-45nm",
            rows: 32,
            cols: 16,
            ibuf_bytes: 32 * 1024,
            wbuf_bytes: 64 * 1024,
            obuf_bytes: 16 * 1024,
            buffer_access_bits: 32,
            dram_bits_per_cycle: 128,
            freq_mhz: 500,
        }
    }

    /// The Stripes-comparison configuration (§V-A): the same 512-unit tile
    /// run at Stripes' 980 MHz with Stripes' memory system.
    pub fn stripes_matched() -> Self {
        ArchConfig {
            name: "bitfusion-stripes-matched",
            freq_mhz: 980,
            ..ArchConfig::isca_45nm()
        }
    }

    /// The 16 nm GPU-comparison configuration (§V-A): 4096 Fusion Units and
    /// 896 KB of SRAM at the same 500 MHz. The paper's 895 mW power budget
    /// implies a mobile-class memory interface; 384 bits/cycle at 500 MHz is
    /// a dual-channel LPDDR4x-class 24 GB/s.
    pub fn gpu_16nm() -> Self {
        ArchConfig {
            name: "bitfusion-16nm",
            rows: 64,
            cols: 64,
            ibuf_bytes: 256 * 1024,
            wbuf_bytes: 512 * 1024,
            obuf_bytes: 128 * 1024,
            buffer_access_bits: 32,
            dram_bits_per_cycle: 384,
            freq_mhz: 500,
        }
    }

    /// Total Fusion Units in the array.
    pub const fn fusion_units(&self) -> usize {
        self.rows * self.cols
    }

    /// Total BitBricks in the array.
    pub const fn bit_bricks(&self) -> usize {
        self.fusion_units() * BRICKS_PER_FUSION_UNIT as usize
    }

    /// Total on-chip SRAM in bytes.
    pub const fn sram_bytes_total(&self) -> usize {
        self.ibuf_bytes + self.wbuf_bytes + self.obuf_bytes
    }

    /// Peak multiply-accumulate throughput at a precision pair, in MACs per
    /// kilocycle (×1000 to keep 16-bit modes integral).
    pub fn peak_macs_per_kilocycle(&self, pair: PairPrecision) -> u64 {
        self.fusion_units() as u64 * pair.products_per_kilocycle()
    }

    /// Peak throughput in giga-MACs per second at a precision pair.
    pub fn peak_gmacs_per_s(&self, pair: PairPrecision) -> f64 {
        self.peak_macs_per_kilocycle(pair) as f64 / 1000.0 * self.freq_mhz as f64 / 1000.0
    }

    /// Validates internal consistency (non-zero geometry, power-of-two
    /// access width).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyArray`] for zero dimensions or buffer sizes.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.rows == 0
            || self.cols == 0
            || self.ibuf_bytes == 0
            || self.wbuf_bytes == 0
            || self.obuf_bytes == 0
            || self.dram_bits_per_cycle == 0
            || self.freq_mhz == 0
            || !self.buffer_access_bits.is_power_of_two()
        {
            return Err(CoreError::EmptyArray);
        }
        Ok(())
    }

    /// Returns a copy with a different off-chip bandwidth (Figure 15 sweep).
    pub fn with_bandwidth(mut self, bits_per_cycle: u32) -> Self {
        self.dram_bits_per_cycle = bits_per_cycle;
        self
    }

    /// Returns a copy with a different clock frequency.
    pub fn with_frequency(mut self, freq_mhz: u32) -> Self {
        self.freq_mhz = freq_mhz;
        self
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        ArchConfig::isca_45nm()
    }
}

impl fmt::Display for ArchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}x{} Fusion Units, {} KB SRAM, {} b/cyc, {} MHz)",
            self.name,
            self.rows,
            self.cols,
            self.sram_bytes_total() / 1024,
            self.dram_bits_per_cycle,
            self.freq_mhz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let arch = ArchConfig::isca_45nm();
        arch.validate().unwrap();
        assert_eq!(arch.fusion_units(), 512);
        assert_eq!(arch.bit_bricks(), 8192);
        assert_eq!(arch.sram_bytes_total(), 112 * 1024);
        assert_eq!(arch.dram_bits_per_cycle, 128);
        assert_eq!(arch.freq_mhz, 500);
    }

    #[test]
    fn gpu_config_matches_paper() {
        let arch = ArchConfig::gpu_16nm();
        arch.validate().unwrap();
        assert_eq!(arch.fusion_units(), 4096);
        assert_eq!(arch.sram_bytes_total(), 896 * 1024);
    }

    #[test]
    fn peak_throughput_scales_with_precision() {
        let arch = ArchConfig::isca_45nm();
        let at = |i, w| arch.peak_macs_per_kilocycle(PairPrecision::from_bits(i, w).unwrap());
        // 512 units: 8/8 -> 512 MACs/cycle; 2/2 -> 8192; 16/16 -> 128.
        assert_eq!(at(8, 8), 512_000);
        assert_eq!(at(2, 2), 8_192_000);
        assert_eq!(at(16, 16), 128_000);
        assert_eq!(at(4, 1), 4_096_000);
    }

    #[test]
    fn binary_peak_tops() {
        // Sanity: at 2-bit the 45 nm part delivers 8192 MACs/cycle at
        // 500 MHz = 4.1 TMAC/s.
        let arch = ArchConfig::isca_45nm();
        let pair = PairPrecision::from_bits(2, 2).unwrap();
        let gmacs = arch.peak_gmacs_per_s(pair);
        assert!((gmacs - 4096.0).abs() < 1.0, "{gmacs}");
    }

    #[test]
    fn builders_adjust_fields() {
        let arch = ArchConfig::isca_45nm().with_bandwidth(512).with_frequency(980);
        assert_eq!(arch.dram_bits_per_cycle, 512);
        assert_eq!(arch.freq_mhz, 980);
        arch.validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut arch = ArchConfig::isca_45nm();
        arch.rows = 0;
        assert!(arch.validate().is_err());
        let mut arch = ArchConfig::isca_45nm();
        arch.buffer_access_bits = 24;
        assert!(arch.validate().is_err());
    }
}
