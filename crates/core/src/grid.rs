//! Cartesian grids over [`ArchConfig`] dimensions — the architecture axis
//! of design-space exploration.
//!
//! The paper's evaluation is itself a design-space walk: array geometry
//! (Figure 10), off-chip bandwidth (Figure 15), and batch size (Figure 16)
//! are all swept to locate the 16×16 Fusion Unit sweet spot. [`ArchGrid`]
//! makes that walk a first-class value: per-dimension candidate lists whose
//! cartesian product enumerates concrete, validated configurations in a
//! deterministic order. The DSE engine in `bitfusion-sim` shards the
//! product across workers; keeping bandwidth the innermost axis means
//! consecutive points share a compilation (tiling ignores bandwidth), which
//! is what makes its memoized compile cache effective.

use crate::arch::ArchConfig;
use crate::error::CoreError;

/// A cartesian grid over the architectural dimensions of [`ArchConfig`].
///
/// Every dimension is a candidate list; [`ArchGrid::configs`] yields the
/// cross product in nested order — rows, cols, IBUF, WBUF, OBUF, then
/// bandwidth innermost. Fields not covered by a dimension (access width,
/// frequency, name) come from `base`.
///
/// # Examples
///
/// ```
/// use bitfusion_core::arch::ArchConfig;
/// use bitfusion_core::grid::ArchGrid;
///
/// let grid = ArchGrid {
///     rows: vec![16, 32],
///     dram_bits_per_cycle: vec![64, 128, 256],
///     ..ArchGrid::from_base(ArchConfig::isca_45nm())
/// };
/// assert_eq!(grid.len(), 6);
/// assert!(grid.validate().is_ok());
/// assert_eq!(grid.configs().count(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchGrid {
    /// Template for the fields the grid does not sweep.
    pub base: ArchConfig,
    /// Candidate row counts (Fusion Units per column).
    pub rows: Vec<usize>,
    /// Candidate column counts.
    pub cols: Vec<usize>,
    /// Candidate input-buffer capacities in bytes.
    pub ibuf_bytes: Vec<usize>,
    /// Candidate weight-buffer capacities in bytes.
    pub wbuf_bytes: Vec<usize>,
    /// Candidate output-buffer capacities in bytes.
    pub obuf_bytes: Vec<usize>,
    /// Candidate off-chip bandwidths in bits per cycle (innermost axis).
    pub dram_bits_per_cycle: Vec<u32>,
}

impl ArchGrid {
    /// A degenerate grid holding exactly the base configuration; override
    /// individual dimensions with struct-update syntax to widen it.
    pub fn from_base(base: ArchConfig) -> Self {
        ArchGrid {
            rows: vec![base.rows],
            cols: vec![base.cols],
            ibuf_bytes: vec![base.ibuf_bytes],
            wbuf_bytes: vec![base.wbuf_bytes],
            obuf_bytes: vec![base.obuf_bytes],
            dram_bits_per_cycle: vec![base.dram_bits_per_cycle],
            base,
        }
    }

    /// Number of configurations in the cross product.
    pub fn len(&self) -> usize {
        self.rows.len()
            * self.cols.len()
            * self.ibuf_bytes.len()
            * self.wbuf_bytes.len()
            * self.obuf_bytes.len()
            * self.dram_bits_per_cycle.len()
    }

    /// Whether the cross product is empty (some dimension has no candidates).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of swept dimensions (candidate lists longer than one entry).
    pub fn swept_dimensions(&self) -> usize {
        [
            self.rows.len(),
            self.cols.len(),
            self.ibuf_bytes.len(),
            self.wbuf_bytes.len(),
            self.obuf_bytes.len(),
            self.dram_bits_per_cycle.len(),
        ]
        .iter()
        .filter(|&&n| n > 1)
        .count()
    }

    /// Validates the grid: every dimension non-empty and every produced
    /// configuration internally consistent ([`ArchConfig::validate`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyArray`] when a dimension has no candidates
    /// or any grid point fails validation (zero geometry, zero buffers).
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.is_empty() {
            return Err(CoreError::EmptyArray);
        }
        for config in self.configs() {
            config.validate()?;
        }
        Ok(())
    }

    /// Iterates the cross product in deterministic nested order (rows
    /// outermost, bandwidth innermost).
    pub fn configs(&self) -> impl Iterator<Item = ArchConfig> + '_ {
        self.rows.iter().flat_map(move |&rows| {
            self.cols.iter().flat_map(move |&cols| {
                self.ibuf_bytes.iter().flat_map(move |&ibuf| {
                    self.wbuf_bytes.iter().flat_map(move |&wbuf| {
                        self.obuf_bytes.iter().flat_map(move |&obuf| {
                            self.dram_bits_per_cycle.iter().map(move |&bw| ArchConfig {
                                rows,
                                cols,
                                ibuf_bytes: ibuf,
                                wbuf_bytes: wbuf,
                                obuf_bytes: obuf,
                                dram_bits_per_cycle: bw,
                                ..self.base.clone()
                            })
                        })
                    })
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_grid_is_the_base() {
        let base = ArchConfig::isca_45nm();
        let grid = ArchGrid::from_base(base.clone());
        assert_eq!(grid.len(), 1);
        assert_eq!(grid.swept_dimensions(), 0);
        let configs: Vec<_> = grid.configs().collect();
        assert_eq!(configs, vec![base]);
    }

    #[test]
    fn cross_product_order_is_bandwidth_innermost() {
        let grid = ArchGrid {
            rows: vec![16, 32],
            dram_bits_per_cycle: vec![64, 128],
            ..ArchGrid::from_base(ArchConfig::isca_45nm())
        };
        assert_eq!(grid.len(), 4);
        assert_eq!(grid.swept_dimensions(), 2);
        let points: Vec<(usize, u32)> = grid
            .configs()
            .map(|c| (c.rows, c.dram_bits_per_cycle))
            .collect();
        assert_eq!(points, vec![(16, 64), (16, 128), (32, 64), (32, 128)]);
    }

    #[test]
    fn empty_dimension_fails_validation() {
        let grid = ArchGrid {
            cols: vec![],
            ..ArchGrid::from_base(ArchConfig::isca_45nm())
        };
        assert!(grid.is_empty());
        assert!(grid.validate().is_err());
        assert_eq!(grid.configs().count(), 0);
    }

    #[test]
    fn invalid_grid_point_fails_validation() {
        let grid = ArchGrid {
            rows: vec![32, 0],
            ..ArchGrid::from_base(ArchConfig::isca_45nm())
        };
        assert!(!grid.is_empty());
        assert!(grid.validate().is_err());
    }

    #[test]
    fn every_point_inherits_base_fields() {
        let base = ArchConfig::gpu_16nm();
        let grid = ArchGrid {
            ibuf_bytes: vec![64 * 1024, 128 * 1024],
            ..ArchGrid::from_base(base.clone())
        };
        for c in grid.configs() {
            assert_eq!(c.name, base.name);
            assert_eq!(c.freq_mhz, base.freq_mhz);
            assert_eq!(c.buffer_access_bits, base.buffer_access_bits);
            c.validate().unwrap();
        }
    }
}
