//! Recursive decomposition of wide multiplies into 2-bit BitBrick products
//! (Equations 1–3 and Figures 6/7 of the paper).
//!
//! A two's-complement `2n`-bit operand `A` splits as
//! `A = 2^n * A_hi + A_lo`, so
//! `A * B = 2^2n * A_hi*B_hi + 2^n * (A_hi*B_lo + A_lo*B_hi) + A_lo*B_lo`
//! (Equation 2). Applying the split recursively down to 2-bit *crumbs* turns
//! any multiply with power-of-two operand widths into a set of BitBrick
//! products, each left-shifted by the sum of its crumbs' positional weights.
//! Only the most-significant crumb of a signed operand carries the sign; all
//! lower crumbs are unsigned. This module implements that decomposition
//! exactly and is property-tested against direct integer multiplication.

use crate::bitbrick::{BitBrick, BrickOperand, Crumb};
use crate::bitwidth::{PairPrecision, Precision};
use crate::error::CoreError;

/// Splits `value` into 2-bit crumbs, least significant first, with
/// `precision.brick_side()` entries. For signed precisions the top crumb is
/// the signed one; for [`BitWidth::B1`](crate::bitwidth::BitWidth::B1) the
/// single crumb holds the bit.
///
/// # Errors
///
/// Returns [`CoreError::ValueOutOfRange`] when `value` does not fit in
/// `precision`.
///
/// # Examples
///
/// ```
/// use bitfusion_core::bitwidth::{BitWidth, Precision};
/// use bitfusion_core::decompose::to_crumbs;
///
/// // 0b1011 (11) decomposes into crumbs 11 and 10 (Figure 6(a)).
/// let crumbs = to_crumbs(11, Precision::unsigned(BitWidth::B4)).unwrap();
/// assert_eq!(crumbs[0].raw(), 0b11);
/// assert_eq!(crumbs[1].raw(), 0b10);
/// ```
pub fn to_crumbs(value: i32, precision: Precision) -> Result<Vec<Crumb>, CoreError> {
    precision.check(value)?;
    let side = precision.brick_side() as usize;
    let raw = value as u32; // two's complement bit pattern
    let mut crumbs = Vec::with_capacity(side);
    for i in 0..side {
        crumbs.push(Crumb::truncate((raw >> (2 * i)) as u8));
    }
    Ok(crumbs)
}

/// Reassembles a value from its crumbs (inverse of [`to_crumbs`]).
///
/// The top crumb is interpreted as signed when `precision` is signed.
pub fn from_crumbs(crumbs: &[Crumb], precision: Precision) -> i32 {
    let top = crumbs.len() - 1;
    let mut value: i32 = 0;
    for (i, c) in crumbs.iter().enumerate() {
        let signed = precision.signedness.is_signed() && i == top;
        value += (c.interpret(signed) as i32) << (2 * i);
    }
    value
}

/// One decomposed BitBrick operation: the two operands plus the left-shift
/// applied to the product before summation (Figure 6(c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecomposedOp {
    /// First operand (an input crumb).
    pub x: BrickOperand,
    /// Second operand (a weight crumb).
    pub y: BrickOperand,
    /// Left shift applied to the 6-bit product.
    pub shift: u32,
}

impl DecomposedOp {
    /// Evaluates the operation: `(x * y) << shift`.
    pub fn evaluate(self) -> i64 {
        (BitBrick::multiply(self.x, self.y).value() as i64) << self.shift
    }
}

/// Decomposes the multiply `a * b` (at precisions `pair.input`, `pair.weight`)
/// into BitBrick operations.
///
/// The number of operations equals [`PairPrecision::bricks_per_product`].
///
/// # Errors
///
/// Returns [`CoreError::ValueOutOfRange`] when an operand does not fit its
/// precision.
pub fn decompose_multiply(
    a: i32,
    b: i32,
    pair: PairPrecision,
) -> Result<Vec<DecomposedOp>, CoreError> {
    let a_crumbs = to_crumbs(a, pair.input)?;
    let b_crumbs = to_crumbs(b, pair.weight)?;
    let a_top = a_crumbs.len() - 1;
    let b_top = b_crumbs.len() - 1;
    let mut ops = Vec::with_capacity(a_crumbs.len() * b_crumbs.len());
    for (i, &ac) in a_crumbs.iter().enumerate() {
        for (j, &bc) in b_crumbs.iter().enumerate() {
            ops.push(DecomposedOp {
                x: BrickOperand::new(ac, pair.input.signedness.is_signed() && i == a_top),
                y: BrickOperand::new(bc, pair.weight.signedness.is_signed() && j == b_top),
                shift: 2 * (i as u32 + j as u32),
            });
        }
    }
    Ok(ops)
}

/// Multiplies `a * b` through the full BitBrick decomposition: decompose,
/// evaluate every brick, shift, and sum — the complete Figure 6 pipeline.
///
/// # Errors
///
/// Returns [`CoreError::ValueOutOfRange`] when an operand does not fit.
///
/// # Examples
///
/// ```
/// use bitfusion_core::bitwidth::PairPrecision;
/// use bitfusion_core::decompose::decomposed_multiply;
///
/// // The paper's worked example: 11 x 6 = 66 via four 2-bit multiplies.
/// let pair = PairPrecision::from_bits(4, 4).unwrap();
/// assert_eq!(decomposed_multiply(11, 6, pair).unwrap(), 66);
/// ```
pub fn decomposed_multiply(a: i32, b: i32, pair: PairPrecision) -> Result<i64, CoreError> {
    Ok(decompose_multiply(a, b, pair)?
        .into_iter()
        .map(DecomposedOp::evaluate)
        .sum())
}

/// The shift amounts used when four BitBricks fuse into a 4-bit × 4-bit
/// Fused-PE, as enumerated in Figure 6(c): 0, 2, 2, 4.
pub fn fused_4x4_shifts() -> Vec<u32> {
    let pair = PairPrecision::from_bits(4, 4).expect("4/4 is a supported pair");
    decompose_multiply(0, 0, pair)
        .expect("zero always fits")
        .into_iter()
        .map(|op| op.shift)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitwidth::{BitWidth, Signedness};

    fn pair(i_bits: u32, i_sign: Signedness, w_bits: u32, w_sign: Signedness) -> PairPrecision {
        PairPrecision::new(
            Precision::new(BitWidth::from_bits(i_bits).unwrap(), i_sign),
            Precision::new(BitWidth::from_bits(w_bits).unwrap(), w_sign),
        )
    }

    #[test]
    fn crumbs_round_trip_unsigned() {
        for w in BitWidth::ALL {
            let p = Precision::unsigned(w);
            for v in p.min_value()..=p.max_value().min(4096) {
                let crumbs = to_crumbs(v, p).unwrap();
                assert_eq!(crumbs.len(), p.brick_side() as usize);
                assert_eq!(from_crumbs(&crumbs, p), v, "{w} value {v}");
            }
        }
    }

    #[test]
    fn crumbs_round_trip_signed() {
        for w in BitWidth::ALL {
            let p = Precision::signed(w);
            let lo = p.min_value().max(-4096);
            let hi = p.max_value().min(4096);
            for v in lo..=hi {
                let crumbs = to_crumbs(v, p).unwrap();
                assert_eq!(from_crumbs(&crumbs, p), v, "{w} value {v}");
            }
        }
    }

    #[test]
    fn paper_figure_6_example() {
        // 1011 (11) x 0110 (6) = 0100_0010 (66), via four 2-bit multiplies
        // shifted by 0, 2, 2, 4.
        let pair = pair(4, Signedness::Unsigned, 4, Signedness::Unsigned);
        let ops = decompose_multiply(11, 6, pair).unwrap();
        assert_eq!(ops.len(), 4);
        let mut shifts: Vec<u32> = ops.iter().map(|o| o.shift).collect();
        shifts.sort_unstable();
        assert_eq!(shifts, vec![0, 2, 2, 4]);
        let total: i64 = ops.into_iter().map(DecomposedOp::evaluate).sum();
        assert_eq!(total, 66);
    }

    #[test]
    fn paper_figure_7_example() {
        // Two 4-bit x 2-bit multiplies: 15*1 + 10*2 = 35.
        let pair = pair(4, Signedness::Unsigned, 2, Signedness::Unsigned);
        let a = decomposed_multiply(15, 1, pair).unwrap();
        let b = decomposed_multiply(10, 2, pair).unwrap();
        assert_eq!(a + b, 35);
        // Each uses exactly two BitBricks.
        assert_eq!(pair.bricks_per_product(), 2);
    }

    #[test]
    fn exhaustive_4x4_all_sign_combinations() {
        for i_sign in [Signedness::Signed, Signedness::Unsigned] {
            for w_sign in [Signedness::Signed, Signedness::Unsigned] {
                let pr = pair(4, i_sign, 4, w_sign);
                for a in pr.input.min_value()..=pr.input.max_value() {
                    for b in pr.weight.min_value()..=pr.weight.max_value() {
                        assert_eq!(
                            decomposed_multiply(a, b, pr).unwrap(),
                            (a as i64) * (b as i64),
                            "{a} * {b} ({i_sign:?} x {w_sign:?})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exhaustive_8x8_signed() {
        let pr = pair(8, Signedness::Signed, 8, Signedness::Signed);
        for a in (-128..=127).step_by(3) {
            for b in (-128..=127).step_by(5) {
                assert_eq!(
                    decomposed_multiply(a, b, pr).unwrap(),
                    (a as i64) * (b as i64)
                );
            }
        }
        // Corners exactly.
        for a in [-128, -1, 0, 1, 127] {
            for b in [-128, -1, 0, 1, 127] {
                assert_eq!(
                    decomposed_multiply(a, b, pr).unwrap(),
                    (a as i64) * (b as i64)
                );
            }
        }
    }

    #[test]
    fn mixed_width_16x4() {
        let pr = pair(16, Signedness::Signed, 4, Signedness::Signed);
        for a in [-32768, -12345, -1, 0, 1, 31000, 32767] {
            for b in -8..=7 {
                assert_eq!(
                    decomposed_multiply(a, b, pr).unwrap(),
                    (a as i64) * (b as i64)
                );
            }
        }
        assert_eq!(pr.bricks_per_product(), 16);
    }

    #[test]
    fn binary_operand_single_brick() {
        let pr = pair(1, Signedness::Unsigned, 8, Signedness::Signed);
        assert_eq!(pr.bricks_per_product(), 4);
        for a in 0..=1 {
            for b in [-128, -5, 0, 5, 127] {
                assert_eq!(
                    decomposed_multiply(a, b, pr).unwrap(),
                    (a as i64) * (b as i64)
                );
            }
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let pr = pair(4, Signedness::Signed, 4, Signedness::Signed);
        assert!(decomposed_multiply(8, 0, pr).is_err());
        assert!(decomposed_multiply(0, -9, pr).is_err());
    }

    #[test]
    fn op_count_matches_brick_cost() {
        for (i, w) in [(2u32, 2u32), (4, 2), (4, 4), (8, 2), (8, 4), (8, 8), (16, 16)] {
            let pr = pair(i, Signedness::Signed, w, Signedness::Signed);
            let ops = decompose_multiply(1, 1, pr).unwrap();
            assert_eq!(ops.len() as u32, pr.bricks_per_product(), "{i}x{w}");
        }
    }

    #[test]
    fn fused_shift_pattern() {
        let mut shifts = fused_4x4_shifts();
        shifts.sort_unstable();
        assert_eq!(shifts, vec![0, 2, 2, 4]);
    }
}
