//! Operand bitwidths and precisions supported by the Bit Fusion architecture.
//!
//! The paper's compute fabric composes 2-bit [`BitBrick`](crate::bitbrick::BitBrick)s
//! into Fused-PEs whose operand bitwidths are powers of two between 2 and 16
//! bits. Binary (1-bit) operands are additionally supported: a binary or
//! ternary multiply occupies a single BitBrick (Figure 2(b) of the paper), and
//! the memory system stores binary values in a single bit.

use std::fmt;
use std::str::FromStr;

use crate::error::CoreError;

/// A storage bitwidth supported by Bit Fusion: 1, 2, 4, 8, or 16 bits.
///
/// The *storage* width (returned by [`BitWidth::bits`]) determines how many
/// bits a value occupies in the on-chip buffers and in DRAM, while the
/// *brick side* (returned by [`BitWidth::brick_side`]) determines how many
/// 2-bit BitBrick lanes the operand spans: binary operands still occupy one
/// full brick lane.
///
/// # Examples
///
/// ```
/// use bitfusion_core::bitwidth::BitWidth;
///
/// assert_eq!(BitWidth::B8.bits(), 8);
/// assert_eq!(BitWidth::B8.brick_side(), 4);
/// assert_eq!(BitWidth::B1.bits(), 1);
/// assert_eq!(BitWidth::B1.brick_side(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BitWidth {
    /// Binary operands (0, +1), stored in one bit.
    B1,
    /// 2-bit operands; ternary (-1, 0, +1) when signed.
    B2,
    /// 4-bit operands.
    B4,
    /// 8-bit operands — the widest purely *spatial* fusion (Figure 2(d)).
    B8,
    /// 16-bit operands, executed spatio-temporally over multiple cycles.
    B16,
}

impl BitWidth {
    /// All supported widths in increasing order.
    pub const ALL: [BitWidth; 5] = [
        BitWidth::B1,
        BitWidth::B2,
        BitWidth::B4,
        BitWidth::B8,
        BitWidth::B16,
    ];

    /// Number of bits a value of this width occupies in memory.
    #[inline]
    pub const fn bits(self) -> u32 {
        match self {
            BitWidth::B1 => 1,
            BitWidth::B2 => 2,
            BitWidth::B4 => 4,
            BitWidth::B8 => 8,
            BitWidth::B16 => 16,
        }
    }

    /// Number of 2-bit crumbs (BitBrick lanes) the operand spans.
    ///
    /// This is `ceil(bits / 2)`; a binary operand still occupies one lane.
    #[inline]
    pub const fn brick_side(self) -> u32 {
        match self {
            BitWidth::B1 | BitWidth::B2 => 1,
            BitWidth::B4 => 2,
            BitWidth::B8 => 4,
            BitWidth::B16 => 8,
        }
    }

    /// Constructs a width from a bit count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnsupportedBitWidth`] if `bits` is not one of
    /// 1, 2, 4, 8, or 16.
    pub fn from_bits(bits: u32) -> Result<Self, CoreError> {
        match bits {
            1 => Ok(BitWidth::B1),
            2 => Ok(BitWidth::B2),
            4 => Ok(BitWidth::B4),
            8 => Ok(BitWidth::B8),
            16 => Ok(BitWidth::B16),
            other => Err(CoreError::UnsupportedBitWidth(other)),
        }
    }

    /// The smallest supported width that can hold `bits` bits.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnsupportedBitWidth`] if `bits` is zero or larger
    /// than 16.
    pub fn ceil_from_bits(bits: u32) -> Result<Self, CoreError> {
        match bits {
            0 => Err(CoreError::UnsupportedBitWidth(0)),
            1 => Ok(BitWidth::B1),
            2 => Ok(BitWidth::B2),
            3..=4 => Ok(BitWidth::B4),
            5..=8 => Ok(BitWidth::B8),
            9..=16 => Ok(BitWidth::B16),
            other => Err(CoreError::UnsupportedBitWidth(other)),
        }
    }

    /// The next wider supported width, or `None` for [`BitWidth::B16`].
    pub const fn widen(self) -> Option<BitWidth> {
        match self {
            BitWidth::B1 => Some(BitWidth::B2),
            BitWidth::B2 => Some(BitWidth::B4),
            BitWidth::B4 => Some(BitWidth::B8),
            BitWidth::B8 => Some(BitWidth::B16),
            BitWidth::B16 => None,
        }
    }
}

impl fmt::Display for BitWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.bits())
    }
}

impl FromStr for BitWidth {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s.trim_end_matches(['b', 'B']);
        let bits: u32 = digits
            .parse()
            .map_err(|_| CoreError::UnsupportedBitWidth(0))?;
        BitWidth::from_bits(bits)
    }
}

/// Whether an operand is interpreted as a two's-complement signed value or an
/// unsigned value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Signedness {
    /// Two's-complement signed interpretation.
    #[default]
    Signed,
    /// Unsigned interpretation.
    Unsigned,
}

impl Signedness {
    /// Returns `true` for [`Signedness::Signed`].
    #[inline]
    pub const fn is_signed(self) -> bool {
        matches!(self, Signedness::Signed)
    }
}

impl fmt::Display for Signedness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signedness::Signed => write!(f, "signed"),
            Signedness::Unsigned => write!(f, "unsigned"),
        }
    }
}

/// A complete operand precision: bitwidth plus signedness.
///
/// # Examples
///
/// ```
/// use bitfusion_core::bitwidth::{BitWidth, Precision, Signedness};
///
/// let p = Precision::new(BitWidth::B4, Signedness::Signed);
/// assert_eq!(p.min_value(), -8);
/// assert_eq!(p.max_value(), 7);
/// assert!(p.contains(-8));
/// assert!(!p.contains(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Precision {
    /// The storage bitwidth.
    pub width: BitWidth,
    /// The value interpretation.
    pub signedness: Signedness,
}

impl Precision {
    /// Creates a precision from a width and signedness.
    pub const fn new(width: BitWidth, signedness: Signedness) -> Self {
        Precision { width, signedness }
    }

    /// Signed precision of the given width.
    pub const fn signed(width: BitWidth) -> Self {
        Precision::new(width, Signedness::Signed)
    }

    /// Unsigned precision of the given width.
    pub const fn unsigned(width: BitWidth) -> Self {
        Precision::new(width, Signedness::Unsigned)
    }

    /// Number of storage bits.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.width.bits()
    }

    /// Number of BitBrick lanes along this operand's dimension.
    #[inline]
    pub const fn brick_side(self) -> u32 {
        self.width.brick_side()
    }

    /// Smallest representable value.
    pub const fn min_value(self) -> i32 {
        match self.signedness {
            Signedness::Signed => -(1 << (self.width.bits() - 1)),
            Signedness::Unsigned => 0,
        }
    }

    /// Largest representable value.
    pub const fn max_value(self) -> i32 {
        match self.signedness {
            Signedness::Signed => (1 << (self.width.bits() - 1)) - 1,
            Signedness::Unsigned => (1 << self.width.bits()) - 1,
        }
    }

    /// Returns `true` if `value` is representable at this precision.
    pub const fn contains(self, value: i32) -> bool {
        value >= self.min_value() && value <= self.max_value()
    }

    /// Clamps `value` into the representable range.
    pub fn clamp(self, value: i32) -> i32 {
        value.clamp(self.min_value(), self.max_value())
    }

    /// Returns an error unless `value` is representable at this precision.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ValueOutOfRange`] when `value` does not fit.
    pub fn check(self, value: i32) -> Result<(), CoreError> {
        if self.contains(value) {
            Ok(())
        } else {
            Err(CoreError::ValueOutOfRange {
                value,
                precision: self,
            })
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.signedness {
            Signedness::Signed => "s",
            Signedness::Unsigned => "u",
        };
        write!(f, "{}{}", tag, self.width.bits())
    }
}

/// The (input, weight) precision pair of a DNN layer — the unit at which the
/// Bit Fusion architecture reconfigures (one `setup` instruction per layer).
///
/// # Examples
///
/// ```
/// use bitfusion_core::bitwidth::PairPrecision;
///
/// // AlexNet's middle layers: 4-bit inputs, binary weights.
/// let p = PairPrecision::from_bits(4, 1).unwrap();
/// assert_eq!(p.bricks_per_product(), 2);
/// assert_eq!(p.fused_pes_per_unit(), 8);
/// assert_eq!(p.temporal_cycles(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairPrecision {
    /// Input (activation) precision.
    pub input: Precision,
    /// Weight precision.
    pub weight: Precision,
}

/// Number of BitBricks in one Fusion Unit (a 4×4 physical grouping).
pub const BRICKS_PER_FUSION_UNIT: u32 = 16;

impl PairPrecision {
    /// Creates a precision pair.
    pub const fn new(input: Precision, weight: Precision) -> Self {
        PairPrecision { input, weight }
    }

    /// Convenience constructor from raw bit counts. Inputs are unsigned
    /// (post-activation values are non-negative in the quantized networks the
    /// paper evaluates) and weights are signed, matching the paper's usage —
    /// except binary (1-bit) weights, which are the unsigned set {0, +1}
    /// (§II-A: "binary (0, +1) and ternary (-1, 0, +1)").
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnsupportedBitWidth`] when either count is not a
    /// supported width.
    pub fn from_bits(input_bits: u32, weight_bits: u32) -> Result<Self, CoreError> {
        let weight_width = BitWidth::from_bits(weight_bits)?;
        let weight = if weight_width == BitWidth::B1 {
            Precision::unsigned(weight_width)
        } else {
            Precision::signed(weight_width)
        };
        Ok(PairPrecision {
            input: Precision::unsigned(BitWidth::from_bits(input_bits)?),
            weight,
        })
    }

    /// Number of BitBrick products required for a single multiply at this
    /// precision pair (the product of the two brick sides).
    #[inline]
    pub const fn bricks_per_product(self) -> u32 {
        self.input.brick_side() * self.weight.brick_side()
    }

    /// Number of Fused-PEs a 16-BitBrick Fusion Unit offers at this precision
    /// (Figure 2); at least 1 even when a product spans multiple cycles.
    #[inline]
    pub const fn fused_pes_per_unit(self) -> u32 {
        let b = self.bricks_per_product();
        if b >= BRICKS_PER_FUSION_UNIT {
            1
        } else {
            BRICKS_PER_FUSION_UNIT / b
        }
    }

    /// Cycles needed per multiply when the product needs more BitBrick
    /// operations than the unit has bricks (the spatio-temporal hybrid of
    /// §III-C: 16-bit operands iterate over up to 4 cycles).
    #[inline]
    pub const fn temporal_cycles(self) -> u32 {
        let b = self.bricks_per_product();
        b.div_ceil(BRICKS_PER_FUSION_UNIT)
    }

    /// Multiply-accumulate throughput of one Fusion Unit at this precision, in
    /// operations per cycle, scaled by 1000 to stay integral (16-bit modes
    /// yield fractional throughput).
    #[inline]
    pub const fn products_per_kilocycle(self) -> u64 {
        (self.fused_pes_per_unit() as u64 * 1000) / self.temporal_cycles() as u64
    }

    /// Swapped (weight, input) pair; the architecture is symmetric in the two
    /// operands (Figure 2(c) vs its transpose).
    pub const fn transposed(self) -> Self {
        PairPrecision {
            input: self.weight,
            weight: self.input,
        }
    }

    /// Compact `input/weight` spelling (`4/1`), the inverse of
    /// [`PairPrecision::from_str`]. Signedness is implied by the
    /// [`PairPrecision::from_bits`] convention, which is the only way
    /// quantization specs construct pairs.
    pub fn compact(self) -> String {
        format!("{}/{}", self.input.bits(), self.weight.bits())
    }
}

impl FromStr for PairPrecision {
    type Err = CoreError;

    /// Parses the compact spelling: `4/1` (input/weight bits), a bare `8`
    /// (shorthand for `8/8`), or the display form `4bit/1bit`. Signedness
    /// follows [`PairPrecision::from_bits`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parse_side = |side: &str| -> Result<u32, CoreError> {
            side.trim()
                .trim_end_matches("bit")
                .parse()
                .map_err(|_| CoreError::UnsupportedBitWidth(0))
        };
        match s.split_once('/') {
            Some((i, w)) => PairPrecision::from_bits(parse_side(i)?, parse_side(w)?),
            None => {
                let bits = parse_side(s)?;
                PairPrecision::from_bits(bits, bits)
            }
        }
    }
}

impl fmt::Display for PairPrecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}bit/{}bit",
            self.input.width.bits(),
            self.weight.width.bits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        for w in BitWidth::ALL {
            assert_eq!(BitWidth::from_bits(w.bits()).unwrap(), w);
        }
    }

    #[test]
    fn from_bits_rejects_unsupported() {
        for bits in [0u32, 3, 5, 6, 7, 9, 12, 17, 32] {
            assert!(BitWidth::from_bits(bits).is_err(), "{bits} accepted");
        }
    }

    #[test]
    fn ceil_from_bits_rounds_up() {
        assert_eq!(BitWidth::ceil_from_bits(3).unwrap(), BitWidth::B4);
        assert_eq!(BitWidth::ceil_from_bits(5).unwrap(), BitWidth::B8);
        assert_eq!(BitWidth::ceil_from_bits(9).unwrap(), BitWidth::B16);
        assert_eq!(BitWidth::ceil_from_bits(16).unwrap(), BitWidth::B16);
        assert!(BitWidth::ceil_from_bits(17).is_err());
        assert!(BitWidth::ceil_from_bits(0).is_err());
    }

    #[test]
    fn brick_sides_match_paper() {
        // Figure 2: binary/ternary use one brick; 8-bit uses four lanes.
        assert_eq!(BitWidth::B1.brick_side(), 1);
        assert_eq!(BitWidth::B2.brick_side(), 1);
        assert_eq!(BitWidth::B4.brick_side(), 2);
        assert_eq!(BitWidth::B8.brick_side(), 4);
        assert_eq!(BitWidth::B16.brick_side(), 8);
    }

    #[test]
    fn parse_display_round_trip() {
        for w in BitWidth::ALL {
            let s = w.to_string();
            assert_eq!(s.parse::<BitWidth>().unwrap(), w);
        }
        assert!("3b".parse::<BitWidth>().is_err());
        assert!("x".parse::<BitWidth>().is_err());
    }

    #[test]
    fn signed_ranges() {
        let p = Precision::signed(BitWidth::B2);
        assert_eq!((p.min_value(), p.max_value()), (-2, 1));
        let p = Precision::signed(BitWidth::B8);
        assert_eq!((p.min_value(), p.max_value()), (-128, 127));
        let p = Precision::signed(BitWidth::B16);
        assert_eq!((p.min_value(), p.max_value()), (-32768, 32767));
    }

    #[test]
    fn unsigned_ranges() {
        let p = Precision::unsigned(BitWidth::B1);
        assert_eq!((p.min_value(), p.max_value()), (0, 1));
        let p = Precision::unsigned(BitWidth::B2);
        assert_eq!((p.min_value(), p.max_value()), (0, 3));
        let p = Precision::unsigned(BitWidth::B8);
        assert_eq!((p.min_value(), p.max_value()), (0, 255));
    }

    #[test]
    fn contains_and_check() {
        let p = Precision::signed(BitWidth::B4);
        assert!(p.contains(-8));
        assert!(p.contains(7));
        assert!(!p.contains(8));
        assert!(p.check(8).is_err());
        assert_eq!(p.clamp(100), 7);
        assert_eq!(p.clamp(-100), -8);
    }

    #[test]
    fn fused_pe_counts_match_figure_2() {
        // Figure 2(b): binary/ternary -> 16 Fused-PEs.
        assert_eq!(PairPrecision::from_bits(1, 1).unwrap().fused_pes_per_unit(), 16);
        assert_eq!(PairPrecision::from_bits(2, 2).unwrap().fused_pes_per_unit(), 16);
        // Figure 2(c): 8-bit inputs x 2-bit weights -> 4 Fused-PEs.
        assert_eq!(PairPrecision::from_bits(8, 2).unwrap().fused_pes_per_unit(), 4);
        // Figure 2(d): 8-bit x 8-bit -> 1 Fused-PE.
        assert_eq!(PairPrecision::from_bits(8, 8).unwrap().fused_pes_per_unit(), 1);
        // §II-C mixed mode: 8-bit inputs x 2-bit weights quadruples parallelism.
        assert_eq!(PairPrecision::from_bits(4, 4).unwrap().fused_pes_per_unit(), 4);
        assert_eq!(PairPrecision::from_bits(4, 1).unwrap().fused_pes_per_unit(), 8);
    }

    #[test]
    fn temporal_cycles_for_16_bit() {
        assert_eq!(PairPrecision::from_bits(16, 16).unwrap().temporal_cycles(), 4);
        assert_eq!(PairPrecision::from_bits(16, 8).unwrap().temporal_cycles(), 2);
        assert_eq!(PairPrecision::from_bits(16, 2).unwrap().temporal_cycles(), 1);
        assert_eq!(PairPrecision::from_bits(8, 8).unwrap().temporal_cycles(), 1);
    }

    #[test]
    fn throughput_ordering() {
        // Lower bitwidth must never decrease throughput.
        let t = |i, w| PairPrecision::from_bits(i, w).unwrap().products_per_kilocycle();
        assert!(t(1, 1) >= t(2, 2));
        assert!(t(2, 2) > t(4, 4));
        assert!(t(4, 4) > t(8, 8));
        assert!(t(8, 8) > t(16, 16));
        assert_eq!(t(16, 16), 250); // one multiply every four cycles
        assert_eq!(t(2, 2), 16_000);
    }

    #[test]
    fn compact_parse_round_trip() {
        for i in [1u32, 2, 4, 8, 16] {
            for w in [1u32, 2, 4, 8, 16] {
                let p = PairPrecision::from_bits(i, w).unwrap();
                assert_eq!(p.compact().parse::<PairPrecision>().unwrap(), p);
            }
        }
        assert_eq!(
            "8".parse::<PairPrecision>().unwrap(),
            PairPrecision::from_bits(8, 8).unwrap()
        );
        assert_eq!(
            "4bit/1bit".parse::<PairPrecision>().unwrap(),
            PairPrecision::from_bits(4, 1).unwrap()
        );
        for bad in ["", "x", "3/3", "4/", "/4", "4/1/2", "17"] {
            assert!(bad.parse::<PairPrecision>().is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn transpose_is_involution() {
        let p = PairPrecision::from_bits(8, 2).unwrap();
        assert_eq!(p.transposed().transposed(), p);
        assert_eq!(p.transposed().fused_pes_per_unit(), p.fused_pes_per_unit());
    }
}
