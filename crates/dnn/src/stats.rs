//! Bitwidth statistics over models — the data behind Figure 1 of the paper.
//!
//! Figure 1(a) histograms the fraction of multiply-add operations at each
//! (input, weight) bitwidth pair; Figure 1(b) histograms weight storage by
//! weight bitwidth; the accompanying table reports the fraction of all
//! operations that are multiply-adds.

use std::collections::BTreeMap;
use std::fmt;

use bitfusion_core::bitwidth::PairPrecision;

use crate::model::Model;

/// One bucket of the Figure 1(a) histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacBitwidthShare {
    /// Input bits of the bucket.
    pub input_bits: u32,
    /// Weight bits of the bucket.
    pub weight_bits: u32,
    /// Fraction of the model's MACs in this bucket (0..=1).
    pub share: f64,
}

/// Bitwidth statistics of one model.
#[derive(Debug, Clone, PartialEq)]
pub struct BitwidthStats {
    /// Model name.
    pub model: String,
    /// Figure 1(a): MAC share per (input, weight) bitwidth, sorted by
    /// (input, weight).
    pub mac_shares: Vec<MacBitwidthShare>,
    /// Figure 1(b): weight-count share per weight bitwidth.
    pub weight_shares: BTreeMap<u32, f64>,
    /// The `% Multiply-Add` figure of the table (0..=1).
    pub mac_fraction: f64,
}

impl BitwidthStats {
    /// Computes the statistics for a model.
    pub fn of(model: &Model) -> Self {
        let total_macs = model.total_macs() as f64;
        let total_params = model.total_params() as f64;
        let mut mac_by_pair: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        let mut weights_by_bits: BTreeMap<u32, u64> = BTreeMap::new();
        for l in &model.layers {
            if let Some(p) = l.layer.precision() {
                *mac_by_pair
                    .entry((p.input.bits(), p.weight.bits()))
                    .or_insert(0) += l.layer.macs();
                *weights_by_bits.entry(p.weight.bits()).or_insert(0) += l.layer.params();
            }
        }
        BitwidthStats {
            model: model.name.clone(),
            mac_shares: mac_by_pair
                .into_iter()
                .map(|((i, w), macs)| MacBitwidthShare {
                    input_bits: i,
                    weight_bits: w,
                    share: if total_macs > 0.0 {
                        macs as f64 / total_macs
                    } else {
                        0.0
                    },
                })
                .collect(),
            weight_shares: weights_by_bits
                .into_iter()
                .map(|(bits, count)| {
                    (
                        bits,
                        if total_params > 0.0 {
                            count as f64 / total_params
                        } else {
                            0.0
                        },
                    )
                })
                .collect(),
            mac_fraction: model.mac_fraction(),
        }
    }

    /// Fraction of MACs whose input *and* weight widths are at most
    /// `bits` (the paper: on average 97.3% of multiply-adds need four or
    /// fewer bits).
    pub fn share_at_or_below(&self, bits: u32) -> f64 {
        self.mac_shares
            .iter()
            .filter(|s| s.input_bits <= bits && s.weight_bits <= bits)
            .map(|s| s.share)
            .sum()
    }

    /// The dominant (highest-share) precision pair of the model.
    pub fn dominant_pair(&self) -> Option<PairPrecision> {
        self.mac_shares
            .iter()
            .max_by(|a, b| a.share.total_cmp(&b.share))
            .and_then(|s| PairPrecision::from_bits(s.input_bits, s.weight_bits).ok())
    }
}

impl fmt::Display for BitwidthStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {:.1}% multiply-add",
            self.model,
            self.mac_fraction * 100.0
        )?;
        for s in &self.mac_shares {
            writeln!(
                f,
                "  {}bit/{}bit: {:5.1}% of MACs",
                s.input_bits,
                s.weight_bits,
                s.share * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Layer, Pool2d};
    use bitfusion_core::postproc::PoolOp;

    fn model() -> Model {
        let p41 = PairPrecision::from_bits(4, 1).unwrap();
        let p88 = PairPrecision::from_bits(8, 8).unwrap();
        Model::new(
            "mix",
            vec![
                (
                    "fc1",
                    Layer::Dense(Dense {
                        in_features: 100,
                        out_features: 90, // 9000 MACs at 4/1
                        precision: p41,
                    }),
                ),
                (
                    "pool",
                    Layer::Pool2d(Pool2d {
                        channels: 1,
                        input_hw: (10, 10),
                        window: (2, 2),
                        stride: (2, 2),
                        padding: (0, 0),
                        op: PoolOp::Max,
                    }),
                ),
                (
                    "fc2",
                    Layer::Dense(Dense {
                        in_features: 100,
                        out_features: 10, // 1000 MACs at 8/8
                        precision: p88,
                    }),
                ),
            ],
        )
    }

    #[test]
    fn shares_sum_to_one() {
        let s = BitwidthStats::of(&model());
        let total: f64 = s.mac_shares.iter().map(|x| x.share).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let wtotal: f64 = s.weight_shares.values().sum();
        assert!((wtotal - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_values() {
        let s = BitwidthStats::of(&model());
        assert_eq!(s.mac_shares.len(), 2);
        assert!((s.mac_shares[0].share - 0.9).abs() < 1e-12); // 4/1 bucket
        assert!((s.mac_shares[1].share - 0.1).abs() < 1e-12); // 8/8 bucket
        assert!((s.share_at_or_below(4) - 0.9).abs() < 1e-12);
        assert!((s.share_at_or_below(8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dominant_pair_is_4_1() {
        let s = BitwidthStats::of(&model());
        let p = s.dominant_pair().unwrap();
        assert_eq!((p.input.bits(), p.weight.bits()), (4, 1));
    }

    #[test]
    fn mac_fraction_below_one_with_pooling() {
        let s = BitwidthStats::of(&model());
        assert!(s.mac_fraction < 1.0);
        assert!(s.mac_fraction > 0.97);
    }
}
