//! Quantized DNN layer descriptions.
//!
//! Layers carry *shapes* and *precisions* — everything the compiler and the
//! performance/energy models need. (Trained weight values never matter for
//! the paper's evaluation; synthetic tensors of the right shape exercise the
//! functional paths.)

use std::fmt;

use bitfusion_core::bitwidth::PairPrecision;
use bitfusion_core::postproc::PoolOp;

/// A 2-D convolution layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conv2d {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (filters).
    pub out_channels: usize,
    /// Filter height and width `(R, S)`.
    pub kernel: (usize, usize),
    /// Stride `(vertical, horizontal)`.
    pub stride: (usize, usize),
    /// Zero padding `(vertical, horizontal)` applied on each side.
    pub padding: (usize, usize),
    /// Input feature-map height and width `(H, W)`.
    pub input_hw: (usize, usize),
    /// Convolution groups (1 = dense; 2 for AlexNet's grouped convolutions).
    pub groups: usize,
    /// Operand precisions.
    pub precision: PairPrecision,
}

impl Conv2d {
    /// Output feature-map `(height, width)`.
    pub fn output_hw(&self) -> (usize, usize) {
        let (h, w) = self.input_hw;
        let (r, s) = self.kernel;
        let (sv, sh) = self.stride;
        let (pv, ph) = self.padding;
        ((h + 2 * pv - r) / sv + 1, (w + 2 * ph - s) / sh + 1)
    }

    /// Multiply-accumulate count for one input image.
    pub fn macs(&self) -> u64 {
        let (oh, ow) = self.output_hw();
        let (r, s) = self.kernel;
        (oh * ow * self.out_channels * r * s * self.in_channels / self.groups) as u64
    }

    /// Weight parameter count.
    pub fn params(&self) -> u64 {
        let (r, s) = self.kernel;
        (self.out_channels * self.in_channels / self.groups * r * s) as u64
    }

    /// Input elements for one image.
    pub fn input_elems(&self) -> u64 {
        (self.in_channels * self.input_hw.0 * self.input_hw.1) as u64
    }

    /// Output elements for one image.
    pub fn output_elems(&self) -> u64 {
        let (oh, ow) = self.output_hw();
        (self.out_channels * oh * ow) as u64
    }

    /// Reduction (dot-product) length per output element.
    pub fn reduction_len(&self) -> u64 {
        let (r, s) = self.kernel;
        (r * s * self.in_channels / self.groups) as u64
    }
}

/// A depthwise 2-D convolution: one filter per channel, no cross-channel
/// reduction — the spatial half of a depthwise-separable convolution
/// (MobileNet-style; the pointwise half is an ordinary 1×1 [`Conv2d`]).
///
/// Distinct from a grouped [`Conv2d`] with `groups == channels` only in
/// that the compiler lowers it specially: its tiny per-output reduction
/// (`R·S` instead of `R·S·C`) means inputs cannot be broadcast across the
/// output-channel dimension of the systolic array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepthwiseConv2d {
    /// Channels (equal in and out; depthwise never mixes them).
    pub channels: usize,
    /// Filter height and width `(R, S)`.
    pub kernel: (usize, usize),
    /// Stride `(vertical, horizontal)`.
    pub stride: (usize, usize),
    /// Zero padding `(vertical, horizontal)` applied on each side.
    pub padding: (usize, usize),
    /// Input feature-map height and width `(H, W)`.
    pub input_hw: (usize, usize),
    /// Operand precisions.
    pub precision: PairPrecision,
}

impl DepthwiseConv2d {
    /// Output feature-map `(height, width)`.
    pub fn output_hw(&self) -> (usize, usize) {
        let (h, w) = self.input_hw;
        let (r, s) = self.kernel;
        let (sv, sh) = self.stride;
        let (pv, ph) = self.padding;
        ((h + 2 * pv - r) / sv + 1, (w + 2 * ph - s) / sh + 1)
    }

    /// Multiply-accumulate count for one input image.
    pub fn macs(&self) -> u64 {
        let (oh, ow) = self.output_hw();
        let (r, s) = self.kernel;
        (oh * ow * self.channels * r * s) as u64
    }

    /// Weight parameter count (one `R×S` filter per channel).
    pub fn params(&self) -> u64 {
        let (r, s) = self.kernel;
        (self.channels * r * s) as u64
    }

    /// Input elements for one image.
    pub fn input_elems(&self) -> u64 {
        (self.channels * self.input_hw.0 * self.input_hw.1) as u64
    }

    /// Output elements for one image.
    pub fn output_elems(&self) -> u64 {
        let (oh, ow) = self.output_hw();
        (self.channels * oh * ow) as u64
    }

    /// Reduction (dot-product) length per output element: just the window.
    pub fn reduction_len(&self) -> u64 {
        let (r, s) = self.kernel;
        (r * s) as u64
    }
}

/// A fully-connected (dense) layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dense {
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
    /// Operand precisions.
    pub precision: PairPrecision,
}

impl Dense {
    /// Multiply-accumulate count for one input vector.
    pub fn macs(&self) -> u64 {
        (self.in_features * self.out_features) as u64
    }

    /// Weight parameter count.
    pub fn params(&self) -> u64 {
        self.macs()
    }
}

/// A 2-D pooling layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pool2d {
    /// Channels (unchanged by pooling).
    pub channels: usize,
    /// Input feature-map `(H, W)`.
    pub input_hw: (usize, usize),
    /// Pooling window `(height, width)`.
    pub window: (usize, usize),
    /// Stride `(vertical, horizontal)`.
    pub stride: (usize, usize),
    /// Zero padding `(vertical, horizontal)` applied on each side.
    pub padding: (usize, usize),
    /// The pooling operator.
    pub op: PoolOp,
}

impl Pool2d {
    /// Output feature-map `(height, width)`.
    pub fn output_hw(&self) -> (usize, usize) {
        let (h, w) = self.input_hw;
        let (r, s) = self.window;
        let (sv, sh) = self.stride;
        let (pv, ph) = self.padding;
        ((h + 2 * pv - r) / sv + 1, (w + 2 * ph - s) / sh + 1)
    }

    /// Scalar compare/add operations for one image (window size per output).
    pub fn ops(&self) -> u64 {
        let (oh, ow) = self.output_hw();
        (oh * ow * self.channels * self.window.0 * self.window.1) as u64
    }

    /// Output elements for one image.
    pub fn output_elems(&self) -> u64 {
        let (oh, ow) = self.output_hw();
        (self.channels * oh * ow) as u64
    }
}

/// A recurrent cell kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Long short-term memory: four gate matrices.
    Lstm,
    /// Vanilla (Elman) RNN: one gate matrix.
    Rnn,
}

impl CellKind {
    /// Gate matrix count.
    pub const fn gates(self) -> u64 {
        match self {
            CellKind::Lstm => 4,
            CellKind::Rnn => 1,
        }
    }
}

/// One recurrent layer, costed per timestep (language-model inference
/// processes one token at a time, which is what makes these benchmarks
/// bandwidth-bound in Figures 15/16).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recurrent {
    /// The cell kind.
    pub cell: CellKind,
    /// Input feature size.
    pub input_size: usize,
    /// Hidden state size.
    pub hidden_size: usize,
    /// Operand precisions.
    pub precision: PairPrecision,
}

impl Recurrent {
    /// Multiply-accumulate count for one timestep: the gate matrices applied
    /// to the concatenated `[input, hidden]` vector.
    pub fn macs(&self) -> u64 {
        self.cell.gates() * (self.hidden_size as u64) * (self.input_size + self.hidden_size) as u64
    }

    /// Weight parameter count.
    pub fn params(&self) -> u64 {
        self.macs()
    }

    /// Elementwise operations per timestep (gate nonlinearities and state
    /// updates).
    pub fn elementwise_ops(&self) -> u64 {
        match self.cell {
            // 3 sigmoids + 2 tanh + 3 multiplies + 1 add, per hidden unit.
            CellKind::Lstm => 9 * self.hidden_size as u64,
            // One tanh per hidden unit.
            CellKind::Rnn => self.hidden_size as u64,
        }
    }
}

/// An elementwise layer (residual additions, scaling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eltwise {
    /// Element count.
    pub elements: usize,
    /// `true` for addition (residual), `false` for multiplication.
    pub is_add: bool,
}

/// A standalone activation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivationLayer {
    /// Element count.
    pub elements: usize,
}

/// Any layer of a quantized DNN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Layer {
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Depthwise 2-D convolution (per-channel filters).
    DepthwiseConv2d(DepthwiseConv2d),
    /// Fully connected.
    Dense(Dense),
    /// 2-D pooling.
    Pool2d(Pool2d),
    /// Recurrent cell (per timestep).
    Recurrent(Recurrent),
    /// Elementwise binary operation.
    Eltwise(Eltwise),
    /// Standalone activation.
    Activation(ActivationLayer),
}

impl Layer {
    /// Multiply-accumulate count (zero for non-MAC layers).
    pub fn macs(&self) -> u64 {
        match self {
            Layer::Conv2d(c) => c.macs(),
            Layer::DepthwiseConv2d(c) => c.macs(),
            Layer::Dense(d) => d.macs(),
            Layer::Recurrent(r) => r.macs(),
            Layer::Pool2d(_) | Layer::Eltwise(_) | Layer::Activation(_) => 0,
        }
    }

    /// Non-MAC scalar operations.
    pub fn other_ops(&self) -> u64 {
        match self {
            Layer::Pool2d(p) => p.ops(),
            Layer::Eltwise(e) => e.elements as u64,
            Layer::Activation(a) => a.elements as u64,
            Layer::Recurrent(r) => r.elementwise_ops(),
            Layer::Conv2d(_) | Layer::DepthwiseConv2d(_) | Layer::Dense(_) => 0,
        }
    }

    /// Weight parameter count.
    pub fn params(&self) -> u64 {
        match self {
            Layer::Conv2d(c) => c.params(),
            Layer::DepthwiseConv2d(c) => c.params(),
            Layer::Dense(d) => d.params(),
            Layer::Recurrent(r) => r.params(),
            Layer::Pool2d(_) | Layer::Eltwise(_) | Layer::Activation(_) => 0,
        }
    }

    /// Total weight storage in bits (params × weight bitwidth).
    pub fn weight_bits(&self) -> u64 {
        self.params() * self.precision().map_or(0, |p| p.weight.bits() as u64)
    }

    /// Operand precisions, when the layer multiplies.
    pub fn precision(&self) -> Option<PairPrecision> {
        match self {
            Layer::Conv2d(c) => Some(c.precision),
            Layer::DepthwiseConv2d(c) => Some(c.precision),
            Layer::Dense(d) => Some(d.precision),
            Layer::Recurrent(r) => Some(r.precision),
            Layer::Pool2d(_) | Layer::Eltwise(_) | Layer::Activation(_) => None,
        }
    }

    /// Replaces the operand precisions on layers that multiply; a no-op on
    /// pool/eltwise/activation layers. Returns whether the layer carries a
    /// precision (i.e. whether the write landed).
    pub fn set_precision(&mut self, precision: PairPrecision) -> bool {
        match self {
            Layer::Conv2d(c) => c.precision = precision,
            Layer::DepthwiseConv2d(c) => c.precision = precision,
            Layer::Dense(d) => d.precision = precision,
            Layer::Recurrent(r) => r.precision = precision,
            Layer::Pool2d(_) | Layer::Eltwise(_) | Layer::Activation(_) => return false,
        }
        true
    }

    /// Short kind tag for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Layer::Conv2d(_) => "conv",
            Layer::DepthwiseConv2d(_) => "dwconv",
            Layer::Dense(_) => "fc",
            Layer::Pool2d(_) => "pool",
            Layer::Recurrent(Recurrent { cell: CellKind::Lstm, .. }) => "lstm",
            Layer::Recurrent(Recurrent { cell: CellKind::Rnn, .. }) => "rnn",
            Layer::Eltwise(_) => "eltwise",
            Layer::Activation(_) => "act",
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layer::Conv2d(c) => {
                let (oh, ow) = c.output_hw();
                write!(
                    f,
                    "conv {}x{}x{} -> {}x{}x{} k{}x{} s{} {}",
                    c.in_channels, c.input_hw.0, c.input_hw.1, c.out_channels, oh, ow,
                    c.kernel.0, c.kernel.1, c.stride.0, c.precision
                )
            }
            Layer::DepthwiseConv2d(c) => {
                let (oh, ow) = c.output_hw();
                write!(
                    f,
                    "dwconv {}x{}x{} -> {}x{}x{} k{}x{} s{} {}",
                    c.channels, c.input_hw.0, c.input_hw.1, c.channels, oh, ow,
                    c.kernel.0, c.kernel.1, c.stride.0, c.precision
                )
            }
            Layer::Dense(d) => write!(
                f,
                "fc {} -> {} {}",
                d.in_features, d.out_features, d.precision
            ),
            Layer::Pool2d(p) => write!(
                f,
                "pool {}x{} /{} on {}x{}x{}",
                p.window.0, p.window.1, p.stride.0, p.channels, p.input_hw.0, p.input_hw.1
            ),
            Layer::Recurrent(r) => write!(
                f,
                "{} in {} hidden {} {}",
                if r.cell == CellKind::Lstm { "lstm" } else { "rnn" },
                r.input_size,
                r.hidden_size,
                r.precision
            ),
            Layer::Eltwise(e) => write!(
                f,
                "eltwise-{} {}",
                if e.is_add { "add" } else { "mul" },
                e.elements
            ),
            Layer::Activation(a) => write!(f, "act {}", a.elements),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp(i: u32, w: u32) -> PairPrecision {
        PairPrecision::from_bits(i, w).unwrap()
    }

    /// AlexNet conv1 (regular width): the paper's table reports 105 MOps.
    #[test]
    fn alexnet_conv1_macs() {
        let c = Conv2d {
            in_channels: 3,
            out_channels: 96,
            kernel: (11, 11),
            stride: (4, 4),
            padding: (0, 0),
            input_hw: (227, 227),
            groups: 1,
            precision: pp(8, 8),
        };
        assert_eq!(c.output_hw(), (55, 55));
        assert_eq!(c.macs(), 105_415_200);
    }

    #[test]
    fn grouped_conv_halves_macs() {
        let mut c = Conv2d {
            in_channels: 96,
            out_channels: 256,
            kernel: (5, 5),
            stride: (1, 1),
            padding: (2, 2),
            input_hw: (27, 27),
            groups: 1,
            precision: pp(4, 1),
        };
        let dense = c.macs();
        c.groups = 2;
        assert_eq!(c.macs(), dense / 2);
        assert_eq!(c.params(), 5 * 5 * 48 * 256);
    }

    #[test]
    fn depthwise_macs_scale_with_window_not_channels() {
        let dw = DepthwiseConv2d {
            channels: 32,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
            input_hw: (112, 112),
            precision: pp(8, 8),
        };
        assert_eq!(dw.output_hw(), (112, 112));
        assert_eq!(dw.macs(), 112 * 112 * 32 * 9);
        assert_eq!(dw.params(), 32 * 9);
        assert_eq!(dw.reduction_len(), 9);
        // A strided depthwise halves the spatial extent like conv does.
        let strided = DepthwiseConv2d {
            stride: (2, 2),
            ..dw.clone()
        };
        assert_eq!(strided.output_hw(), (56, 56));
        let l = Layer::DepthwiseConv2d(dw);
        assert_eq!(l.kind(), "dwconv");
        assert_eq!(l.weight_bits(), 32 * 9 * 8);
        assert!(l.to_string().contains("dwconv 32x112x112 -> 32x112x112"));
    }

    #[test]
    fn dense_macs_and_params() {
        let d = Dense {
            in_features: 9216,
            out_features: 4096,
            precision: pp(4, 1),
        };
        assert_eq!(d.macs(), 37_748_736);
        assert_eq!(d.params(), d.macs());
    }

    #[test]
    fn pool_shapes() {
        let p = Pool2d {
            channels: 96,
            input_hw: (55, 55),
            window: (3, 3),
            stride: (2, 2),
            padding: (0, 0),
            op: PoolOp::Max,
        };
        assert_eq!(p.output_hw(), (27, 27));
        assert_eq!(p.ops(), (27 * 27 * 96 * 9) as u64);
        // ResNet's stem pool: 112 -> 56 with padding 1.
        let p = Pool2d {
            channels: 64,
            input_hw: (112, 112),
            window: (3, 3),
            stride: (2, 2),
            padding: (1, 1),
            op: PoolOp::Max,
        };
        assert_eq!(p.output_hw(), (56, 56));
    }

    #[test]
    fn lstm_macs_match_gate_count() {
        let r = Recurrent {
            cell: CellKind::Lstm,
            input_size: 900,
            hidden_size: 900,
            precision: pp(4, 4),
        };
        assert_eq!(r.macs(), 4 * 900 * 1800);
        let r = Recurrent {
            cell: CellKind::Rnn,
            input_size: 2048,
            hidden_size: 2048,
            precision: pp(4, 4),
        };
        assert_eq!(r.macs(), 2048 * 4096);
    }

    #[test]
    fn weight_bits_scale_with_precision() {
        let d = |w| {
            Layer::Dense(Dense {
                in_features: 100,
                out_features: 10,
                precision: pp(8, w),
            })
        };
        assert_eq!(d(1).weight_bits(), 1000);
        assert_eq!(d(2).weight_bits(), 2000);
        assert_eq!(d(8).weight_bits(), 8000);
    }

    #[test]
    fn non_mac_layers_report_other_ops() {
        let e = Layer::Eltwise(Eltwise {
            elements: 1000,
            is_add: true,
        });
        assert_eq!(e.macs(), 0);
        assert_eq!(e.other_ops(), 1000);
        assert_eq!(e.params(), 0);
        assert!(e.precision().is_none());
    }

    #[test]
    fn display_forms() {
        let c = Conv2d {
            in_channels: 3,
            out_channels: 64,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
            input_hw: (32, 32),
            groups: 1,
            precision: pp(2, 2),
        };
        let s = Layer::Conv2d(c).to_string();
        assert!(s.contains("conv 3x32x32 -> 64x32x32"));
        assert!(s.contains("2bit/2bit"));
    }
}
