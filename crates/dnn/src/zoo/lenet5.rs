//! LeNet-5 with ternary weights (Li et al.) on MNIST.
//!
//! Topology: 32C5 – MP2 – 64C5 – MP2 – 1024FC – 10 on 28×28×1 digits
//! (padded convolutions). Shape-derived MACs:
//! `0.6 + 10.0 + 3.2 + 0.01 ≈ 13.9 MOps` against Table II's 16 MOps
//! (−13%; the paper's exact fully-connected width is unspecified — this
//! reconstruction favours the classic 1024-unit head). Weights
//! `≈ 3.3M params × 2 bits ≈ 0.8 MB` vs the paper's 0.5 MB. All layers run
//! at 2bit/2bit (Figure 1: 100%).

use crate::model::Model;
use crate::quantspec::QuantSpec;
use crate::zoo::{conv, fc, maxpool, pp};

/// The topology at reference precision (shapes only).
pub(crate) fn topology() -> Model {
    let p = pp(16, 16);
    Model::new(
        "LeNet-5",
        vec![
            ("conv1", conv(1, 32, 5, 1, 2, (28, 28), 1, p)),
            ("pool1", maxpool(32, (28, 28), 2, 2)),
            ("conv2", conv(32, 64, 5, 1, 2, (14, 14), 1, p)),
            ("pool2", maxpool(64, (14, 14), 2, 2)),
            ("fc1", fc(64 * 7 * 7, 1024, p)),
            ("fc2", fc(1024, 10, p)),
        ],
    )
}

/// The paper's assignment: ternary (2/2) everywhere.
pub(crate) fn paper_quant() -> QuantSpec {
    QuantSpec::parse("default=2/2").expect("static spec parses")
}

/// The ternary LeNet-5 model (Table II: 16 MOps).
pub fn lenet5() -> Model {
    paper_quant()
        .apply(&topology())
        .expect("paper spec matches the topology")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macs_near_table_2() {
        let mops = lenet5().total_macs() as f64 / 1e6;
        assert!(mops > 13.0 && mops < 16.5, "{mops}");
    }

    #[test]
    fn fully_ternary() {
        for l in lenet5().mac_layers() {
            let p = l.layer.precision().unwrap();
            assert_eq!((p.input.bits(), p.weight.bits()), (2, 2), "{}", l.name);
        }
    }

    #[test]
    fn smallest_benchmark() {
        // LeNet-5 is the suite's smallest model — the regime where Bit
        // Fusion's advantage over Stripes peaks (Figure 18: 5.2x).
        assert!(lenet5().weight_bytes() < 1_000_000);
    }
}
