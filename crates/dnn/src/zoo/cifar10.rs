//! The QNN Cifar-10 convnet (Hubara et al.): binary interior layers.
//!
//! Topology: 2×128C3 – MP2 – 2×256C3 – MP2 – 2×512C3 – MP2 – 1024FC –
//! 1024FC – 10, on 32×32×3 inputs. Shape-derived MACs:
//! `3.5 + 151.0 + 75.5 + 151.0 + 75.5 + 151.0 + 8.4 + 1.0 + 0.01 ≈ 617 MOps`
//! — exactly Table II's figure. The first conv and final classifier run at
//! 8/8; everything else is binary (Figure 1: 99% of MACs at 1bit/1bit).

use crate::model::Model;
use crate::quantspec::QuantSpec;
use crate::zoo::{conv, fc, maxpool, pp};

/// The topology at reference precision (shapes only).
pub(crate) fn topology() -> Model {
    let p = pp(16, 16);
    Model::new(
        "Cifar-10",
        vec![
            ("conv1", conv(3, 128, 3, 1, 1, (32, 32), 1, p)),
            ("conv2", conv(128, 128, 3, 1, 1, (32, 32), 1, p)),
            ("pool1", maxpool(128, (32, 32), 2, 2)),
            ("conv3", conv(128, 256, 3, 1, 1, (16, 16), 1, p)),
            ("conv4", conv(256, 256, 3, 1, 1, (16, 16), 1, p)),
            ("pool2", maxpool(256, (16, 16), 2, 2)),
            ("conv5", conv(256, 512, 3, 1, 1, (8, 8), 1, p)),
            ("conv6", conv(512, 512, 3, 1, 1, (8, 8), 1, p)),
            ("pool3", maxpool(512, (8, 8), 2, 2)),
            ("fc1", fc(512 * 4 * 4, 1024, p)),
            ("fc2", fc(1024, 1024, p)),
            ("fc3", fc(1024, 10, p)),
        ],
    )
}

/// The paper's assignment: binary interior, 8/8 at the first conv and the
/// classifier.
pub(crate) fn paper_quant() -> QuantSpec {
    QuantSpec::parse("default=1/1,layer:conv1=8/8,layer:fc3=8/8")
        .expect("static spec parses")
}

/// The QNN Cifar-10 model (Table II: 617 MOps, binary-dominant).
pub fn cifar10() -> Model {
    paper_quant()
        .apply(&topology())
        .expect("paper spec matches the topology")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::BitwidthStats;

    #[test]
    fn matches_table_2_macs() {
        let mops = cifar10().total_macs() as f64 / 1e6;
        assert!((mops - 617.0).abs() < 6.0, "{mops}");
    }

    #[test]
    fn binary_share_is_99_percent() {
        // Figure 1(a): Cifar-10 runs 99% of MACs at 1bit/1bit.
        let stats = BitwidthStats::of(&cifar10());
        let binary = stats
            .mac_shares
            .iter()
            .find(|s| s.input_bits == 1 && s.weight_bits == 1)
            .unwrap();
        assert!(binary.share > 0.985, "{}", binary.share);
    }
}
