//! ResNet-18: the WRPN wide reduced-precision variant and the regular
//! reference.
//!
//! The paper uses a WRPN widened ResNet-18 at low precision (§V-A). The
//! exact widening is under-specified (a literal 2× of every channel gives
//! ~7.2 GMACs, well above Table II's 4,269 MOps), so this reconstruction
//! uses a 1.5× channel multiplier, which lands at
//! `177 + 1040 + 3×925 + 0.8 ≈ 3993 MOps` — within 7% of Table II. All
//! multiply layers run at 2bit/2bit, matching Figure 1's distribution; the
//! regular reference model is 16-bit at 1.0× width (~1.8 GMACs).

use bitfusion_core::bitwidth::PairPrecision;
use bitfusion_core::postproc::PoolOp;

use crate::layer::{Eltwise, Layer, Pool2d};
use crate::model::Model;
use crate::quantspec::QuantSpec;
use crate::zoo::{conv, fc, pp};

/// One residual stage: `blocks` basic blocks of two 3×3 convolutions, the
/// first block optionally downsampling with stride 2 plus a 1×1 shortcut.
#[allow(clippy::too_many_arguments)]
fn stage(
    layers: &mut Vec<(&'static str, Layer)>,
    names: [&'static str; 6],
    in_ch: usize,
    out_ch: usize,
    hw_in: usize,
    downsample: bool,
    precision: PairPrecision,
) {
    let stride = if downsample { 2 } else { 1 };
    let hw_out = hw_in / stride;
    // Block 1.
    layers.push((
        names[0],
        conv(in_ch, out_ch, 3, stride, 1, (hw_in, hw_in), 1, precision),
    ));
    layers.push((
        names[1],
        conv(out_ch, out_ch, 3, 1, 1, (hw_out, hw_out), 1, precision),
    ));
    if downsample {
        layers.push((
            names[2],
            conv(in_ch, out_ch, 1, 2, 0, (hw_in, hw_in), 1, precision),
        ));
    }
    layers.push((
        names[3],
        Layer::Eltwise(Eltwise {
            elements: out_ch * hw_out * hw_out,
            is_add: true,
        }),
    ));
    // Block 2.
    layers.push((
        names[4],
        conv(out_ch, out_ch, 3, 1, 1, (hw_out, hw_out), 1, precision),
    ));
    layers.push((
        names[5],
        conv(out_ch, out_ch, 3, 1, 1, (hw_out, hw_out), 1, precision),
    ));
    layers.push((
        "residual-add",
        Layer::Eltwise(Eltwise {
            elements: out_ch * hw_out * hw_out,
            is_add: true,
        }),
    ));
}

fn build(width_x10: usize) -> Vec<(&'static str, Layer)> {
    let w = |base: usize| base * width_x10 / 10;
    // Topology carries shapes only, at the 16-bit reference precision.
    let p = pp(16, 16);
    let mut layers: Vec<(&'static str, Layer)> = Vec::new();
    layers.push(("conv1", conv(3, w(64), 7, 2, 3, (224, 224), 1, p)));
    layers.push((
        "pool1",
        Layer::Pool2d(Pool2d {
            channels: w(64),
            input_hw: (112, 112),
            window: (3, 3),
            stride: (2, 2),
            padding: (1, 1),
            op: PoolOp::Max,
        }),
    ));
    stage(
        &mut layers,
        ["l1b1c1", "l1b1c2", "l1ds", "l1add", "l1b2c1", "l1b2c2"],
        w(64),
        w(64),
        56,
        false,
        p,
    );
    stage(
        &mut layers,
        ["l2b1c1", "l2b1c2", "l2ds", "l2add", "l2b2c1", "l2b2c2"],
        w(64),
        w(128),
        56,
        true,
        p,
    );
    stage(
        &mut layers,
        ["l3b1c1", "l3b1c2", "l3ds", "l3add", "l3b2c1", "l3b2c2"],
        w(128),
        w(256),
        28,
        true,
        p,
    );
    stage(
        &mut layers,
        ["l4b1c1", "l4b1c2", "l4ds", "l4add", "l4b2c1", "l4b2c2"],
        w(256),
        w(512),
        14,
        true,
        p,
    );
    layers.push((
        "avgpool",
        Layer::Pool2d(Pool2d {
            channels: w(512),
            input_hw: (7, 7),
            window: (7, 7),
            stride: (7, 7),
            padding: (0, 0),
            op: PoolOp::Average,
        }),
    ));
    layers.push(("fc", fc(w(512), 1000, p)));
    layers
}

/// The 1.5×-wide topology at reference precision (shapes of Table II's
/// ResNet-18, before quantization).
pub(crate) fn topology() -> Model {
    Model::new("ResNet-18", build(15))
}

/// The paper's assignment: 2/2 on every multiplying layer (Figure 1).
pub(crate) fn paper_quant() -> QuantSpec {
    QuantSpec::parse("default=2/2").expect("static spec parses")
}

/// The WRPN wide ResNet-18 Bit Fusion executes (Table II: 4,269 MOps;
/// reconstructed at 1.5× width ≈ 3,993 MOps).
pub fn resnet18() -> Model {
    paper_quant()
        .apply(&topology())
        .expect("paper spec matches the topology")
}

/// The regular 16-bit ResNet-18 for the Eyeriss and GPU baselines
/// (~1.8 GMACs).
pub fn resnet18_regular() -> Model {
    Model::new("ResNet-18-regular", build(10))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_macs_near_table_2() {
        let mops = resnet18().total_macs() as f64 / 1e6;
        // Table II: 4,269; the 1.5x reconstruction gives ~3,993 (within 7%).
        assert!(mops > 3800.0 && mops < 4400.0, "{mops}");
    }

    #[test]
    fn regular_macs_match_literature() {
        // Standard ResNet-18 at 224x224 is ~1.82 GMACs.
        let mops = resnet18_regular().total_macs() as f64 / 1e6;
        assert!((mops - 1820.0).abs() < 60.0, "{mops}");
    }

    #[test]
    fn has_residual_adds() {
        let adds = resnet18()
            .layers
            .iter()
            .filter(|l| matches!(l.layer, Layer::Eltwise(_)))
            .count();
        assert_eq!(adds, 8); // two per stage
    }

    #[test]
    fn quantized_at_2_bits() {
        for l in resnet18().mac_layers() {
            let p = l.layer.precision().unwrap();
            assert_eq!((p.input.bits(), p.weight.bits()), (2, 2), "{}", l.name);
        }
    }
}
