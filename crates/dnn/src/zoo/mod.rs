//! The eight-benchmark zoo of Table II.
//!
//! Each function builds one benchmark's layer list from explicit shapes. The
//! quantized topologies follow the sources the paper cites: QNN
//! (Hubara et al.) for Cifar-10/SVHN/LSTM/RNN, ternary weight networks
//! (Li et al.) for LeNet-5/VGG-7, and WRPN wide reduced-precision models
//! (Mishra et al.) for AlexNet/ResNet-18. Weight *values* are synthetic
//! (seeded) since only shapes and bitwidths enter the evaluation; each
//! module documents how its shapes reproduce the paper's reported
//! multiply-add counts.
//!
//! [`Benchmark`] enumerates the suite and pairs every quantized model with
//! the 16-bit *reference* variant the Eyeriss and GPU baselines execute
//! (the paper uses regular-width AlexNet/ResNet-18 there, §V-B1).
//!
//! Precisions are not baked into the builders: every network is a
//! *topology* (shapes at the 16-bit reference precision,
//! [`Benchmark::topology`]) plus a [`QuantSpec`] — the paper's Table II
//! assignment ([`Benchmark::paper_quant`]) by default, or any caller
//! supplied policy via [`Benchmark::model_with`].

mod alexnet;
mod cifar10;
mod lenet5;
mod lstm;
mod resnet18;
mod rnn;
mod svhn;
mod vgg7;

pub use alexnet::{alexnet, alexnet_regular};
pub use cifar10::cifar10;
pub use lenet5::lenet5;
pub use lstm::lstm;
pub use resnet18::{resnet18, resnet18_regular};
pub use rnn::rnn;
pub use svhn::svhn;
pub use vgg7::vgg7;

use bitfusion_core::bitwidth::PairPrecision;
use bitfusion_core::postproc::PoolOp;

use crate::layer::{Conv2d, Dense, Layer, Pool2d};
use crate::model::Model;
use crate::quantspec::QuantSpec;

/// Precision pair helper used across the zoo.
pub(crate) fn pp(input_bits: u32, weight_bits: u32) -> PairPrecision {
    PairPrecision::from_bits(input_bits, weight_bits)
        .expect("zoo uses only supported bitwidths")
}

/// Dense convolution helper.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv(
    in_channels: usize,
    out_channels: usize,
    k: usize,
    stride: usize,
    pad: usize,
    input_hw: (usize, usize),
    groups: usize,
    precision: PairPrecision,
) -> Layer {
    Layer::Conv2d(Conv2d {
        in_channels,
        out_channels,
        kernel: (k, k),
        stride: (stride, stride),
        padding: (pad, pad),
        input_hw,
        groups,
        precision,
    })
}

/// Fully-connected helper.
pub(crate) fn fc(in_features: usize, out_features: usize, precision: PairPrecision) -> Layer {
    Layer::Dense(Dense {
        in_features,
        out_features,
        precision,
    })
}

/// Max-pool helper (no padding).
pub(crate) fn maxpool(
    channels: usize,
    input_hw: (usize, usize),
    window: usize,
    stride: usize,
) -> Layer {
    Layer::Pool2d(Pool2d {
        channels,
        input_hw,
        window: (window, window),
        stride: (stride, stride),
        padding: (0, 0),
        op: PoolOp::Max,
    })
}

/// The benchmark suite of Table II, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// AlexNet (WRPN 2×-wide; ImageNet).
    AlexNet,
    /// Cifar-10 convnet (QNN; binary).
    Cifar10,
    /// LSTM language model (QNN; Penn TreeBank).
    Lstm,
    /// LeNet-5 (ternary; MNIST).
    LeNet5,
    /// ResNet-18 (WRPN wide; ImageNet).
    ResNet18,
    /// Vanilla RNN language model (QNN; Penn TreeBank).
    Rnn,
    /// SVHN convnet (QNN; binary).
    Svhn,
    /// VGG-7 (ternary; CIFAR-10).
    Vgg7,
}

impl Benchmark {
    /// All benchmarks in the paper's presentation order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::AlexNet,
        Benchmark::Cifar10,
        Benchmark::Lstm,
        Benchmark::LeNet5,
        Benchmark::ResNet18,
        Benchmark::Rnn,
        Benchmark::Svhn,
        Benchmark::Vgg7,
    ];

    /// Display name matching the paper's figures.
    pub const fn name(self) -> &'static str {
        match self {
            Benchmark::AlexNet => "AlexNet",
            Benchmark::Cifar10 => "Cifar-10",
            Benchmark::Lstm => "LSTM",
            Benchmark::LeNet5 => "LeNet-5",
            Benchmark::ResNet18 => "ResNet-18",
            Benchmark::Rnn => "RNN",
            Benchmark::Svhn => "SVHN",
            Benchmark::Vgg7 => "VGG-7",
        }
    }

    /// The quantized model Bit Fusion (and Stripes) execute: the paper's
    /// Table II assignment applied to the topology.
    pub fn model(self) -> Model {
        match self {
            Benchmark::AlexNet => alexnet(),
            Benchmark::Cifar10 => cifar10(),
            Benchmark::Lstm => lstm(),
            Benchmark::LeNet5 => lenet5(),
            Benchmark::ResNet18 => resnet18(),
            Benchmark::Rnn => rnn(),
            Benchmark::Svhn => svhn(),
            Benchmark::Vgg7 => vgg7(),
        }
    }

    /// The benchmark's topology: the quantized variant's shapes with every
    /// multiplying layer at the 16-bit reference precision.
    pub fn topology(self) -> Model {
        match self {
            Benchmark::AlexNet => alexnet::topology(),
            Benchmark::Cifar10 => cifar10::topology(),
            Benchmark::Lstm => lstm::topology(),
            Benchmark::LeNet5 => lenet5::topology(),
            Benchmark::ResNet18 => resnet18::topology(),
            Benchmark::Rnn => rnn::topology(),
            Benchmark::Svhn => svhn::topology(),
            Benchmark::Vgg7 => vgg7::topology(),
        }
    }

    /// The paper's Table II per-layer bitwidth assignment, as a
    /// [`QuantSpec`] over the topology.
    pub fn paper_quant(self) -> QuantSpec {
        match self {
            Benchmark::AlexNet => alexnet::paper_quant(),
            Benchmark::Cifar10 => cifar10::paper_quant(),
            Benchmark::Lstm => lstm::paper_quant(),
            Benchmark::LeNet5 => lenet5::paper_quant(),
            Benchmark::ResNet18 => resnet18::paper_quant(),
            Benchmark::Rnn => rnn::paper_quant(),
            Benchmark::Svhn => svhn::paper_quant(),
            Benchmark::Vgg7 => vgg7::paper_quant(),
        }
    }

    /// The benchmark quantized under `spec`. Overrides act on top of the
    /// paper assignment: [`QuantSpec::paper`] reproduces
    /// [`Benchmark::model`] exactly, and e.g. `fc=8/8` keeps every other
    /// layer at its Table II precision.
    ///
    /// # Errors
    ///
    /// Propagates [`QuantSpec::apply`] failures (a layer override naming
    /// no multiplying layer of this network).
    pub fn model_with(self, spec: &QuantSpec) -> Result<Model, String> {
        spec.apply(&self.model())
    }

    /// The reference model the 16-bit baselines (Eyeriss) and the GPUs
    /// execute: regular-width AlexNet/ResNet-18 (§V-B1: "We use the original
    /// AlexNet and ResNet-18 models on Eyeriss"), and the same topology for
    /// the remaining benchmarks.
    pub fn reference_model(self) -> Model {
        match self {
            Benchmark::AlexNet => alexnet_regular(),
            Benchmark::ResNet18 => resnet18_regular(),
            other => other.model(),
        }
    }

    /// Whether the benchmark is recurrent (RNN/LSTM — the bandwidth-bound
    /// pair in Figures 15/16).
    pub const fn is_recurrent(self) -> bool {
        matches!(self, Benchmark::Lstm | Benchmark::Rnn)
    }

    /// Table II's reported multiply-add count, in millions.
    pub const fn paper_mops(self) -> u64 {
        match self {
            Benchmark::AlexNet => 2678,
            Benchmark::Cifar10 => 617,
            Benchmark::Lstm => 13,
            Benchmark::LeNet5 => 16,
            Benchmark::ResNet18 => 4269,
            Benchmark::Rnn => 17,
            Benchmark::Svhn => 158,
            Benchmark::Vgg7 => 317,
        }
    }

    /// Table II's reported model-weight size, in megabytes.
    pub const fn paper_weight_mb(self) -> f64 {
        match self {
            Benchmark::AlexNet => 116.3,
            Benchmark::Cifar10 => 3.3,
            Benchmark::Lstm => 6.2,
            Benchmark::LeNet5 => 0.5,
            Benchmark::ResNet18 => 13.0,
            Benchmark::Rnn => 8.0,
            Benchmark::Svhn => 0.8,
            Benchmark::Vgg7 => 2.7,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shape-derived MAC counts versus Table II. AlexNet, Cifar-10, SVHN,
    /// LSTM, RNN, and VGG-7 reproduce the paper within 3%; LeNet-5 and
    /// ResNet-18 within 15% (their exact quantized variants are
    /// under-specified; each module documents the reconstruction).
    #[test]
    fn macs_track_table_2() {
        let tight = [
            Benchmark::AlexNet,
            Benchmark::Cifar10,
            Benchmark::Svhn,
            Benchmark::Vgg7,
            Benchmark::Lstm,
            Benchmark::Rnn,
        ];
        for b in Benchmark::ALL {
            let measured = b.model().total_macs() as f64 / 1e6;
            let paper = b.paper_mops() as f64;
            let rel = (measured - paper).abs() / paper;
            let bound = if tight.contains(&b) { 0.03 } else { 0.15 };
            assert!(
                rel < bound,
                "{b}: measured {measured:.0}M vs paper {paper:.0}M ({:.1}% off)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn mac_fraction_exceeds_99_percent() {
        // Figure 1's table: multiply-adds are >99% of operations everywhere.
        for b in Benchmark::ALL {
            let f = b.model().mac_fraction();
            assert!(f > 0.99, "{b}: {f}");
        }
    }

    #[test]
    fn dominant_bitwidths_match_figure_1() {
        use crate::stats::BitwidthStats;
        let expect = [
            (Benchmark::AlexNet, (4, 1)),
            (Benchmark::Cifar10, (1, 1)),
            (Benchmark::Lstm, (4, 4)),
            (Benchmark::LeNet5, (2, 2)),
            (Benchmark::ResNet18, (2, 2)),
            (Benchmark::Rnn, (4, 4)),
            (Benchmark::Svhn, (1, 1)),
            (Benchmark::Vgg7, (2, 2)),
        ];
        for (b, (i, w)) in expect {
            let stats = BitwidthStats::of(&b.model());
            let p = stats.dominant_pair().unwrap();
            assert_eq!(
                (p.input.bits(), p.weight.bits()),
                (i, w),
                "{b} dominant pair"
            );
        }
    }

    #[test]
    fn low_bitwidth_share_matches_figure_1_average() {
        // "on average, 97.3% of multiply-adds require four or fewer bits".
        use crate::stats::BitwidthStats;
        let mean: f64 = Benchmark::ALL
            .iter()
            .map(|b| BitwidthStats::of(&b.model()).share_at_or_below(4))
            .sum::<f64>()
            / 8.0;
        assert!(mean > 0.95, "mean low-bitwidth share {mean}");
    }

    #[test]
    fn reference_models_differ_only_for_wide_nets() {
        assert_ne!(
            Benchmark::AlexNet.reference_model().total_macs(),
            Benchmark::AlexNet.model().total_macs()
        );
        assert_ne!(
            Benchmark::ResNet18.reference_model().total_macs(),
            Benchmark::ResNet18.model().total_macs()
        );
        assert_eq!(
            Benchmark::Vgg7.reference_model().total_macs(),
            Benchmark::Vgg7.model().total_macs()
        );
    }

    #[test]
    fn topology_plus_paper_spec_is_the_model() {
        for b in Benchmark::ALL {
            let topo = b.topology();
            // Topologies are shapes only: every MAC layer at 16/16.
            for l in topo.mac_layers() {
                let p = l.layer.precision().unwrap();
                assert_eq!((p.input.bits(), p.weight.bits()), (16, 16), "{b}/{}", l.name);
            }
            let built = b.paper_quant().apply(&topo).unwrap();
            assert_eq!(built, b.model(), "{b}");
            // And the paper spec over the model itself is the identity.
            assert_eq!(b.model_with(&QuantSpec::paper()).unwrap(), b.model(), "{b}");
        }
    }

    #[test]
    fn model_with_rewrites_every_mac_layer() {
        let spec = QuantSpec::parse("uniform16").unwrap();
        for b in Benchmark::ALL {
            let m = b.model_with(&spec).unwrap();
            assert_eq!(m.total_macs(), b.model().total_macs(), "{b}: shapes unchanged");
            for l in m.mac_layers() {
                assert_eq!(l.layer.precision().unwrap().compact(), "16/16", "{b}/{}", l.name);
            }
            // 16-bit weights never shrink storage vs the paper assignment.
            assert!(m.weight_bytes() >= b.model().weight_bytes(), "{b}");
        }
    }

    #[test]
    fn recurrent_flags() {
        assert!(Benchmark::Lstm.is_recurrent());
        assert!(Benchmark::Rnn.is_recurrent());
        assert!(!Benchmark::AlexNet.is_recurrent());
    }

    #[test]
    fn every_model_nonempty_and_consistent() {
        for b in Benchmark::ALL {
            let m = b.model();
            assert!(!m.is_empty(), "{b}");
            assert!(m.total_macs() > 0, "{b}");
            assert!(m.weight_bytes() > 0, "{b}");
            for l in m.mac_layers() {
                assert!(l.layer.precision().is_some(), "{b}/{}", l.name);
            }
        }
    }
}

#[cfg(test)]
mod shape_chain_tests {
    use super::*;

    /// Every benchmark's layer list chains shape-consistently; the only
    /// expected mismatches are ResNet-18's residual-branch downsample
    /// convolutions, which consume the stage input rather than the previous
    /// layer's output.
    #[test]
    fn zoo_shape_chains_are_consistent() {
        for b in Benchmark::ALL {
            for model in [b.model(), b.reference_model()] {
                let mismatches = model.shape_chain_mismatches();
                if b == Benchmark::ResNet18 {
                    assert_eq!(mismatches.len(), 3, "{}: {mismatches:?}", model.name);
                    for (_, consumer, _, _) in &mismatches {
                        assert!(
                            consumer.ends_with("ds"),
                            "{}: unexpected mismatch into {consumer}",
                            model.name
                        );
                    }
                } else {
                    assert!(mismatches.is_empty(), "{}: {mismatches:?}", model.name);
                }
            }
        }
    }
}
