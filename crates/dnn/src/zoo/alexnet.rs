//! AlexNet: the WRPN 2×-wide quantized variant and the regular reference.
//!
//! The paper's per-layer table gives the regular-width class breakdown
//! (conv1 8/8 = 105 MOps, conv2–5 4/1 = 560 MOps, fc6–7 4/1 = 54 MOps,
//! fc8 8/8 = 4 MOps — the grouped one-weird-trick topology), and Table II
//! gives 2,678 MOps for the 2×-wide model Bit Fusion runs. Doubling every
//! channel (4× MACs in the interior, 2× at the image-facing edges)
//! reproduces that total exactly:
//! `210.8 + 895.8 + 598.1 + 448.6 + 299.0 + 151.0 + 67.1 + 8.2 ≈ 2678 MOps`.

use crate::layer::Layer;
use crate::model::Model;
use crate::quantspec::QuantSpec;
use crate::zoo::{conv, fc, maxpool, pp};

fn build(width: usize) -> Vec<(&'static str, Layer)> {
    // Regular widths: 96/256/384/384/256 convs, 4096 FCs. Topology carries
    // shapes only — every layer at the 16-bit reference precision; the
    // paper assignment arrives via [`paper_quant`].
    let c1 = 96 * width;
    let c2 = 256 * width;
    let c3 = 384 * width;
    let c5 = 256 * width;
    let f6 = 4096 * width;
    let p = pp(16, 16);
    vec![
        ("conv1", conv(3, c1, 11, 4, 0, (227, 227), 1, p)),
        ("pool1", maxpool(c1, (55, 55), 3, 2)),
        ("conv2", conv(c1, c2, 5, 1, 2, (27, 27), 2, p)),
        ("pool2", maxpool(c2, (27, 27), 3, 2)),
        ("conv3", conv(c2, c3, 3, 1, 1, (13, 13), 1, p)),
        ("conv4", conv(c3, c3, 3, 1, 1, (13, 13), 2, p)),
        ("conv5", conv(c3, c5, 3, 1, 1, (13, 13), 2, p)),
        ("pool5", maxpool(c5, (13, 13), 3, 2)),
        ("fc6", fc(c5 * 6 * 6, f6, p)),
        ("fc7", fc(f6, f6, p)),
        ("fc8", fc(f6, 1000, p)),
    ]
}

/// The 2×-wide topology at reference precision (shapes of Table II's
/// AlexNet, before quantization).
pub(crate) fn topology() -> Model {
    Model::new("AlexNet", build(2))
}

/// The paper's per-layer assignment: the image-facing edges (conv1, fc8)
/// at 8/8, everything between at 4-bit activations × binary weights.
pub(crate) fn paper_quant() -> QuantSpec {
    QuantSpec::parse("default=4/1,layer:conv1=8/8,layer:fc8=8/8")
        .expect("static spec parses")
}

/// The 2×-wide WRPN AlexNet that Bit Fusion and Stripes execute
/// (Table II: 2,678 MOps).
pub fn alexnet() -> Model {
    paper_quant()
        .apply(&topology())
        .expect("paper spec matches the topology")
}

/// The regular-width 16-bit AlexNet the Eyeriss and GPU baselines execute
/// (~724 MOps).
pub fn alexnet_regular() -> Model {
    Model::new("AlexNet-regular", build(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_model_matches_table_2() {
        let m = alexnet();
        let mops = m.total_macs() as f64 / 1e6;
        assert!((mops - 2678.0).abs() < 27.0, "{mops}");
    }

    #[test]
    fn regular_model_matches_per_layer_table() {
        let m = alexnet_regular();
        // conv1 = 105 MOps (paper per-layer table).
        let conv1 = m.layers.iter().find(|l| l.name == "conv1").unwrap();
        assert_eq!(conv1.layer.macs(), 105_415_200);
        // conv2-5 = 560 MOps.
        let mid: u64 = ["conv2", "conv3", "conv4", "conv5"]
            .iter()
            .map(|n| m.layers.iter().find(|l| &l.name == n).unwrap().layer.macs())
            .sum();
        assert!((mid as f64 / 1e6 - 560.0).abs() < 2.0);
        // fc6-7 = 54 MOps; fc8 = 4 MOps.
        let fcs: u64 = ["fc6", "fc7"]
            .iter()
            .map(|n| m.layers.iter().find(|l| &l.name == n).unwrap().layer.macs())
            .sum();
        assert!((fcs as f64 / 1e6 - 54.5).abs() < 1.0);
        let fc8 = m.layers.iter().find(|l| l.name == "fc8").unwrap();
        assert!((fc8.layer.macs() as f64 / 1e6 - 4.1).abs() < 0.1);
    }

    #[test]
    fn wide_is_about_3_7x_regular() {
        // §V-B1: the regular model "effectively requires 4x less
        // multiply-add operations" (3.7x exactly, edges scale by 2x).
        let ratio = alexnet().total_macs() as f64 / alexnet_regular().total_macs() as f64;
        assert!(ratio > 3.4 && ratio < 4.0, "{ratio}");
    }

    #[test]
    fn edge_layers_are_8_bit() {
        let m = alexnet();
        let p = |name: &str| {
            m.layers
                .iter()
                .find(|l| l.name == name)
                .unwrap()
                .layer
                .precision()
                .unwrap()
        };
        assert_eq!(p("conv1").input.bits(), 8);
        assert_eq!(p("conv1").weight.bits(), 8);
        assert_eq!(p("conv3").input.bits(), 4);
        assert_eq!(p("conv3").weight.bits(), 1);
        assert_eq!(p("fc8").weight.bits(), 8);
    }
}
