//! The QNN LSTM language model (Hubara et al.) on Penn TreeBank.
//!
//! Two 900-unit LSTM layers at 4-bit weights and activations, costed per
//! token (language-model inference is sequential). Shape-derived MACs:
//! `2 × 4 × 900 × 1800 = 12.96 MOps` per token (Table II: 13), and weights
//! `13.0M params × 4 bits ≈ 6.5 MB` (Table II: 6.2 MB). The embedding and
//! softmax layers are omitted, as the paper's op count implies.

use crate::layer::{CellKind, Layer, Recurrent};
use crate::model::Model;
use crate::quantspec::QuantSpec;
use crate::zoo::pp;

/// The topology at reference precision (shapes only).
pub(crate) fn topology() -> Model {
    let p = pp(16, 16);
    let cell = |input| {
        Layer::Recurrent(Recurrent {
            cell: CellKind::Lstm,
            input_size: input,
            hidden_size: 900,
            precision: p,
        })
    };
    Model::new("LSTM", vec![("lstm1", cell(900)), ("lstm2", cell(900))])
}

/// The paper's assignment: 4-bit weights and activations throughout.
pub(crate) fn paper_quant() -> QuantSpec {
    QuantSpec::parse("default=4/4").expect("static spec parses")
}

/// The QNN PTB LSTM model (Table II: 13 MOps/token, 6.2 MB).
pub fn lstm() -> Model {
    paper_quant()
        .apply(&topology())
        .expect("paper spec matches the topology")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_2() {
        let m = lstm();
        let mops = m.total_macs() as f64 / 1e6;
        assert!((mops - 13.0).abs() < 0.5, "{mops}");
        let mb = m.weight_bytes() as f64 / 1e6;
        assert!((mb - 6.2).abs() < 0.4, "{mb}");
    }

    #[test]
    fn four_bit_everywhere() {
        for l in lstm().mac_layers() {
            let p = l.layer.precision().unwrap();
            assert_eq!((p.input.bits(), p.weight.bits()), (4, 4));
        }
    }
}
