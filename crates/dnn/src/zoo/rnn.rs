//! The QNN vanilla RNN language model (Hubara et al.) on Penn TreeBank.
//!
//! Two 2048-unit Elman layers at 4-bit weights and activations, costed per
//! token. Shape-derived MACs: `2 × 2048 × 4096 = 16.8 MOps` per token
//! (Table II: 17), and weights `16.8M params × 4 bits ≈ 8.4 MB`
//! (Table II: 8.0 MB).

use crate::layer::{CellKind, Layer, Recurrent};
use crate::model::Model;
use crate::quantspec::QuantSpec;
use crate::zoo::pp;

/// The topology at reference precision (shapes only).
pub(crate) fn topology() -> Model {
    let p = pp(16, 16);
    let cell = |input| {
        Layer::Recurrent(Recurrent {
            cell: CellKind::Rnn,
            input_size: input,
            hidden_size: 2048,
            precision: p,
        })
    };
    Model::new("RNN", vec![("rnn1", cell(2048)), ("rnn2", cell(2048))])
}

/// The paper's assignment: 4-bit weights and activations throughout.
pub(crate) fn paper_quant() -> QuantSpec {
    QuantSpec::parse("default=4/4").expect("static spec parses")
}

/// The QNN PTB RNN model (Table II: 17 MOps/token, 8.0 MB).
pub fn rnn() -> Model {
    paper_quant()
        .apply(&topology())
        .expect("paper spec matches the topology")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_2() {
        let m = rnn();
        let mops = m.total_macs() as f64 / 1e6;
        assert!((mops - 17.0).abs() < 0.8, "{mops}");
        let mb = m.weight_bytes() as f64 / 1e6;
        assert!((mb - 8.0).abs() < 0.5, "{mb}");
    }
}
