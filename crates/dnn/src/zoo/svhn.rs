//! The QNN SVHN convnet (Hubara et al.): the half-width sibling of the
//! Cifar-10 model.
//!
//! Topology: 2×64C3 – MP2 – 2×128C3 – MP2 – 2×256C3 – MP2 – 1024FC –
//! 1024FC – 10, on 32×32×3 house-number crops. Shape-derived MACs:
//! `1.8 + 37.7 + 18.9 + 37.7 + 18.9 + 37.7 + 4.2 + 1.0 + 0.01 ≈ 158 MOps`
//! (Table II: 158), with weights `≈ 6.4M params × 1 bit ≈ 0.8 MB` — both
//! exact matches.

use crate::model::Model;
use crate::quantspec::QuantSpec;
use crate::zoo::{conv, fc, maxpool, pp};

/// The topology at reference precision (shapes only).
pub(crate) fn topology() -> Model {
    let p = pp(16, 16);
    Model::new(
        "SVHN",
        vec![
            ("conv1", conv(3, 64, 3, 1, 1, (32, 32), 1, p)),
            ("conv2", conv(64, 64, 3, 1, 1, (32, 32), 1, p)),
            ("pool1", maxpool(64, (32, 32), 2, 2)),
            ("conv3", conv(64, 128, 3, 1, 1, (16, 16), 1, p)),
            ("conv4", conv(128, 128, 3, 1, 1, (16, 16), 1, p)),
            ("pool2", maxpool(128, (16, 16), 2, 2)),
            ("conv5", conv(128, 256, 3, 1, 1, (8, 8), 1, p)),
            ("conv6", conv(256, 256, 3, 1, 1, (8, 8), 1, p)),
            ("pool3", maxpool(256, (8, 8), 2, 2)),
            ("fc1", fc(256 * 4 * 4, 1024, p)),
            ("fc2", fc(1024, 1024, p)),
            ("fc3", fc(1024, 10, p)),
        ],
    )
}

/// The paper's assignment: binary interior, 8/8 at the edges — the same
/// shape as the Cifar-10 sibling's.
pub(crate) fn paper_quant() -> QuantSpec {
    QuantSpec::parse("default=1/1,layer:conv1=8/8,layer:fc3=8/8")
        .expect("static spec parses")
}

/// The QNN SVHN model (Table II: 158 MOps, 0.8 MB).
pub fn svhn() -> Model {
    paper_quant()
        .apply(&topology())
        .expect("paper spec matches the topology")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_2() {
        let m = svhn();
        let mops = m.total_macs() as f64 / 1e6;
        assert!((mops - 158.0).abs() < 2.0, "{mops}");
        let mb = m.weight_bytes() as f64 / 1e6;
        assert!((mb - 0.8).abs() < 0.1, "{mb}");
    }
}
