//! VGG-7 with ternary weight networks (Li et al.) on CIFAR-10.
//!
//! Topology: 64C3 – 128C3 – MP2 – 128C3 – 256C3 – MP2 – 256C3 – 512C3 –
//! MP2 – 1024FC – 10 on 32×32×3 inputs. Shape-derived MACs:
//! `1.8 + 75.5 + 37.7 + 75.5 + 37.7 + 75.5 + 8.4 + 0.01 ≈ 312 MOps`
//! (Table II: 317, within 2%), and weights
//! `≈ 10.7M params × 2 bits ≈ 2.7 MB` — an exact match. All layers run at
//! 2bit/2bit (Figure 1: 100%).

use crate::model::Model;
use crate::quantspec::QuantSpec;
use crate::zoo::{conv, fc, maxpool, pp};

/// The topology at reference precision (shapes only).
pub(crate) fn topology() -> Model {
    let p = pp(16, 16);
    Model::new(
        "VGG-7",
        vec![
            ("conv1", conv(3, 64, 3, 1, 1, (32, 32), 1, p)),
            ("conv2", conv(64, 128, 3, 1, 1, (32, 32), 1, p)),
            ("pool1", maxpool(128, (32, 32), 2, 2)),
            ("conv3", conv(128, 128, 3, 1, 1, (16, 16), 1, p)),
            ("conv4", conv(128, 256, 3, 1, 1, (16, 16), 1, p)),
            ("pool2", maxpool(256, (16, 16), 2, 2)),
            ("conv5", conv(256, 256, 3, 1, 1, (8, 8), 1, p)),
            ("conv6", conv(256, 512, 3, 1, 1, (8, 8), 1, p)),
            ("pool3", maxpool(512, (8, 8), 2, 2)),
            ("fc1", fc(512 * 4 * 4, 1024, p)),
            ("fc2", fc(1024, 10, p)),
        ],
    )
}

/// The paper's assignment: ternary (2/2) everywhere.
pub(crate) fn paper_quant() -> QuantSpec {
    QuantSpec::parse("default=2/2").expect("static spec parses")
}

/// The ternary VGG-7 model (Table II: 317 MOps, 2.7 MB).
pub fn vgg7() -> Model {
    paper_quant()
        .apply(&topology())
        .expect("paper spec matches the topology")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_2() {
        let m = vgg7();
        let mops = m.total_macs() as f64 / 1e6;
        assert!((mops - 317.0).abs() < 10.0, "{mops}");
        let mb = m.weight_bytes() as f64 / 1e6;
        assert!((mb - 2.7).abs() < 0.1, "{mb}");
    }

    #[test]
    fn fully_ternary() {
        for l in vgg7().mac_layers() {
            let p = l.layer.precision().unwrap();
            assert_eq!((p.input.bits(), p.weight.bits()), (2, 2), "{}", l.name);
        }
    }
}
