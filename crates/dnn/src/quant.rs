//! Bit-level packing of quantized tensors.
//!
//! Bit Fusion "stores and retrieves the values in the lowest required
//! bitwidth" (§I); this module implements that packed layout so examples and
//! tests can materialize tensors exactly as the memory system would hold
//! them, and so storage footprints are computed from first principles.

use bitfusion_core::bitwidth::Precision;
use bitfusion_core::error::CoreError;
use bitfusion_core::util::SplitMix64;

/// A densely bit-packed vector of quantized values.
///
/// # Examples
///
/// ```
/// use bitfusion_core::bitwidth::{BitWidth, Precision};
/// use bitfusion_dnn::quant::PackedTensor;
///
/// let p = Precision::signed(BitWidth::B2);
/// let t = PackedTensor::from_values(&[-2, -1, 0, 1], p).unwrap();
/// assert_eq!(t.storage_bytes(), 1); // four 2-bit values in one byte
/// assert_eq!(t.to_values(), vec![-2, -1, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedTensor {
    precision: Precision,
    len: usize,
    words: Vec<u64>,
}

impl PackedTensor {
    /// Packs `values` at the given precision.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ValueOutOfRange`] when a value does not fit.
    pub fn from_values(values: &[i32], precision: Precision) -> Result<Self, CoreError> {
        let bits = precision.bits() as usize;
        let mut words = vec![0u64; (values.len() * bits).div_ceil(64)];
        for (i, &v) in values.iter().enumerate() {
            precision.check(v)?;
            let raw = (v as u32 as u64) & ((1u64 << bits) - 1);
            let bit_pos = i * bits;
            let word = bit_pos / 64;
            let offset = bit_pos % 64;
            words[word] |= raw << offset;
            // A value never straddles words: all supported widths divide 64.
        }
        Ok(PackedTensor {
            precision,
            len: values.len(),
            words,
        })
    }

    /// Generates a packed tensor of `len` uniform random in-range values from
    /// a seeded generator (the synthetic stand-in for trained weights; see
    /// DESIGN.md's substitution table).
    pub fn random(len: usize, precision: Precision, rng: &mut SplitMix64) -> Self {
        let values: Vec<i32> = (0..len)
            .map(|_| rng.range_i32(precision.min_value(), precision.max_value()))
            .collect();
        PackedTensor::from_values(&values, precision).expect("generated values are in range")
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packing precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Element at `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len`.
    pub fn get(&self, index: usize) -> i32 {
        assert!(index < self.len, "index out of bounds");
        let bits = self.precision.bits() as usize;
        let bit_pos = index * bits;
        let raw = (self.words[bit_pos / 64] >> (bit_pos % 64)) & ((1u64 << bits) - 1);
        // Sign-extend if needed.
        if self.precision.signedness.is_signed() && bits < 32 {
            let sign_bit = 1u64 << (bits - 1);
            if raw & sign_bit != 0 {
                return (raw as i64 - (1i64 << bits)) as i32;
            }
        }
        raw as i32
    }

    /// Unpacks to a value vector.
    pub fn to_values(&self) -> Vec<i32> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Exact storage footprint in bits.
    pub fn storage_bits(&self) -> u64 {
        self.len as u64 * self.precision.bits() as u64
    }

    /// Storage footprint in bytes (rounded up).
    pub fn storage_bytes(&self) -> u64 {
        self.storage_bits().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_core::bitwidth::BitWidth;

    #[test]
    fn round_trip_every_precision() {
        let mut rng = SplitMix64::new(77);
        for w in BitWidth::ALL {
            for p in [Precision::signed(w), Precision::unsigned(w)] {
                let values: Vec<i32> = (0..257)
                    .map(|_| rng.range_i32(p.min_value(), p.max_value()))
                    .collect();
                let t = PackedTensor::from_values(&values, p).unwrap();
                assert_eq!(t.to_values(), values, "{p}");
            }
        }
    }

    #[test]
    fn packing_density() {
        let p = Precision::unsigned(BitWidth::B1);
        let t = PackedTensor::from_values(&vec![1; 64], p).unwrap();
        assert_eq!(t.storage_bytes(), 8);
        let p = Precision::signed(BitWidth::B16);
        let t = PackedTensor::from_values(&vec![-1; 64], p).unwrap();
        assert_eq!(t.storage_bytes(), 128);
    }

    #[test]
    fn rejects_out_of_range() {
        let p = Precision::signed(BitWidth::B2);
        assert!(PackedTensor::from_values(&[2], p).is_err());
    }

    #[test]
    fn random_respects_range() {
        let mut rng = SplitMix64::new(3);
        let p = Precision::signed(BitWidth::B4);
        let t = PackedTensor::random(1000, p, &mut rng);
        for v in t.to_values() {
            assert!(p.contains(v));
        }
        assert_eq!(t.len(), 1000);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_out_of_bounds_panics() {
        let p = Precision::unsigned(BitWidth::B8);
        let t = PackedTensor::from_values(&[1, 2], p).unwrap();
        t.get(2);
    }
}
