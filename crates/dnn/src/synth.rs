//! Synthetic workload generation: seeded random quantized convnets and
//! MLPs for robustness testing and design-space studies beyond the eight
//! paper benchmarks.
//!
//! Generated models are always *well-formed* (shapes chain, precisions are
//! supported) but deliberately irregular — odd channel counts, non-dividing
//! feature maps, mixed precisions — to exercise the compiler's tiling and
//! the simulator away from the zoo's friendly power-of-two shapes.

use bitfusion_core::bitwidth::PairPrecision;
use bitfusion_core::util::SplitMix64;

use crate::layer::{Conv2d, Dense, Layer, Pool2d};
use crate::model::Model;
use bitfusion_core::postproc::PoolOp;

/// Parameters of the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthConfig {
    /// Convolution stages to emit (each: conv [+ pool]).
    pub conv_stages: usize,
    /// Dense layers after the conv stack.
    pub dense_layers: usize,
    /// Input image side (height = width).
    pub input_hw: usize,
    /// Input channels.
    pub input_channels: usize,
    /// Maximum output channels per conv.
    pub max_channels: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            conv_stages: 3,
            dense_layers: 2,
            input_hw: 24,
            input_channels: 3,
            max_channels: 96,
        }
    }
}

const WIDTH_CHOICES: [(u32, u32); 6] = [(1, 1), (2, 2), (4, 1), (4, 4), (8, 2), (8, 8)];

/// Generates a random well-formed quantized model from a seed.
///
/// The same `(config, seed)` pair always produces the same model.
pub fn synthesize(config: SynthConfig, seed: u64) -> Model {
    let mut rng = SplitMix64::new(seed);
    let mut layers: Vec<(String, Layer)> = Vec::new();
    let mut hw = config.input_hw;
    let mut channels = config.input_channels;
    for stage in 0..config.conv_stages {
        let out_c = 4 + rng.below(config.max_channels.max(5) as u64 - 4) as usize;
        let k = [1usize, 3, 5][rng.below(3) as usize].min(hw);
        let pad = k / 2;
        let (i_bits, w_bits) = WIDTH_CHOICES[rng.below(WIDTH_CHOICES.len() as u64) as usize];
        layers.push((
            format!("conv{stage}"),
            Layer::Conv2d(Conv2d {
                in_channels: channels,
                out_channels: out_c,
                kernel: (k, k),
                stride: (1, 1),
                padding: (pad, pad),
                input_hw: (hw, hw),
                groups: 1,
                precision: PairPrecision::from_bits(i_bits, w_bits)
                    .expect("generator uses supported widths"),
            }),
        ));
        channels = out_c;
        // Optionally pool, keeping the map at least 4 pixels wide.
        if hw >= 8 && rng.below(2) == 1 {
            layers.push((
                format!("pool{stage}"),
                Layer::Pool2d(Pool2d {
                    channels,
                    input_hw: (hw, hw),
                    window: (2, 2),
                    stride: (2, 2),
                    padding: (0, 0),
                    op: PoolOp::Max,
                }),
            ));
            hw /= 2;
        }
    }
    let mut features = channels * hw * hw;
    for d in 0..config.dense_layers {
        let out_f = if d + 1 == config.dense_layers {
            10
        } else {
            8 + rng.below(120) as usize
        };
        let (i_bits, w_bits) = WIDTH_CHOICES[rng.below(WIDTH_CHOICES.len() as u64) as usize];
        layers.push((
            format!("fc{d}"),
            Layer::Dense(Dense {
                in_features: features,
                out_features: out_f,
                precision: PairPrecision::from_bits(i_bits, w_bits)
                    .expect("generator uses supported widths"),
            }),
        ));
        features = out_f;
    }
    Model::new(
        format!("synth-{seed:x}"),
        layers.iter().map(|(n, l)| (n.as_str(), l.clone())).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = SynthConfig::default();
        assert_eq!(synthesize(cfg, 42), synthesize(cfg, 42));
        assert_ne!(synthesize(cfg, 42), synthesize(cfg, 43));
    }

    #[test]
    fn always_well_formed() {
        let cfg = SynthConfig::default();
        for seed in 0..200 {
            let m = synthesize(cfg, seed);
            assert!(m.total_macs() > 0, "seed {seed}");
            assert!(
                m.shape_chain_mismatches().is_empty(),
                "seed {seed}: {:?}",
                m.shape_chain_mismatches()
            );
            for l in m.mac_layers() {
                assert!(l.layer.precision().is_some());
            }
        }
    }

    #[test]
    fn respects_config_knobs() {
        let cfg = SynthConfig {
            conv_stages: 5,
            dense_layers: 3,
            input_hw: 32,
            input_channels: 1,
            max_channels: 32,
        };
        let m = synthesize(cfg, 7);
        let convs = m
            .layers
            .iter()
            .filter(|l| matches!(l.layer, Layer::Conv2d(_)))
            .count();
        let fcs = m
            .layers
            .iter()
            .filter(|l| matches!(l.layer, Layer::Dense(_)))
            .count();
        assert_eq!(convs, 5);
        assert_eq!(fcs, 3);
    }
}
