//! Quantization specifications: precision as a first-class, composable
//! axis.
//!
//! Bit Fusion's headline result is that *per-layer* bitwidth selection
//! beats any fixed datapath, so the per-layer (input, weight) assignment
//! must be something callers can vary, not a constant baked into the zoo.
//! A [`QuantSpec`] describes one assignment policy as a small set of
//! override rules applied on top of a network's paper (Table II)
//! assignment:
//!
//! * **default** — replace every multiplying layer's pair;
//! * **kind overrides** — replace the pair for one layer kind
//!   (`conv`, `dwconv`, `fc`, `lstm`, `rnn`);
//! * **layer overrides** — replace the pair for one named layer.
//!
//! Precedence is specificity, not order: layer > kind > default > the
//! paper assignment. Named presets cover the interesting corners:
//! `paper` (no overrides — the Table II heterogeneous assignment),
//! `uniform8` / `uniform16` (what a fixed 8- or 16-bit datapath would
//! force), and `uniformN` generally.
//!
//! Specs have a canonical compact spelling — `paper`, `uniform8`, or a
//! clause list like `default=4/1,conv=2/2,layer:fc8=8/8` — and
//! [`QuantSpec::parse`] ∘ [`Display`](std::fmt::Display) is a fixed
//! point, which is what lets the service protocol carry specs as plain
//! strings. Signedness follows the paper's convention via
//! [`PairPrecision::from_bits`] (unsigned activations, signed weights,
//! binary weights unsigned).

use std::fmt;

use bitfusion_core::bitwidth::PairPrecision;

use crate::model::Model;

/// Layer kinds a [`QuantSpec`] can override (the multiplying kinds of
/// [`crate::layer::Layer::kind`]).
pub const QUANT_KINDS: [&str; 5] = ["conv", "dwconv", "fc", "lstm", "rnn"];

/// A per-layer precision assignment policy. See the module docs for the
/// override semantics and the compact spelling.
///
/// # Examples
///
/// ```
/// use bitfusion_dnn::quantspec::QuantSpec;
/// use bitfusion_dnn::zoo::Benchmark;
///
/// let spec = QuantSpec::parse("uniform8").unwrap();
/// let m = spec.apply(&Benchmark::Lstm.model()).unwrap();
/// for l in m.mac_layers() {
///     assert_eq!(l.layer.precision().unwrap().compact(), "8/8");
/// }
/// assert_eq!(spec.to_string(), "uniform8");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct QuantSpec {
    /// Pair applied to every multiplying layer (`None` = keep the paper
    /// assignment). Signedness beyond the widths is not part of a spec:
    /// application canonicalizes every override through
    /// [`PairPrecision::from_bits`] (see [`QuantSpec::pair_for`]), which
    /// is all the compact/JSON spellings can express.
    pub default: Option<PairPrecision>,
    /// Overrides by layer kind (`conv`, `dwconv`, `fc`, `lstm`, `rnn`),
    /// in spec order; within the list, a later entry for the same kind
    /// wins.
    pub kinds: Vec<(String, PairPrecision)>,
    /// Overrides by exact layer name, highest precedence; a later entry
    /// for the same name wins.
    pub layers: Vec<(String, PairPrecision)>,
}

impl QuantSpec {
    /// The identity spec: every network keeps its paper (Table II)
    /// per-layer assignment.
    pub fn paper() -> Self {
        QuantSpec::default()
    }

    /// The uniform spec forcing every multiplying layer to `bits`/`bits`.
    ///
    /// # Errors
    ///
    /// Rejects unsupported bit counts.
    pub fn uniform(bits: u32) -> Result<Self, String> {
        Ok(QuantSpec {
            default: Some(
                PairPrecision::from_bits(bits, bits).map_err(|e| e.to_string())?,
            ),
            ..QuantSpec::default()
        })
    }

    /// Whether the spec is the identity (the `paper` preset).
    pub fn is_paper(&self) -> bool {
        self.default.is_none() && self.kinds.is_empty() && self.layers.is_empty()
    }

    /// Parses the compact spelling: `paper`, `uniformN`, or a comma list
    /// of clauses (`default=4/1`, `conv=2/2`, `layer:fc8=8/8`).
    ///
    /// # Errors
    ///
    /// Names the offending clause, kind, or precision.
    pub fn parse(text: &str) -> Result<Self, String> {
        let text = text.trim();
        if text.is_empty() {
            return Err("empty quantization spec".to_string());
        }
        if text == "paper" {
            return Ok(QuantSpec::paper());
        }
        if let Some(bits) = text.strip_prefix("uniform") {
            if let Ok(bits) = bits.parse::<u32>() {
                return QuantSpec::uniform(bits)
                    .map_err(|_| format!("unsupported uniform width `{text}` (1|2|4|8|16)"));
            }
        }
        let mut spec = QuantSpec::default();
        for clause in text.split(',') {
            let clause = clause.trim();
            let Some((key, value)) = clause.split_once('=') else {
                return Err(format!(
                    "bad quant clause `{clause}` (expected `default=I/W`, `<kind>=I/W`, \
                     or `layer:<name>=I/W`)"
                ));
            };
            let precision: PairPrecision = value
                .parse()
                .map_err(|_| format!("bad precision `{value}` in `{clause}` (e.g. `4/1`)"))?;
            let key = key.trim();
            if key == "default" {
                spec.default = Some(precision);
            } else if let Some(layer) = key.strip_prefix("layer:") {
                if layer.is_empty() {
                    return Err(format!("empty layer name in `{clause}`"));
                }
                spec.layers.push((layer.to_string(), precision));
            } else if QUANT_KINDS.contains(&key) {
                spec.kinds.push((key.to_string(), precision));
            } else {
                return Err(format!(
                    "unknown quant target `{key}` in `{clause}` (default, {}, or layer:<name>)",
                    QUANT_KINDS.join(", ")
                ));
            }
        }
        Ok(spec)
    }

    /// The precision the spec assigns to a layer, given its name, kind
    /// tag, and paper assignment.
    ///
    /// Override pairs are canonicalized through
    /// [`PairPrecision::from_bits`]'s signedness convention, the only one
    /// the compact and JSON spellings can express — so a spec built
    /// through the public fields with an off-convention signedness
    /// applies exactly what its `Display` form says (the paper
    /// assignment, when no rule matches, is passed through untouched).
    pub fn pair_for(&self, name: &str, kind: &str, paper: PairPrecision) -> PairPrecision {
        let canonical = |p: &PairPrecision| {
            PairPrecision::from_bits(p.input.bits(), p.weight.bits())
                .expect("stored widths are supported")
        };
        if let Some((_, p)) = self.layers.iter().rev().find(|(n, _)| n == name) {
            return canonical(p);
        }
        if let Some((_, p)) = self.kinds.iter().rev().find(|(k, _)| k == kind) {
            return canonical(p);
        }
        self.default.as_ref().map_or(paper, canonical)
    }

    /// Applies the spec to a model, rewriting every multiplying layer's
    /// precision. The model's name and shapes are untouched; pooling,
    /// eltwise, and activation layers are precision-free and skipped.
    ///
    /// # Errors
    ///
    /// Rejects layer overrides that match no multiplying layer of the
    /// model (a typo'd name must not silently no-op). Kind overrides are
    /// allowed to match nothing, so one spec can span a heterogeneous
    /// network list (e.g. `fc=8/8` over the whole zoo).
    pub fn apply(&self, model: &Model) -> Result<Model, String> {
        for (name, _) in &self.layers {
            let hit = model
                .layers
                .iter()
                .any(|l| &l.name == name && l.layer.precision().is_some());
            if !hit {
                return Err(format!(
                    "quant spec names layer `{name}`, which is not a multiplying layer of {}",
                    model.name
                ));
            }
        }
        let mut out = model.clone();
        for l in &mut out.layers {
            if let Some(paper) = l.layer.precision() {
                l.layer
                    .set_precision(self.pair_for(&l.name, l.layer.kind(), paper));
            }
        }
        Ok(out)
    }
}

impl fmt::Display for QuantSpec {
    /// The canonical compact spelling; [`QuantSpec::parse`] of the output
    /// reproduces the spec exactly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_paper() {
            return write!(f, "paper");
        }
        if self.kinds.is_empty() && self.layers.is_empty() {
            if let Some(p) = self.default {
                if let Ok(uniform) = PairPrecision::from_bits(p.input.bits(), p.input.bits()) {
                    if p == uniform {
                        return write!(f, "uniform{}", p.input.bits());
                    }
                }
            }
        }
        let mut clauses: Vec<String> = Vec::new();
        if let Some(p) = self.default {
            clauses.push(format!("default={}", p.compact()));
        }
        for (kind, p) in &self.kinds {
            clauses.push(format!("{kind}={}", p.compact()));
        }
        for (layer, p) in &self.layers {
            clauses.push(format!("layer:{layer}={}", p.compact()));
        }
        write!(f, "{}", clauses.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::Benchmark;

    #[test]
    fn presets_parse() {
        assert!(QuantSpec::parse("paper").unwrap().is_paper());
        let u8spec = QuantSpec::parse("uniform8").unwrap();
        assert_eq!(u8spec.default, Some(PairPrecision::from_bits(8, 8).unwrap()));
        assert!(u8spec.kinds.is_empty() && u8spec.layers.is_empty());
        for bits in [1u32, 2, 4, 16] {
            assert!(QuantSpec::parse(&format!("uniform{bits}")).is_ok());
        }
        assert!(QuantSpec::parse("uniform3").is_err());
        assert!(QuantSpec::parse("").is_err());
    }

    #[test]
    fn clause_lists_parse_and_display_canonically() {
        let spec = QuantSpec::parse("default=4/1, conv=2/2 ,layer:fc8=8/8").unwrap();
        assert_eq!(spec.default, Some(PairPrecision::from_bits(4, 1).unwrap()));
        assert_eq!(spec.kinds.len(), 1);
        assert_eq!(spec.layers.len(), 1);
        assert_eq!(spec.to_string(), "default=4/1,conv=2/2,layer:fc8=8/8");
    }

    #[test]
    fn parse_display_is_a_fixed_point() {
        for text in [
            "paper",
            "uniform1",
            "uniform8",
            "uniform16",
            "default=4/1",
            "conv=2/2,fc=8/8",
            "default=8/8,lstm=4/4,rnn=4/4,layer:conv1=16/16",
            "layer:fc8=8/8,layer:fc8=4/4",
        ] {
            let spec = QuantSpec::parse(text).unwrap();
            let shown = spec.to_string();
            assert_eq!(QuantSpec::parse(&shown).unwrap(), spec, "{text}");
            assert_eq!(QuantSpec::parse(&shown).unwrap().to_string(), shown);
        }
        // A lone non-uniform default canonicalizes to itself, not a preset.
        assert_eq!(QuantSpec::parse("default=4/1").unwrap().to_string(), "default=4/1");
        // A uniform default written longhand canonicalizes to the preset.
        assert_eq!(QuantSpec::parse("default=8/8").unwrap().to_string(), "uniform8");
    }

    #[test]
    fn errors_name_the_clause() {
        for (text, needle) in [
            ("bogus=4/4", "bogus"),
            ("default", "default"),
            ("default=3/3", "3/3"),
            ("layer:=4/4", "layer name"),
            ("pool=4/4", "pool"),
        ] {
            let e = QuantSpec::parse(text).unwrap_err();
            assert!(e.contains(needle), "{text}: {e}");
        }
    }

    #[test]
    fn precedence_is_layer_kind_default_paper() {
        let spec = QuantSpec::parse("default=8/8,fc=4/4,layer:fc2=2/2").unwrap();
        let pp = |i, w| PairPrecision::from_bits(i, w).unwrap();
        assert_eq!(spec.pair_for("conv1", "conv", pp(1, 1)), pp(8, 8));
        assert_eq!(spec.pair_for("fc1", "fc", pp(1, 1)), pp(4, 4));
        assert_eq!(spec.pair_for("fc2", "fc", pp(1, 1)), pp(2, 2));
        // No default: the paper assignment survives.
        let kinds_only = QuantSpec::parse("fc=4/4").unwrap();
        assert_eq!(kinds_only.pair_for("conv1", "conv", pp(1, 1)), pp(1, 1));
        // Later entries of equal specificity win.
        let dup = QuantSpec::parse("layer:fc2=2/2,layer:fc2=8/8").unwrap();
        assert_eq!(dup.pair_for("fc2", "fc", pp(1, 1)), pp(8, 8));
    }

    #[test]
    fn off_convention_signedness_is_canonicalized_on_apply() {
        use bitfusion_core::bitwidth::{BitWidth, Precision};
        // A spec built through the public fields with a signedness the
        // spellings cannot express must apply what its Display says.
        let odd = QuantSpec {
            default: Some(PairPrecision::new(
                Precision::signed(BitWidth::B8),
                Precision::signed(BitWidth::B8),
            )),
            ..QuantSpec::default()
        };
        // The spelling only carries widths ("8/8"), and application
        // canonicalizes to the same from_bits pair the spelling denotes.
        assert_eq!(odd.to_string(), "default=8/8");
        let applied = odd.apply(&Benchmark::Lstm.model()).unwrap();
        let expected = QuantSpec::parse(&odd.to_string())
            .unwrap()
            .apply(&Benchmark::Lstm.model())
            .unwrap();
        assert_eq!(applied, expected, "Display and apply must agree");
        assert_eq!(
            applied,
            QuantSpec::parse("uniform8")
                .unwrap()
                .apply(&Benchmark::Lstm.model())
                .unwrap()
        );
    }

    #[test]
    fn apply_rewrites_only_mac_layers() {
        let model = Benchmark::Cifar10.model();
        let spec = QuantSpec::parse("uniform8").unwrap();
        let out = spec.apply(&model).unwrap();
        assert_eq!(out.name, model.name);
        assert_eq!(out.len(), model.len());
        for (a, b) in model.layers.iter().zip(&out.layers) {
            assert_eq!(a.name, b.name);
            match b.layer.precision() {
                Some(p) => assert_eq!(p.compact(), "8/8", "{}", b.name),
                None => assert_eq!(a.layer, b.layer, "non-MAC layer untouched"),
            }
        }
        // Same shapes, different storage: 8-bit weights octuple binary.
        assert_eq!(out.total_macs(), model.total_macs());
        assert!(out.weight_bytes() > model.weight_bytes());
    }

    #[test]
    fn paper_spec_is_identity() {
        for b in Benchmark::ALL {
            let m = b.model();
            assert_eq!(QuantSpec::paper().apply(&m).unwrap(), m, "{b}");
        }
    }

    #[test]
    fn unknown_layer_override_is_an_error() {
        let model = Benchmark::Lstm.model();
        let e = QuantSpec::parse("layer:conv7=4/4")
            .unwrap()
            .apply(&model)
            .unwrap_err();
        assert!(e.contains("conv7") && e.contains("LSTM"), "{e}");
        // Kind overrides may match nothing (specs span network lists).
        assert!(QuantSpec::parse("conv=4/4").unwrap().apply(&model).is_ok());
    }
}
