//! # bitfusion-dnn
//!
//! Quantized DNN model IR and the eight-benchmark zoo of the Bit Fusion
//! paper (Table II and Figure 1 of Sharma et al., ISCA 2018).
//!
//! * [`layer`] — layer descriptions (conv/fc/pool/recurrent/eltwise) with
//!   shapes and per-layer (input, weight) bitwidths;
//! * [`model`] — whole networks with Table II statistics (MAC counts,
//!   packed weight sizes);
//! * [`zoo`] — the eight benchmarks (AlexNet, Cifar-10, LSTM, LeNet-5,
//!   ResNet-18, RNN, SVHN, VGG-7) reconstructed from the quantization
//!   literature the paper cites, each module documenting how its shapes
//!   reproduce the reported op counts;
//! * [`stats`] — the Figure 1 bitwidth histograms;
//! * [`quant`] — bit-packed tensor storage at minimal bitwidths;
//! * [`quantspec`] — [`QuantSpec`] precision-assignment policies (paper
//!   Table II, `uniformN`, per-kind/per-layer overrides) that rewrite a
//!   network's per-layer bitwidths.
//!
//! ## Example
//!
//! ```
//! use bitfusion_dnn::zoo::Benchmark;
//! use bitfusion_dnn::stats::BitwidthStats;
//!
//! let model = Benchmark::Cifar10.model();
//! let stats = BitwidthStats::of(&model);
//! // Figure 1: Cifar-10 is ~99% binary multiply-adds.
//! assert!(stats.share_at_or_below(1) > 0.98);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod layer;
pub mod model;
pub mod quant;
pub mod quantspec;
pub mod stats;
pub mod synth;
pub mod zoo;

pub use layer::{ActivationLayer, CellKind, Conv2d, Dense, Eltwise, Layer, Pool2d, Recurrent};
pub use model::{Model, NamedLayer};
pub use quant::PackedTensor;
pub use quantspec::QuantSpec;
pub use stats::BitwidthStats;
pub use synth::{synthesize, SynthConfig};
pub use zoo::Benchmark;
