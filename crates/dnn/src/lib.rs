//! # bitfusion-dnn
//!
//! Quantized DNN model IR and the eight-benchmark zoo of the Bit Fusion
//! paper (Table II and Figure 1 of Sharma et al., ISCA 2018).
//!
//! * [`layer`] — layer descriptions (conv/fc/pool/recurrent/eltwise) with
//!   shapes and per-layer (input, weight) bitwidths;
//! * [`model`] — whole networks with Table II statistics (MAC counts,
//!   packed weight sizes);
//! * [`zoo`] — the eight benchmarks (AlexNet, Cifar-10, LSTM, LeNet-5,
//!   ResNet-18, RNN, SVHN, VGG-7) reconstructed from the quantization
//!   literature the paper cites, each module documenting how its shapes
//!   reproduce the reported op counts;
//! * [`schema`] — the `bitfusion-model/1` external model format: a
//!   strict, deterministic JSON schema with an exporter, so models are
//!   data (`--model model.json`) rather than code;
//! * [`modern`] — workloads beyond the paper's zoo (a transformer
//!   attention block, a depthwise-separable network), shipped as example
//!   model files;
//! * [`stats`] — the Figure 1 bitwidth histograms;
//! * [`quant`] — bit-packed tensor storage at minimal bitwidths;
//! * [`quantspec`] — [`QuantSpec`] precision-assignment policies (paper
//!   Table II, `uniformN`, per-kind/per-layer overrides) that rewrite a
//!   network's per-layer bitwidths.
//!
//! ## Example
//!
//! ```
//! use bitfusion_dnn::zoo::Benchmark;
//! use bitfusion_dnn::stats::BitwidthStats;
//!
//! let model = Benchmark::Cifar10.model();
//! let stats = BitwidthStats::of(&model);
//! // Figure 1: Cifar-10 is ~99% binary multiply-adds.
//! assert!(stats.share_at_or_below(1) > 0.98);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod layer;
pub mod model;
pub mod modern;
pub mod quant;
pub mod quantspec;
pub mod schema;
pub mod stats;
pub mod synth;
pub mod zoo;

pub use layer::{
    ActivationLayer, CellKind, Conv2d, Dense, DepthwiseConv2d, Eltwise, Layer, Pool2d, Recurrent,
};
pub use model::{Model, NamedLayer};
pub use quant::PackedTensor;
pub use quantspec::QuantSpec;
pub use schema::{export_model, model_from_json, parse_model, MODEL_FORMAT};
pub use stats::BitwidthStats;
pub use synth::{synthesize, SynthConfig};
pub use zoo::Benchmark;
