//! Modern workloads beyond the paper's zoo, built for the external model
//! format: a transformer attention block and a depthwise-separable
//! convolution network.
//!
//! Bit Fusion (ISCA 2018) predates both workload families, but its
//! substrate handles them naturally: attention is pure batched GEMM
//! (QKV projections plus score/value matmuls — exactly the
//! [`Dense`](crate::layer::Dense) lowering), and depthwise-separable
//! convolution splits into a [`DepthwiseConv2d`]
//! stage (per-channel filters, tiny `R·S` reductions) followed by an
//! ordinary pointwise 1×1 convolution. Both ship as example model files
//! under `examples/models/` — exports of [`attention_block_example`] and
//! [`depthwise_net_example`] — and are cross-validated analytic-vs-event
//! like the zoo.

use bitfusion_core::bitwidth::PairPrecision;
use bitfusion_core::postproc::PoolOp;

use crate::layer::{ActivationLayer, DepthwiseConv2d, Eltwise, Layer, Pool2d};
use crate::model::Model;
use crate::zoo::{conv, fc, pp};

/// One transformer self-attention block, costed **per token** (the
/// CLI/protocol `batch` axis is the token axis, the same way recurrent
/// benchmarks batch timesteps).
///
/// For model dimension `D`, context length `L`, and `H` heads
/// (`D % H == 0`), the per-token layer list is:
///
/// * `q_proj`/`k_proj`/`v_proj` — `D → D` projections (`D²` MACs each);
/// * `scores` — the query against `L` cached keys: `H` heads of
///   `(D/H)·L` MACs sum to `D·L`, head count cancels — one `D → L` GEMM;
/// * `softmax` — `L` activation ops;
/// * `attend` — probability-weighted sum over `L` cached values, again
///   `L·D` MACs across heads — one `L → D` GEMM;
/// * `out_proj` — `D → D`;
/// * `residual` — the skip connection's `D` adds.
///
/// Total: `4·D² + 2·D·L` MACs per token, the standard attention cost.
/// The layer list chains shape-consistently end to end.
///
/// # Panics
///
/// If `heads` does not divide `d_model`, or a dimension is zero.
pub fn attention_block(
    d_model: usize,
    context: usize,
    heads: usize,
    precision: PairPrecision,
) -> Model {
    assert!(d_model > 0 && context > 0 && heads > 0, "zero dimension");
    assert_eq!(
        d_model % heads,
        0,
        "heads ({heads}) must divide d_model ({d_model})"
    );
    Model::new(
        "attention-block",
        vec![
            ("q_proj", fc(d_model, d_model, precision)),
            ("k_proj", fc(d_model, d_model, precision)),
            ("v_proj", fc(d_model, d_model, precision)),
            ("scores", fc(d_model, context, precision)),
            (
                "softmax",
                Layer::Activation(ActivationLayer { elements: context }),
            ),
            ("attend", fc(context, d_model, precision)),
            ("out_proj", fc(d_model, d_model, precision)),
            (
                "residual",
                Layer::Eltwise(Eltwise {
                    elements: d_model,
                    is_add: true,
                }),
            ),
        ],
    )
}

/// The attention block shipped as `examples/models/attention-block.json`:
/// `D = 512`, `L = 128`, `8` heads, 8-bit operands throughout.
pub fn attention_block_example() -> Model {
    attention_block(512, 128, 8, pp(8, 8))
}

/// Depthwise 3×3 helper (padding 1, the MobileNet convention).
fn dw(channels: usize, stride: usize, input_hw: usize, precision: PairPrecision) -> Layer {
    Layer::DepthwiseConv2d(DepthwiseConv2d {
        channels,
        kernel: (3, 3),
        stride: (stride, stride),
        padding: (1, 1),
        input_hw: (input_hw, input_hw),
        precision,
    })
}

/// A MobileNet-style depthwise-separable convolution network: a strided
/// stem convolution, four depthwise + pointwise pairs, global average
/// pooling, and a classifier — every spatial filter a
/// [`DepthwiseConv2d`], every channel mix
/// a 1×1 convolution. The layer list chains shape-consistently end to
/// end.
pub fn depthwise_net(precision: PairPrecision) -> Model {
    // Pointwise 1×1 helper.
    let pw = |cin: usize, cout: usize, hw: usize| conv(cin, cout, 1, 1, 0, (hw, hw), 1, precision);
    Model::new(
        "depthwise-net",
        vec![
            ("stem", conv(3, 32, 3, 2, 1, (224, 224), 1, precision)),
            ("dw1", dw(32, 1, 112, precision)),
            ("pw1", pw(32, 64, 112)),
            ("dw2", dw(64, 2, 112, precision)),
            ("pw2", pw(64, 128, 56)),
            ("dw3", dw(128, 1, 56, precision)),
            ("pw3", pw(128, 128, 56)),
            ("dw4", dw(128, 2, 56, precision)),
            ("pw4", pw(128, 256, 28)),
            (
                "avgpool",
                Layer::Pool2d(Pool2d {
                    channels: 256,
                    input_hw: (28, 28),
                    window: (28, 28),
                    stride: (28, 28),
                    padding: (0, 0),
                    op: PoolOp::Average,
                }),
            ),
            ("fc", fc(256, 1000, precision)),
        ],
    )
}

/// The depthwise network shipped as `examples/models/depthwise-net.json`:
/// 8-bit activations, 4-bit weights.
pub fn depthwise_net_example() -> Model {
    depthwise_net(pp(8, 4))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_macs_follow_the_closed_form() {
        let (d, l) = (512u64, 128u64);
        let m = attention_block(512, 128, 8, pp(8, 8));
        assert_eq!(m.total_macs(), 4 * d * d + 2 * d * l);
        // Head count cancels out of the cost.
        assert_eq!(
            attention_block(512, 128, 1, pp(8, 8)).total_macs(),
            m.total_macs()
        );
        assert!(m.mac_fraction() > 0.99);
    }

    #[test]
    fn attention_chains_shape_consistently() {
        let m = attention_block_example();
        assert!(m.shape_chain_mismatches().is_empty(), "{m}");
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn attention_rejects_non_dividing_heads() {
        attention_block(512, 128, 7, pp(8, 8));
    }

    #[test]
    fn depthwise_net_chains_shape_consistently() {
        let m = depthwise_net_example();
        assert!(m.shape_chain_mismatches().is_empty(), "{m}");
        // Depthwise stages carry a tiny fraction of the MACs (the whole
        // point of the factorization): every dw layer is cheaper than the
        // pointwise layer that follows it.
        let macs: Vec<(String, u64)> = m
            .layers
            .iter()
            .map(|l| (l.name.clone(), l.layer.macs()))
            .collect();
        for pair in 1..=4 {
            let dw = macs
                .iter()
                .find(|(n, _)| n == &format!("dw{pair}"))
                .unwrap()
                .1;
            let pw = macs
                .iter()
                .find(|(n, _)| n == &format!("pw{pair}"))
                .unwrap()
                .1;
            assert!(dw < pw / 2, "dw{pair} {dw} vs pw{pair} {pw}");
        }
    }
}
