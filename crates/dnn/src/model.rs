//! Whole-network models and their aggregate statistics (Table II).

use std::fmt;

use crate::layer::Layer;

/// A named layer within a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedLayer {
    /// Layer name (e.g. `conv1`, `fc6`).
    pub name: String,
    /// The layer.
    pub layer: Layer,
}

/// A quantized DNN model: an ordered list of layers.
///
/// # Examples
///
/// ```
/// use bitfusion_dnn::zoo;
///
/// let m = zoo::alexnet();
/// // Table II: AlexNet (2x-wide WRPN) performs ~2,678M multiply-adds.
/// assert!((m.total_macs() as f64 - 2678e6).abs() / 2678e6 < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    /// Model name.
    pub name: String,
    /// Layers in execution order.
    pub layers: Vec<NamedLayer>,
}

impl Model {
    /// Creates a model from `(name, layer)` pairs.
    pub fn new(name: impl Into<String>, layers: Vec<(&str, Layer)>) -> Self {
        Model {
            name: name.into(),
            layers: layers
                .into_iter()
                .map(|(n, layer)| NamedLayer {
                    name: n.to_string(),
                    layer,
                })
                .collect(),
        }
    }

    /// Total multiply-accumulate operations for one input.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.layer.macs()).sum()
    }

    /// Total non-MAC scalar operations for one input.
    pub fn total_other_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.layer.other_ops()).sum()
    }

    /// Fraction of all scalar operations that are multiply-adds (the
    /// `% Multiply-Add` column of Figure 1's table; > 99% for every
    /// benchmark).
    pub fn mac_fraction(&self) -> f64 {
        let macs = self.total_macs() as f64;
        let other = self.total_other_ops() as f64;
        if macs + other == 0.0 {
            return 0.0;
        }
        macs / (macs + other)
    }

    /// Total weight parameters.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.layer.params()).sum()
    }

    /// Total weight storage in bytes at each layer's own weight bitwidth
    /// (the bit-level memory layout of §II-B stores values at their minimal
    /// width).
    pub fn weight_bytes(&self) -> u64 {
        let bits: u64 = self.layers.iter().map(|l| l.layer.weight_bits()).sum();
        bits.div_ceil(8)
    }

    /// Layers that perform multiply-adds, in order.
    pub fn mac_layers(&self) -> impl Iterator<Item = &NamedLayer> {
        self.layers.iter().filter(|l| l.layer.macs() > 0)
    }

    /// Checks that consecutive layer shapes chain: each layer's output
    /// element count should match the next shape-sensitive layer's input
    /// element count. Returns every mismatch as
    /// `(producer, consumer, produced, expected)`.
    ///
    /// Elementwise and activation layers are shape-transparent; recurrent
    /// layers chain on their hidden size. Residual *branch* layers (e.g.
    /// ResNet downsample convolutions, which consume an earlier activation
    /// rather than the previous layer's output) legitimately appear here —
    /// callers decide which mismatches their topology expects.
    pub fn shape_chain_mismatches(&self) -> Vec<(String, String, u64, u64)> {
        let mut mismatches = Vec::new();
        let mut prev: Option<(&NamedLayer, u64)> = None;
        for l in &self.layers {
            let expected_in: Option<u64> = match &l.layer {
                Layer::Conv2d(c) => Some(c.input_elems()),
                Layer::DepthwiseConv2d(c) => Some(c.input_elems()),
                Layer::Dense(d) => Some(d.in_features as u64),
                Layer::Pool2d(p) => {
                    Some((p.channels * p.input_hw.0 * p.input_hw.1) as u64)
                }
                Layer::Recurrent(r) => Some(r.input_size as u64),
                Layer::Eltwise(_) | Layer::Activation(_) => None,
            };
            if let (Some((producer, produced)), Some(expected)) = (prev, expected_in) {
                if produced != expected {
                    mismatches.push((
                        producer.name.clone(),
                        l.name.clone(),
                        produced,
                        expected,
                    ));
                }
            }
            let out: Option<u64> = match &l.layer {
                Layer::Conv2d(c) => Some(c.output_elems()),
                Layer::DepthwiseConv2d(c) => Some(c.output_elems()),
                Layer::Dense(d) => Some(d.out_features as u64),
                Layer::Pool2d(p) => Some(p.output_elems()),
                Layer::Recurrent(r) => Some(r.hidden_size as u64),
                Layer::Eltwise(_) | Layer::Activation(_) => None,
            };
            if let Some(o) = out {
                prev = Some((l, o));
            }
        }
        mismatches
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} layers, {:.0}M MACs, {:.1} MB weights",
            self.name,
            self.layers.len(),
            self.total_macs() as f64 / 1e6,
            self.weight_bytes() as f64 / 1e6
        )?;
        for l in &self.layers {
            writeln!(f, "  {:<10} {}", l.name, l.layer)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Dense;
    use bitfusion_core::bitwidth::PairPrecision;

    fn tiny() -> Model {
        let pp = PairPrecision::from_bits(2, 2).unwrap();
        Model::new(
            "tiny",
            vec![
                (
                    "fc1",
                    Layer::Dense(Dense {
                        in_features: 100,
                        out_features: 50,
                        precision: pp,
                    }),
                ),
                (
                    "fc2",
                    Layer::Dense(Dense {
                        in_features: 50,
                        out_features: 10,
                        precision: pp,
                    }),
                ),
            ],
        )
    }

    #[test]
    fn totals_sum_layers() {
        let m = tiny();
        assert_eq!(m.total_macs(), 100 * 50 + 50 * 10);
        assert_eq!(m.total_params(), 5500);
        // 5500 params at 2 bits = 1375 bytes.
        assert_eq!(m.weight_bytes(), 1375);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn mac_fraction_all_mac() {
        assert!((tiny().mac_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_lists_layers() {
        let text = tiny().to_string();
        assert!(text.contains("fc1"));
        assert!(text.contains("fc 100 -> 50"));
    }
}
